package kdb_test

// Integration stress test: a synthetic knowledge base at a scale well
// beyond the paper's examples — a multi-department university with a
// layered rule hierarchy — driven through every query form and both
// durable and in-memory storage.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kdb"
)

// buildLargeKB generates a university with n students, m courses, a
// prerequisite chain per department, and a layered award hierarchy.
func buildLargeKB(n, m int) string {
	r := rand.New(rand.NewSource(42))
	var b strings.Builder
	depts := []string{"math", "cs", "physics", "bio"}
	for i := 0; i < n; i++ {
		gpa := float64(20+r.Intn(21)) / 10 // 2.0 .. 4.0
		fmt.Fprintf(&b, "student(s%03d, %s, %.1f).\n", i, depts[i%len(depts)], gpa)
	}
	for j := 0; j < m; j++ {
		fmt.Fprintf(&b, "course(c%03d, %d).\n", j, 3+j%2)
		if j > 0 {
			fmt.Fprintf(&b, "prereq(c%03d, c%03d).\n", j, j-1)
		}
	}
	for i := 0; i < n*3; i++ {
		fmt.Fprintf(&b, "complete(s%03d, c%03d, f%02d, %.1f).\n",
			r.Intn(n), r.Intn(m), 88+r.Intn(2), float64(20+r.Intn(21))/10)
	}
	for j := 0; j < m; j++ {
		fmt.Fprintf(&b, "teach(p%02d, c%03d).\n", j%7, j)
	}
	b.WriteString(`
honor(X) :- student(X, D, G), G > 3.7.
good_standing(X) :- student(X, D, G), G >= 2.5.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
completed_all(X, C) :- complete(X, C, S, G), G >= 2.
can_ta(X, C) :- honor(X), complete(X, C, S, G), G > 3.3.
senior_award(X) :- honor(X), completed_all(X, C), course(C, 4).
deans_list(X) :- student(X, D, G), G > 3.9.
:- can_ta(X, C), suspended(X).
@key student/3 1.
`)
	return b.String()
}

func TestLargeKBEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	src := buildLargeKB(100, 40)
	k := kdb.New()
	if err := k.LoadString(src); err != nil {
		t.Fatal(err)
	}
	if k.FactCount() < 400 {
		t.Fatalf("FactCount = %d", k.FactCount())
	}
	if v := k.Validate(); len(v) != 0 {
		t.Fatalf("discipline: %v", v)
	}
	violations, err := k.CheckConstraints()
	if err != nil || len(violations) != 0 {
		t.Fatalf("constraints: %v %v", violations, err)
	}

	// Every engine answers the long-chain recursive query identically.
	var results []string
	for _, e := range []kdb.EngineKind{kdb.EngineNaive, kdb.EngineSemiNaive, kdb.EngineTopDown, kdb.EngineMagic} {
		if err := k.SetEngine(e); err != nil {
			t.Fatal(err)
		}
		res, err := k.ExecString(`retrieve prior(c039, Y).`)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		results = append(results, res.String())
	}
	if results[0] != results[1] || results[1] != results[2] || results[2] != results[3] {
		t.Fatal("engines disagree on the long chain")
	}
	if got := strings.Count(results[0], "prior("); got != 39 {
		t.Fatalf("chain closure size = %d, want 39", got)
	}

	// Knowledge queries across the hierarchy.
	queries := []string{
		`describe senior_award(X) where honor(X).`,
		`describe can_ta(X, C) where student(X, math, G) and G > 3.8.`,
		`describe prior(X, Y) where prior(c005, Y).`,
		`describe can_ta(X, C) where not honor(X).`,
		`describe where student(X, D, G) and G < 2.5 and can_ta(X, C).`,
		`describe * where honor(X).`,
		`compare (describe honor(X)) with (describe deans_list(X)).`,
	}
	for _, q := range queries {
		res, err := k.ExecString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.String() == "" {
			t.Fatalf("%s: empty rendering", q)
		}
	}

	// Spot-check the semantics of the layered describe.
	res, err := k.ExecString(`describe senior_award(X) where honor(X).`)
	if err != nil {
		t.Fatal(err)
	}
	// The honor conjunct is consumed; completed_all stays at its most
	// general level (the paper's generality principle — no gratuitous
	// unfolding of concepts the hypothesis cannot reach).
	if got := res.String(); got != "senior_award(X) <- completed_all(X, C) and course(C, 4)" {
		t.Errorf("unexpected: %q", got)
	}
}

func TestLargeKBDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	dir := t.TempDir()
	src := buildLargeKB(60, 20)
	k, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.LoadString(src); err != nil {
		t.Fatal(err)
	}
	want := k.FactCount()
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More inserts after the checkpoint land in the WAL.
	for i := 0; i < 50; i++ {
		if err := k.Assert(kdb.NewAtom("enroll", kdb.Sym(fmt.Sprintf("s%03d", i)), kdb.Sym("c000"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	k2, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if got := k2.FactCount(); got != want+50 {
		t.Fatalf("recovered %d facts, want %d", got, want+50)
	}
}

func TestConcurrentQueries(t *testing.T) {
	src := buildLargeKB(50, 15)
	k := kdb.New()
	if err := k.LoadString(src); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`retrieve honor(X).`,
		`retrieve prior(c014, Y).`,
		`describe can_ta(X, C) where honor(X).`,
		`describe prior(X, Y) where prior(c003, Y).`,
		`describe where student(X, D, G) and G < 2.5 and can_ta(X, C).`,
	}
	done := make(chan error, len(queries)*4)
	for g := 0; g < 4; g++ {
		for _, q := range queries {
			go func(q string) {
				_, err := k.ExecString(q)
				done <- err
			}(q)
		}
	}
	for i := 0; i < len(queries)*4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Quickstart: build a small knowledge-rich database in memory and ask it
// both kinds of question from the paper's introduction — "Who are the
// honor students?" (a data query) and "What does it take to be an honor
// student?" (a knowledge query).
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kdb"
)

func main() {
	k := kdb.New()

	// Facts and rules use the same Horn-clause language (§2.1).
	err := k.LoadString(`
student(ann,  math,    3.9).
student(bob,  cs,      3.5).
student(cora, math,    3.8).
student(dan,  cs,      4).
enroll(ann, databases).
enroll(bob, databases).
enroll(dan, databases).

% An honor student has a grade-point average above 3.7.
honor(X) :- student(X, M, G), G > 3.7.
`)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// The intro's first pair of English queries:
		`retrieve honor(X).`, // "Who are the honor students?"
		`describe honor(X).`, // "What does it take to be an honor student?"
		// Knowledge applied to data, as usual:
		`retrieve honor(X) where enroll(X, databases).`,
		// A knowledge query with a hypothesis (§3.2): when is a student
		// with GPA over 3.8 an honor student? (Always — the comparison
		// post-pass of §4 removes the implied bound.)
		`describe honor(X) where student(X, math, V) and V > 3.8.`,
	}
	for _, q := range queries {
		res, err := k.ExecString(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("?- %s\n%s\n\n", q, indent(res.String()))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}

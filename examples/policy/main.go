// Policy: the beyond-the-paper features — the research directions the
// paper's Section 6 lists. A financial-aid office encodes its policy as
// rules plus integrity constraints, then interrogates it with
// disjunctive hypotheses, constraint-aware possibility checks, and
// intensional answers that explain every data answer with the knowledge
// behind it.
//
// Run from the repository root:
//
//	go run ./examples/policy
package main

import (
	"fmt"
	"log"

	"kdb"
)

const policyKB = `
% ---- applicants ----
applicant(ann,  3.9, 12000).
applicant(bob,  3.2, 52000).
applicant(cora, 3.6, 18000).
applicant(dan,  2.8, 9000).
flagged(bob).

% ---- the aid policy as knowledge ----
% Merit awards need a strong GPA; need awards a low family income.
merit_award(X) :- applicant(X, G, I), G > 3.5.
need_award(X)  :- applicant(X, G, I), I < 20000.
any_award(X)   :- merit_award(X).
any_award(X)   :- need_award(X).

% ---- integrity constraints (the §2.1 second Horn-clause form) ----
% A flagged applicant may never receive an award.
:- any_award(X), flagged(X).
% GPAs above 4.0 cannot exist.
:- applicant(X, G, I), G > 4.

@key applicant/3 1.
`

func show(k *kdb.KB, comment, q string) {
	fmt.Printf("%% %s\n?- %s\n", comment, q)
	res, err := k.ExecString(q)
	if err != nil {
		fmt.Printf("   error: %v\n\n", err)
		return
	}
	out := res.String()
	start := 0
	for i := 0; i <= len(out); i++ {
		if i == len(out) || out[i] == '\n' {
			fmt.Printf("   %s\n", out[start:i])
			start = i + 1
		}
	}
	fmt.Println()
}

func main() {
	k := kdb.New()
	if err := k.LoadString(policyKB); err != nil {
		log.Fatal(err)
	}

	// The data currently violates a constraint: bob is flagged but his
	// GPA would… actually bob has GPA 3.2 and income 52000, so no award —
	// the data is consistent. Validate it.
	violations, err := k.CheckConstraints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraint check: %d violations\n\n", len(violations))

	show(k, "disjunctive data query (§6 direction): who qualifies by merit OR need?",
		`retrieve any_award(X) where merit_award(X) or need_award(X).`)

	show(k, "disjunctive knowledge query: what is common to both award routes?",
		`describe any_award(X) where merit_award(X) or need_award(X).`)

	show(k, "possibility under constraints: could a flagged applicant get an award?",
		`describe where any_award(X) and flagged(X).`)

	show(k, "possibility under constraints: could an applicant have GPA 4.5?",
		`describe where applicant(X, 4.5, I).`)

	show(k, "but a 3.95 GPA applicant is fine",
		`describe where applicant(X, 3.95, I) and merit_award(X).`)

	// Intensional answers: the data plus the knowledge behind it.
	k.SetIntensional(true)
	show(k, "intensional answering ON: the extension AND the rule that produced it",
		`retrieve merit_award(X).`)

	k.SetIntensional(false)
	show(k, "is need (as opposed to merit) ever NECESSARY for an award?",
		`describe any_award(X) where not merit_award(X).`)
}

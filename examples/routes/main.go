// Routes: the paper's routing scenario (introduction, examples five and
// six). A database of airports and flights with the standard recursive
// definition of reachability can answer "list all points reachable from
// A" — but the interesting questions are about the knowledge: does the
// system know how to get from any point to any other point, and is
// reachability symmetric?
//
// Run from the repository root:
//
//	go run ./examples/routes
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kdb"
)

func findData(name string) string {
	for _, dir := range []string{"testdata", "../../testdata"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot find %s; run from the repository root", name)
	return ""
}

func show(k *kdb.KB, comment, q string) {
	fmt.Printf("%% %s\n?- %s\n", comment, q)
	res, err := k.ExecString(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	out := res.String()
	start := 0
	for i := 0; i <= len(out); i++ {
		if i == len(out) || out[i] == '\n' {
			fmt.Printf("   %s\n", out[start:i])
			start = i + 1
		}
	}
	fmt.Println()
}

func main() {
	k := kdb.New()
	if err := k.LoadFile(findData("routes.kdb")); err != nil {
		log.Fatal(err)
	}

	show(k, "the ordinary data query: list all points reachable from la",
		`retrieve reachable(la, Y).`)

	show(k, `"do you know how to get from any point to any other point?" — a query on the availability of a definition`,
		`describe reachable(X, Y).`)

	show(k, "a knowledge query on the recursive concept (Algorithm 2, §5): when is X reachable, given la reaches Y?",
		`describe reachable(X, Y) where reachable(la, Y).`)

	show(k, "what does a roundtrip take, supposing Y already reaches X?",
		`describe roundtrip(X, Y) where reachable(Y, X).`)

	show(k, "is reachability NECESSARY for a roundtrip? (describe … where not …, §6)",
		`describe roundtrip(X, Y) where not reachable(X, Y).`)

	show(k, "could there be a hub with no departures? (subjectless describe, §6)",
		`describe where hub(X) and flight(X, Y).`)

	show(k, "what follows from a single flight out of la? (wildcard, §6)",
		`describe * where flight(la, B).`)

	// The symmetry question needs a knowledge base whose reachability IS
	// symmetric — an undirected network. The symmetry rule is recursive
	// but not typed with respect to its head, so describe switches to the
	// bounded mode of §5.3.
	fmt.Println("=== an undirected network (symmetry as knowledge) ===")
	fmt.Println()
	u := kdb.New()
	if err := u.LoadString(`
cable(a, b). cable(b, c). cable(c, d).
linked(X, Y) :- cable(X, Y).
linked(X, Y) :- linked(Y, X).
connected(X, Y) :- linked(X, Y).
connected(X, Y) :- linked(X, Z), connected(Z, Y).
`); err != nil {
		log.Fatal(err)
	}
	show(u, `"when x is linked to y, is it guaranteed that y is linked to x?" — the intro's sixth query; <- true means YES`,
		`describe linked(X, Y) where linked(Y, X).`)
	show(u, "and the data-level sanity check",
		`retrieve connected(d, Y).`)
}

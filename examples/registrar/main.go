// Registrar: the paper's full university knowledge base (§2.2) driven
// through every query form — the twin retrieve/describe statements and
// all five Section 6 extensions. This is the scenario the paper's
// introduction motivates: users who cannot tell whether the information
// they need is data or knowledge ask through one coherent instrument.
//
// Run from the repository root:
//
//	go run ./examples/registrar
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kdb"
)

func findData(name string) string {
	for _, dir := range []string{"testdata", "../../testdata"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot find %s; run from the repository root", name)
	return ""
}

func main() {
	k := kdb.New()
	if err := k.LoadFile(findData("university.kdb")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded university KB: %d facts, %d rules\n\n", k.FactCount(), len(k.Rules()))

	sections := []struct {
		title   string
		queries []string
	}{
		{"Data queries (§3.1)", []string{
			`retrieve honor(X) where enroll(X, databases).`,
			`retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.`,
			`retrieve prior(databases, Y).`,
		}},
		{"Knowledge queries (§3.2, §4)", []string{
			`describe honor(X).`,
			`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`,
			`describe can_ta(X, Y) where honor(X) and teach(susan, Y).`,
			`describe can_ta(X, Y) where complete(X, Y, S, 4).`,
		}},
		{"Recursive knowledge queries (§5)", []string{
			`describe prior(X, Y) where prior(databases, Y).`,
			`describe prior(X, Y) where prior(X, databases).`,
		}},
		{"Extension 1 — necessary hypotheses", []string{
			`describe honor(X) where necessary complete(X, Y, Z, U) and U > 3.3.`,
			`describe honor(X) where necessary student(X, math, V) and V > 3.7.`,
		}},
		{"Extension 2 — is the excluded knowledge necessary?", []string{
			`describe can_ta(X, Y) where not honor(X).`,
		}},
		{"Extension 3 — is the hypothetical situation possible?", []string{
			`describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).`,
			`describe where student(X, Y, Z) and Z > 3.8 and can_ta(X, U).`,
		}},
		{"Extension 4 — what follows from honor status?", []string{
			`describe * where honor(X).`,
		}},
		{"Comparing concepts (§6)", []string{
			`compare (describe honor(X)) with (describe deans_list(X)).`,
		}},
	}
	for _, s := range sections {
		fmt.Printf("--- %s ---\n", s.title)
		for _, q := range s.queries {
			res, err := k.ExecString(q)
			if err != nil {
				log.Fatalf("%s: %v", q, err)
			}
			fmt.Printf("?- %s\n", q)
			for _, line := range lines(res.String()) {
				fmt.Printf("   %s\n", line)
			}
		}
		fmt.Println()
	}

	// The answer to a data query may raise a knowledge question — the
	// paper's point about follow-ups. The dean asks who may TA databases,
	// is surprised not to see dan (GPA 4.0!), and asks why.
	fmt.Println("--- A follow-up investigation ---")
	show(k, `retrieve can_ta(X, databases).`)
	show(k, `describe can_ta(dan, databases).`)
	fmt.Println("   (dan completed databases with 3.4 in f88 under tom, who no longer")
	fmt.Println("    teaches it — neither route applies.)")
}

func show(k *kdb.KB, q string) {
	res, err := k.ExecString(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	fmt.Printf("?- %s\n", q)
	for _, line := range lines(res.String()) {
		fmt.Printf("   %s\n", line)
	}
}

func lines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Persistence: the storage substrate under the knowledge base. Facts are
// made durable with a snapshot file plus a CRC-checked write-ahead log;
// this example opens a database, loads facts, simulates a restart, shows
// recovery, checkpoints, and demonstrates that a torn WAL tail (a crash
// mid-append) and an orphaned snapshot temp file (a crash mid-checkpoint)
// are both healed on the next open.
//
// Run from the repository root:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kdb"
)

const rules = `
honor(X) :- student(X, M, G), G > 3.7.
`

func main() {
	dir, err := os.MkdirTemp("", "kdb-persist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("database directory:", dir)

	// Session 1: create, load, close.
	k, err := kdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.LoadString(`
student(ann, math, 3.9).
student(bob, cs, 3.5).
` + rules); err != nil {
		log.Fatal(err)
	}
	if err := k.Assert(kdb.NewAtom("student", kdb.Sym("cora"), kdb.Sym("math"), kdb.Num(3.8))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: %d facts stored\n", k.FactCount())
	if err := k.Close(); err != nil {
		log.Fatal(err)
	}

	// Session 2: recover from the WAL (no snapshot yet). Rules are part
	// of the program source, so they are reloaded.
	k2, err := kdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := k2.LoadString(rules); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: recovered %d facts from the write-ahead log\n", k2.FactCount())
	res, err := k2.ExecString(`retrieve honor(X).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: retrieve honor(X) →\n%s\n", res)

	// Checkpoint folds the log into a snapshot and truncates it.
	if err := k2.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	walSize := fileSize(filepath.Join(dir, "kdb.wal"))
	snapSize := fileSize(filepath.Join(dir, "kdb.snap"))
	fmt.Printf("after checkpoint: snapshot %d bytes, wal %d bytes\n", snapSize, walSize)
	if err := k2.Close(); err != nil {
		log.Fatal(err)
	}

	// Simulate a crash mid-append: garbage at the end of the WAL.
	f, err := os.OpenFile(filepath.Join(dir, "kdb.wal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x13}); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("injected a torn record at the WAL tail (simulated crash)")

	// Session 3: recovery truncates the torn tail and carries on.
	k3, err := kdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer k3.Close()
	if err := k3.LoadString(rules); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 3: recovered %d facts (snapshot + healed wal)\n", k3.FactCount())
	if err := k3.Assert(kdb.NewAtom("student", kdb.Sym("dan"), kdb.Sym("cs"), kdb.Num(4))); err != nil {
		log.Fatal(err)
	}
	res, err = k3.ExecString(`retrieve honor(X).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 3: retrieve honor(X) →\n%s\n", res)
	if err := k3.Close(); err != nil {
		log.Fatal(err)
	}

	// Simulate a crash mid-checkpoint: the snapshot is written to a temp
	// file and renamed into place atomically, so a crash between the two
	// strands the temp file. Open sweeps such orphans.
	orphan := filepath.Join(dir, "kdb.snap.tmp-crashed")
	if err := os.WriteFile(orphan, []byte("partial snapshot"), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("injected an orphaned snapshot temp file (simulated checkpoint crash)")
	k4, err := kdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer k4.Close()
	if _, err := os.Stat(orphan); os.IsNotExist(err) {
		fmt.Printf("session 4: orphan swept on open; %d facts intact\n", k4.FactCount())
	} else {
		fmt.Println("session 4: orphan still present (unexpected)")
	}
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return st.Size()
}

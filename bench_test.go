package kdb_test

// The benchmark harness of DESIGN.md: one bench per characterization
// experiment (B1–B5 at this level; B6–B8 live in their substrate
// packages). The paper reports no measurements — these benches
// characterize the reproduction: engine comparisons on transitive
// closure, Algorithm 1 scaling in rule fan-out, depth, and hypothesis
// size, Algorithm 2 against recursive subjects, and redundancy
// elimination. Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"strings"
	"testing"

	"kdb"
)

func mustKB(b *testing.B, src string) *kdb.KB {
	b.Helper()
	k := kdb.New()
	if err := k.LoadString(src); err != nil {
		b.Fatal(err)
	}
	return k
}

func benchQuery(b *testing.B, k *kdb.KB, q string) {
	b.Helper()
	query, err := kdb.ParseQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Exec(query); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B1: retrieve engines on transitive closure, size sweep ---

func chainKB(b *testing.B, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "edge(n%04d, n%04d).\n", i, i+1)
	}
	sb.WriteString(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	return sb.String()
}

func BenchmarkRetrieveEngines(b *testing.B) {
	for _, n := range []int{25, 50, 100} {
		src := chainKB(b, n)
		for _, engine := range []kdb.EngineKind{kdb.EngineNaive, kdb.EngineSemiNaive, kdb.EngineTopDown, kdb.EngineMagic} {
			b.Run(fmt.Sprintf("engine=%s/chain=%d", engine, n), func(b *testing.B) {
				k := mustKB(b, src)
				if err := k.SetEngine(engine); err != nil {
					b.Fatal(err)
				}
				benchQuery(b, k, `retrieve path(X, Y).`)
			})
		}
		// Parallel semi-naive on the single-SCC chain: the acceptance bar
		// is parity with the sequential engine (there is nothing to spread,
		// so this measures the scheduler's overhead).
		b.Run(fmt.Sprintf("engine=seminaive-par/chain=%d", n), func(b *testing.B) {
			k := kdb.New(kdb.WithParallelism(0))
			if err := k.LoadString(src); err != nil {
				b.Fatal(err)
			}
			benchQuery(b, k, `retrieve path(X, Y).`)
		})
	}
}

// wideKB builds several independent chain closures joined by one top
// rule: the SCC condensation is wide, so parallel stratum evaluation has
// independent work to schedule.
func wideKB(chains, length int) string {
	var sb strings.Builder
	for c := 0; c < chains; c++ {
		for i := 0; i < length; i++ {
			fmt.Fprintf(&sb, "edge%d(n%04d, n%04d).\n", c, i, i+1)
		}
		fmt.Fprintf(&sb, "path%d(X, Y) :- edge%d(X, Y).\n", c, c)
		fmt.Fprintf(&sb, "path%d(X, Y) :- edge%d(X, Z), path%d(Z, Y).\n", c, c, c)
	}
	sb.WriteString("top(X, Y) :- path0(X, Y)")
	for c := 1; c < chains; c++ {
		fmt.Fprintf(&sb, ", path%d(X, Y)", c)
	}
	sb.WriteString(".\n")
	return sb.String()
}

func BenchmarkRetrieveParallelStrata(b *testing.B) {
	src := wideKB(8, 40)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			k := kdb.New(kdb.WithParallelism(workers))
			if err := k.LoadString(src); err != nil {
				b.Fatal(err)
			}
			benchQuery(b, k, `retrieve top(X, Y).`)
		})
	}
}

func BenchmarkRetrieveBoundGoal(b *testing.B) {
	// Goal-directed evaluation vs bottom-up on a bound query.
	src := chainKB(b, 200)
	for _, engine := range []kdb.EngineKind{kdb.EngineSemiNaive, kdb.EngineTopDown, kdb.EngineMagic} {
		b.Run(string(engine), func(b *testing.B) {
			k := mustKB(b, src)
			if err := k.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			benchQuery(b, k, `retrieve path(n0000, Y).`)
		})
	}
}

// --- B2: Algorithm 1 scaling ---

// fanoutKB builds a subject with w alternative rules over distinct EDB
// predicates, each body holding the hypothesis target plus filler atoms.
func fanoutKB(width, filler int) string {
	var sb strings.Builder
	for w := 0; w < width; w++ {
		fmt.Fprintf(&sb, "goal(X) :- target(X)")
		for f := 0; f < filler; f++ {
			fmt.Fprintf(&sb, ", extra%d_%d(X)", w, f)
		}
		sb.WriteString(".\n")
	}
	return sb.String()
}

func BenchmarkDescribeFanout(b *testing.B) {
	for _, width := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("rules=%d", width), func(b *testing.B) {
			k := mustKB(b, fanoutKB(width, 3))
			benchQuery(b, k, `describe goal(X) where target(X).`)
		})
	}
}

// depthKB builds a rule chain goal → l1 → … → ln → target so the
// identification happens n levels deep.
func depthKB(depth int) string {
	var sb strings.Builder
	sb.WriteString("goal(X) :- l1(X).\n")
	for d := 1; d < depth; d++ {
		fmt.Fprintf(&sb, "l%d(X) :- l%d(X).\n", d, d+1)
	}
	fmt.Fprintf(&sb, "l%d(X) :- target(X), side%d(X).\n", depth, depth)
	return sb.String()
}

func BenchmarkDescribeDepth(b *testing.B) {
	for _, depth := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			k := mustKB(b, depthKB(depth))
			k.SetDescribeOptions(kdb.DescribeOptions{MaxDepth: depth + 4})
			benchQuery(b, k, `describe goal(X) where target(X).`)
		})
	}
}

func BenchmarkDescribeHypothesisSize(b *testing.B) {
	// One rule with h conjuncts, hypothesis naming all of them.
	for _, h := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("conjuncts=%d", h), func(b *testing.B) {
			var rule, hyp strings.Builder
			rule.WriteString("goal(X) :- ")
			for i := 0; i < h; i++ {
				if i > 0 {
					rule.WriteString(", ")
					hyp.WriteString(" and ")
				}
				fmt.Fprintf(&rule, "part%d(X)", i)
				fmt.Fprintf(&hyp, "part%d(X)", i)
			}
			rule.WriteString(".\n")
			k := mustKB(b, rule.String())
			benchQuery(b, k, fmt.Sprintf(`describe goal(X) where %s.`, hyp.String()))
		})
	}
}

// --- B3: Algorithm 2 (recursive describe) ---

const universitySrc = `
student(ann, math, 3.9).
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`

func BenchmarkDescribeRecursive(b *testing.B) {
	b.Run("transformed", func(b *testing.B) {
		k := mustKB(b, universitySrc)
		benchQuery(b, k, `describe prior(X, Y) where prior(databases, Y).`)
	})
	b.Run("step-form", func(b *testing.B) {
		k := mustKB(b, universitySrc)
		k.SetDescribeOptions(kdb.DescribeOptions{KeepSteps: true})
		benchQuery(b, k, `describe prior(X, Y) where prior(databases, Y).`)
	})
	b.Run("typed-guard", func(b *testing.B) {
		k := mustKB(b, universitySrc)
		benchQuery(b, k, `describe prior(X, Y) where prior(X, databases).`)
	})
}

func BenchmarkDescribeUntypedBound(b *testing.B) {
	src := `
link(a, b).
reach(X, Y) :- link(X, Y).
reach(X, Y) :- reach(Y, X).
`
	for _, bound := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			k := mustKB(b, src)
			k.SetDescribeOptions(kdb.DescribeOptions{UntypedBound: bound})
			benchQuery(b, k, `describe reach(X, Y) where link(Y, X).`)
		})
	}
}

// --- B4 lives in internal/transform; B5: redundancy elimination ---

func BenchmarkRedundancyElimination(b *testing.B) {
	// Many overlapping rules for one subject: answers heavily subsume
	// each other, exercising the θ-subsumption pass.
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			var sb strings.Builder
			for i := 0; i <= n; i++ {
				sb.WriteString("goal(X) :- base(X)")
				for j := 0; j < i; j++ {
					fmt.Fprintf(&sb, ", opt%d(X)", j)
				}
				sb.WriteString(".\n")
			}
			k := mustKB(b, sb.String())
			benchQuery(b, k, `describe goal(X) where base(X).`)
		})
	}
}

// --- End-to-end benches over the paper's experiments ---

func BenchmarkPaperExamples(b *testing.B) {
	cases := []struct{ name, query string }{
		{"E1-retrieve", `retrieve honor(X) where enroll(X, databases).`},
		{"E3-describe", `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`},
		{"E4-definition", `describe honor(X).`},
		{"E6-recursive", `describe prior(X, Y) where prior(databases, Y).`},
		{"X2-not", `describe can_ta(X, Y) where not honor(X).`},
		{"X3-possible", `describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).`},
		{"X5-compare", `compare (describe honor(X)) with (describe deans_list(X)).`},
	}
	k := kdb.New()
	if err := k.LoadFile("testdata/university.kdb"); err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchQuery(b, k, c.query)
		})
	}
}

func BenchmarkLoadUniversity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := kdb.New()
		if err := k.LoadFile("testdata/university.kdb"); err != nil {
			b.Fatal(err)
		}
	}
}

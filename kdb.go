// Package kdb is a knowledge-rich deductive database with a twin query
// interface, reproducing "Querying Database Knowledge" (Motro & Yuan,
// SIGMOD 1990):
//
//   - retrieve p where ψ — data queries: the paper's §3.1 statement,
//     evaluated by a choice of naive, semi-naive, tabled top-down, or
//     magic-sets Datalog engines;
//   - describe p where ψ — knowledge queries: the paper's §3.2
//     statement, answered with rules that are logically derived from the
//     intensional database under the hypothesis ψ, via Algorithm 1
//     (non-recursive subjects) and Algorithm 2 (recursive subjects,
//     through the §5.2 rule transformation with tags and typed
//     substitutions);
//   - the §6 extensions: `where necessary`, negative hypotheses
//     (`where not h` — is h necessary?), the subjectless possibility
//     check, the wildcard subject `describe *`, and `compare` between
//     two concepts.
//
// # Quick start
//
//	k := kdb.New()
//	err := k.LoadString(`
//	    student(ann, math, 3.9).
//	    honor(X) :- student(X, M, G), G > 3.7.
//	`)
//	res, err := k.ExecString(`retrieve honor(X).`)   // → honor(ann)
//	res, err = k.ExecString(`describe honor(X).`)    // → honor(X) <- student(X, M, G) and G > 3.7
//
// Facts can be made durable with Open (snapshot + write-ahead log with
// crash recovery). The surface language is documented in the repository
// README; variables start with an upper-case letter, constants are
// lower-case symbols, numbers, or quoted strings, and `%` starts a
// comment.
package kdb

import (
	"context"
	"io"
	"net/http"
	"time"

	"kdb/internal/analysis"
	"kdb/internal/catalog"
	"kdb/internal/core"
	"kdb/internal/eval"
	"kdb/internal/governor"
	"kdb/internal/kb"
	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/obs/profile"
	"kdb/internal/obs/sysrel"
	"kdb/internal/parser"
	"kdb/internal/prov"
	"kdb/internal/server"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Core database types.
type (
	// KB is a knowledge-rich database: stored facts, rules, and the twin
	// query machinery. Safe for concurrent use.
	KB = kb.KB
	// EngineKind selects the retrieve evaluation strategy.
	EngineKind = kb.EngineKind
	// ExecResult is the displayable outcome of executing any query form.
	ExecResult = kb.ExecResult
	// DescribeOptions tunes the knowledge-query engine.
	DescribeOptions = core.Options
	// Option configures a KB at construction time (New / Open).
	Option = kb.Option
	// EvalStats is the observability record of one retrieve evaluation:
	// per-SCC fixpoint iterations, facts derived, delta sizes, lookup and
	// probe counts, and wall times. See KB.LastStats.
	EvalStats = eval.EvalStats
	// ComponentStats records the evaluation of one SCC of the rule graph.
	ComponentStats = eval.ComponentStats
)

// Query-governor types: per-query resource control for every evaluation
// path (see WithQueryLimits and the context-taking KB methods —
// ExecContext, RetrieveContext, DescribeContext).
type (
	// QueryLimits are the per-query resource bounds. The zero value of
	// every field means unlimited.
	QueryLimits = governor.Limits
	// LimitKind identifies which limit a LimitError reports.
	LimitKind = governor.LimitKind
	// LimitError reports a breached resource limit (errors.As-able).
	LimitError = governor.LimitError
	// PanicError is an internal panic contained at an engine boundary
	// and surfaced as an error, with the stack at the panic site.
	PanicError = governor.PanicError
	// StopError wraps the underlying breach of a governed retrieve stop
	// and carries the statistics snapshot at stop time (its EvalStats
	// has StopReason set).
	StopError = eval.StopError
)

// Static-analysis types: the diagnostics engine behind KB.Diagnostics,
// load-time gating, and the `kdb check` command.
type (
	// Diagnostic is one source-anchored finding of one analyzer.
	Diagnostic = analysis.Diagnostic
	// Severity grades a diagnostic (info, warning, error).
	Severity = analysis.Severity
	// Report aggregates the diagnostics and the program profile of one
	// analysis run.
	Report = analysis.Report
	// AnalysisError is the error a load returns when error-severity
	// diagnostics reject the program (errors.As-able; carries the
	// structured diagnostics).
	AnalysisError = analysis.Error
	// Profile summarizes a program's shape: predicate/rule counts and
	// rule counts per recursion classification.
	Profile = analysis.Profile
)

// Diagnostic severities.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Analyze runs the full static-analysis suite over a parsed program and
// returns the report (diagnostics plus program profile).
func Analyze(prog *Program) *Report { return analysis.Run(analysis.FromProgram(prog)) }

// ErrCanceled matches (via errors.Is) every error returned for a
// canceled or expired query context. The concrete error also wraps the
// context cause, so errors.Is(err, context.DeadlineExceeded) works.
var ErrCanceled = governor.ErrCanceled

// ErrClosed matches (via errors.Is) every error a KB returns once it
// has been closed: callers holding a stale handle get a structured
// error instead of a raw I/O failure from the store underneath.
var ErrClosed = kb.ErrClosed

// ErrDurability matches (via errors.Is) every error meaning "the
// in-memory state changed but the change may not have reached stable
// storage": a WAL append or fsync failure, a poisoned log, a failed
// checkpoint. Callers deciding between retrying a request and walling
// off a failing store key on it; KB.DurabilityErr reports the sticky
// form, and a successful Checkpoint clears it.
var ErrDurability = storage.ErrDurability

// ContextWithQueryLimits attaches per-request query limits to a
// context: they govern every evaluation under it, clamped against the
// KB's configured limits (a request may tighten but never loosen the
// ceiling — see ClampQueryLimits).
func ContextWithQueryLimits(ctx context.Context, l QueryLimits) context.Context {
	return kb.ContextWithLimits(ctx, l)
}

// QueryLimitsFromContext returns the limits attached by
// ContextWithQueryLimits.
func QueryLimitsFromContext(ctx context.Context) (QueryLimits, bool) {
	return kb.LimitsFromContext(ctx)
}

// ClampQueryLimits merges requested limits against a ceiling: for each
// field the result never exceeds a nonzero ceiling bound, and a zero
// (unlimited) request is replaced by the ceiling.
func ClampQueryLimits(req, ceiling QueryLimits) QueryLimits {
	return governor.Clamp(req, ceiling)
}

// Limit kinds reported by LimitError.
const (
	LimitFacts         = governor.LimitFacts
	LimitIterations    = governor.LimitIterations
	LimitTableEntries  = governor.LimitTableEntries
	LimitDescribeNodes = governor.LimitDescribeNodes
	LimitProvenance    = governor.LimitProvenance
)

// Term-language types.
type (
	// Term is a constant or variable.
	Term = term.Term
	// Atom is a predicate applied to terms.
	Atom = term.Atom
	// Formula is a conjunction of atoms.
	Formula = term.Formula
	// Rule is a Horn clause head ← body.
	Rule = term.Rule
	// Subst is a substitution over variables.
	Subst = term.Subst
)

// Query and answer types.
type (
	// Query is any parsed query statement.
	Query = parser.Query
	// RetrieveQuery is a parsed data query.
	RetrieveQuery = parser.Retrieve
	// DescribeQuery is a parsed knowledge query.
	DescribeQuery = parser.Describe
	// CompareQuery is a parsed concept comparison.
	CompareQuery = parser.Compare
	// ExplainQuery is a parsed why-provenance query.
	ExplainQuery = parser.Explain
	// Result is the extensional answer to a retrieve.
	Result = eval.Result
	// Answers is the set of rules answering a describe.
	Answers = core.Answers
	// Answer is one rule of a knowledge answer.
	Answer = core.Answer
	// Necessity answers `describe … where not h`.
	Necessity = core.Necessity
	// Possibility answers a subjectless describe.
	Possibility = core.Possibility
	// WildcardEntry is one subject of a `describe *` answer.
	WildcardEntry = core.WildcardEntry
	// ConceptComparison answers a compare statement.
	ConceptComparison = core.ConceptComparison
	// Relation classifies how two concepts relate.
	Relation = core.Relation
	// Program is a parsed knowledge-base source.
	Program = parser.Program
	// Pred describes a predicate in the catalog.
	Pred = catalog.Pred
)

// Retrieve engines.
const (
	EngineNaive     = kb.EngineNaive
	EngineSemiNaive = kb.EngineSemiNaive
	EngineTopDown   = kb.EngineTopDown
	EngineMagic     = kb.EngineMagic
)

// Concept relations (compare statement).
const (
	RelUnrelated         = core.RelUnrelated
	RelOverlapping       = core.RelOverlapping
	RelLeftSubsumesRight = core.RelLeftSubsumesRight
	RelRightSubsumesLeft = core.RelRightSubsumesLeft
	RelEquivalent        = core.RelEquivalent
)

// New returns an empty in-memory knowledge base.
func New(opts ...Option) *KB { return kb.New(opts...) }

// Open returns a knowledge base whose facts persist under dir via a
// snapshot file and a CRC-checked write-ahead log with crash recovery.
// Rules are part of the program source; reload them after opening.
func Open(dir string, opts ...Option) (*KB, error) { return kb.Open(dir, opts...) }

// WithParallelism sets how many independent strata (SCCs of the rule
// dependency graph) the bottom-up engines may evaluate concurrently.
// n <= 0 selects GOMAXPROCS; the default is 1 (sequential).
func WithParallelism(n int) Option { return kb.WithParallelism(n) }

// WithQueryLimits sets the per-query resource limits the query governor
// enforces on every retrieve and describe evaluation: maximum wall
// time, derived facts, fixpoint iterations per stratum, top-down table
// entries, and describe search steps. Zero fields are unlimited;
// context cancellation (ExecContext and friends) is honored regardless.
func WithQueryLimits(l QueryLimits) Option { return kb.WithQueryLimits(l) }

// Observability types: the tracing and metrics layer (see WithTracer and
// WithMetrics).
type (
	// Tracer records one span tree per traced query and retains recent
	// traces in a ring. A nil *Tracer disables tracing at zero cost.
	Tracer = obs.Tracer
	// Span is one timed phase of a query (parse, analyze, eval, scc,
	// describe, storage, …) with typed attributes and child spans.
	Span = obs.Span
	// MetricsRegistry is a process-wide registry of counters, gauges,
	// and histograms with Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// MetricPoint is one exported metric sample (see MetricsRegistry
	// Snapshot).
	MetricPoint = obs.MetricPoint
)

// NewTracer returns a query tracer retaining the most recent traces.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithTracer attaches a span tracer to the KB: every Exec/ExecString
// query records a span tree of its phases. Nil keeps tracing disabled
// with no overhead on the query path.
func WithTracer(t *Tracer) Option { return kb.WithTracer(t) }

// WithMetrics registers the KB's instruments (query latency histograms
// by statement kind, fact/lookup tallies, governor stop reasons, WAL
// and snapshot timings) on the registry.
func WithMetrics(reg *MetricsRegistry) Option { return kb.WithMetrics(reg) }

// WriteTraceJSONL exports a span tree as JSON Lines, one span per line,
// pre-order, with microsecond offsets relative to the root.
func WriteTraceJSONL(w io.Writer, root *Span) error { return obs.WriteJSONL(w, root) }

// WriteChromeTrace exports span trees in the Chrome trace-event format
// (load in Perfetto or chrome://tracing).
func WriteChromeTrace(w io.Writer, roots []*Span) error { return obs.WriteChromeTrace(w, roots) }

// WriteTraceTree renders a span tree as an indented console listing.
func WriteTraceTree(w io.Writer, root *Span) error { return obs.WriteTree(w, root) }

// DebugHandler serves /metrics (Prometheus text), /debug/vars (expvar),
// and /debug/pprof/* over the registry.
func DebugHandler(reg *MetricsRegistry) http.Handler { return obs.DebugHandler(reg) }

// Provenance & explain types: the why-provenance layer behind the
// `explain` statement (see KB.Explain).
type (
	// Explanation is the reconstructed derivation of every answer to an
	// explain statement: one tree per answer fact, plus the legend of
	// rules the trees reference.
	Explanation = prov.Explanation
	// ExplainNode is one node of a derivation tree.
	ExplainNode = prov.Node
	// ExplainNodeKind classifies a derivation-tree node (derived, edb,
	// builtin, cycle, unknown, truncated).
	ExplainNodeKind = prov.NodeKind
	// QueryLog appends one JSONL record per finished query (optionally
	// only slow ones); see WithQueryLog.
	QueryLog = obs.QueryLog
	// QueryLogRecord is one line of the structured query log.
	QueryLogRecord = obs.QueryLogRecord
)

// Derivation-tree node kinds.
const (
	ExplainDerived   = prov.NodeDerived
	ExplainEDB       = prov.NodeEDB
	ExplainBuiltin   = prov.NodeBuiltin
	ExplainCycle     = prov.NodeCycle
	ExplainTruncated = prov.NodeTruncated
)

// NewQueryLog returns a structured query log writing JSONL to w. With
// slow > 0 only queries of at least that duration are logged; 0 logs
// every query.
func NewQueryLog(w io.Writer, slow time.Duration) *QueryLog { return obs.NewQueryLog(w, slow) }

// WithQueryLog attaches a structured query log to the KB: one JSONL
// record per finished query — statement, kind, latency, stop reason,
// evaluation deltas, and the root-span trace id when tracing is on.
func WithQueryLog(l *QueryLog) Option { return kb.WithQueryLog(l) }

// WriteExplainJSON exports an explanation as indented JSON.
func WriteExplainJSON(w io.Writer, e *Explanation) error { return e.WriteJSON(w) }

// WriteExplainChromeTrace exports an explanation's derivation trees in
// the Chrome trace-event format (load in Perfetto or chrome://tracing):
// a flame graph where width is subtree size.
func WriteExplainChromeTrace(w io.Writer, e *Explanation) error {
	return e.WriteChromeTrace(w)
}

// MetricsJSON renders the registry's current state as indented JSON.
func MetricsJSON(reg *MetricsRegistry) ([]byte, error) { return obs.MetricsJSON(reg) }

// Profiling & live introspection types: per-rule cost accounting behind
// the `profile` statement (see KB.ProfileContext and KB.SetProfiling)
// and the in-flight query registry behind /v1/debug/activity and
// `kdb top`.
type (
	// QueryProfile is the per-rule cost breakdown of one evaluation:
	// wall time, rounds, tuples, probes (index-hit vs full-scan), and
	// an allocation estimate per rule, renderable as an annotated plan
	// (String) or JSON (MarshalJSON).
	QueryProfile = profile.Profile
	// ProfileRow is one rule's cost row in a QueryProfile.
	ProfileRow = profile.Row
	// ProfileQuery is a parsed profile statement.
	ProfileQuery = parser.Profile
	// ActivityRegistry tracks the queries currently executing; cancel an
	// entry to stop its evaluation through the governor.
	ActivityRegistry = obs.ActivityRegistry
	// ActivityInfo is the wire snapshot of one in-flight query.
	ActivityInfo = obs.ActivityInfo
	// BuildInfo identifies the running binary (version, go version, VCS
	// revision); see RegisterBuildInfo.
	BuildInfo = obs.BuildInfo
	// RotatingWriter is a size-rotated log file writer (see
	// NewRotatingWriter); give one to NewQueryLog for bounded logs.
	RotatingWriter = obs.RotatingWriter
	// MetricsHistory is a bounded time-series ring buffer sampling a
	// MetricsRegistry on a ticker; it backs the sys_metric_history
	// virtual relation (see NewMetricsHistory and WithMetricsHistory).
	MetricsHistory = history.Buffer
	// SystemRelationDef describes one sys_* virtual relation (name,
	// arity, argument names, doc); see SystemRelations.
	SystemRelationDef = sysrel.Def
)

// NewActivityRegistry returns an empty in-flight query registry, shared
// across as many KBs as should be visible in one listing.
func NewActivityRegistry() *ActivityRegistry { return obs.NewActivityRegistry() }

// WithActivity attaches an in-flight query registry to the KB: every
// Exec-path query registers itself (statement, kind, tenant/client,
// trace id, stats-so-far) for the duration of its evaluation, and
// canceling its entry cancels the query — kdb's pg_stat_activity.
func WithActivity(reg *ActivityRegistry) Option { return kb.WithActivity(reg) }

// NewRotatingWriter returns a writer appending to path, rotating when
// the file would exceed maxMB megabytes (path → path.1 → … → path.keep,
// oldest deleted; keep <= 0 means 3). maxMB <= 0 disables rotation.
func NewRotatingWriter(path string, maxMB, keep int) (*RotatingWriter, error) {
	return obs.NewRotatingWriter(path, maxMB, keep)
}

// NewMetricsHistory returns a metrics-history ring buffer sampling reg
// every resolution, retaining retention worth of samples per series
// (non-positive values select the defaults, 5s and 10m). Call Start to
// begin sampling and Stop to end it; memory is bounded by
// retention/resolution samples per series and a series cap.
func NewMetricsHistory(reg *MetricsRegistry, resolution, retention time.Duration) *MetricsHistory {
	return history.New(reg, resolution, retention)
}

// WithMetricsHistory attaches a metrics-history buffer to the KB: its
// retained samples become the sys_metric_history virtual relation. The
// caller owns the buffer's Start/Stop lifecycle.
func WithMetricsHistory(b *MetricsHistory) Option { return kb.WithMetricsHistory(b) }

// WithQueryStats turns on per-statement execution statistics, queryable
// as the sys_query_stats virtual relation (count, total and max latency
// per distinct statement, bounded with an overflow bucket).
func WithQueryStats() Option { return kb.WithQueryStats() }

// WithoutSystemRelations disables the sys_* virtual relations on the
// KB; the namespace itself stays reserved. Mainly for measuring the
// provider's (near-zero) overhead.
func WithoutSystemRelations() Option { return kb.WithoutSystemRelations() }

// SystemRelations lists the sys_* virtual relations the engine serves
// about itself (sys_relation, sys_rule, sys_metric, sys_metric_history,
// sys_activity, sys_query_stats, sys_tenant) in a stable order.
func SystemRelations() []SystemRelationDef { return sysrel.Defs() }

// RegisterBuildInfo sets the kdb_build_info gauge (value 1, labeled
// with version, go version, and VCS revision) on the registry and
// returns the build identity for other surfaces (e.g. a health
// endpoint).
func RegisterBuildInfo(reg *MetricsRegistry) BuildInfo { return obs.RegisterBuildInfo(reg) }

// ParseTraceparent extracts the low 64 bits of the trace id from a W3C
// traceparent header value; ok is false when the header is malformed or
// carries an all-zero trace id.
func ParseTraceparent(h string) (id uint64, ok bool) { return obs.ParseTraceparent(h) }

// Server types: the HTTP+JSON data plane of `kdb serve` — named
// multi-tenant knowledge bases, prepared parameterized statements, and
// per-tenant quotas over the library's concurrency guarantees.
type (
	// Server hosts many named tenant KBs over HTTP+JSON.
	Server = server.Server
	// ServerConfig assembles a Server (root directory, open-KB bound,
	// idle eviction, quota ceiling, observability hooks).
	ServerConfig = server.Config
	// ClientInfo identifies a request's tenant and client in query-log
	// records (see ContextWithClientInfo).
	ClientInfo = obs.ClientInfo
)

// ErrServerOverloaded matches (via errors.Is) the error a Server
// returns when its open-KB bound is reached and every open tenant is
// busy; the HTTP surface maps it to 503.
var ErrServerOverloaded = server.ErrOverloaded

// NewServer builds the HTTP data plane over a set of tenant KBs; serve
// its Handler with net/http and Close it on shutdown.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ContextWithClientInfo labels every query run under the context with
// a tenant and client identity; the structured query log records both.
func ContextWithClientInfo(ctx context.Context, ci ClientInfo) context.Context {
	return obs.ContextWithClient(ctx, ci)
}

// ParseProgram parses knowledge-base source text (facts, rules,
// declarations).
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// ParseProgramFile parses knowledge-base source text, anchoring clause
// positions (and hence diagnostics) to the given file name.
func ParseProgramFile(name, src string) (*Program, error) {
	return parser.ParseProgramFile(name, src)
}

// ParseQuery parses one query statement (retrieve / describe / compare).
func ParseQuery(src string) (Query, error) { return parser.ParseQuery(src) }

// ParseQueries parses a sequence of query statements.
func ParseQueries(src string) ([]Query, error) { return parser.ParseQueries(src) }

// ParseAtom parses a single atom, e.g. `can_ta(X, databases)`.
func ParseAtom(src string) (Atom, error) { return parser.ParseAtom(src) }

// ParseFormula parses a conjunction, e.g. `student(X, math, V) and V > 3.7`.
func ParseFormula(src string) (Formula, error) { return parser.ParseFormula(src) }

// Var returns a logical variable.
func Var(name string) Term { return term.Var(name) }

// Sym returns a symbolic constant.
func Sym(name string) Term { return term.Sym(name) }

// Num returns a numeric constant.
func Num(v float64) Term { return term.Num(v) }

// Str returns a string constant.
func Str(s string) Term { return term.Str(s) }

// NewAtom constructs an atom.
func NewAtom(pred string, args ...Term) Atom { return term.NewAtom(pred, args...) }

module kdb

go 1.24

package kdb_test

// End-to-end tests over the genealogy knowledge base — a third domain
// combining typed recursion (ancestor), untyped symmetric recursion
// (married), keys, and an integrity constraint in one program.

import (
	"strings"
	"testing"

	"kdb"
)

func loadGenealogy(t testing.TB) *kdb.KB {
	t.Helper()
	k := kdb.New()
	if err := k.LoadFile("testdata/genealogy.kdb"); err != nil {
		t.Fatalf("load: %v", err)
	}
	return k
}

func TestGenealogyRetrieve(t *testing.T) {
	k := loadGenealogy(t)
	got := exec(t, k, `retrieve ancestor(adam, Y).`)
	for _, d := range []string{"beth", "carl", "dora", "evan", "fred", "gina"} {
		if !strings.Contains(got, "ancestor(adam, "+d+")") {
			t.Errorf("adam should be an ancestor of %s: %q", d, got)
		}
	}
	// Symmetric closure of marriage reaches both directions.
	got = exec(t, k, `retrieve married(ada, Y).`)
	if !strings.Contains(got, "married(ada, adam)") {
		t.Errorf("marriage must be symmetric: %q", got)
	}
	got = exec(t, k, `retrieve cousin(dora, fred).`)
	if got == "no answers" {
		t.Error("dora and fred are cousins")
	}
	// The data satisfies the acyclicity constraint.
	violations, err := k.CheckConstraints()
	if err != nil || len(violations) != 0 {
		t.Fatalf("constraints: %v %v", violations, err)
	}
}

func TestGenealogyDescribe(t *testing.T) {
	k := loadGenealogy(t)
	// A recursive describe over ancestor, in the paper's Example 6 shape.
	got := exec(t, k, `describe ancestor(X, Y) where ancestor(beth, Y).`)
	if !sameLines(got, "ancestor(X, Y) <- X = beth\nancestor(X, Y) <- ancestor(X, beth)") {
		t.Errorf("= %q", got)
	}
	// The untyped symmetry rule answers the "is it guaranteed?" question.
	got = exec(t, k, `describe married(X, Y) where married(Y, X).`)
	if !strings.Contains(got, "married(X, Y) <- true") {
		t.Errorf("marriage symmetry should derive the subject: %q", got)
	}
	// Non-recursive concepts with a hypothesis.
	got = exec(t, k, `describe cousin(X, Y) where sibling(A, B) and parent(A, X).`)
	if !strings.Contains(got, "cousin(X, Y) <- parent(B, Y)") {
		t.Errorf("= %q", got)
	}
}

func TestGenealogyExtensions(t *testing.T) {
	k := loadGenealogy(t)
	// Could someone be their own ancestor? The constraint forbids it.
	got := exec(t, k, `describe where ancestor(X, X).`)
	if !strings.HasPrefix(got, "false") {
		t.Errorf("acyclicity constraint must refute it: %q", got)
	}
	// Could a person be born twice, in different years? The key forbids it.
	got = exec(t, k, `describe where born(X, Y1) and born(X, Y2) and Y1 < Y2.`)
	if !strings.HasPrefix(got, "false") {
		t.Errorf("the born key must refute it: %q", got)
	}
	// Is the parent link necessary for ancestry? (It is the only route.)
	got = exec(t, k, `describe ancestor(X, Y) where not parent(A, B).`)
	if !strings.HasPrefix(got, "false") {
		t.Errorf("parenthood is necessary for ancestry: %q", got)
	}
	// elder vs sibling: unrelated concepts.
	got = exec(t, k, `compare (describe elder(X, Y)) with (describe sibling(X, Y)).`)
	if !strings.Contains(got, "unrelated") {
		t.Errorf("= %q", got)
	}
}

func TestGenealogyAllEnginesAgree(t *testing.T) {
	k := loadGenealogy(t)
	for _, q := range []string{
		`retrieve ancestor(X, gina).`,
		`retrieve married(X, Y).`,
		`retrieve sibling(dora, Y).`,
	} {
		outs := map[string]bool{}
		for _, e := range []kdb.EngineKind{kdb.EngineNaive, kdb.EngineSemiNaive, kdb.EngineTopDown, kdb.EngineMagic} {
			if err := k.SetEngine(e); err != nil {
				t.Fatal(err)
			}
			outs[exec(t, k, q)] = true
		}
		if len(outs) != 1 {
			t.Errorf("%s: engines disagree: %v", q, outs)
		}
	}
}

func TestGenealogyDisplayName(t *testing.T) {
	k := loadGenealogy(t)
	k.SetDescribeOptions(kdb.DescribeOptions{KeepSteps: true})
	got := exec(t, k, `describe ancestor(X, Y) where ancestor(beth, Y).`)
	if !strings.Contains(got, "lineage(beth, X)") {
		t.Errorf("@name lineage must render: %q", got)
	}
}

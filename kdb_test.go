package kdb_test

import (
	"strings"
	"testing"

	"kdb"
)

func loadUniversity(t testing.TB) *kdb.KB {
	t.Helper()
	k := kdb.New()
	if err := k.LoadFile("testdata/university.kdb"); err != nil {
		t.Fatalf("load: %v", err)
	}
	return k
}

func loadRoutes(t testing.TB) *kdb.KB {
	t.Helper()
	k := kdb.New()
	if err := k.LoadFile("testdata/routes.kdb"); err != nil {
		t.Fatalf("load: %v", err)
	}
	return k
}

func exec(t testing.TB, k *kdb.KB, q string) string {
	t.Helper()
	res, err := k.ExecString(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res.String()
}

func TestPublicAPIQuickstart(t *testing.T) {
	k := kdb.New()
	if err := k.LoadString(`
student(ann, math, 3.9).
honor(X) :- student(X, M, G), G > 3.7.
`); err != nil {
		t.Fatal(err)
	}
	if got := exec(t, k, `retrieve honor(X).`); got != "honor(ann)" {
		t.Errorf("retrieve = %q", got)
	}
	if got := exec(t, k, `describe honor(X).`); got != "honor(X) <- student(X, M, G) and G > 3.7" {
		t.Errorf("describe = %q", got)
	}
}

func TestPublicAPITermConstructors(t *testing.T) {
	a := kdb.NewAtom("student", kdb.Var("X"), kdb.Sym("math"), kdb.Num(3.9))
	if a.String() != "student(X, math, 3.9)" {
		t.Errorf("atom = %q", a)
	}
	s := kdb.Str("hello")
	if s.String() != `"hello"` {
		t.Errorf("str = %q", s)
	}
	f, err := kdb.ParseFormula(`student(X, M, G) and G > 3.7`)
	if err != nil || len(f) != 2 {
		t.Errorf("formula = %v, %v", f, err)
	}
	at, err := kdb.ParseAtom(`honor(X)`)
	if err != nil || at.Pred != "honor" {
		t.Errorf("atom = %v, %v", at, err)
	}
	qs, err := kdb.ParseQueries(`retrieve honor(X). describe honor(X).`)
	if err != nil || len(qs) != 2 {
		t.Errorf("queries = %v, %v", qs, err)
	}
	p, err := kdb.ParseProgram(`p(a).`)
	if err != nil || len(p.Clauses) != 1 {
		t.Errorf("program = %v, %v", p, err)
	}
}

func TestUniversityEndToEnd(t *testing.T) {
	k := loadUniversity(t)
	cases := []struct {
		query, want string
	}{
		{`retrieve honor(X) where enroll(X, databases).`, "honor(ann)\nhonor(dan)"},
		{`describe honor(X).`, "honor(X) <- student(X, Y, Z) and Z > 3.7"},
		{`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`,
			"can_ta(X, databases) <- complete(X, databases, Z, U) and U > 3.3 and taught(V1, databases, Z, W) and teach(V1, databases)\n" +
				"can_ta(X, databases) <- complete(X, databases, Z, 4)"},
		{`describe prior(X, Y) where prior(databases, Y).`,
			"prior(X, Y) <- X = databases\nprior(X, Y) <- prior(X, databases)"},
	}
	for _, c := range cases {
		got := exec(t, k, c.query)
		// Compare as line sets (describe answer order is derivation order).
		if !sameLines(got, c.want) {
			t.Errorf("%s\n got: %q\nwant: %q", c.query, got, c.want)
		}
	}
}

func sameLines(a, b string) bool {
	la := strings.Split(a, "\n")
	lb := strings.Split(b, "\n")
	if len(la) != len(lb) {
		return false
	}
	seen := make(map[string]int)
	for _, l := range la {
		seen[l]++
	}
	for _, l := range lb {
		seen[l]--
		if seen[l] < 0 {
			return false
		}
	}
	return true
}

func TestRoutesIntroQueries(t *testing.T) {
	k := loadRoutes(t)
	// "List all points reachable from la."
	got := exec(t, k, `retrieve reachable(la, Y).`)
	for _, city := range []string{"sf", "sea", "chi", "ny", "dal", "la"} {
		if !strings.Contains(got, "reachable(la, "+city+")") {
			t.Errorf("la should reach %s: %q", city, got)
		}
	}
	// "Do you know how to get from any point to any other point?" —
	// a definition of reachability is available:
	got = exec(t, k, `describe reachable(X, Y).`)
	if !strings.Contains(got, "flight") {
		t.Errorf("describe reachable = %q", got)
	}
	// Knowledge query on the recursive concept.
	got = exec(t, k, `describe reachable(X, Y) where reachable(la, Y).`)
	if !sameLines(got, "reachable(X, Y) <- X = la\nreachable(X, Y) <- reachable(X, la)") {
		t.Errorf("= %q", got)
	}
	// "Must every roundtrip endpoint be reachable both ways?" via not:
	res, err := k.ExecString(`describe roundtrip(X, Y) where not reachable(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Necessity == nil || res.Necessity.Possible {
		t.Errorf("reachability is necessary for a roundtrip: %v", res)
	}
}

func TestDurablePublicAPI(t *testing.T) {
	dir := t.TempDir()
	k, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.LoadString(`flight(la, sf).`); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	k2, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if k2.FactCount() != 1 {
		t.Errorf("recovered %d facts", k2.FactCount())
	}
}

func TestEngineSelectionPublicAPI(t *testing.T) {
	k := loadRoutes(t)
	outs := map[string]bool{}
	for _, e := range []kdb.EngineKind{kdb.EngineNaive, kdb.EngineSemiNaive, kdb.EngineTopDown, kdb.EngineMagic} {
		if err := k.SetEngine(e); err != nil {
			t.Fatal(err)
		}
		outs[exec(t, k, `retrieve roundtrip(la, Y).`)] = true
	}
	if len(outs) != 1 {
		t.Errorf("engines disagree: %v", outs)
	}
}

func TestParallelismPublicAPI(t *testing.T) {
	k := kdb.New(kdb.WithParallelism(4))
	if err := k.LoadFile("testdata/routes.kdb"); err != nil {
		t.Fatal(err)
	}
	if got := k.Parallelism(); got != 4 {
		t.Errorf("Parallelism() = %d, want 4", got)
	}
	seq := loadRoutes(t)
	q := `retrieve reachable(la, Y).`
	if a, b := exec(t, seq, q), exec(t, k, q); a != b {
		t.Errorf("parallel answer %q != sequential %q", b, a)
	}
	st := k.LastStats()
	if st == nil {
		t.Fatal("LastStats() = nil after a retrieve")
	}
	if st.Workers != 4 {
		t.Errorf("stats workers = %d, want 4", st.Workers)
	}
	if !strings.Contains(st.String(), "workers=4") {
		t.Errorf("stats rendering: %q", st.String())
	}
	// Durable KBs accept the same option.
	dk, err := kdb.Open(t.TempDir(), kdb.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer dk.Close()
	if dk.Parallelism() != 2 {
		t.Errorf("durable Parallelism() = %d, want 2", dk.Parallelism())
	}
}

func TestDescribeOptionsPublicAPI(t *testing.T) {
	k := loadRoutes(t)
	k.SetDescribeOptions(kdb.DescribeOptions{KeepSteps: true})
	got := exec(t, k, `describe reachable(X, Y) where reachable(la, Y).`)
	if !strings.Contains(got, "leg(la, X)") {
		t.Errorf("@name display expected: %q", got)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeKB(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kdb")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckCleanFile(t *testing.T) {
	var out bytes.Buffer
	status := run([]string{filepath.Join("..", "..", "testdata", "university.kdb")}, &out)
	if status != 0 {
		t.Fatalf("status = %d\n%s", status, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "ok —") || !strings.Contains(got, "IDB:") {
		t.Errorf("output = %q", got)
	}
}

func TestCheckParseError(t *testing.T) {
	path := writeKB(t, `p(a`)
	var out bytes.Buffer
	if status := run([]string{path}, &out); status != 1 {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckUnsafeRule(t *testing.T) {
	path := writeKB(t, `p(X) :- q(Y).`)
	var out bytes.Buffer
	if status := run([]string{path}, &out); status != 1 {
		t.Fatalf("status = %d\n%s", status, out.String())
	}
	if !strings.Contains(out.String(), "unsafe rule") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckDisciplineWarning(t *testing.T) {
	path := writeKB(t, `
sym(X, Y) :- base(X, Y).
sym(X, Y) :- sym(Y, X).
`)
	var out bytes.Buffer
	// Warnings alone keep status 0…
	if status := run([]string{path}, &out); status != 0 {
		t.Fatalf("status = %d\n%s", status, out.String())
	}
	if !strings.Contains(out.String(), "warning:") {
		t.Errorf("output = %q", out.String())
	}
	// …unless -strict.
	out.Reset()
	if status := run([]string{"-strict", path}, &out); status != 1 {
		t.Fatalf("strict status = %d\n%s", status, out.String())
	}
}

func TestCheckArityConflict(t *testing.T) {
	path := writeKB(t, "p(a).\np(a, b).\n")
	var out bytes.Buffer
	if status := run([]string{path}, &out); status != 1 {
		t.Fatalf("status = %d\n%s", status, out.String())
	}
}

func TestCheckNoArgs(t *testing.T) {
	var out bytes.Buffer
	if status := run(nil, &out); status != 1 {
		t.Fatal("no args must fail")
	}
	if !strings.Contains(out.String(), "usage:") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckMultipleFiles(t *testing.T) {
	good := writeKB(t, `p(a).`)
	bad := writeKB(t, `q(`)
	var out bytes.Buffer
	if status := run([]string{good, bad}, &out); status != 1 {
		t.Fatal("one bad file must fail the run")
	}
}

// Command kdb-check statically validates knowledge-base program files
// with the full analysis suite — parse errors, rule safety (range
// restriction), arity conflicts, undefined and unused predicates, the
// paper's §2.1 recursion discipline and per-component classification,
// unsatisfiable rule bodies, and duplicate rules — then checks the
// shipped facts against the integrity constraints. Exit status 0 means
// clean; 1 means errors; warnings alone keep status 0 unless -strict.
//
// Usage:
//
//	kdb-check [-strict] program.kdb ...
//
// `kdb check` runs the same static suite with JSON output support.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kdb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("kdb-check", flag.ContinueOnError)
	strict := fs.Bool("strict", false, "treat warnings as errors")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(out, "usage: kdb-check [-strict] program.kdb ...")
		return 1
	}
	status := 0
	for _, path := range fs.Args() {
		errs, warns := checkFile(path, out)
		if errs > 0 || (*strict && warns > 0) {
			status = 1
		}
	}
	return status
}

func checkFile(path string, out io.Writer) (errors, warnings int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		return 1, 0
	}
	prog, err := kdb.ParseProgramFile(path, string(src))
	if err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		return 1, 0
	}

	// The static suite. Diagnostics are source-anchored, so they print
	// with the file position already attached.
	rep := kdb.Analyze(prog)
	for _, d := range rep.Diagnostics {
		if d.Severity >= kdb.SevWarning {
			fmt.Fprintln(out, d)
		}
	}
	errors = len(rep.Errors())
	warnings = len(rep.Warnings())
	if errors > 0 {
		return errors, warnings
	}

	// Integrity constraints against the shipped facts (a data-level
	// check the static suite cannot do).
	k := kdb.New()
	if err := k.LoadProgram(prog); err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		return errors + 1, warnings
	}
	violations, err := k.CheckConstraints()
	if err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		errors++
	}
	for _, v := range violations {
		fmt.Fprintf(out, "%s: error: %s\n", path, v)
		errors++
	}

	if errors == 0 {
		fmt.Fprintf(out, "%s: ok — %d facts, %d rules", path, k.FactCount(), len(k.Rules()))
		if warnings > 0 {
			fmt.Fprintf(out, ", %d warnings", warnings)
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, k.Catalog())
	}
	return errors, warnings
}

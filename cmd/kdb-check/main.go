// Command kdb-check statically validates knowledge-base program files:
// parse errors, arity conflicts, rule safety (range restriction), and the
// paper's §2.1 recursion discipline (strong linearity and typedness of
// recursive rules). Exit status 0 means clean; 1 means errors; warnings
// alone keep status 0 unless -strict.
//
// Usage:
//
//	kdb-check [-strict] program.kdb ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kdb"
	"kdb/internal/depgraph"
	"kdb/internal/eval"
	"kdb/internal/transform"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("kdb-check", flag.ContinueOnError)
	strict := fs.Bool("strict", false, "treat discipline warnings as errors")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(out, "usage: kdb-check [-strict] program.kdb ...")
		return 1
	}
	status := 0
	for _, path := range fs.Args() {
		errs, warns := checkFile(path, out)
		if errs > 0 || (*strict && warns > 0) {
			status = 1
		}
	}
	return status
}

func checkFile(path string, out io.Writer) (errors, warnings int) {
	k := kdb.New()
	if err := k.LoadFile(path); err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		return 1, 0
	}
	rules := k.Rules()

	// Safety (range restriction).
	if err := eval.CheckSafety(rules); err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		errors++
	}

	// §2.1 discipline.
	g := depgraph.New(rules)
	for _, v := range g.CheckDiscipline() {
		fmt.Fprintf(out, "%s: warning: %s (describe will use the bounded §5.3 mode)\n", path, v)
		warnings++
	}

	// Integrity constraints against the shipped facts.
	violations, err := k.CheckConstraints()
	if err != nil {
		fmt.Fprintf(out, "%s: error: %v\n", path, err)
		errors++
	}
	for _, v := range violations {
		fmt.Fprintf(out, "%s: error: %s\n", path, v)
		errors++
	}

	// Transformation dry run: surfaces degenerate recursion early.
	if _, err := transform.Apply(rules); err != nil {
		fmt.Fprintf(out, "%s: error: transformation failed: %v\n", path, err)
		errors++
	}

	if errors == 0 {
		cat := k.Catalog()
		fmt.Fprintf(out, "%s: ok — %d facts, %d rules", path, k.FactCount(), len(rules))
		if warnings > 0 {
			fmt.Fprintf(out, ", %d warnings", warnings)
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, cat)
	}
	return errors, warnings
}

package main

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	for _, tc := range []struct {
		vals  []float64
		width int
		want  string
	}{
		{[]float64{0, 1, 2, 3, 4, 5, 6, 7}, 30, "▁▂▃▄▅▆▇█"},
		{[]float64{5, 5, 5}, 30, "▁▁▁"},      // constant: lowest bar
		{[]float64{0, 10}, 30, "▁█"},         // two-point range
		{[]float64{9, 0, 1, 2, 3}, 3, "▁▄█"}, // width clips to the tail before scaling
	} {
		if got := sparkline(tc.vals, tc.width); got != tc.want {
			t.Errorf("sparkline(%v, %d) = %q, want %q", tc.vals, tc.width, got, tc.want)
		}
	}
}

func TestDeltas(t *testing.T) {
	got := deltas([]float64{1, 4, 4, 2, 7})
	// The 4→2 drop (counter reset) clamps to zero.
	if want := []float64{3, 0, 0, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("deltas = %v, want %v", got, want)
	}
}

// TestTopFrameHistorySection: a frame against a fake server renders the
// sparkline section, and its absence (404) degrades to no section.
func TestTopFrameHistorySection(t *testing.T) {
	withHistory := true
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/debug/activity", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"queries": []}`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("kdb_server_inflight 0\n"))
	})
	mux.HandleFunc("/v1/debug/history", func(w http.ResponseWriter, r *http.Request) {
		if !withHistory {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"resolution_seconds": 5, "retention_seconds": 600, "series": [
			{"name": "kdb_queries_total", "type": "counter", "samples": [
				{"age_seconds": 10, "value": 1}, {"age_seconds": 5, "value": 4}, {"age_seconds": 0, "value": 9}]},
			{"name": "kdb_server_open_kbs", "type": "gauge", "samples": [
				{"age_seconds": 5, "value": 1}, {"age_seconds": 0, "value": 2}]},
			{"name": "lonely", "type": "gauge", "samples": [{"age_seconds": 0, "value": 1}]}
		]}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	if err := topFrame(ts.Client(), ts.URL, &out, false); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	if !strings.Contains(frame, "history") {
		t.Fatalf("frame lacks the history section:\n%s", frame)
	}
	// Counter plotted as increments: 1→4→9 gives 3,5 → low then high bar.
	if !strings.Contains(frame, "kdb_queries_total") || !strings.Contains(frame, "▁█") {
		t.Errorf("counter sparkline missing:\n%s", frame)
	}
	if !strings.Contains(frame, "kdb_server_open_kbs") {
		t.Errorf("gauge series missing:\n%s", frame)
	}
	// A single-sample series draws nothing.
	if strings.Contains(frame, "lonely") {
		t.Errorf("single-sample series rendered:\n%s", frame)
	}

	withHistory = false
	out.Reset()
	if err := topFrame(ts.Client(), ts.URL, &out, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "history") {
		t.Errorf("history section rendered though the endpoint is gone:\n%s", out.String())
	}
}

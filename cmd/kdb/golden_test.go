package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"kdb"
)

// The golden files pin the explain statement's text and JSON renderings
// and the structured query log's record shape; CI runs these as part of
// the ordinary test job. Regenerate with:
//
//	go test ./cmd/kdb -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenExplainText(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-exec", `explain can_ta(ann, databases).`, dataFile(t)},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_can_ta.golden", out.Bytes())
}

func TestGoldenExplainJSON(t *testing.T) {
	k := kdb.New()
	if err := k.LoadFile(dataFile(t)); err != nil {
		t.Fatal(err)
	}
	res, err := k.ExecString(`explain can_ta(ann, databases).`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := kdb.WriteExplainJSON(&out, res.Explanation); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_can_ta.json.golden", out.Bytes())
}

var (
	timeRE = regexp.MustCompile(`"time":"[^"]*"`)
	durRE  = regexp.MustCompile(`"dur_us":\d+`)
)

func TestGoldenQueryLogRecord(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "slow.jsonl")
	var out bytes.Buffer
	// -slow-query 0: every query is "slow enough"; the log gets exactly
	// one record for the one statement.
	err := run([]string{"-q", "-query-log", logFile, "-slow-query", "0s",
		"-exec", `explain prior(databases, programming).`, dataFile(t)},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the two nondeterministic fields before comparing.
	norm := timeRE.ReplaceAll(raw, []byte(`"time":"NORMALIZED"`))
	norm = durRE.ReplaceAll(norm, []byte(`"dur_us":0`))
	checkGolden(t, "querylog_slow.golden", norm)
}

// Command kdb is an interactive shell and batch runner for knowledge-rich
// databases: the single coherent instrument of the paper, accepting both
// data queries (retrieve) and knowledge queries (describe, compare).
//
// Usage:
//
//	kdb [flags] [program.kdb ...]
//	kdb check [-json] [-strict] program.kdb ...
//	kdb serve [-addr HOST:PORT] [-root DIR] [-max-open N] [-idle DUR] ...
//	kdb top [-addr URL] [-interval DUR] [-once] [-cancel ID]
//
// The serve subcommand exposes named knowledge bases over HTTP+JSON:
// multi-tenant (one store per name under -root, or in-memory), with
// prepared parameterized statements, per-request quota clamping, and
// the metrics/pprof debug surface on the same address.
//
// With -exec the given queries run and the program exits; otherwise an
// interactive prompt reads statements (terminated by '.') and meta
// commands (starting with '.'). Type `.help` at the prompt.
//
// The check subcommand runs the static-analysis suite over program
// files without loading them into a database: source-anchored
// diagnostics (safety, arity, undefined/unused predicates, recursion
// classification, contradictions, duplicate rules) print per file,
// human-readable by default or as JSON with -json. Exit status is 1
// when any file has error-severity diagnostics (or warnings, with
// -strict). The -lint flag of the main command prints the same report
// after loading program files.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"kdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kdb:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	if len(args) > 0 && args[0] == "check" {
		return runCheck(args[1:], out)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], out)
	}
	if len(args) > 0 && args[0] == "top" {
		return runTop(args[1:], out)
	}
	fs := flag.NewFlagSet("kdb", flag.ContinueOnError)
	var (
		dbDir    = fs.String("db", "", "durable database directory (default: in-memory)")
		engine   = fs.String("engine", "seminaive", "retrieve engine: naive, seminaive, topdown, magic")
		exec     = fs.String("exec", "", "execute the given queries and exit")
		quiet    = fs.Bool("q", false, "suppress the banner and prompts")
		stats    = fs.Bool("stats", false, "print evaluation statistics after each retrieve")
		parallel = fs.Int("parallel", 1, "bottom-up evaluation workers (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 0, "per-query wall-time limit (0 = unlimited)")
		maxFacts = fs.Int("max-facts", 0, "per-query derived-fact limit (0 = unlimited)")
		lint     = fs.Bool("lint", false, "print the static-analysis report after loading program files")

		statsJSON   = fs.Bool("stats-json", false, "print evaluation statistics as JSON after each retrieve (implies -stats)")
		traceFile   = fs.String("trace", "", "record a span trace of every query to FILE")
		traceFormat = fs.String("trace-format", "jsonl", "trace file format: jsonl (one span per line) or chrome (trace-event JSON for Perfetto)")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. localhost:6060)")
		queryLog    = fs.String("query-log", "", "append one JSONL record per query to FILE (statement, kind, latency, stop reason, eval deltas)")
		slowQuery   = fs.Duration("slow-query", 0, "with -query-log, log only queries at least this slow (0 = every query)")
		qlogMaxMB   = fs.Int("query-log-max-mb", 0, "rotate the query log when it would exceed this many MB (0 = never)")
		qlogKeep    = fs.Int("query-log-keep", 3, "rotated query-log files to keep (FILE.1 .. FILE.N)")
		maxProv     = fs.Int("max-prov", 0, "per-query provenance-witness limit for explain (0 = unlimited)")
		profileOn   = fs.Bool("profile", false, "profile every retrieve: print the per-rule cost breakdown after the answers")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []kdb.Option{
		kdb.WithParallelism(*parallel),
		kdb.WithQueryLimits(kdb.QueryLimits{
			MaxWall:              *timeout,
			MaxFacts:             *maxFacts,
			MaxProvenanceEntries: *maxProv,
		}),
	}

	// Structured query log: one JSONL line per query (or only slow
	// ones), size-rotated when -query-log-max-mb is set, reopened on
	// SIGHUP for external rotation.
	if *queryLog != "" {
		w, err := openQueryLog(*queryLog, *qlogMaxMB, *qlogKeep)
		if err != nil {
			return err
		}
		defer w.Close()
		defer reopenOnHUP(w, out)()
		opts = append(opts, kdb.WithQueryLog(kdb.NewQueryLog(w, *slowQuery)))
	}

	// Tracing: spans stream to the trace file as each query finishes
	// (JSONL), or buffer until exit (the Chrome format is one JSON array).
	var tracer *kdb.Tracer
	fileTrace := *traceFile != ""
	if fileTrace {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = kdb.NewTracer()
		switch *traceFormat {
		case "jsonl":
			tracer.OnFinish(func(root *kdb.Span) { kdb.WriteTraceJSONL(f, root) })
		case "chrome":
			var roots []*kdb.Span
			tracer.OnFinish(func(root *kdb.Span) { roots = append(roots, root) })
			defer func() { kdb.WriteChromeTrace(f, roots) }()
		default:
			return fmt.Errorf("unknown trace format %q (want jsonl or chrome)", *traceFormat)
		}
		opts = append(opts, kdb.WithTracer(tracer))
	}

	// The debug endpoint carries the metrics registry; without it no
	// metrics are collected.
	if *debugAddr != "" {
		reg := kdb.NewMetricsRegistry()
		opts = append(opts, kdb.WithMetrics(reg))
		// Retained samples back the sys_metric_history virtual relation.
		hist := kdb.NewMetricsHistory(reg, 0, 0)
		hist.Start()
		defer hist.Stop()
		opts = append(opts, kdb.WithMetricsHistory(hist), kdb.WithQueryStats())
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		if !*quiet {
			fmt.Fprintf(out, "debug server on http://%s/ (metrics, expvar, pprof)\n", ln.Addr())
		}
		// A failing debug server must not be silent: earlier versions
		// discarded http.Serve's error, so a mid-session failure looked
		// like a healthy endpoint that never answered. The expected
		// error when the deferred Close tears the listener down at exit
		// stays quiet.
		go func() {
			if err := http.Serve(ln, kdb.DebugHandler(reg)); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "kdb: debug server:", err)
			}
		}()
	}
	var k *kdb.KB
	var err error
	if *dbDir != "" {
		k, err = kdb.Open(*dbDir, opts...)
		if err != nil {
			return err
		}
		defer k.Close()
	} else {
		k = kdb.New(opts...)
	}
	if err := k.SetEngine(kdb.EngineKind(*engine)); err != nil {
		return err
	}
	if *profileOn {
		k.SetProfiling(true)
	}
	sh := &shell{k: k, stats: *stats || *statsJSON, statsJSON: *statsJSON, tracer: tracer, fileTrace: fileTrace}

	// Ctrl-C cancels the in-flight query instead of killing the process;
	// at an idle prompt it prints a hint.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer func() { signal.Stop(sigc); close(sigc) }()
	go func() {
		for range sigc {
			sh.interrupt(out)
		}
	}()
	for _, path := range fs.Args() {
		if err := k.LoadFile(path); err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		if !*quiet {
			fmt.Fprintf(out, "loaded %s (%d facts, %d rules)\n", path, k.FactCount(), len(k.Rules()))
		}
	}
	if *lint {
		if rep := k.Diagnostics(); rep != nil {
			fmt.Fprint(out, rep)
		}
	}

	if *exec != "" {
		queries, err := kdb.ParseQueries(*exec)
		if err != nil {
			return err
		}
		for _, q := range queries {
			before := k.LastStats()
			ctx, done := sh.queryContext()
			var res *kdb.ExecResult
			if len(queries) == 1 {
				// Single statement: run through the string path, so a
				// trace records the parse phase too.
				res, err = k.ExecStringContext(ctx, *exec)
			} else {
				res, err = k.ExecContext(ctx, q)
			}
			done()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, res)
			sh.printStats(before, out)
		}
		return nil
	}

	return sh.repl(in, out, *quiet)
}

// openQueryLog opens the query-log sink: a rotating writer even when
// size rotation is off (maxMB <= 0), so SIGHUP can always reopen the
// file after an external rotation.
func openQueryLog(path string, maxMB, keep int) (*kdb.RotatingWriter, error) {
	return kdb.NewRotatingWriter(path, maxMB, keep)
}

// reopenOnHUP reopens the query log whenever the process receives
// SIGHUP (the logrotate convention); the returned stop function ends
// the watcher. Reopen failures are reported once per signal and do not
// kill the process.
func reopenOnHUP(w *kdb.RotatingWriter, out io.Writer) (stop func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-sigc:
				if err := w.Reopen(); err != nil {
					fmt.Fprintf(out, "kdb: query log reopen: %v\n", err)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}

// checkedFile is the per-file outcome of `kdb check`, shaped for both
// renderings: the JSON output is an array of these.
type checkedFile struct {
	File string `json:"file"`
	// Report is the analysis report; nil when the file did not parse.
	Report *kdb.Report `json:"report,omitempty"`
	// Error is the parse failure, when there is one.
	Error string `json:"error,omitempty"`
}

// runCheck implements the `kdb check` subcommand: the static-analysis
// suite over program files, with no database involved.
func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kdb check", flag.ContinueOnError)
	var (
		asJSON = fs.Bool("json", false, "emit the reports as JSON")
		strict = fs.Bool("strict", false, "treat warnings as errors for the exit status")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: kdb check [-json] [-strict] program.kdb ...")
	}
	var results []checkedFile
	failed := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			results = append(results, checkedFile{File: path, Error: err.Error()})
			failed++
			continue
		}
		prog, err := kdb.ParseProgramFile(path, string(src))
		if err != nil {
			results = append(results, checkedFile{File: path, Error: err.Error()})
			failed++
			continue
		}
		rep := kdb.Analyze(prog)
		results = append(results, checkedFile{File: path, Report: rep})
		if rep.HasErrors() || (*strict && len(rep.Warnings()) > 0) {
			failed++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			if r.Error != "" {
				fmt.Fprintf(out, "%s: error: %s\n", r.File, r.Error)
				continue
			}
			if len(results) > 1 {
				fmt.Fprintf(out, "== %s\n", r.File)
			}
			fmt.Fprint(out, r.Report)
		}
	}
	if failed > 0 {
		return fmt.Errorf("check: %d of %d file(s) failed", failed, len(results))
	}
	return nil
}

// shell bundles the KB with the REPL's display switches and the
// cancellation handle of the in-flight query.
type shell struct {
	k         *kdb.KB
	stats     bool
	statsJSON bool

	// tracer is the span tracer attached to the KB (by -trace, or
	// lazily by `.trace on`); fileTrace marks it as exporting to a file,
	// so `.trace off` only stops the console display without detaching.
	tracer    *kdb.Tracer
	fileTrace bool
	traceTree bool

	mu     sync.Mutex
	cancel context.CancelFunc
}

// queryContext registers a cancelable context for one query. The
// returned done func unregisters it and releases the context.
func (sh *shell) queryContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	sh.mu.Lock()
	sh.cancel = cancel
	sh.mu.Unlock()
	return ctx, func() {
		sh.mu.Lock()
		sh.cancel = nil
		sh.mu.Unlock()
		cancel()
	}
}

// interrupt cancels the in-flight query, if any.
func (sh *shell) interrupt(out io.Writer) {
	sh.mu.Lock()
	cancel := sh.cancel
	sh.mu.Unlock()
	if cancel != nil {
		cancel()
		return
	}
	fmt.Fprintln(out, "\ninterrupt: no query in flight (.quit to leave)")
}

// printStats emits the last evaluation record when -stats is on and the
// statement actually ran an evaluation (detected by pointer change).
func (sh *shell) printStats(before *kdb.EvalStats, out io.Writer) {
	if !sh.stats {
		return
	}
	st := sh.k.LastStats()
	if st == nil || st == before {
		return
	}
	if sh.statsJSON {
		b, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintln(out, "stats: error:", err)
			return
		}
		fmt.Fprintf(out, "stats: %s\n", b)
		return
	}
	fmt.Fprintln(out, "stats:", st)
}

// printTrace renders the last query's span tree when `.trace on` is
// active.
func (sh *shell) printTrace(out io.Writer) {
	if !sh.traceTree || sh.tracer == nil {
		return
	}
	if root := sh.tracer.Last(); root != nil {
		kdb.WriteTraceTree(out, root)
	}
}

func (sh *shell) repl(in io.Reader, out io.Writer, quiet bool) error {
	if !quiet {
		fmt.Fprintln(out, "kdb — querying database knowledge (retrieve / describe / compare; .help for help)")
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if quiet {
			return
		}
		if buf.Len() == 0 {
			fmt.Fprint(out, "kdb> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			prompt()
			continue
		case isMetaLine(line):
			// Meta commands are recognized even while a multi-line
			// statement is being buffered; earlier versions fed them to
			// the parser, which produced a baffling syntax error.
			if quit := sh.metaCommand(line, out); quit {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if strings.HasSuffix(line, ".") {
			stmt := buf.String()
			buf.Reset()
			sh.execute(stmt, out)
		}
		prompt()
	}
	return scanner.Err()
}

// execute runs one statement: a query, or a program fragment (facts and
// rules are loaded directly, so the shell doubles as a data-entry tool).
func (sh *shell) execute(stmt string, out io.Writer) {
	k := sh.k
	trimmed := strings.TrimSpace(stmt)
	for _, kw := range []string{"retrieve", "describe", "compare", "explain", "profile"} {
		if strings.HasPrefix(trimmed, kw) {
			before := k.LastStats()
			ctx, done := sh.queryContext()
			res, err := k.ExecStringContext(ctx, stmt)
			done()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				sh.printStats(before, out)
				sh.printTrace(out)
				return
			}
			fmt.Fprintln(out, res)
			sh.printStats(before, out)
			sh.printTrace(out)
			return
		}
	}
	if err := k.LoadString(stmt); err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintln(out, "ok")
}

// isMetaLine reports whether a REPL input line is a meta command: a dot
// followed by a letter (".help", ".trace on"). A lone "." (a statement
// terminator on its own line) and dotted data (".5") are not meta.
func isMetaLine(line string) bool {
	return len(line) > 1 && line[0] == '.' &&
		(line[1] >= 'a' && line[1] <= 'z' || line[1] >= 'A' && line[1] <= 'Z')
}

// metaNames lists every meta command the REPL understands, for the
// unknown-command message.
var metaNames = []string{
	".check", ".checkpoint", ".engine", ".exit", ".explain", ".help",
	".intensional", ".load", ".parallel", ".preds", ".profile",
	".provenance", ".quit", ".rules", ".stats", ".trace", ".validate",
}

// onOff renders a toggle's current state.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// parseToggle interprets a toggle meta command: with no argument it
// reports the current state; with on/off it returns the new state.
// ok is false when the argument is malformed.
func parseToggle(fields []string, cur bool) (val, set, ok bool) {
	switch {
	case len(fields) == 1:
		return cur, false, true
	case len(fields) == 2 && (fields[1] == "on" || fields[1] == "off"):
		return fields[1] == "on", true, true
	default:
		return false, false, false
	}
}

func (sh *shell) metaCommand(line string, out io.Writer) (quit bool) {
	k := sh.k
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprint(out, `statements (end with '.'):
  student(ann, math, 3.9).                          add a fact
  honor(X) :- student(X, M, G), G > 3.7.            add a rule
  retrieve honor(X) where enroll(X, databases).     data query
  describe can_ta(X, databases) where student(X, math, V) and V > 3.7.
  describe honor(X) where necessary complete(X, C, S, G).
  describe can_ta(X, Y) where not honor(X).         is honor necessary?
  describe where student(X, M, G) and G < 3.5 and can_ta(X, C).
  describe * where honor(X).                        what follows from honor?
  describe honor(X) where p(X) or q(X).             disjunctive hypothesis
  compare (describe honor(X)) with (describe deans_list(X)).
  explain reachable(sfo, cdg).                      why is this fact derivable?
  profile reachable(sfo, X).                        per-rule cost breakdown
meta commands:
  .load FILE     load a program file
  .rules         list the IDB rules
  .preds         list the catalog
  .validate      check the §2.1 recursion discipline
  .check         print the static-analysis report of the loaded program
  .engine NAME   switch retrieve engine (naive, seminaive, topdown, magic)
  .parallel N    bottom-up evaluation workers (0 = GOMAXPROCS)
  .stats [on|off]   print evaluation statistics after each retrieve
  .profile [on|off] profile every retrieve (per-rule cost breakdown)
  .trace [on|off]   print a span tree (parse/analyze/eval/describe) after each query
  .intensional [on|off]   answer data queries with knowledge attached
provenance:
  .explain STMT          shorthand for 'explain STMT.' — print the
                         derivation tree of each answer (why-provenance)
  .provenance [on|off]   show the rules behind each describe answer
  (toggles with no argument print their current state)
other:
  .checkpoint    fold the WAL into a snapshot (durable databases)
  .quit          leave
`)
	case ".load":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .load FILE")
			return false
		}
		if err := k.LoadFile(fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintf(out, "loaded %s (%d facts, %d rules)\n", fields[1], k.FactCount(), len(k.Rules()))
	case ".rules":
		for _, r := range k.Rules() {
			fmt.Fprintln(out, r)
		}
	case ".preds":
		fmt.Fprint(out, k.Catalog())
	case ".validate":
		issues := k.Validate()
		violations, err := k.CheckConstraints()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		if len(issues) == 0 && len(violations) == 0 {
			fmt.Fprintln(out, "ok: rules are disciplined and the data satisfies all constraints")
			return false
		}
		for _, s := range issues {
			fmt.Fprintln(out, "warning:", s)
		}
		for _, s := range violations {
			fmt.Fprintln(out, "violation:", s)
		}
	case ".check":
		if rep := k.Diagnostics(); rep != nil {
			fmt.Fprint(out, rep)
		} else {
			fmt.Fprintln(out, "nothing loaded yet")
		}
	case ".engine":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .engine naive|seminaive|topdown|magic")
			return false
		}
		if err := k.SetEngine(kdb.EngineKind(fields[1])); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "engine:", fields[1])
		}
	case ".parallel":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .parallel N  (0 = GOMAXPROCS)")
			return false
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		k.SetParallelism(n)
		fmt.Fprintln(out, "parallelism:", k.Parallelism())
	case ".stats":
		val, set, ok := parseToggle(fields, sh.stats)
		if !ok {
			fmt.Fprintln(out, "usage: .stats [on|off]")
			return false
		}
		if set {
			sh.stats = val
		}
		fmt.Fprintln(out, "stats:", onOff(sh.stats))
	case ".profile":
		val, set, ok := parseToggle(fields, k.Profiling())
		if !ok {
			fmt.Fprintln(out, "usage: .profile [on|off]")
			return false
		}
		if set {
			k.SetProfiling(val)
		}
		fmt.Fprintln(out, "profile:", onOff(k.Profiling()))
	case ".trace":
		val, set, ok := parseToggle(fields, sh.traceTree)
		if !ok {
			fmt.Fprintln(out, "usage: .trace [on|off]")
			return false
		}
		if set && val {
			if sh.tracer == nil {
				sh.tracer = kdb.NewTracer()
			}
			k.SetTracer(sh.tracer)
			sh.traceTree = true
		} else if set {
			sh.traceTree = false
			if !sh.fileTrace {
				k.SetTracer(nil)
			}
		}
		fmt.Fprintln(out, "trace:", onOff(sh.traceTree))
	case ".intensional":
		val, set, ok := parseToggle(fields, k.Intensional())
		if !ok {
			fmt.Fprintln(out, "usage: .intensional [on|off]")
			return false
		}
		if set {
			k.SetIntensional(val)
		}
		fmt.Fprintln(out, "intensional answers:", onOff(k.Intensional()))
	case ".provenance":
		val, set, ok := parseToggle(fields, k.Provenance())
		if !ok {
			fmt.Fprintln(out, "usage: .provenance [on|off]")
			return false
		}
		if set {
			k.SetProvenance(val)
		}
		fmt.Fprintln(out, "provenance:", onOff(k.Provenance()))
	case ".explain":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .explain p(a, b) [where ...]")
			return false
		}
		stmt := "explain " + strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
		if !strings.HasSuffix(stmt, ".") {
			stmt += "."
		}
		sh.execute(stmt, out)
	case ".checkpoint":
		ctx, done := sh.queryContext()
		err := k.CheckpointContext(ctx)
		done()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "checkpointed")
		}
	default:
		names := append([]string(nil), metaNames...)
		sort.Strings(names)
		fmt.Fprintf(out, "unknown command %s; known commands: %s (.help for details)\n",
			fields[0], strings.Join(names, " "))
	}
	return false
}

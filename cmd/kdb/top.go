package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"kdb"
)

// runTop implements the `kdb top` subcommand: a live view of the
// queries currently executing inside a `kdb serve` process, polled from
// its /v1/debug/activity endpoint — the operator's pg_stat_activity.
// With -cancel ID it cancels one in-flight query and exits; with -once
// it prints a single frame (for scripts and tests) instead of the
// refreshing display.
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kdb top", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://localhost:8040", "base URL of the kdb serve process")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		once     = fs.Bool("once", false, "print one frame and exit")
		cancelID = fs.Uint64("cancel", 0, "cancel the in-flight query with this id and exit")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: kdb top [-addr URL] [-interval DUR] [-once] [-cancel ID]")
	}
	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	if *cancelID != 0 {
		return cancelQuery(client, base, *cancelID, out)
	}
	if *once {
		return topFrame(client, base, out, false)
	}

	// The refreshing view: clear the screen and redraw each interval
	// until interrupted.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := topFrame(client, base, out, true); err != nil {
			return err
		}
		select {
		case <-sigc:
			return nil
		case <-tick.C:
		}
	}
}

// cancelQuery posts the cancel for one activity id and reports the
// outcome.
func cancelQuery(client *http.Client, base string, id uint64, out io.Writer) error {
	resp, err := client.Post(fmt.Sprintf("%s/v1/debug/activity/%d/cancel", base, id), "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		fmt.Fprintf(out, "canceled query %d\n", id)
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("no in-flight query with id %d", id)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cancel: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// topFrame fetches one activity snapshot (plus a few server gauges) and
// renders it. clear prefixes the ANSI clear-screen sequence for the
// refreshing display.
func topFrame(client *http.Client, base string, out io.Writer, clear bool) error {
	resp, err := client.Get(base + "/v1/debug/activity")
	if err != nil {
		return err
	}
	var body struct {
		Queries []kdb.ActivityInfo `json:"queries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding %s/v1/debug/activity: %w", base, err)
	}
	gauges := scrapeGauges(client, base, "kdb_server_inflight", "kdb_server_open_kbs")

	var b strings.Builder
	if clear {
		b.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&b, "kdb top — %s — %s\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%d in-flight", len(body.Queries))
	if v, ok := gauges["kdb_server_inflight"]; ok {
		fmt.Fprintf(&b, " · %s requests in data plane", v)
	}
	if v, ok := gauges["kdb_server_open_kbs"]; ok {
		fmt.Fprintf(&b, " · %s open KBs", v)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%6s  %-10s  %-10s  %10s  %10s  %10s  %s\n",
		"ID", "KIND", "TENANT", "ELAPSED", "FACTS", "LOOKUPS", "STATEMENT")
	for _, q := range body.Queries {
		stmt := q.Statement
		if len(stmt) > 60 {
			stmt = stmt[:57] + "..."
		}
		if q.Canceled {
			stmt += "  [canceling]"
		}
		fmt.Fprintf(&b, "%6d  %-10s  %-10s  %9.0fms  %10d  %10d  %s\n",
			q.ID, q.Kind, q.Tenant, q.ElapsedMS, q.Facts, q.Lookups, stmt)
	}
	if len(body.Queries) == 0 {
		b.WriteString("(no queries in flight)\n")
	}
	writeHistory(&b, fetchHistory(client, base))
	_, err = io.WriteString(out, b.String())
	return err
}

// historyRow is one series of the server's /v1/debug/history response.
type historyRow struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Samples []struct {
		AgeSeconds float64 `json:"age_seconds"`
		Value      float64 `json:"value"`
	} `json:"samples"`
}

// maxSparkSeries caps how many history series one frame renders.
const maxSparkSeries = 8

// fetchHistory pulls the metrics-history snapshot; a missing endpoint
// (older server) or any error yields nil and the frame simply omits
// the sparkline section.
func fetchHistory(client *http.Client, base string) []historyRow {
	resp, err := client.Get(base + "/v1/debug/history")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Series []historyRow `json:"series"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
		return nil
	}
	return body.Series
}

// writeHistory renders a sparkline per retained series: gauges plot
// their sampled values, counters and histograms their per-interval
// increments (a flat counter draws flat, not a staircase).
func writeHistory(b *strings.Builder, series []historyRow) {
	var rows []historyRow
	for _, s := range series {
		if len(s.Samples) >= 2 {
			rows = append(rows, s)
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	if len(rows) > maxSparkSeries {
		rows = rows[:maxSparkSeries]
	}
	b.WriteString("\nhistory\n")
	for _, s := range rows {
		// Oldest first: ages decrease left to right.
		sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].AgeSeconds > s.Samples[j].AgeSeconds })
		vals := make([]float64, len(s.Samples))
		for i, sm := range s.Samples {
			vals[i] = sm.Value
		}
		last := vals[len(vals)-1]
		if s.Type != "gauge" {
			vals = deltas(vals)
		}
		fmt.Fprintf(b, "  %-44s %s  %g\n", s.Name, sparkline(vals, 30), last)
	}
}

// deltas converts a cumulative series to per-interval increments
// (clamped at zero so a restart does not plot a negative spike).
func deltas(vals []float64) []float64 {
	out := make([]float64, 0, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}

// sparkBars are the eight block glyphs a sparkline is drawn with.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders at most width trailing values, scaled to the
// series' own min..max (a constant series draws its lowest bar).
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkBars)-1))
		}
		b.WriteRune(sparkBars[i])
	}
	return b.String()
}

// scrapeGauges pulls named single-valued samples out of the server's
// Prometheus text exposition; missing names are simply absent from the
// result (the view degrades gracefully when /metrics is unavailable).
func scrapeGauges(client *http.Client, base string, names ...string) map[string]string {
	out := make(map[string]string, len(names))
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 4<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, n := range names {
			if strings.HasPrefix(line, n+" ") {
				out[n] = strings.TrimSpace(strings.TrimPrefix(line, n))
			}
		}
	}
	return out
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kdb"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.kdb")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckCommandClean(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"check", dataFile(t)}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("clean file failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 error(s)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckCommandErrors(t *testing.T) {
	path := writeProgram(t, "e(1).\np(X, Y) :- e(X).\n")
	var out bytes.Buffer
	err := run([]string{"check", path}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("unsafe program passed:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "unsafe rule") || !strings.Contains(got, path+":2:1") {
		t.Errorf("diagnostic not source-anchored: %q", got)
	}
}

func TestCheckCommandStrict(t *testing.T) {
	path := writeProgram(t, "conn(a, b).\nreach(X, Y) :- conn(X, Y).\nreach(X, Y) :- reach(Y, X).\n")
	var out bytes.Buffer
	if err := run([]string{"check", path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("warnings alone must pass: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"check", "-strict", path}, strings.NewReader(""), &out); err == nil {
		t.Fatal("-strict must fail on warnings")
	}
}

func TestCheckCommandJSONRoundTrip(t *testing.T) {
	path := writeProgram(t, `
conn(a, b).
orphan(1).
reach(X, Y) :- conn(X, Y).
reach(X, Y) :- reach(Y, X).
dead(X) :- conn(X, Y), X > 3, X < 2.
`)
	var out bytes.Buffer
	if err := run([]string{"check", "-json", path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("check -json: %v\n%s", err, out.String())
	}
	var results []struct {
		File   string      `json:"file"`
		Report *kdb.Report `json:"report"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0].File != path || results[0].Report == nil {
		t.Fatalf("bad results: %+v", results)
	}
	rep := results[0].Report
	if len(rep.Warnings()) == 0 {
		t.Errorf("expected warnings in %+v", rep.Diagnostics)
	}
	// Full round-trip: re-marshal and compare canonical forms.
	again, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back kdb.Report
	if err := json.Unmarshal(again, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != rep.String() {
		t.Errorf("round-trip changed the report:\n%s\nvs\n%s", rep, &back)
	}
}

func TestLintFlagPrintsReport(t *testing.T) {
	path := writeProgram(t, "conn(a, b).\nreach(X, Y) :- conn(X, Y).\nreach(X, Y) :- reach(Y, X).\n")
	var out bytes.Buffer
	if err := run([]string{"-q", "-lint", "-exec", "retrieve conn(X, Y).", path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "[recursion]") {
		t.Errorf("lint report missing: %q", out.String())
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceFlagJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	err := run([]string{"-q", "-trace", path, "-exec", `describe honor(X).`, dataFile(t)},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{`"name":"query"`, `"name":"parse"`, `"name":"analyze"`, `"name":"eval"`, `"name":"describe"`, `"kind":"describe"`} {
		if !strings.Contains(got, want) {
			t.Errorf("trace missing %s:\n%s", want, got)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}

func TestTraceFlagChrome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{"-q", "-trace", path, "-trace-format", "chrome", "-exec", `retrieve honor(X).`, dataFile(t)},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace is empty")
	}
	names := map[string]bool{}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event phase = %v, want X", e["ph"])
		}
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"query", "parse", "eval"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q event; have %v", want, names)
		}
	}
}

func TestTraceFlagBadFormat(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "bogus",
		"-exec", `retrieve honor(X).`, dataFile(t)}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "trace format") {
		t.Errorf("err = %v, want trace format error", err)
	}
}

func TestStatsJSONFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-stats-json", "-exec", `retrieve honor(X).`, dataFile(t)},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	i := strings.Index(got, "{")
	if i < 0 {
		t.Fatalf("no JSON stats in output:\n%s", got)
	}
	var st struct {
		Engine     string `json:"Engine"`
		Facts      int    `json:"Facts"`
		Components []struct {
			Preds []string
		}
	}
	if err := json.Unmarshal([]byte(got[i:]), &st); err != nil {
		t.Fatalf("stats output is not valid JSON: %v\n%s", err, got[i:])
	}
	if st.Engine == "" {
		t.Errorf("stats JSON missing Engine: %s", got[i:])
	}
	if len(st.Components) == 0 {
		t.Errorf("stats JSON missing Components: %s", got[i:])
	}
}

func TestReplTraceMeta(t *testing.T) {
	session := `
.trace on
retrieve honor(X).
.trace off
describe honor(X).
.quit
`
	var out bytes.Buffer
	if err := run([]string{"-q", dataFile(t)}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "trace: on") || !strings.Contains(got, "trace: off") {
		t.Errorf("missing trace toggles:\n%s", got)
	}
	// The retrieve between on/off must print a span tree; the describe
	// after off must not.
	onPart, offPart, found := strings.Cut(got, "trace: off")
	if !found {
		t.Fatalf("no trace: off marker:\n%s", got)
	}
	for _, want := range []string{"query", "parse", "analyze", "eval"} {
		if !strings.Contains(onPart, want) {
			t.Errorf("span tree missing %q while tracing:\n%s", want, onPart)
		}
	}
	if strings.Contains(offPart, "analyze") {
		t.Errorf("span tree printed after .trace off:\n%s", offPart)
	}
}

func TestReplUnknownMetaListsCommands(t *testing.T) {
	session := ".bogus\n.quit\n"
	var out bytes.Buffer
	if err := run([]string{"-q"}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "unknown command .bogus") {
		t.Errorf("missing unknown-command report:\n%s", got)
	}
	for _, want := range []string{".help", ".trace", ".stats", ".quit"} {
		if !strings.Contains(got, want) {
			t.Errorf("known-command list missing %s:\n%s", want, got)
		}
	}
}

func TestReplMetaMidBuffer(t *testing.T) {
	// A meta command issued while a multi-line statement is buffered must
	// run immediately, and the buffered statement must still complete.
	session := "retrieve honor(X)\n.stats on\nwhere enroll(X, databases).\n.quit\n"
	var out bytes.Buffer
	if err := run([]string{"-q", dataFile(t)}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "stats: on") {
		t.Errorf("mid-buffer meta did not run:\n%s", got)
	}
	if !strings.Contains(got, "honor(ann)") {
		t.Errorf("buffered statement lost:\n%s", got)
	}
}

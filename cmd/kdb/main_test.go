package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func dataFile(t *testing.T) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", "university.kdb")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("missing test data: %v", err)
	}
	return p
}

func TestExecFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-exec", `retrieve honor(X) where enroll(X, databases).`, dataFile(t)}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "honor(ann)") || !strings.Contains(got, "honor(dan)") {
		t.Errorf("output = %q", got)
	}
}

func TestExecMultipleQueries(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-exec", `describe honor(X). retrieve prior(databases, Y).`, dataFile(t)}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "honor(X) <- student(X, Y, Z) and Z > 3.7") {
		t.Errorf("describe missing: %q", got)
	}
	if !strings.Contains(got, "prior(databases, datastructures)") {
		t.Errorf("retrieve missing: %q", got)
	}
}

func TestEngineFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-q", "-engine", "topdown", "-exec", `retrieve honor(X).`, dataFile(t)}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "honor(ann)") {
		t.Errorf("output = %q", out.String())
	}
	if err := run([]string{"-engine", "bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("bogus engine must fail")
	}
}

func TestReplSession(t *testing.T) {
	session := `
student(zoe, cs, 3.95).
honor(X) :- student(X, M, G), G > 3.7.
retrieve honor(X).
describe honor(X).
.rules
.preds
.validate
.engine topdown
retrieve honor(X).
.engine bogus
.help
.unknowncmd
.quit
`
	var out bytes.Buffer
	if err := run([]string{"-q"}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ok",         // fact + rule loads
		"honor(zoe)", // retrieve
		"honor(X) <- student(X, M, G) and G > 3.7", // describe
		"honor(X) :- student(X, M, G), G > 3.7.",   // .rules
		"EDB: student/3",                           // .preds
		"ok: rules are disciplined",                // .validate
		"engine: topdown",                          // .engine
		"unknown engine",                           // bad engine
		"meta commands:",                           // .help
		"unknown command",                          // bad meta
	} {
		if !strings.Contains(got, want) {
			t.Errorf("session output missing %q:\n%s", want, got)
		}
	}
}

func TestReplMultiLineStatement(t *testing.T) {
	session := "retrieve honor(X)\nwhere enroll(X, databases).\n.quit\n"
	var out bytes.Buffer
	if err := run([]string{"-q", dataFile(t)}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "honor(ann)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestReplErrorRecovery(t *testing.T) {
	session := `
retrieve honor(.
retrieve honor(zzz).
.quit
`
	var out bytes.Buffer
	if err := run([]string{"-q", dataFile(t)}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "error:") {
		t.Errorf("parse error must be reported: %q", got)
	}
	if !strings.Contains(got, "no answers") {
		t.Errorf("shell must keep working after an error: %q", got)
	}
}

func TestReplLoadCommand(t *testing.T) {
	session := ".load " + dataFile(t) + "\nretrieve honor(ann).\n.quit\n"
	var out bytes.Buffer
	if err := run([]string{"-q"}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "honor(ann)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestDurableFlag(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	session := "flight(la, sf).\n.checkpoint\n.quit\n"
	if err := run([]string{"-q", "-db", dir}, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	// Reopen and query.
	out.Reset()
	if err := run([]string{"-q", "-db", dir, "-exec", `retrieve flight(X, Y).`}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flight(la, sf)") {
		t.Errorf("durable facts lost: %q", out.String())
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-q", "no-such-file.kdb"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file must fail")
	}
}

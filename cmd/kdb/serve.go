package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kdb"
)

// runServe implements the `kdb serve` subcommand: a concurrent
// multi-tenant HTTP service over named knowledge bases. Tenants open
// lazily (one store directory per name under -root, or in memory),
// idle tenants are evicted, and every request is governed by the
// server-side quota ceiling; clients may tighten it per request but
// never loosen it.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kdb serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8040", "listen address")
		root     = fs.String("root", "", "directory holding one store per knowledge base (default: in-memory tenants)")
		engine   = fs.String("engine", "seminaive", "retrieve engine: naive, seminaive, topdown, magic")
		parallel = fs.Int("parallel", 1, "bottom-up evaluation workers per query (0 = GOMAXPROCS)")
		maxOpen  = fs.Int("max-open", 8, "maximum simultaneously open knowledge bases")
		idle     = fs.Duration("idle", 5*time.Minute, "close knowledge bases unused for this long (negative = never)")
		cache    = fs.Int("prepared-cache", 256, "prepared-statement cache entries")

		maxInFlight = fs.Int("max-inflight", 256, "maximum concurrent requests before load shedding (0 = unbounded)")
		brkFails    = fs.Int("breaker-threshold", 3, "consecutive storage failures that trip a tenant into read-only degraded mode (negative = never)")
		brkCooldown = fs.Duration("breaker-cooldown", 5*time.Second, "how long a tripped tenant rejects writes before probing recovery")

		timeout  = fs.Duration("timeout", 5*time.Second, "per-request wall-time ceiling (0 = unlimited)")
		maxFacts = fs.Int("max-facts", 0, "per-request derived-fact ceiling (0 = unlimited)")
		maxIter  = fs.Int("max-iterations", 0, "per-request fixpoint-iteration ceiling (0 = unlimited)")
		maxProv  = fs.Int("max-prov", 0, "per-request provenance-witness ceiling (0 = unlimited)")

		queryLog  = fs.String("query-log", "", "append one JSONL record per query to FILE (includes tenant and client)")
		slowQuery = fs.Duration("slow-query", 0, "with -query-log, log only queries at least this slow")
		qlogMaxMB = fs.Int("query-log-max-mb", 0, "rotate the query log when it would exceed this many MB (0 = never)")
		qlogKeep  = fs.Int("query-log-keep", 3, "rotated query-log files to keep (FILE.1 .. FILE.N)")
		quiet     = fs.Bool("q", false, "suppress the startup banner")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: kdb serve [flags] (no positional arguments)")
	}

	// baseCtx bounds the server's background goroutines (the tenant
	// janitor): canceled as soon as a shutdown signal arrives, so they
	// stop sweeping while in-flight requests drain.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()

	cfg := kdb.ServerConfig{
		BaseContext:       baseCtx,
		Root:              *root,
		MaxOpenKBs:        *maxOpen,
		IdleTimeout:       *idle,
		Engine:            kdb.EngineKind(*engine),
		Parallelism:       *parallel,
		PreparedCacheSize: *cache,
		MaxInFlight:       *maxInFlight,
		BreakerThreshold:  *brkFails,
		BreakerCooldown:   *brkCooldown,
		Registry:          kdb.NewMetricsRegistry(),
		// Spans stay in the tracer's recent ring (nothing is exported),
		// but the trace ids they issue — or adopt from an incoming W3C
		// traceparent — link query-log records, latency exemplars, and
		// /v1/debug/activity entries to the request that caused them.
		Tracer: kdb.NewTracer(),
		Ceiling: kdb.QueryLimits{
			MaxWall:              *timeout,
			MaxFacts:             *maxFacts,
			MaxIterations:        *maxIter,
			MaxProvenanceEntries: *maxProv,
		},
	}
	var qlw *kdb.RotatingWriter
	if *queryLog != "" {
		w, err := openQueryLog(*queryLog, *qlogMaxMB, *qlogKeep)
		if err != nil {
			return err
		}
		defer w.Close()
		qlw = w
		cfg.QueryLog = kdb.NewQueryLog(w, *slowQuery)
	}
	srv, err := kdb.NewServer(cfg)
	if err != nil {
		return err
	}

	// Bind before printing anything, so an occupied port is a clean
	// non-zero exit rather than a banner followed by a dead server.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if !*quiet {
		store := "in-memory tenants"
		if *root != "" {
			store = "root " + *root
		}
		fmt.Fprintf(out, "kdb serve on http://%s/ (%s, engine %s)\n", ln.Addr(), store, *engine)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigc)

	for {
		select {
		case sig := <-sigc:
			// SIGHUP is the logrotate handshake, not a shutdown: reopen
			// the query log (if any) and keep serving.
			if sig == syscall.SIGHUP {
				if qlw == nil {
					continue
				}
				if err := qlw.Reopen(); err != nil && !*quiet {
					fmt.Fprintf(out, "kdb serve: query log reopen: %v\n", err)
				} else if !*quiet {
					fmt.Fprintf(out, "kdb serve: %v: query log reopened\n", sig)
				}
				continue
			}
			if !*quiet {
				fmt.Fprintf(out, "kdb serve: %v: draining\n", sig)
			}
			cancelBase()
			// Stop accepting, let in-flight requests finish, then close the
			// tenants (which waits for any straggling evaluations).
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil {
				srv.Close()
				return fmt.Errorf("shutdown: %w", err)
			}
			return srv.Close()
		case err := <-errc:
			srv.Close()
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExperimentsMatch(t *testing.T) {
	var out bytes.Buffer
	status := run(filepath.Join("..", "..", "testdata"), true, &out)
	if status != 0 {
		t.Fatalf("experiments failed:\n%s", out.String())
	}
	got := out.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "X1", "X2", "X3", "X4", "X5", "X6", "R1"} {
		if !strings.Contains(got, "== "+id+" (") {
			t.Errorf("experiment %s missing from output", id)
		}
	}
	if strings.Contains(got, "DIFF") {
		t.Errorf("unexpected DIFF:\n%s", got)
	}
	if !strings.Contains(got, "summary: 17/17 experiments match") {
		t.Errorf("summary missing:\n%s", got)
	}
}

func TestCanonicalRenaming(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{"p(X) <- q(X, Z)", "p(A) <- q(A, B)", true},
		{"p(X) <- q(X, X)", "p(A) <- q(A, B)", false},
		{"p(X) <- q(databases, X)", "p(A) <- q(databases, A)", true},
		{"p(X) <- q(databases, X)", "p(A) <- q(ai, A)", false},
		{"U > 3.3", "W > 3.3", true},
		{"U > 3.3", "W > 3.4", false},
		// Lower-case symbols are not variables.
		{"p(x)", "p(y)", false},
		// Mid-word capitals are not variables.
		{"can_ta(X, W2)", "can_ta(A, B)", true},
	}
	for _, c := range cases {
		got := canonical(c.a) == canonical(c.b)
		if got != c.same {
			t.Errorf("canonical(%q) vs canonical(%q): same=%v, want %v (%q / %q)",
				c.a, c.b, got, c.same, canonical(c.a), canonical(c.b))
		}
	}
}

func TestSameModuloVars(t *testing.T) {
	a := []string{"p(X) <- q(X)", "p(X) <- r(X, Z)"}
	b := []string{"p(A) <- r(A, Q)", "p(A) <- q(A)"} // reordered + renamed
	if !sameModuloVars(a, b) {
		t.Error("reordered, renamed answers must match")
	}
	if sameModuloVars(a, b[:1]) {
		t.Error("different lengths must not match")
	}
	if !containsModuloVars(b, a[:1]) {
		t.Error("containment must hold")
	}
	if containsModuloVars(b, []string{"p(A) <- zz(A)"}) {
		t.Error("absent formula must not be contained")
	}
}

func TestBadDataDir(t *testing.T) {
	var out bytes.Buffer
	if status := run(t.TempDir(), false, &out); status == 0 {
		t.Error("missing data must fail")
	}
	if !strings.Contains(out.String(), "ERROR") {
		t.Errorf("output = %q", out.String())
	}
}

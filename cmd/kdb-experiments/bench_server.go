package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"kdb"
)

// serverBenchWorkload is one HTTP-path benchmark unit: a statement run
// repeatedly against one tenant of an in-process kdb server.
type serverBenchWorkload struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Route  string `json:"route"`
	Stmt   string `json:"stmt"`
	args   []any
}

// serverBenchResult measures one HTTP workload, with the latency read
// back from the server's own request histogram — so the benchmark
// doubles as an end-to-end check of the serve instrumentation, and the
// numbers are comparable against the library-path workloads in the
// same report (the HTTP overhead is their difference).
type serverBenchResult struct {
	serverBenchWorkload
	Iterations    int64   `json:"iterations"`
	TotalSeconds  float64 `json:"total_seconds"`
	MeanSeconds   float64 `json:"mean_seconds"`
	ThroughputQPS float64 `json:"throughput_qps"`
	// PreparedHits counts this workload's prepared-statement cache hits
	// (iters-1 for a parameterized statement: only the first parses).
	PreparedHits int64 `json:"prepared_hits"`
}

func serverBenchWorkloads() []serverBenchWorkload {
	return []serverBenchWorkload{
		{ID: "server-retrieve-honor", Tenant: "university", Route: "retrieve",
			Stmt: `retrieve honor(X) where enroll(X, $1).`, args: []any{"databases"}},
		{ID: "server-describe-can-ta", Tenant: "university", Route: "describe",
			Stmt: `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`},
		{ID: "server-retrieve-reachable", Tenant: "routes", Route: "retrieve",
			Stmt: `retrieve reachable(la, Y).`},
		{ID: "server-explain-reachable", Tenant: "routes", Route: "explain",
			Stmt: `explain reachable(la, Y).`},
	}
}

// runServerBench starts an in-process `kdb serve` (in-memory tenants),
// loads the experiment datasets into two tenants over HTTP, and runs
// every workload iters times through the full HTTP+JSON path.
func runServerBench(dataDir string, iters int, out io.Writer) ([]serverBenchResult, error) {
	reg := kdb.NewMetricsRegistry()
	srv, err := kdb.NewServer(kdb.ServerConfig{Registry: reg})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	for _, tenant := range []string{"university", "routes"} {
		src, err := os.ReadFile(filepath.Join(dataDir, tenant+".kdb"))
		if err != nil {
			return nil, err
		}
		if err := postBench(base+"/v1/kb/"+tenant+"/load", map[string]any{"program": string(src)}); err != nil {
			return nil, fmt.Errorf("loading tenant %s: %w", tenant, err)
		}
	}

	hits := func() int64 {
		for _, p := range reg.Snapshot() {
			if p.Name == "kdb_server_prepared_total" && p.Labels["result"] == "hit" {
				return int64(p.Value)
			}
		}
		return 0
	}
	histogram := func(route string) (int64, float64) {
		for _, p := range reg.Snapshot() {
			if p.Name == "kdb_server_request_seconds" && p.Labels["route"] == route {
				return p.Count, p.Sum
			}
		}
		return 0, 0
	}

	var results []serverBenchResult
	for _, w := range serverBenchWorkloads() {
		count0, sum0 := histogram(w.Route)
		hits0 := hits()
		body := map[string]any{"stmt": w.Stmt}
		if w.args != nil {
			body["args"] = w.args
		}
		for i := 0; i < iters; i++ {
			if err := postBench(base+"/v1/kb/"+w.Tenant+"/"+w.Route, body); err != nil {
				return nil, fmt.Errorf("workload %s: %w", w.ID, err)
			}
		}
		count1, sum1 := histogram(w.Route)
		res := serverBenchResult{
			serverBenchWorkload: w,
			Iterations:          count1 - count0,
			TotalSeconds:        sum1 - sum0,
			PreparedHits:        hits() - hits0,
		}
		if res.Iterations > 0 {
			res.MeanSeconds = res.TotalSeconds / float64(res.Iterations)
		}
		if res.TotalSeconds > 0 {
			res.ThroughputQPS = float64(res.Iterations) / res.TotalSeconds
		}
		fmt.Fprintf(out, "bench %-24s iters=%d total=%.6fs mean=%.6fs qps=%.0f prepared-hits=%d\n",
			w.ID, res.Iterations, res.TotalSeconds, res.MeanSeconds, res.ThroughputQPS, res.PreparedHits)
		results = append(results, res)
	}
	return results, nil
}

// postBench sends one JSON request. Backpressure responses (429 when a
// quota ceiling trips, 503 when the server sheds load or a tenant is
// degraded) are transient by contract, so the client retries them with
// jittered exponential backoff, honoring the server's Retry-After
// header as a floor on each sleep. Any other non-200 fails immediately.
func postBench(url string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	const attempts = 5
	backoff := 25 * time.Millisecond
	var last error
	for i := 0; i < attempts; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		last = fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return last
		}
		if i == attempts-1 {
			break
		}
		time.Sleep(backoffSleep(backoff, retryAfterHint(resp)))
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return fmt.Errorf("giving up after %d attempts: %w", attempts, last)
}

// retryAfterHint parses a delta-seconds Retry-After header, the form
// kdb serve emits; absent or unparsable headers hint zero.
func retryAfterHint(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// backoffSleep jitters the base delay by ±50% — so a herd of shed
// clients does not re-arrive in lockstep — and floors the result at
// the server's own hint.
func backoffSleep(base, floor time.Duration) time.Duration {
	d := base/2 + time.Duration(rand.Int63n(int64(base)))
	if d < floor {
		d = floor
	}
	return d
}

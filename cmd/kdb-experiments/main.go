// Command kdb-experiments regenerates every experiment in EXPERIMENTS.md:
// the worked examples of "Querying Database Knowledge" (Motro & Yuan,
// SIGMOD 1990) — the paper has no tables or figures; its evaluation is
// these examples — plus the Section 6 extension queries. For each
// experiment it prints the query, the paper's reported answer, the
// measured answer, and a MATCH/DIFF verdict (answers are compared as sets
// of formulas modulo variable renaming).
//
// Usage:
//
//	kdb-experiments [-data testdata]
//	kdb-experiments -bench BENCH_PR9.json [-bench-iters N]
//
// With -bench, a fixed set of query workloads runs instead and a JSON
// report lands in the named file: per-workload iteration counts, total
// and mean latency, and throughput, all read back from a fresh
// per-workload metrics registry (the same instruments -debug-addr
// exposes), plus the registry snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"unicode"

	"kdb"
)

// experiment is one reproducible unit.
type experiment struct {
	id    string
	locus string // where in the paper
	text  string // English form
	setup func(dataDir string) (*kdb.KB, error)
	query string
	// paper holds the paper's reported answer, one formula per line
	// (empty when the paper reports no concrete answer — facts differ).
	paper []string
	// note documents interpretation decisions / corrections.
	note string
	// exact requires line-set equality modulo variable renaming; without
	// it the experiment only reports the measured answer.
	exact bool
}

// kbOptions configure every experiment KB (set from the flags).
var kbOptions []kdb.Option

func universitySetup(dataDir string) (*kdb.KB, error) {
	k := kdb.New(kbOptions...)
	return k, k.LoadFile(filepath.Join(dataDir, "university.kdb"))
}

func routesSetup(dataDir string) (*kdb.KB, error) {
	k := kdb.New(kbOptions...)
	return k, k.LoadFile(filepath.Join(dataDir, "routes.kdb"))
}

func inlineSetup(src string) func(string) (*kdb.KB, error) {
	return func(string) (*kdb.KB, error) {
		k := kdb.New(kbOptions...)
		return k, k.LoadString(src)
	}
}

func experiments() []experiment {
	return []experiment{
		{
			id: "E1", locus: "§3.1 Example 1",
			text:  "Retrieve the honor students enrolled in the databases course.",
			setup: universitySetup,
			query: `retrieve honor(X) where enroll(X, databases).`,
			paper: []string{"honor(ann)", "honor(dan)"},
			note:  "The paper reports no extension (it lists no facts); expected answer computed from the sample facts of testdata/university.kdb.",
			exact: true,
		},
		{
			id: "E2", locus: "§3.1 Example 2",
			text:  "Retrieve the math students with GPA above 3.7 eligible for TA-ship in databases (ad-hoc subject `answer`).",
			setup: universitySetup,
			query: `retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.`,
			paper: []string{"answer(ann)", "answer(cora)"},
			note:  "Expected answer computed from the sample facts; `answer` is not a known predicate (paper's note).",
			exact: true,
		},
		{
			id: "E3", locus: "§3.2 Example 3",
			text:  "When is a math student whose GPA is above 3.7 eligible for teaching assistantship in the databases course?",
			setup: universitySetup,
			query: `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`,
			paper: []string{
				"can_ta(X, databases) <- complete(X, databases, Z, U) and U > 3.3 and taught(V, databases, Z, W) and teach(V, databases)",
				"can_ta(X, databases) <- complete(X, databases, Z, 4)",
			},
			note:  "The paper's first formula prints taught(V, Y, Z, W) ∧ teach(V, Y) with Y unbound — a typo (Y is unified with `databases` by the subject); we reproduce the corrected form.",
			exact: true,
		},
		{
			id: "E4", locus: "§3.2 Example 4",
			text:  "What does it take to be an honor student?",
			setup: universitySetup,
			query: `describe honor(X).`,
			paper: []string{"honor(X) <- student(X, Y, Z) and Z > 3.7"},
			note:  "The paper prints `X > 3.7` in the body — a typo for Z > 3.7 (X is the student's name).",
			exact: true,
		},
		{
			id: "E5", locus: "§4 Example 5",
			text:  "When is an honor student eligible for a teaching assistantship in a course currently taught by Susan?",
			setup: universitySetup,
			query: `describe can_ta(X, Y) where honor(X) and teach(susan, Y).`,
			paper: []string{
				"can_ta(X, Y) <- complete(X, Y, Z, 4)",
				"can_ta(X, Y) <- complete(X, Y, Z, U) and U > 3.3 and taught(susan, Y, Z, W)",
			},
			exact: true,
		},
		{
			id: "E6", locus: "§5 Example 6",
			text:  "When is a course X prior to another course Y, given that databases is prior to Y?",
			setup: universitySetup,
			query: `describe prior(X, Y) where prior(databases, Y).`,
			paper: []string{
				"prior(X, Y) <- X = databases",
				"prior(X, Y) <- prior(X, databases)",
			},
			note:  "Algorithm 1 diverges on this query; Algorithm 2 terminates. We print the paper's preferred rendering (the modified transformation, which avoids the artificial step predicate).",
			exact: true,
		},
		{
			id: "E7", locus: "§5 Example 7",
			text:  "When is a course X prior to Y, given that X is prior to databases? (typed substitutions must reject the unsound loop answers)",
			setup: universitySetup,
			query: `describe prior(X, Y) where prior(X, databases).`,
			paper: []string{"prior(X, Y) <- Y = databases"},
			note:  "The paper shows the infinite UNSOUND answer the untyped algorithm would emit; Algorithm 2's typing guard (§5.3) admits only the first, sound formula — which is what we reproduce.",
			exact: true,
		},
		{
			id: "E8", locus: "§5 Example 8",
			text: "describe p(X, Y) where r(a, Y) over the p/q/r/s program — the naive algorithm hangs; Algorithm 2 terminates.",
			setup: inlineSetup(`
p(X, Y) :- q(X, Z), r(Z, Y).
q(X, Y) :- q(X, Z), s(Z, Y).
q(X, Y) :- r(X, Y).
`),
			query: `describe p(X, Y) where r(a, Y).`,
			paper: []string{"p(X, Y) <- q(X, a)"},
			note:  "The paper demonstrates only the non-termination; the expected (most general, sound) formula identifies the r conjunct with the hypothesis and leaves q residual. Termination itself is the reproduced claim.",
			exact: false,
		},
		{
			id: "E9", locus: "§1 intro, second example",
			text: "\"Must all foreign students be married?\" — a knowledge query, versus the data query \"Are all foreign students married?\"",
			setup: inlineSetup(`
person(ann, usa, single).
person(lee, france, married).
person(kim, japan, married).
foreign(X) :- person(X, N, M), N != usa.
% University policy: foreign students must be married (visa rule).
married_required(X) :- foreign(X).
`),
			query: `describe married_required(X) where foreign(X).`,
			paper: []string{"married_required(X) <- true"},
			note:  "The paper poses the question without a concrete KB. We model the policy as an IDB rule; the describe answer `<- true` says the knowledge REQUIRES it (\"Must they? — yes\"), independent of the stored extension.",
			exact: true,
		},
		{
			id: "E10", locus: "§5.3 end / §1 intro sixth example",
			text: "\"When x is reachable from y, is it guaranteed that y is also reachable from x?\" — untyped symmetry rule under bounded application.",
			setup: inlineSetup(`
link(a, b).
reach(X, Y) :- link(X, Y).
reach(X, Y) :- reach(Y, X).
`),
			query: `describe reach(X, Y) where reach(Y, X).`,
			paper: []string{"reach(X, Y) <- true"},
			note:  "The symmetry rule is not typed w.r.t. reach, so the transformation does not apply; the bounded mode (§5.3, end) applies the rule a limited number of times. `<- true` answers the English question with YES.",
			exact: false,
		},
		{
			id: "X1", locus: "§6 extension 1",
			text:  "describe honor(X) where necessary complete(X,Y,Z,U) and U > 3.3 — only answers where the whole hypothesis was needed.",
			setup: universitySetup,
			query: `describe honor(X) where necessary complete(X, Y, Z, U) and U > 3.3.`,
			paper: []string{"no answer"},
			note:  "complete never participates in a derivation of honor, so under `necessary` no answer survives (the paper's motivating contrast: without `necessary` the answer equals Example 4's).",
			exact: true,
		},
		{
			id: "X2", locus: "§6 extension 2",
			text:  "describe can_ta(X, Y) where not honor(X) — is honor status necessary for teaching assistantship?",
			setup: universitySetup,
			query: `describe can_ta(X, Y) where not honor(X).`,
			paper: []string{"false (the excluded knowledge is necessary)"},
			note:  "The paper: \"The answer false would indicate that honor status is necessary for teaching assistantship.\"",
			exact: true,
		},
		{
			id: "X3", locus: "§6 extension 3",
			text:  "describe where student(X,Y,Z) and Z < 3.5 and can_ta(X,U) — can a student with GPA under 3.5 be a TA?",
			setup: universitySetup,
			query: `describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).`,
			paper: []string{"false (the situation contradicts the knowledge base)"},
			note:  "Requires the functional reading of student (one GPA per student), declared as `@key student/3 1.`; without the key no sound procedure can refute the hypothetical.",
			exact: true,
		},
		{
			id: "X4", locus: "§6 extension 4",
			text:  "describe * where honor(X) — what subjects are derivable from honor status?",
			setup: universitySetup,
			query: `describe * where honor(X).`,
			paper: []string{
				"can_ta(X, W2) <- complete(X, W2, Z, 4)",
				"can_ta(X, W2) <- complete(X, W2, Z, U) and U > 3.3 and taught(V, W2, Z, W) and teach(V, W2)",
			},
			note:  "The paper sketches the query (\"the advantages of honor status\") without an answer; both can_ta routes are derivable from the qualifier.",
			exact: true,
		},
		{
			id: "X5", locus: "§6 final extension",
			text:  "compare (describe honor(X)) with (describe deans_list(X)) — honor subsumes dean's list; the shared concept and the difference are elucidated.",
			setup: universitySetup,
			query: `compare (describe honor(X)) with (describe deans_list(X)).`,
			paper: []string{
				"honor(X) vs deans_list(X): left subsumes right",
				"  shared concept: student(X, M, G) and G > 3.7",
				"  only deans_list: G > 3.9",
			},
			note:  "The paper describes the intended behaviour (maximal shared concept; subsumption; unrelated) without a worked example; deans_list(GPA > 3.9) is our §2.2-style instantiation.",
			exact: true,
		},
		{
			id: "X6", locus: "§1 intro, third example",
			text: "\"Could an honor student be foreign?\" — a hypothetical item of knowledge checked for contradiction with the stored knowledge.",
			setup: inlineSetup(`
honor(X) :- student2(X, G, N), G > 3.7.
foreign(X) :- student2(X, G, N), N != usa.
@key student2/3 1.
% Scholarship policy: honor status is restricted to domestic students.
:- honor(X), foreign(X).
`),
			query: `describe where honor(X) and foreign(X).`,
			paper: []string{"false (the situation contradicts the knowledge base)"},
			note:  "The paper: \"the system must check whether a hypothetical item of knowledge (e.g., a foreign honor student) would contradict the stored knowledge.\" The contradiction source here is an integrity constraint — the §2.1 second Horn-clause form, which the paper defines and sets aside; without it the answer is true.",
			exact: true,
		},
		{
			id: "R1", locus: "§1 intro, fifth example",
			text:  "\"List all points reachable from la\" (data) vs \"Do you know how to get from any point to any other point?\" (knowledge).",
			setup: routesSetup,
			query: `describe reachable(X, Y).`,
			paper: []string{
				"reachable(X, Y) <- flight(X, Y)",
				"reachable(X, Y) <- flight(X, Z) and reachable(Z, Y)",
			},
			note:  "A definition of reachability IS available — the describe answer lists it, answering the intro's fifth English query.",
			exact: true,
		},
	}
}

func main() {
	dataDir := flag.String("data", "testdata", "directory containing the .kdb files")
	stats := flag.Bool("stats", false, "print evaluation statistics for each experiment's retrieves")
	parallel := flag.Int("parallel", 1, "bottom-up evaluation workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-query wall-time limit (0 = unlimited); a breaching experiment reports ERROR and the sweep continues")
	bench := flag.String("bench", "", "run the benchmark workloads and write a JSON report to FILE (skips the experiments)")
	benchIters := flag.Int("bench-iters", 30, "iterations per benchmark workload")
	flag.Parse()
	kbOptions = []kdb.Option{
		kdb.WithParallelism(*parallel),
		kdb.WithQueryLimits(kdb.QueryLimits{MaxWall: *timeout}),
	}
	if *bench != "" {
		if err := runBench(*dataDir, *bench, *benchIters, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "kdb-experiments:", err)
			os.Exit(1)
		}
		return
	}
	os.Exit(run(*dataDir, *stats, os.Stdout))
}

// benchWorkload is one benchmark unit: a KB setup plus a query to run
// repeatedly.
type benchWorkload struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Query string `json:"query"`
	setup func(dataDir string) (*kdb.KB, error)
	// opts are extra KB options for this workload (e.g. the
	// system-relations off half of an overhead pair).
	opts []kdb.Option
}

// benchResult is the measured outcome of one workload, with every
// latency figure read back from the workload's own metrics registry
// (histogram count and sum), not from a separate clock — the benchmark
// doubles as an end-to-end check of the instrumentation.
type benchResult struct {
	benchWorkload
	Iterations    int64             `json:"iterations"`
	TotalSeconds  float64           `json:"total_seconds"`
	MeanSeconds   float64           `json:"mean_seconds"`
	ThroughputQPS float64           `json:"throughput_qps"`
	Metrics       []kdb.MetricPoint `json:"metrics"`
}

// benchReport is the top-level BENCH_PR9.json document. Workloads run
// the library path (direct ExecString calls); ServerWorkloads run the
// same statements through the `kdb serve` HTTP data plane, so the two
// sections bracket the cost of the server layer.
type benchReport struct {
	Bench           string              `json:"bench"`
	Go              string              `json:"go"`
	Workloads       []benchResult       `json:"workloads"`
	ServerWorkloads []serverBenchResult `json:"server_workloads"`
}

func benchWorkloads() []benchWorkload {
	return []benchWorkload{
		{ID: "retrieve-honor", Kind: "retrieve", setup: universitySetup,
			Query: `retrieve honor(X) where enroll(X, databases).`},
		{ID: "retrieve-reachable", Kind: "retrieve", setup: routesSetup,
			Query: `retrieve reachable(X, Y).`},
		{ID: "describe-can-ta", Kind: "describe", setup: universitySetup,
			Query: `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`},
		{ID: "describe-recursive-prior", Kind: "describe", setup: universitySetup,
			Query: `describe prior(X, Y) where prior(databases, Y).`},
		{ID: "compare-honor-deans", Kind: "compare", setup: universitySetup,
			Query: `compare (describe honor(X)) with (describe deans_list(X)).`},
		// Provenance overhead pair: the same recursive closure with and
		// without witness recording. Comparing retrieve-reachable-baseline
		// against explain-reachable isolates what why-provenance costs.
		{ID: "retrieve-reachable-baseline", Kind: "retrieve", setup: routesSetup,
			Query: `retrieve reachable(la, Y).`},
		{ID: "explain-reachable", Kind: "explain", setup: routesSetup,
			Query: `explain reachable(la, Y).`},
		// Profiling overhead pair: the same recursive closure with
		// per-rule cost accounting on. Comparing
		// retrieve-reachable-baseline against profile-reachable isolates
		// what the profiler costs.
		{ID: "profile-reachable", Kind: "profile", setup: routesSetup,
			Query: `profile reachable(la, Y).`},
		// System-relations overhead pair: the same closure, which never
		// mentions sys_*, with the virtual-relation provider attached
		// (the default) and detached. Comparing
		// retrieve-reachable-baseline against retrieve-reachable-nosys
		// bounds what serving sys_* costs programs that ignore it (the
		// design target is zero).
		{ID: "retrieve-reachable-nosys", Kind: "retrieve", setup: routesSetup,
			Query: `retrieve reachable(la, Y).`, opts: []kdb.Option{kdb.WithoutSystemRelations()}},
		// The engine querying itself: one row per metric series of the
		// workload's own registry.
		{ID: "retrieve-sys-metric", Kind: "retrieve", setup: routesSetup,
			Query: `retrieve sys_metric(N, counter, V) where V > 0.`},
	}
}

// runBench executes every workload iters times over a fresh KB with a
// fresh metrics registry and writes the JSON report to path.
func runBench(dataDir, path string, iters int, out io.Writer) error {
	report := benchReport{Bench: "PR10", Go: runtime.Version()}
	for _, w := range benchWorkloads() {
		reg := kdb.NewMetricsRegistry()
		saved := kbOptions
		kbOptions = append(append(append([]kdb.Option{}, saved...), kdb.WithMetrics(reg)), w.opts...)
		k, err := w.setup(dataDir)
		kbOptions = saved
		if err != nil {
			return fmt.Errorf("workload %s: setup: %w", w.ID, err)
		}
		for i := 0; i < iters; i++ {
			if _, err := k.ExecString(w.Query); err != nil {
				return fmt.Errorf("workload %s: %w", w.ID, err)
			}
		}
		res := benchResult{benchWorkload: w, Metrics: reg.Snapshot()}
		for _, p := range res.Metrics {
			if p.Name == "kdb_query_duration_seconds" && p.Labels["kind"] == w.Kind {
				res.Iterations += p.Count
				res.TotalSeconds += p.Sum
			}
		}
		if res.Iterations > 0 {
			res.MeanSeconds = res.TotalSeconds / float64(res.Iterations)
		}
		if res.TotalSeconds > 0 {
			res.ThroughputQPS = float64(res.Iterations) / res.TotalSeconds
		}
		fmt.Fprintf(out, "bench %-24s iters=%d total=%.6fs mean=%.6fs qps=%.0f\n",
			w.ID, res.Iterations, res.TotalSeconds, res.MeanSeconds, res.ThroughputQPS)
		report.Workloads = append(report.Workloads, res)
	}
	server, err := runServerBench(dataDir, iters, out)
	if err != nil {
		return fmt.Errorf("server bench: %w", err)
	}
	report.ServerWorkloads = server
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d library + %d server workloads)\n",
		path, len(report.Workloads), len(report.ServerWorkloads))
	return nil
}

func run(dataDir string, showStats bool, out io.Writer) int {
	fmt.Fprintln(out, "kdb-experiments — reproducing the worked examples of Motro & Yuan, SIGMOD 1990")
	printProfiles(dataDir, out)
	fmt.Fprintln(out)
	pass, fail := 0, 0
	for _, e := range experiments() {
		ok := runOne(e, dataDir, showStats, out)
		if ok {
			pass++
		} else {
			fail++
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "summary: %d/%d experiments match\n", pass, pass+fail)
	if fail > 0 {
		return 1
	}
	return 0
}

// printProfiles runs the static-analysis suite over the experiment
// datasets and prints each program profile (rule counts per recursion
// classification) in the output header, so a reader knows which
// describe algorithm the experiments exercise before the results.
func printProfiles(dataDir string, out io.Writer) {
	for _, name := range []string{"university.kdb", "routes.kdb"} {
		path := filepath.Join(dataDir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		prog, err := kdb.ParseProgramFile(path, string(src))
		if err != nil {
			fmt.Fprintf(out, "profile %s: parse error: %v\n", name, err)
			continue
		}
		rep := kdb.Analyze(prog)
		fmt.Fprintf(out, "profile %s: %s", name, rep.Profile)
		if n := len(rep.Errors()) + len(rep.Warnings()); n > 0 {
			fmt.Fprintf(out, " — %d finding(s), run `kdb check %s`", n, path)
		}
		fmt.Fprintln(out)
	}
}

func runOne(e experiment, dataDir string, showStats bool, out io.Writer) bool {
	fmt.Fprintf(out, "== %s (%s) ==\n", e.id, e.locus)
	fmt.Fprintf(out, "   %s\n", e.text)
	fmt.Fprintf(out, "   query:    %s\n", e.query)
	k, err := e.setup(dataDir)
	if err != nil {
		fmt.Fprintf(out, "   status:   ERROR (setup: %v)\n", err)
		return false
	}
	res, err := k.ExecString(e.query)
	if err != nil {
		fmt.Fprintf(out, "   status:   ERROR (%v)\n", err)
		return false
	}
	measured := strings.Split(res.String(), "\n")
	printAligned(out, "paper:", e.paper)
	printAligned(out, "measured:", measured)
	if showStats {
		if st := k.LastStats(); st != nil {
			printAligned(out, "stats:", strings.Split(st.String(), "\n"))
		}
	}
	if e.note != "" {
		fmt.Fprintf(out, "   note:     %s\n", e.note)
	}
	var ok bool
	if e.exact {
		ok = sameModuloVars(e.paper, measured)
	} else {
		// Containment: every paper formula appears among the measured.
		ok = containsModuloVars(measured, e.paper)
	}
	if ok {
		fmt.Fprintf(out, "   status:   MATCH\n")
	} else {
		fmt.Fprintf(out, "   status:   DIFF\n")
	}
	return ok
}

func printAligned(out io.Writer, label string, lines []string) {
	for i, l := range lines {
		if i == 0 {
			fmt.Fprintf(out, "   %-9s %s\n", label, l)
		} else {
			fmt.Fprintf(out, "   %-9s %s\n", "", l)
		}
	}
}

// canonical renames the variables of one formula line in order of first
// occurrence, so `p(X) <- q(X, Z)` equals `p(A) <- q(A, B)`.
func canonical(line string) string {
	var b strings.Builder
	names := make(map[string]int)
	i := 0
	for i < len(line) {
		r := rune(line[i])
		if unicode.IsUpper(r) && (i == 0 || !isWordByte(line[i-1])) {
			j := i
			for j < len(line) && isWordByte(line[j]) {
				j++
			}
			word := line[i:j]
			id, ok := names[word]
			if !ok {
				id = len(names) + 1
				names[word] = id
			}
			fmt.Fprintf(&b, "?%d", id)
			i = j
			continue
		}
		b.WriteByte(line[i])
		i++
	}
	return b.String()
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func sameModuloVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	ca := make([]string, len(a))
	cb := make([]string, len(b))
	for i := range a {
		ca[i] = canonical(strings.TrimSpace(a[i]))
		cb[i] = canonical(strings.TrimSpace(b[i]))
	}
	sort.Strings(ca)
	sort.Strings(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func containsModuloVars(haystack, needles []string) bool {
	set := make(map[string]bool, len(haystack))
	for _, h := range haystack {
		set[canonical(strings.TrimSpace(h))] = true
	}
	for _, n := range needles {
		if !set[canonical(strings.TrimSpace(n))] {
			return false
		}
	}
	return true
}

// Command kdb-vet is the repo's invariant multichecker: it runs the
// internal/lint analyzer suite (lockcheck, errwrap, ctxflow, hotpath,
// faultsite) over the given packages and exits non-zero on any
// diagnostic. CI runs it over ./... so the engine's own invariants —
// lock discipline, the structured-error taxonomy, context
// propagation, zero-alloc hot paths, failpoint coverage — are
// machine-checked on every change.
//
// Usage:
//
//	kdb-vet [-list] [-only name,name] [packages]
//
// With no packages, ./... is checked. Exit status: 0 clean, 1
// diagnostics reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kdb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("kdb-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.SetOutput(errOut)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Fprintf(out, "    %s\n", line)
			}
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(errOut, "kdb-vet: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = sel
	}

	root, err := lint.ModuleRoot()
	if err != nil {
		fmt.Fprintln(errOut, "kdb-vet:", err)
		return 2
	}
	pkgs, err := lint.Load(root, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "kdb-vet:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "kdb-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "kdb-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

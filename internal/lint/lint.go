// Package lint is the engine's self-analysis suite: a set of
// repo-specific static analyzers that machine-check the invariants the
// rest of the tree merely documents — lock discipline around the WAL
// and the tenant tables, the structured-error taxonomy at package
// boundaries, context propagation through request paths, zero-alloc
// hot paths, and failpoint coverage of raw storage syscalls. The
// cmd/kdb-vet multichecker runs every analyzer over ./... and CI fails
// on any diagnostic, so the invariants hold by construction rather
// than by review.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style golden corpora) but is
// built on the standard library alone — go/parser and go/types over
// export data produced by `go list -export` — because this module
// deliberately has no third-party dependencies. Porting an analyzer
// to the x/tools driver is a mechanical change of the Run signature.
//
// Annotation grammar (DESIGN §5h):
//
//	//kdb:guarded-by mu      on a struct field: accesses require mu held
//	//kdb:locked mu          on a func: caller holds mu (write mode)
//	//kdb:rlocked mu         on a func: caller holds mu (read mode)
//	//kdb:hotpath            on a func: body must not allocate
//	//kdb:coldpath           on a stmt: excluded from the hotpath check
//	//kdb:entrypoint         on a func: may call context.Background
//	//kdb:nolint name[,name] on a line: suppress those analyzers there
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //kdb:nolint
	// suppressions.
	Name string
	// Doc is the one-paragraph description kdb-vet prints for -help.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PathHasSuffix reports whether the package import path ends in one of
// the given slash-separated suffixes. Scoped analyzers (errwrap,
// ctxflow, faultsite) match real packages and their testdata replicas
// by suffix: both kdb/internal/storage and
// kdb/internal/lint/testdata/src/faultsite/internal/storage are "the
// storage package" to faultsite.
func (p *Pass) PathHasSuffix(suffixes ...string) bool {
	path := p.Pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// All returns every analyzer in the suite, in a stable order.
func All() []*Analyzer {
	return []*Analyzer{LockCheck, ErrWrap, CtxFlow, HotPath, FaultSite, MetricReg}
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics (after //kdb:nolint suppression), sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = suppress(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics sitting on a line that carries a
// //kdb:nolint directive naming their analyzer (or naming none, which
// suppresses all of them).
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	nolint := map[lineKey][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				arg, ok := directiveArg(c.Text, "nolint")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names := []string{}
				for _, n := range strings.Split(arg, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				nolint[lineKey{pos.Filename, pos.Line}] = names
			}
		}
	}
	if len(nolint) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		names, ok := nolint[lineKey{d.Pos.Filename, d.Pos.Line}]
		if ok && (len(names) == 0 || contains(names, d.Analyzer)) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// --- //kdb: directive helpers -------------------------------------------

// directiveArg parses one comment line of the form "//kdb:name arg".
// It returns the argument (possibly empty) and whether the directive
// is present.
func directiveArg(comment, name string) (string, bool) {
	text, ok := strings.CutPrefix(comment, "//kdb:")
	if !ok {
		return "", false
	}
	text, ok = strings.CutPrefix(text, name)
	if !ok {
		return "", false
	}
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		return "", false // a longer directive name, e.g. kdb:nolintfoo
	}
	return strings.TrimSpace(text), true
}

// groupDirective scans comment groups for a //kdb:name directive and
// returns its argument.
func groupDirective(name string, groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if arg, ok := directiveArg(c.Text, name); ok {
				return arg, ok
			}
		}
	}
	return "", false
}

// funcDirective reads a //kdb: directive off a function's doc comment.
func funcDirective(fn *ast.FuncDecl, name string) (string, bool) {
	return groupDirective(name, fn.Doc)
}

// exprPath renders a selector chain (w, s.wal, k.store) as a dotted
// path, or "" when the expression is not a pure ident/selector chain.
// Parenthesized and dereferenced forms reduce to the same path, so
// (*s).mu and s.mu agree.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	}
	return ""
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeObj resolves the called function or method object of a call,
// or nil for builtins, type conversions, and indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathIs reports whether an import path equals or has the given
// slash-suffix (see Pass.PathHasSuffix for why suffix matching).
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false // untyped nil and friends
	}
	return types.Implements(t, errorType)
}

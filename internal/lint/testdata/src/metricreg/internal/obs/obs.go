// Package obs is a minimal replica of the metrics registry for the
// metricreg golden corpus; its import path ends in internal/obs, so
// the analyzer treats its Registry as the real one.
package obs

// Registry mirrors the real registry's instrument constructors.
type Registry struct{}

// Counter is a stub instrument.
type Counter struct{}

// Gauge is a stub instrument.
type Gauge struct{}

// Histogram is a stub instrument.
type Histogram struct{}

// SetHelp records HELP text for a metric name.
func (r *Registry) SetHelp(name, help string) {}

// Counter returns the named counter.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge { return nil }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	return nil
}

// Package metricreg is the golden corpus for the metricreg analyzer:
// constant-named instruments need exactly one non-empty SetHelp in the
// package; dynamic names are out of reach.
package metricreg

import "kdb/internal/lint/testdata/src/metricreg/internal/obs"

const ratioName = "app_hit_ratio"

func register(reg *obs.Registry) {
	reg.SetHelp("app_requests_total", "Requests served.")
	reg.Counter("app_requests_total", "route", "index") // covered

	reg.Counter("app_orphans_total") // want "metric .app_orphans_total. is registered without HELP text"

	reg.SetHelp("app_empty_total", "") // want "metric .app_empty_total. registered with empty HELP text"
	reg.Counter("app_empty_total")     // has HELP (empty, flagged above), so no second finding

	reg.SetHelp("app_dup_total", "First.")
	reg.SetHelp("app_dup_total", "Second.") // want "HELP for metric .app_dup_total. set more than once"
	reg.Counter("app_dup_total")

	reg.SetHelp(ratioName, "Cache hit ratio.")
	reg.Gauge(ratioName) // covered through the named constant

	reg.Histogram("app_latency_seconds", nil) // want "metric .app_latency_seconds. is registered without HELP text"

	reg.Gauge(dynamicName()) // dynamic name: skipped
}

func dynamicName() string { return "app_dynamic" }

// Package lockchecktest is the golden corpus for the lockcheck
// analyzer: each expectation comment names a diagnostic the analyzer
// must produce on that line, and any unexpected diagnostic fails the
// test.
package lockchecktest

import "sync"

type counter struct {
	mu sync.RWMutex
	//kdb:guarded-by mu
	count int
	//kdb:guarded-by mu
	names map[string]int

	// plain is unguarded: access it freely.
	plain int
}

type badAnnotations struct {
	//kdb:guarded-by
	a int // want "kdb:guarded-by needs a mutex field name"
	//kdb:guarded-by missing
	b int // want "no sibling sync.Mutex or sync.RWMutex field"
	// notAMutex is an int, not a lock.
	notAMutex int
	//kdb:guarded-by notAMutex
	c int // want "no sibling sync.Mutex or sync.RWMutex field"
}

// readWithoutLock reads guarded state with no lock in sight.
func readWithoutLock(c *counter) int {
	return c.count // want "reading c.count \(guarded by c.mu\) without holding c.mu"
}

// writeUnderReadLock is the PR 6 bug shape: mutation under RLock.
func writeUnderReadLock(c *counter) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.count++ // want "writing c.count \(guarded by c.mu\) while holding only the read lock"
}

// writeUnderWriteLock is the correct discipline: no diagnostic.
func writeUnderWriteLock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	c.names["x"] = c.count
}

// readUnderReadLock is fine: reads need only the read lock.
func readUnderReadLock(c *counter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// takesAddress escapes guarded state by address without the lock.
func takesAddress(c *counter) *int {
	return &c.count // want "writing c.count \(guarded by c.mu\) without holding c.mu"
}

// resetLocked documents the contract instead of acquiring: the
// directive stands in for the caller's Lock(), keyed to the receiver.
//
//kdb:locked mu
func (c *counter) resetLocked() {
	c.count = 0
}

// snapshotLocked may read but not write under the caller's read lock.
//
//kdb:rlocked mu
func (c *counter) snapshotLocked() int {
	return c.count
}

// writeUnderDeclaredReadLock holds only the caller's read lock, so the
// write is still the PR 6 shape.
//
//kdb:rlocked mu
func (c *counter) writeUnderDeclaredReadLock() {
	c.count++ // want "writing c.count \(guarded by c.mu\) while holding only the read lock"
}

// freshLocal builds the object itself: unpublished, no lock needed.
func freshLocal() int {
	c := &counter{names: map[string]int{}}
	c.count = 41
	c.count++
	return c.count
}

// unguardedField is not annotated; no discipline applies.
func unguardedField(c *counter) int {
	c.plain++
	return c.plain
}

// Package fault is a minimal stand-in for kdb/internal/fault: the
// faultsite analyzer recognizes any package whose import path ends in
// internal/fault, so the fixture exercises the real exemption logic
// without importing the production package.
package fault

// SiteTestWrite is the fixture's lone registered site.
const SiteTestWrite = "test/write"

// Inject mimics the production failpoint evaluation.
func Inject(site string) error { return nil }

// Eval mimics the outcome-returning form.
func Eval(site string) *Outcome { return nil }

// Outcome mimics the production outcome.
type Outcome struct{}

// Fire mimics firing a triggered outcome.
func (o *Outcome) Fire(site string) error { return nil }

// Package storage is the golden corpus for the faultsite analyzer.
// Its import path ends in internal/storage, so every mutating
// filesystem syscall must sit in a function that references the fault
// package.
package storage

import (
	"os"

	"kdb/internal/lint/testdata/src/faultsite/internal/fault"
)

// rawSync performs fragile syscalls with no failpoint in reach: the
// chaos harness cannot make them fail.
func rawSync(f *os.File) error {
	if err := f.Sync(); err != nil { // want "raw \(\*os.File\).Sync without a fault.Site guard"
		return err
	}
	return f.Truncate(0) // want "raw \(\*os.File\).Truncate without a fault.Site guard"
}

// rawRename mutates the filesystem through package os, unguarded.
func rawRename(from, to string) error {
	return os.Rename(from, to) // want "raw os.Rename without a fault.Site guard"
}

// rawWrites covers the write family.
func rawWrites(f *os.File, b []byte) {
	_, _ = f.Write(b)           // want "raw \(\*os.File\).Write without a fault.Site guard"
	_, _ = f.WriteString("x")   // want "raw \(\*os.File\).WriteString without a fault.Site guard"
	_ = os.WriteFile("p", b, 0) // want "raw os.WriteFile without a fault.Site guard"
}

// guardedSync evaluates a registered site first: the syscall is
// reachable by an armed fault, so it is exempt.
func guardedSync(f *os.File) error {
	if err := fault.Inject(fault.SiteTestWrite); err != nil {
		return err
	}
	return f.Sync()
}

// guardedViaEval counts too: any reference to the fault package marks
// the function injectable.
func guardedViaEval(f *os.File) error {
	if o := fault.Eval(fault.SiteTestWrite); o != nil {
		if err := o.Fire(fault.SiteTestWrite); err != nil {
			return err
		}
	}
	return f.Truncate(0)
}

// harmless performs no mutating syscalls: nothing to guard.
func harmless(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

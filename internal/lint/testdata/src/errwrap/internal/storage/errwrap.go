// Package storage is the golden corpus for the errwrap analyzer. Its
// import path ends in internal/storage, putting it inside the
// boundary-package scope where every error given to fmt.Errorf must be
// wrapped with %w.
package storage

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base failure")

// stringified drops the cause to %v: errors.Is can no longer see it.
func stringified(err error) error {
	return fmt.Errorf("read failed: %v", err) // want "formats an error value without %w"
}

// viaErrorMethod stringifies by hand, which is just as lossy.
func viaErrorMethod(err error) error {
	return fmt.Errorf("read failed: %s", err.Error()) // want "stringifies an error with \.Error\(\)"
}

// wrapped is the correct form: no diagnostic.
func wrapped(err error) error {
	return fmt.Errorf("read failed: %w", err)
}

// doubleWrapped wraps both causes (Go 1.20+): no diagnostic.
func doubleWrapped(cause, err error) error {
	return fmt.Errorf("%w (rewind failed: %w)", cause, err)
}

// halfWrapped wraps one cause and loses the other.
func halfWrapped(cause, err error) error {
	return fmt.Errorf("%w (rewind failed: %v)", cause, err) // want "formats an error value without %w.*2 error arg\(s\), 1 %w verb"
}

// nonError formats ordinary values: no diagnostic.
func nonError(n int, name string) error {
	return fmt.Errorf("relation %s has arity %d", name, n)
}

// percentEscapes must not count %% as a verb.
func percentEscapes(err error) error {
	return fmt.Errorf("at 50%%: %w", err)
}

// flaggedVerb still finds the w after flags and width.
func flaggedVerb(err error) error {
	return fmt.Errorf("cause: %+w", err)
}

// Package hotpathtest is the golden corpus for the hotpath analyzer:
// //kdb:hotpath bodies must be allocation-free, with //kdb:coldpath
// escaping guarded slow branches.
package hotpathtest

import "fmt"

var sink interface{}

// free is the shape the annotation demands: loads, stores, arithmetic.
//
//kdb:hotpath
func free(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// allocates trips every class of allocating construct.
//
//kdb:hotpath
func allocates(xs []int, n int, s string, b []byte) {
	_ = make([]int, n)          // want "hotpath: make allocates"
	_ = new(int)                // want "hotpath: new allocates"
	_ = append(xs, n)           // want "hotpath: append may grow and allocate"
	_ = []int{n}                // want "hotpath: slice literal allocates"
	_ = s + "suffix"            // want "hotpath: string concatenation allocates"
	_ = string(b)               // want "hotpath: string/\[\]byte conversion copies and allocates"
	_ = map[string]int{}        // want "hotpath: map literal allocates"
	_ = &struct{ x int }{x: n}  // want "hotpath: &T\{\} literal escapes to the heap"
	_ = func() int { return n } // want "hotpath: closure may escape to the heap"
	go fmt.Println()            // want "hotpath: go statement allocates a goroutine"
}

// callsFmt calls into a package that allocates on every call.
//
//kdb:hotpath
func callsFmt(err error) string {
	return fmt.Sprintf("%v", err) // want "hotpath: call into allocating package fmt"
}

// boxes passes a non-pointer-shaped value to an interface parameter.
//
//kdb:hotpath
func boxes(n int) {
	store(n) // want "hotpath: passing int to an interface parameter boxes it on the heap"
}

// pointerShaped values ride in the interface word: no diagnostic.
//
//kdb:hotpath
func pointerShaped(p *int) {
	store(p)
}

// coldBranch shows the escape hatch: the annotated statement is
// excluded so a guarded slow path can live inside a hot function.
//
//kdb:hotpath
func coldBranch(armed bool, n int) {
	if armed {
		//kdb:coldpath — tracing branch, taken only when armed
		sink = fmt.Sprintf("n=%d", n)
	}
}

// unannotated functions may allocate freely: no diagnostics.
func unannotated(n int) []int {
	return make([]int, n)
}

func store(v interface{}) { sink = v }

// Package kb is the golden corpus for the ctxflow analyzer. Its
// import path ends in internal/kb, putting it below entry-point depth:
// context.Background and context.TODO are rejected unless the function
// is an annotated entry point, and a function with a context in hand
// must not call Foo when FooContext exists.
package kb

import (
	"context"
	"net/http"
)

// severed starts a fresh context mid-layer: the caller's deadline and
// cancellation are lost.
func severed() context.Context {
	return context.Background() // want "context.Background below entry-point depth"
}

// undecided is no better.
func undecided() context.Context {
	return context.TODO() // want "context.TODO below entry-point depth"
}

// Exec is an audited compatibility wrapper: the documented start of a
// context chain.
//
//kdb:entrypoint
func Exec() error {
	return ExecContext(context.Background())
}

// ExecContext is the real implementation.
func ExecContext(ctx context.Context) error {
	return ctx.Err()
}

// DB has a Context-suffixed sibling pair of methods.
type DB struct{}

// Query evaluates without a context.
func (d *DB) Query() error { return nil }

// QueryContext evaluates under ctx.
func (d *DB) QueryContext(ctx context.Context) error { return ctx.Err() }

// Ping has no Context sibling; calling it drops nothing.
func (d *DB) Ping() error { return nil }

// dropsMethodContext has ctx in hand and discards it.
func dropsMethodContext(ctx context.Context, d *DB) error {
	return d.Query() // want "call to Query drops the in-scope context; use QueryContext"
}

// handlerDrops has a request (hence a context) in hand.
func handlerDrops(w http.ResponseWriter, r *http.Request, d *DB) {
	_ = d.Query() // want "call to Query drops the in-scope context; use QueryContext"
}

// threads passes the context on: no diagnostic.
func threads(ctx context.Context, d *DB) error {
	return d.QueryContext(ctx)
}

// noSibling calls a method without a Context variant: no diagnostic.
func noSibling(ctx context.Context, d *DB) error {
	return d.Ping()
}

// noContextInHand has no context parameter, so there is nothing to
// drop: no diagnostic.
func noContextInHand(d *DB) error {
	return d.Query()
}

// Run is a package-level sibling pair.
func Run() error { return nil }

// RunContext is its context-threaded form.
func RunContext(ctx context.Context) error { return ctx.Err() }

// dropsFuncContext drops ctx on a package-level call.
func dropsFuncContext(ctx context.Context) error {
	return Run() // want "call to Run drops the in-scope context; use RunContext"
}

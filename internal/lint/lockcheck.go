package lint

import (
	"go/ast"
	"go/types"
)

// LockCheck enforces annotation-driven lock discipline. A struct field
// marked
//
//	//kdb:guarded-by mu
//
// may only be read while mu (a sibling sync.Mutex or sync.RWMutex
// field) is held, and only be written while it is write-held. The
// check is flow-insensitive and per-function: a function "holds" the
// lock if its body acquires it (x.mu.Lock() / x.mu.RLock() on the
// same base path as the access) or if its doc comment declares that
// the caller does (//kdb:locked mu, //kdb:rlocked mu). Accesses
// through a local the function itself built from a composite literal
// are exempt — an unpublished object needs no lock.
//
// This is precisely the discipline whose violation caused the PR 6
// bug where Checkpoint truncated the WAL under a read lock: a write
// access to guarded state in a function that only ever acquired
// RLock.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "report accesses to //kdb:guarded-by fields outside the declared lock\n" +
		"(write accesses require the write lock; //kdb:locked and //kdb:rlocked\n" +
		"assert that the caller holds it)",
	Run: runLockCheck,
}

// lockMode distinguishes read-held from write-held locks.
type lockMode int

const (
	lockNone lockMode = iota
	lockRead
	lockWrite
)

// guardedField describes one annotated field.
type guardedField struct {
	mutex string // sibling mutex field name
}

func runLockCheck(pass *Pass) error {
	guarded := map[*types.Var]guardedField{}

	// Pass 1: collect annotated fields, validating the annotation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]types.Type{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						fieldNames[name.Name] = v.Type()
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu, ok := groupDirective("guarded-by", fld.Doc, fld.Comment)
				if !ok {
					continue
				}
				if mu == "" {
					pass.Reportf(fld.Pos(), "kdb:guarded-by needs a mutex field name")
					continue
				}
				mt, ok := fieldNames[mu]
				if !ok || !isMutexType(mt) {
					pass.Reportf(fld.Pos(), "kdb:guarded-by %s: no sibling sync.Mutex or sync.RWMutex field %q", mu, mu)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{mutex: mu}
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: check every function body.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockBody(pass, fn, guarded)
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if pkgPathOf(obj) != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func checkLockBody(pass *Pass, fn *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	// held maps "basePath.mutexName" to the strongest mode acquired
	// anywhere in the function (flow-insensitive).
	held := map[string]lockMode{}
	hold := func(key string, m lockMode) {
		if held[key] < m {
			held[key] = m
		}
	}

	recvName := ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvName = fn.Recv.List[0].Names[0].Name
	}
	applyDirective := func(name string, mode lockMode) {
		if arg, ok := funcDirective(fn, name); ok && arg != "" {
			for _, mu := range splitFields(arg) {
				key := mu
				if recvName != "" && !containsDot(mu) {
					key = recvName + "." + mu
				}
				hold(key, mode)
			}
		}
	}
	applyDirective("locked", lockWrite)
	applyDirective("rlocked", lockRead)

	// Locals built from composite literals in this function are
	// unpublished: accesses through them need no lock.
	fresh := map[string]bool{}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && isCompositeLitExpr(rhs) {
					fresh[id.Name] = true
				}
			}
		case *ast.CallExpr:
			// x.mu.Lock() / x.mu.RLock()
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var mode lockMode
			switch sel.Sel.Name {
			case "Lock":
				mode = lockWrite
			case "RLock":
				mode = lockRead
			default:
				return true
			}
			if path := exprPath(sel.X); path != "" {
				hold(path, mode)
			}
		}
		return true
	})

	// Now visit guarded-field accesses with parent context.
	var visit func(n ast.Node, writeTargets map[ast.Expr]bool)
	reported := map[*ast.SelectorExpr]bool{}
	check := func(sel *ast.SelectorExpr, write bool) {
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		g, ok := guarded[v]
		if !ok || reported[sel] {
			return
		}
		if root := rootIdent(sel.X); root != nil && fresh[root.Name] {
			return
		}
		base := exprPath(sel.X)
		if base == "" {
			return // not an ident chain; outside what this check models
		}
		key := base + "." + g.mutex
		need := lockRead
		verb := "reading"
		if write {
			need = lockWrite
			verb = "writing"
		}
		if held[key] >= need {
			return
		}
		reported[sel] = true
		if write && held[key] == lockRead {
			pass.Reportf(sel.Pos(), "%s %s.%s (guarded by %s) while holding only the read lock", verb, base, v.Name(), key)
			return
		}
		pass.Reportf(sel.Pos(), "%s %s.%s (guarded by %s) without holding %s", verb, base, v.Name(), key, key)
	}

	visit = func(n ast.Node, _ map[ast.Expr]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						check(sel, true)
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					check(sel, true)
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						check(sel, true)
					}
				}
			case *ast.SelectorExpr:
				check(n, false)
			}
			return true
		})
	}
	visit(fn.Body, nil)
}

// isCompositeLitExpr reports whether e is T{...}, &T{...}, or a
// new(T)-style allocation: a value this function just built.
func isCompositeLitExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// errwrapScope is where the structured-error taxonomy must survive:
// errors returned across these package boundaries are matched with
// errors.Is/As against ErrClosed, ErrDurability, LimitError, and the
// governor's stop errors, so dropping a cause to %v or %s there
// silently severs the chain.
var errwrapScope = []string{"internal/kb", "internal/storage", "internal/server"}

// ErrWrap reports fmt.Errorf calls in boundary packages that format an
// error value without a matching %w verb. Stringifying a cause (%v,
// %s, or err.Error()) breaks errors.Is/As for every caller above —
// the durability taxonomy and the server's error mapping both depend
// on the chain staying intact.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "in internal/kb, internal/storage and internal/server, every error\n" +
		"value given to fmt.Errorf must be wrapped with %w so errors.Is/As\n" +
		"reach the structured taxonomy through every return path",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	if !pass.PathHasSuffix(errwrapScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeObj(pass.Info, call)
			if fn == nil || fn.Name() != "Errorf" || pkgPathOf(fn) != "fmt" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // non-literal format: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			wraps := countWrapVerbs(format)
			errArgs := 0
			stringified := false
			for _, arg := range call.Args[1:] {
				t := pass.Info.Types[arg].Type
				if implementsError(t) {
					errArgs++
					continue
				}
				// err.Error() as an argument: an error stringified by hand.
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					if sel, ok := inner.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(inner.Args) == 0 {
						if implementsError(pass.Info.Types[sel.X].Type) {
							errArgs++
							stringified = true
						}
					}
				}
			}
			if errArgs > wraps {
				if stringified {
					pass.Reportf(call.Pos(), "fmt.Errorf stringifies an error with .Error(); pass the error itself and wrap it with %%w")
				} else {
					pass.Reportf(call.Pos(), "fmt.Errorf formats an error value without %%w; the cause is lost to errors.Is/As (%d error arg(s), %d %%w verb(s))", errArgs, wraps)
				}
			}
			return true
		})
	}
	return nil
}

// countWrapVerbs counts %w verbs in a fmt format string, skipping %%.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, width, precision, and argument indexes to find
		// the verb character.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}

package lint

import (
	"go/ast"
	"go/types"
)

// ctxflowScope is the request-path layer set: packages whose functions
// run under a caller's deadline and cancellation. Inside them,
// context.Background() and context.TODO() sever the chain — a query
// that should die with its request keeps running.
var ctxflowScope = []string{"internal/kb", "internal/server", "internal/eval", "internal/core"}

// CtxFlow enforces context propagation:
//
//  1. Below entry-point depth (the ctxflowScope packages), calls to
//     context.Background and context.TODO are rejected unless the
//     enclosing function's doc carries //kdb:entrypoint — the audited
//     compatibility wrappers (Exec → ExecContext and friends) that ARE
//     the documented start of a context chain.
//  2. Everywhere (cmd and internal alike): a function that already has
//     a context in hand — a context.Context parameter or an
//     *http.Request — must not call a method Foo when a FooContext
//     sibling exists; that call drops the caller's deadline and
//     cancellation on the floor.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background/TODO below entry-point depth in request paths\n" +
		"(annotate audited entry points with //kdb:entrypoint), and no calls\n" +
		"that drop an in-scope context when a ...Context variant exists",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	inScope := pass.PathHasSuffix(ctxflowScope...)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			_, entry := funcDirective(fn, "entrypoint")
			if inScope && !entry {
				checkBackground(pass, fn)
			}
			if hasContextInHand(pass, fn) {
				checkDroppedContext(pass, fn)
			}
		}
	}
	return nil
}

// checkBackground flags context.Background/TODO calls.
func checkBackground(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObj(pass.Info, call)
		if callee == nil || pkgPathOf(callee) != "context" {
			return true
		}
		if callee.Name() == "Background" || callee.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s below entry-point depth: thread the request context (or annotate the function //kdb:entrypoint if it is an audited chain root)", callee.Name())
		}
		return true
	})
}

// hasContextInHand reports whether fn receives a context.Context or an
// *http.Request parameter — either way, a live request context is in
// scope.
func hasContextInHand(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		t := pass.Info.Types[p.Type].Type
		if t == nil {
			continue
		}
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Context" && pkgPathOf(named.Obj()) == "context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Request" && pkgPathOf(named.Obj()) == "net/http"
}

// checkDroppedContext flags calls to Foo where a FooContext sibling
// with a leading context.Context parameter exists and no context is
// being passed.
func checkDroppedContext(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObj(pass.Info, call)
		if callee == nil {
			return true
		}
		name := callee.Name()
		if len(name) >= 7 && name[len(name)-7:] == "Context" {
			return true
		}
		// Already passing a context?
		for _, arg := range call.Args {
			if t := pass.Info.Types[arg].Type; t != nil && isContextType(t) {
				return true
			}
		}
		sibling := lookupContextSibling(callee, name+"Context")
		if sibling == nil {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s drops the in-scope context; use %s", name, sibling.Name())
		return true
	})
}

// lookupContextSibling finds FooContext next to Foo: as a method on the
// same receiver type, or as a package-level sibling function. The
// sibling counts only if its first parameter is a context.Context.
func lookupContextSibling(callee *types.Func, want string) *types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), want)
		cand = obj
	} else if callee.Pkg() != nil {
		cand = callee.Pkg().Scope().Lookup(want)
	}
	sibling, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 {
		return nil
	}
	if !isContextType(ssig.Params().At(0).Type()) {
		return nil
	}
	return sibling
}

package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct {
		Err string
	}
}

// ModuleRoot locates the enclosing module's root directory via the go
// command, so tests and tools behave identically from any working
// directory inside the module.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", errors.New("lint: not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// Load lists, parses, and type-checks the packages matching the given
// patterns (relative to moduleRoot). Dependencies are resolved from
// compiler export data produced by `go list -export`, so loading does
// not re-type-check the transitive closure from source. Test files are
// not analyzed: the invariants target production code.
//
// Explicit directory patterns (./internal/lint/testdata/src/x) work
// even under testdata directories, which `...` wildcards skip — that
// is how the golden corpora are loaded without becoming part of the
// ordinary build.
func Load(moduleRoot string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

package lint

import "testing"

// The golden corpora under testdata/src mirror the analysistest
// convention: fixture packages carry `// want "regex"` comments, and
// runGolden checks the diagnostics against them in both directions.
// Scoped analyzers (errwrap, ctxflow, faultsite) get fixture packages
// whose import paths replicate the in-scope suffixes
// (.../testdata/src/errwrap/internal/storage matches internal/storage).

func TestLockCheckGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/lockcheck", LockCheck)
}

func TestErrWrapGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/errwrap/internal/storage", ErrWrap)
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/ctxflow/internal/kb", CtxFlow)
}

func TestHotPathGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/hotpath", HotPath)
}

func TestFaultSiteGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/faultsite/internal/storage", FaultSite)
}

func TestMetricRegGolden(t *testing.T) {
	runGolden(t, "internal/lint/testdata/src/metricreg", MetricReg)
}

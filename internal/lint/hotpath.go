package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allocPkgs are packages whose exported API allocates on essentially
// every call; a hotpath body may not call into them at all.
var allocPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"log":     true,
	"sort":    true,
	"strings": true,
	"strconv": true,
	"bytes":   true,
	"regexp":  true,
	"reflect": true,
}

// HotPath makes the repo's AllocsPerRun==0 benchmark gates static. A
// function marked //kdb:hotpath must not contain allocating
// constructs: map/slice composite literals, &T{} heap literals, make,
// new, append, closures, go statements, string concatenation,
// string<->[]byte conversions, calls into fmt/errors/... , or
// interface boxing of non-pointer-shaped values. A statement preceded
// by a //kdb:coldpath comment is excluded — that is how a guarded
// slow branch (tracing enabled, fault armed) lives inside a hot
// function without weakening the check on the fast path.
//
// The check is local: calls to ordinary functions are permitted, on
// the grounds that any callee on the hot path is itself annotated (or
// gated by its own benchmark).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "//kdb:hotpath functions must be allocation-free: no composite\n" +
		"literals that escape, no make/new/append, no closures, no fmt, no\n" +
		"interface boxing; mark guarded slow branches //kdb:coldpath",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		// Lines whose statements the check skips: any line immediately
		// following (or containing) a //kdb:coldpath comment.
		cold := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := directiveArg(c.Text, "coldpath"); ok {
					p := pass.Fset.Position(c.End())
					cold[p.Line] = true
					cold[p.Line+1] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := funcDirective(fn, "hotpath"); !ok {
				continue
			}
			checkHotBody(pass, fn, cold)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl, cold map[int]bool) {
	var visit func(n ast.Node)
	visitStmtList := func(list []ast.Stmt) {
		for _, s := range list {
			if cold[pass.Fset.Position(s.Pos()).Line] {
				continue
			}
			visit(s)
		}
	}
	visit = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			visitStmtList(n.List)
			return
		case *ast.CaseClause:
			for _, e := range n.List {
				visit(e)
			}
			visitStmtList(n.Body)
			return
		case *ast.CommClause:
			visit(n.Comm)
			visitStmtList(n.Body)
			return
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hotpath: closure may escape to the heap")
			return
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath: go statement allocates a goroutine")
			return
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "hotpath: map literal allocates")
				case *types.Slice:
					pass.Reportf(n.Pos(), "hotpath: slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hotpath: &T{} literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.Types[n].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if v := pass.Info.Types[n].Value; v == nil { // non-constant
							pass.Reportf(n.Pos(), "hotpath: string concatenation allocates")
						}
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		// Generic descent for everything not handled structurally above.
		children(n, visit)
	}
	visitStmtList(fn.Body.List)
}

// checkHotCall inspects one call in a hotpath body.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			pass.Reportf(call.Pos(), "hotpath: make allocates")
			return
		case "new":
			pass.Reportf(call.Pos(), "hotpath: new allocates")
			return
		case "append":
			pass.Reportf(call.Pos(), "hotpath: append may grow and allocate")
			return
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion. string <-> []byte/[]rune copies.
		to := tv.Type.Underlying()
		if len(call.Args) == 1 {
			from := pass.Info.Types[call.Args[0]].Type
			if from != nil && isStringByteConv(from.Underlying(), to) {
				pass.Reportf(call.Pos(), "hotpath: string/[]byte conversion copies and allocates")
			}
		}
		return
	}

	callee := calleeObj(pass.Info, call)
	if callee != nil && allocPkgs[pkgPathOf(callee)] {
		pass.Reportf(call.Pos(), "hotpath: call into allocating package %s", pkgPathOf(callee))
		return
	}

	// Interface boxing: a non-pointer-shaped value passed where an
	// interface is expected is heap-boxed at the call site.
	sig, ok := typeOfFun(pass, call).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through unboxed
			}
			if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := pass.Info.Types[arg].Type
		if at == nil || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		pass.Reportf(arg.Pos(), "hotpath: passing %s to an interface parameter boxes it on the heap", at)
	}
}

func typeOfFun(pass *Pass, call *ast.CallExpr) types.Type {
	if t := pass.Info.Types[call.Fun].Type; t != nil {
		return t.Underlying()
	}
	return nil
}

// isPointerShaped reports whether values of t fit in an interface's
// data word without boxing: pointers, channels, maps, funcs, and
// unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return isStr(from) && isByteOrRuneSlice(to) || isByteOrRuneSlice(from) && isStr(to)
}

// children walks n's immediate children with visit, without
// re-entering n itself.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		visit(c)
		return false
	})
}

package lint

import (
	"go/ast"
	"go/types"
)

// faultsiteScope is where every fragile syscall must be injectable:
// the durable storage layer. The chaos harness can only prove crash
// invariants for failures it can provoke, so a raw syscall with no
// failpoint in reach is untested failure surface by construction.
var faultsiteScope = []string{"internal/storage"}

// riskyFileMethods are *os.File methods that mutate durable state.
var riskyFileMethods = map[string]bool{
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Truncate":    true,
}

// riskyOsFuncs are package-level os functions that mutate the
// filesystem.
var riskyOsFuncs = map[string]bool{
	"Rename":     true,
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Remove":     true,
	"RemoveAll":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"WriteFile":  true,
	"Truncate":   true,
}

// FaultSite keeps the failpoint catalog exhaustive as storage grows:
// in internal/storage, every function that performs a mutating
// filesystem syscall (Sync/Write/Rename/Create/Truncate/Remove on
// *os.File or package os) must also evaluate a registered fault.Site
// — fault.Inject, fault.Eval, or an Outcome method — so tests can
// make that exact operation fail. A function with no reference to the
// fault package performing a raw syscall is a hole in the PR 7 chaos
// model.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "every mutating filesystem syscall in internal/storage must sit in\n" +
		"a function that evaluates a registered fault.Site, keeping the\n" +
		"failpoint catalog exhaustive as storage grows",
	Run: runFaultSite,
}

func runFaultSite(pass *Pass) error {
	if !pass.PathHasSuffix(faultsiteScope...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if referencesFaultPkg(pass, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := riskySyscall(pass, call); ok {
					pass.Reportf(call.Pos(), "raw %s without a fault.Site guard in this function; add a failpoint (fault.Inject/Eval) or route through a guarded helper", name)
				}
				return true
			})
		}
	}
	return nil
}

// referencesFaultPkg reports whether fn's body touches the fault
// package at all: calls fault.Inject/Eval, fires an Outcome, or reads
// fault.ErrInjected. Any such reference means the function's fragile
// operations are reachable by an armed site.
func referencesFaultPkg(pass *Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			if pathIs(pkgPathOf(obj), "internal/fault") {
				found = true
			}
		}
		return !found
	})
	return found
}

// riskySyscall reports whether call is a mutating filesystem syscall,
// returning a printable name like "(*os.File).Sync" or "os.Rename".
func riskySyscall(pass *Pass, call *ast.CallExpr) (string, bool) {
	callee := calleeObj(pass.Info, call)
	if callee == nil {
		return "", false
	}
	if pkgPathOf(callee) != "os" {
		return "", false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "File" {
			return "", false
		}
		if riskyFileMethods[callee.Name()] {
			return "(*os.File)." + callee.Name(), true
		}
		return "", false
	}
	if riskyOsFuncs[callee.Name()] {
		return "os." + callee.Name(), true
	}
	return "", false
}

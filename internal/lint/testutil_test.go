package lint

import (
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `want "regex"` clauses in fixture comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// runGolden loads the fixture package at dir (relative to the module
// root, e.g. "internal/lint/testdata/src/errwrap/internal/storage"),
// runs the analyzers, and matches the diagnostics against `// want
// "regex"` comments: every diagnostic must be expected on its line,
// and every expectation must fire.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./"+dir)
	if err != nil {
		t.Fatal(err)
	}
	var target *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.Dir, "/"+dir) || p.Dir == dir {
			target = p
		}
	}
	if target == nil {
		t.Fatalf("fixture package %s not among loaded targets", dir)
	}
	diags, err := Run([]*Package{target}, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := target.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		rest := wants[k][:0:0]
		for _, re := range wants[k] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[k] = rest
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

// loadRepo loads the entire module once per test binary.
func loadRepo(t *testing.T) []*Package {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoClean is the self-lint gate: the full analyzer suite must
// report zero findings over the repo itself. A failure here means a
// change broke one of the engine's machine-checked invariants (or
// needs an annotation making the exception explicit).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-module load")
	}
	pkgs := loadRepo(t)
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("kdb-vet reports %d finding(s) on the repo; run `go run ./cmd/kdb-vet ./...`", len(diags))
	}
}

// TestAnalyzerMetadata keeps names/docs usable by the -only flag and
// the DESIGN §5h table.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 6 {
		t.Errorf("want 6 analyzers, have %d", len(seen))
	}
}

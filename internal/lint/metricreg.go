package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// registryMakers are the obs.Registry methods that create instruments.
var registryMakers = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// MetricReg keeps the metrics catalog self-describing as it grows:
// every instrument registered with a constant name (Counter, Gauge,
// Histogram on the obs registry) must have its HELP text set exactly
// once in the same package, and never set empty. A metric without HELP
// renders as a bare name on /metrics — undocumented telemetry — and a
// second SetHelp for the same name silently overwrites the first, so
// both are findings. Dynamic metric names are out of reach and skipped.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc: "every obs metric registered with a constant name must have\n" +
		"non-empty HELP text set exactly once in its package, keeping\n" +
		"the /metrics surface self-describing as instruments grow",
	Run: runMetricReg,
}

func runMetricReg(pass *Pass) error {
	// Pass 1: index the package's SetHelp calls by constant metric name.
	helped := map[string]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRegistryMethod(pass, call, "SetHelp") || len(call.Args) != 2 {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				return true
			}
			if help, ok := constString(pass, call.Args[1]); ok && help == "" {
				pass.Reportf(call.Pos(), "metric %q registered with empty HELP text", name)
			}
			if first, dup := helped[name]; dup {
				pass.Reportf(call.Pos(), "HELP for metric %q set more than once in this package (first at %s)",
					name, pass.Fset.Position(first))
				return true
			}
			helped[name] = call.Pos()
			return true
		})
	}
	// Pass 2: every constant-named instrument must be covered.
	reported := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(pass.Info, call)
			if callee == nil || !registryMakers[callee.Name()] || !isRegistryMethod(pass, call, callee.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok || reported[name] {
				return true
			}
			if _, ok := helped[name]; !ok {
				reported[name] = true
				pass.Reportf(call.Pos(), "metric %q is registered without HELP text; call SetHelp(%q, ...) in this package", name, name)
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether call invokes the named method on the
// obs metrics registry (or its testdata replica).
func isRegistryMethod(pass *Pass, call *ast.CallExpr, method string) bool {
	callee := calleeObj(pass.Info, call)
	if callee == nil || callee.Name() != method {
		return false
	}
	if !pathIs(pkgPathOf(callee), "internal/obs") {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// constString resolves an expression to its constant string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

package chaos

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestChaosSeeds is the CI chaos matrix: 24 fixed seeds, each driving
// a full fault/crash scenario across two tenants. The seed is in the
// subtest name, so a failure line is its own reproduction recipe:
//
//	go test -race -run 'TestChaosSeeds/seed=7' ./internal/chaos/
func TestChaosSeeds(t *testing.T) {
	before := runtime.NumGoroutine()
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{Seed: seed, Ops: 150, Tenants: 2, Dir: t.TempDir()}
			if err := Run(cfg); err != nil {
				t.Fatalf("chaos scenario failed (repro: seed=%d): %v", seed, err)
			}
		})
	}
	// No scenario may leak goroutines: every KB was closed, and KBs
	// spawn no background workers outside evaluation. Allow a grace
	// period for runtime bookkeeping to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before scenarios, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosHeavy is a deeper single scenario for local soak testing;
// CI runs the matrix above instead.
func TestChaosHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy chaos scenario skipped in -short mode")
	}
	cfg := Config{Seed: 424242, Ops: 1200, Tenants: 3, Dir: t.TempDir()}
	if err := Run(cfg); err != nil {
		t.Fatalf("heavy chaos scenario failed (repro: seed=424242): %v", err)
	}
}

// Package chaos is a deterministic fault-and-crash test harness for
// the durable knowledge base. A scenario drives seeded random
// workloads (assert / retract / retrieve / explain / checkpoint /
// close) across tenants while failpoints inject WAL fsync failures,
// torn writes, and checkpoint crashes, and processes "die" by
// abandoning the KB handle mid-flight. After every recovery the
// harness checks the durability contract:
//
//   - the reopened KB holds exactly one of the consistent durable
//     states the model predicted — no torn facts, no phantoms;
//   - retract tombstones that were acknowledged survive recovery;
//   - only structured errors (ErrClosed, ErrDurability, injected
//     faults) ever escape an operation;
//   - in-RAM query results always match the model's RAM state, even
//     while the WAL underneath is poisoned.
//
// The model is reactive: it never peeks at fault-registry state but
// classifies each operation by its returned error. An acknowledged
// write is durable; a write failing with ErrDurability changed RAM
// only; a failed checkpoint forks the set of possible durable states
// (the snapshot may or may not have been published) and a reopen
// collapses it to whichever state the disk actually held.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"kdb/internal/fault"
	"kdb/internal/governor"
	"kdb/internal/kb"
	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// rulesProgram is reloaded after every reopen (rules are not
// persisted by the store). The seed fact keeps the edge predicate
// defined for the load-time analyzer even on an empty store.
const rulesProgram = `
	edge(a, a).
	path(X, Y) :- edge(X, Y).
	path(X, Z) :- edge(X, Y), path(Y, Z).
`

// seedKey is the model key of the seed fact rulesProgram asserts.
const seedKey = "a,a"

// syms is the constant domain facts draw from: 36 possible edges.
var syms = []string{"a", "b", "c", "d", "e", "f"}

// Config parameterizes one chaos scenario.
type Config struct {
	// Seed makes the whole scenario deterministic; print it on failure.
	Seed int64
	// Ops is the number of workload operations per tenant-interleaved
	// run (default 150).
	Ops int
	// Tenants is how many independent KBs the scenario interleaves
	// (default 2).
	Tenants int
	// Dir is the scratch root; one subdirectory per tenant.
	Dir string
	// Trace, when set, receives one line per operation — the repro log
	// for a failing seed.
	Trace func(format string, args ...any)
}

// factSet is one candidate durable state.
type factSet map[string]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s factSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// tenant is one KB under test plus its model state.
type tenant struct {
	name  string
	dir   string
	k     *kb.KB
	trace func(format string, args ...any)
	// ram is what queries must see right now.
	ram factSet
	// states are the candidate durable fact sets; a reopen must observe
	// exactly one of them. Multiple candidates exist only between a
	// failed checkpoint and the next successful checkpoint or reopen.
	states []factSet
	// walLast is the last acknowledged record per fact in the current
	// WAL era (+1 insert, -1 tombstone), kept since the last successful
	// checkpoint. It predicts the replay-over-new-snapshot candidate: a
	// checkpoint that dies between snapshot rename and WAL reset leaves
	// the new snapshot AND the old log on disk, and replaying the log
	// resurrects facts that were durably inserted but whose retract
	// tombstone never made it (and re-kills durably tombstoned facts
	// that were re-inserted only in RAM).
	walLast map[string]int8
}

// Run executes one seeded scenario and returns the first invariant
// violation, or nil.
func Run(cfg Config) error {
	if cfg.Ops <= 0 {
		cfg.Ops = 150
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fault.Reset()
	defer fault.Reset()

	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		tn := &tenant{
			name:    fmt.Sprintf("t%d", i),
			dir:     fmt.Sprintf("%s/t%d", cfg.Dir, i),
			trace:   cfg.Trace,
			ram:     factSet{},
			states:  []factSet{{}},
			walLast: map[string]int8{},
		}
		if tn.trace == nil {
			tn.trace = func(string, ...any) {}
		}
		if err := tn.open(); err != nil {
			return err
		}
		tenants[i] = tn
	}
	defer func() {
		for _, tn := range tenants {
			if tn.k != nil {
				_ = tn.k.Close()
			}
		}
	}()

	for op := 0; op < cfg.Ops; op++ {
		tn := tenants[rng.Intn(len(tenants))]
		if err := tn.step(rng); err != nil {
			return fmt.Errorf("op %d: %w", op, err)
		}
	}
	// Final crash on every tenant: the recovery invariant must hold
	// whatever mid-flight state the workload left behind.
	for _, tn := range tenants {
		if err := tn.crashAndRecover(); err != nil {
			return fmt.Errorf("final crash: %w", err)
		}
		if err := tn.k.Close(); err != nil {
			return fmt.Errorf("%s: final close: %w", tn.name, err)
		}
		tn.k = nil
	}
	return nil
}

// step runs one weighted random operation.
func (tn *tenant) step(rng *rand.Rand) error {
	switch n := rng.Intn(100); {
	case n < 30:
		return tn.assert(randomPair(rng))
	case n < 45:
		return tn.retract(randomPair(rng))
	case n < 60:
		return tn.verifyEdges()
	case n < 67:
		return tn.verifyPaths()
	case n < 74:
		return tn.explain(rng)
	case n < 84:
		return tn.armFault(rng)
	case n < 94:
		return tn.checkpoint()
	case n < 97:
		return tn.crashAndRecover()
	default:
		return tn.closeAndRecover()
	}
}

func randomPair(rng *rand.Rand) (string, string) {
	return syms[rng.Intn(len(syms))], syms[rng.Intn(len(syms))]
}

func edgeAtom(x, y string) term.Atom {
	return term.Atom{Pred: "edge", Args: []term.Term{term.Sym(x), term.Sym(y)}}
}

// open (re)opens the tenant's KB and reloads the rules program,
// folding the program's seed fact into the model.
func (tn *tenant) open() error {
	k, err := kb.Open(tn.dir)
	if err != nil {
		return fmt.Errorf("%s: open: %w", tn.name, err)
	}
	tn.k = k
	if err := k.LoadString(rulesProgram); err != nil {
		return fmt.Errorf("%s: reload program: %w", tn.name, err)
	}
	// The load (re)asserted the seed fact; on a fresh WAL the append
	// succeeds, so it is durable in every candidate state.
	if !tn.ram[seedKey] {
		tn.walLast[seedKey] = 1 // fresh: the load appended a log record
	}
	tn.ram[seedKey] = true
	for _, s := range tn.states {
		s[seedKey] = true
	}
	return nil
}

// classify checks the structured-errors-only invariant: an operation
// may succeed, or fail with one of the documented error classes —
// anything else (a raw I/O error, a torn internal state) is a bug.
func classify(opName string, err error) (durability bool, _ error) {
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, storage.ErrDurability):
		return true, nil
	case errors.Is(err, fault.ErrInjected):
		// An injected fault that escaped without the durability tag:
		// legal only for non-write paths (open, replay).
		return false, nil
	case errors.Is(err, kb.ErrClosed), errors.Is(err, governor.ErrCanceled):
		return false, nil
	default:
		var le *governor.LimitError
		if errors.As(err, &le) {
			return false, nil
		}
		return false, fmt.Errorf("%s: unstructured error escaped: %w", opName, err)
	}
}

// assert inserts edge(x, y), updating the model by the outcome: an
// acknowledged insert is durable everywhere; a durability failure
// changed RAM only (the WAL frame was rewound or will be truncated).
func (tn *tenant) assert(x, y string) error {
	key := x + "," + y
	err := tn.k.Assert(edgeAtom(x, y))
	tn.trace("%s assert %s,%s err=%v", tn.name, x, y, err)
	durability, cerr := classify(tn.name+": assert", err)
	if cerr != nil {
		return cerr
	}
	switch {
	case err == nil:
		if tn.ram[key] {
			return nil // duplicate: satisfied in RAM, WAL untouched
		}
		tn.ram[key] = true
		tn.walLast[key] = 1
		for _, s := range tn.states {
			s[key] = true
		}
	case durability:
		tn.ram[key] = true // reached RAM, not the log
	default:
		return fmt.Errorf("%s: assert edge(%s, %s): unexpected class %v", tn.name, x, y, err)
	}
	return nil
}

// retract removes edge(x, y): an acknowledged tombstone is durable
// everywhere; a durability failure removed the fact from RAM while
// the durable copy (if any) survives.
func (tn *tenant) retract(x, y string) error {
	key := x + "," + y
	removed, err := tn.k.Retract(edgeAtom(x, y))
	tn.trace("%s retract %s,%s removed=%v err=%v", tn.name, x, y, removed, err)
	durability, cerr := classify(tn.name+": retract", err)
	if cerr != nil {
		return cerr
	}
	switch {
	case err == nil && removed:
		delete(tn.ram, key)
		tn.walLast[key] = -1
		for _, s := range tn.states {
			delete(s, key)
		}
	case err == nil:
		if tn.ram[key] {
			return fmt.Errorf("%s: retract edge(%s, %s) reported absent but model has it in RAM", tn.name, x, y)
		}
	case durability:
		delete(tn.ram, key)
	default:
		return fmt.Errorf("%s: retract edge(%s, %s): unexpected class %v", tn.name, x, y, err)
	}
	return nil
}

// verifyEdges checks that a retrieve sees exactly the model's RAM
// state — including while the WAL is poisoned: reads must keep
// serving the in-RAM relations.
func (tn *tenant) verifyEdges() error {
	got, err := tn.queryPairs("retrieve edge(X, Y).")
	if err != nil {
		return err
	}
	if !got.equal(tn.ram) {
		return fmt.Errorf("%s: retrieve edge mismatch: got %v, want %v", tn.name, got.sorted(), tn.ram.sorted())
	}
	return nil
}

// verifyPaths checks the derived relation against the transitive
// closure of the model's RAM edges.
func (tn *tenant) verifyPaths() error {
	got, err := tn.queryPairs("retrieve path(X, Y).")
	if err != nil {
		return err
	}
	want := closure(tn.ram)
	if !got.equal(want) {
		return fmt.Errorf("%s: retrieve path mismatch: got %v, want %v", tn.name, got.sorted(), want.sorted())
	}
	return nil
}

// explain asks for the provenance of a derivable path fact and
// requires at least one derivation tree.
func (tn *tenant) explain(rng *rand.Rand) error {
	reach := closure(tn.ram).sorted()
	if len(reach) == 0 {
		return nil
	}
	key := reach[rng.Intn(len(reach))]
	var x, y string
	fmt.Sscanf(key, "%1s,%1s", &x, &y)
	res, err := tn.k.ExecString(fmt.Sprintf("explain path(%s, %s).", x, y))
	if _, cerr := classify(tn.name+": explain", err); cerr != nil {
		return cerr
	}
	if err != nil {
		return nil
	}
	if res.Explanation == nil || len(res.Explanation.Trees) == 0 {
		return fmt.Errorf("%s: explain path(%s, %s): no derivation for a derivable fact", tn.name, x, y)
	}
	return nil
}

// queryPairs runs a retrieve and returns the answers as a factSet.
func (tn *tenant) queryPairs(stmt string) (factSet, error) {
	res, err := tn.k.ExecString(stmt)
	if _, cerr := classify(tn.name+": query", err); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %s: %w", tn.name, stmt, err)
	}
	q, ok := res.Query.(*parser.Retrieve)
	if !ok || res.Retrieve == nil {
		return nil, fmt.Errorf("%s: %s: no retrieve result", tn.name, stmt)
	}
	out := factSet{}
	for _, a := range res.Retrieve.Atoms(q.Subject) {
		if len(a.Args) != 2 {
			return nil, fmt.Errorf("%s: %s: unexpected answer %v", tn.name, stmt, a)
		}
		out[a.Args[0].Name()+","+a.Args[1].Name()] = true
	}
	return out, nil
}

// armFault arms one random failpoint for its next pass. The model
// does not remember what was armed — every operation classifies its
// own outcome — so faults may fire on any tenant, or never.
func (tn *tenant) armFault(rng *rand.Rand) error {
	type arm struct {
		site string
		out  fault.Outcome
	}
	choices := []arm{
		{fault.SiteWALSync, fault.Outcome{Err: fault.ErrInjected}},
		{fault.SiteWALFlush, fault.Outcome{Err: fault.ErrInjected}},
		{fault.SiteWALAppend, fault.Outcome{TornBytes: 1 + rng.Intn(8)}},
		{fault.SiteSnapshotSync, fault.Outcome{Err: fault.ErrInjected}},
		{fault.SiteSnapshotRename, fault.Outcome{Err: fault.ErrInjected}},
		{fault.SiteCheckpointReset, fault.Outcome{Err: fault.ErrInjected}},
	}
	c := choices[rng.Intn(len(choices))]
	// Enable replaces any previous arming of the same site; one-shot
	// policies keep the blast radius of each fault classifiable.
	tn.trace("arm %s torn=%d", c.site, c.out.TornBytes)
	if err := fault.Enable(c.site, c.out, fault.Policy{Times: 1}); err != nil {
		return fmt.Errorf("arming %s: %w", c.site, err)
	}
	return nil
}

// checkpoint folds the WAL into a snapshot. Success collapses the
// candidate durable states to RAM (including facts whose WAL append
// had failed — the snapshot captures RAM) and starts a fresh WAL era.
// Failure forks the candidates: depending on where it died, the
// durable state is unchanged, is the new snapshot alone (WAL emptied
// before the crash point), or is the new snapshot with the OLD log
// still behind it — in which case the next recovery replays that log
// over the snapshot, resurrecting durably-inserted facts whose
// retract never reached the log and re-killing durably-tombstoned
// facts that lived only in RAM.
func (tn *tenant) checkpoint() error {
	err := tn.k.Checkpoint()
	tn.trace("%s checkpoint err=%v", tn.name, err)
	durability, cerr := classify(tn.name+": checkpoint", err)
	if cerr != nil {
		return cerr
	}
	switch {
	case err == nil:
		tn.states = []factSet{tn.ram.clone()}
		tn.walLast = map[string]int8{}
	case durability:
		tn.addState(tn.ram.clone())
		tn.addState(tn.replayCandidate())
	default:
		return fmt.Errorf("%s: checkpoint: unexpected class %v", tn.name, err)
	}
	return nil
}

// addState appends a candidate durable state unless an equal one is
// already tracked, keeping the fork set small across repeated
// checkpoint failures.
func (tn *tenant) addState(s factSet) {
	for _, have := range tn.states {
		if have.equal(s) {
			return
		}
	}
	tn.states = append(tn.states, s)
}

// replayCandidate predicts the durable state when a failed checkpoint
// published its snapshot but left the old WAL intact: recovery loads
// the snapshot (= RAM now) and then replays the old log over it. The
// log's last record per fact wins; facts untouched by the log keep
// their snapshot membership.
func (tn *tenant) replayCandidate() factSet {
	out := factSet{}
	for k := range tn.ram {
		if tn.walLast[k] != -1 {
			out[k] = true
		}
	}
	for k, v := range tn.walLast {
		if v == 1 {
			out[k] = true
		}
	}
	return out
}

// crashAndRecover simulates a process death: the KB handle is
// abandoned without Close (every acknowledged append was already
// flushed, so nothing acked is buffered) and the store is reopened
// from disk. The observed fact set must equal exactly one candidate
// durable state; the model then collapses onto the observation.
func (tn *tenant) crashAndRecover() error {
	// The faulty environment does not survive the "reboot": pending
	// one-shot faults are cleared so recovery itself runs clean.
	fault.Reset()
	tn.trace("%s crash", tn.name)
	tn.k = nil // crash: no Close, no flush, fd abandoned
	return tn.recover()
}

// closeAndRecover is the clean variant: Close flushes and releases
// the store, and reopening must still land on a candidate state.
func (tn *tenant) closeAndRecover() error {
	fault.Reset()
	tn.trace("%s clean close", tn.name)
	err := tn.k.Close()
	if _, cerr := classify(tn.name+": close", err); cerr != nil {
		return cerr
	}
	tn.k = nil
	return tn.recover()
}

// recover reopens the store and enforces the recovery invariant.
func (tn *tenant) recover() error {
	k, err := kb.Open(tn.dir)
	if err != nil {
		return fmt.Errorf("%s: reopen: %w", tn.name, err)
	}
	tn.trace("%s recover", tn.name)
	observed := factSet{}
	for _, a := range k.Store().Facts("edge") {
		observed[a.Args[0].Name()+","+a.Args[1].Name()] = true
	}
	matched := false
	for _, s := range tn.states {
		if observed.equal(s) {
			matched = true
			break
		}
	}
	if !matched {
		var cands [][]string
		for _, s := range tn.states {
			cands = append(cands, s.sorted())
		}
		k.Close()
		return fmt.Errorf("%s: recovered state %v matches no candidate durable state %v", tn.name, observed.sorted(), cands)
	}
	// Collapse: disk has spoken. RAM now equals the durable state.
	// walLast is NOT cleared: reopening does not reset the log, so the
	// era's records are still on disk and still shape the replay
	// candidate of any future failed checkpoint. (If the log was in
	// fact emptied by a mid-reset crash, the stale entries merely add
	// an unreachable candidate — over-approximation is safe.)
	tn.ram = observed.clone()
	tn.states = []factSet{observed}
	tn.k = k
	if err := k.LoadString(rulesProgram); err != nil {
		return fmt.Errorf("%s: reload program: %w", tn.name, err)
	}
	if !tn.ram[seedKey] {
		tn.walLast[seedKey] = 1 // fresh: the load appended a log record
	}
	tn.ram[seedKey] = true
	for _, s := range tn.states {
		s[seedKey] = true
	}
	return nil
}

// closure computes the transitive closure of the edge set: the model
// prediction for the derived path relation.
func closure(edges factSet) factSet {
	adj := make(map[string][]string)
	for k := range edges {
		var x, y string
		fmt.Sscanf(k, "%1s,%1s", &x, &y)
		adj[x] = append(adj[x], y)
	}
	out := factSet{}
	for start := range adj {
		// DFS from start over the edge relation.
		stack := append([]string(nil), adj[start]...)
		seen := map[string]bool{}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !out[start+","+n] {
				out[start+","+n] = true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, adj[n]...)
			}
		}
	}
	return out
}

package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kdb/internal/fault"
)

// File formats.
//
// Snapshot (kdb.snap):
//
//	magic "KDBSNAP1"
//	repeat: uvarint record length, record bytes (encodeFact), crc32(record)
//	written to a temp file and atomically renamed.
//
// Write-ahead log (kdb.wal):
//
//	magic "KDBWAL01"
//	repeat: uvarint record length, record bytes, crc32(record)
//	A torn or corrupt tail is detected by length/CRC and truncated.
//
// A WAL record is either an insert (encodeFact bytes verbatim) or a
// tombstone: a 0x00 byte followed by encodeFact bytes. Insert payloads
// begin with uvarint(len(pred)) and predicate names are nonempty, so
// the first byte of an insert record is never 0x00 — logs written
// before tombstones existed replay unchanged.

const (
	snapshotName  = "kdb.snap"
	walName       = "kdb.wal"
	snapshotMagic = "KDBSNAP1"
	walMagic      = "KDBWAL01"
	tombstoneTag  = 0x00
	maxRecordSize = 1 << 24 // 16 MiB sanity bound on a single fact record
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// writeRecord frames one record: uvarint length, payload, crc32.
func writeRecord(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(crc[:])
	return err
}

// errTornRecord marks a truncated or corrupt record tail.
var errTornRecord = errors.New("storage: torn record")

// readRecord reads one framed record.
func readRecord(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornRecord
	}
	if n > maxRecordSize {
		return nil, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornRecord
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, errTornRecord
	}
	if binary.BigEndian.Uint32(crc[:]) != crc32.Checksum(payload, crcTable) {
		return nil, errTornRecord
	}
	return payload, nil
}

// wal is an append-only write-ahead log of fact insertions.
type wal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// durable is the file offset up to which every record is known fully
	// written and synced. A failed append rewinds the log to this
	// boundary so a partial frame never prefixes later records.
	//kdb:guarded-by mu
	durable int64
	// failed, once set, poisons the log: the rewind after a failed
	// append itself failed, so the on-disk/in-buffer state is unknown
	// and every later append returns this error.
	//kdb:guarded-by mu
	failed error
	// obs, when non-nil, points at the owning store's observer slot;
	// append and fsync latencies are reported through it.
	obs *observerHolder
}

// openWAL opens (or creates) the log at path, replaying every valid
// record through apply (tombstone reports whether the record is a
// deletion). A torn tail is truncated so the next append starts from a
// clean boundary. A freshly created log's directory entry is fsynced so
// the file itself survives a crash.
func openWAL(path string, apply func(pred string, t Tuple, tombstone bool) error) (*wal, error) {
	if err := fault.Inject(fault.SiteWALOpen); err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	validEnd, err := replayWAL(f, apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &wal{path: path, f: f, w: bufio.NewWriter(f), durable: validEnd}
	if validEnd == 0 {
		if _, err := w.w.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: write wal magic: %w", err)
		}
		if err := w.flush(); err != nil {
			f.Close()
			return nil, err
		}
		w.durable = int64(len(walMagic))
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in
// it is durable. Without it a crash can lose the file itself even
// though its contents were synced. Filesystems that cannot fsync a
// directory report EINVAL or ENOTSUP (tmpfs variants, some network
// and FUSE mounts); those are tolerated — on such filesystems the
// directory entry is as durable as it will ever get, and refusing to
// run there would fail every WAL and snapshot creation outright.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	err = d.Sync()
	// An injected fault replaces the Sync result, flowing through the
	// same tolerance check as a real filesystem error — so tests can
	// prove both that EINVAL/ENOTSUP are tolerated and that anything
	// else fails the caller.
	if ierr := fault.Inject(fault.SiteDirSync); ierr != nil {
		err = ierr
	}
	if ignorableSyncErr(err) {
		err = nil
	}
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}

// replayWAL applies all valid records and returns the offset of the last
// valid byte (magic included).
func replayWAL(f *os.File, apply func(string, Tuple, bool) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() == 0 {
		return 0, nil
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != walMagic {
		return 0, fmt.Errorf("storage: %s is not a kdb WAL", f.Name())
	}
	valid := int64(len(walMagic))
	for {
		if err := fault.Inject(fault.SiteWALReplay); err != nil {
			return 0, fmt.Errorf("storage: wal replay: %w", err)
		}
		payload, err := readRecord(r)
		if err == io.EOF {
			return valid, nil
		}
		if err == errTornRecord {
			return valid, nil // crash tail: keep the valid prefix
		}
		if err != nil {
			return 0, err
		}
		body := payload
		tombstone := len(payload) > 0 && payload[0] == tombstoneTag
		if tombstone {
			body = payload[1:]
		}
		pred, tuple, err := decodeFact(body)
		if err != nil {
			return valid, nil // treat undecodable content as torn
		}
		if err := apply(pred, tuple, tombstone); err != nil {
			return 0, err
		}
		valid += int64(uvarintLen(uint64(len(payload)))) + int64(len(payload)) + 4
	}
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// append logs one insertion and syncs it to stable storage. On failure
// the log is rewound to its last durable record boundary, so a torn
// frame left in the buffer (or the file) can never corrupt the records
// appended after it; if even the rewind fails, the log is poisoned and
// every later append reports the sticky error.
func (w *wal) append(pred string, t Tuple) error {
	payload, err := encodeFact(pred, t)
	if err != nil {
		return err // nothing was buffered; the log is still clean
	}
	return w.appendPayload(payload)
}

// appendDelete logs a tombstone for one fact (see the format note at the
// top of this file).
func (w *wal) appendDelete(pred string, t Tuple) error {
	fact, err := encodeFact(pred, t)
	if err != nil {
		return err
	}
	payload := make([]byte, 0, len(fact)+1)
	payload = append(payload, tombstoneTag)
	payload = append(payload, fact...)
	return w.appendPayload(payload)
}

func (w *wal) appendPayload(payload []byte) error {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return fmt.Errorf("%w: wal poisoned by earlier failure: %w", ErrDurability, w.failed)
	}
	if o := fault.Eval(fault.SiteWALAppend); o != nil {
		if err := w.injectAppendFault(o, payload); err != nil {
			return err
		}
	}
	if err := writeRecord(w.w, payload); err != nil {
		w.recoverLocked(err)
		return err
	}
	if err := w.flushLocked(); err != nil {
		w.recoverLocked(err)
		return err
	}
	framed := int64(uvarintLen(uint64(len(payload)))) + int64(len(payload)) + 4
	w.durable += framed
	if o := w.obs.get(); o != nil {
		o.ObserveWALAppend(time.Since(start), int(framed))
	}
	return nil
}

// injectAppendFault applies an armed append failpoint. A torn-write
// outcome simulates a crash mid-frame: a prefix of the framed record
// reaches the file and the log is poisoned — no rewind runs, exactly
// as if the process had died before it could. Recovery happens where
// it would after a real crash: the torn tail is truncated at the next
// open. Every other outcome takes the production error path through
// recoverLocked (or returns nil for latency-only outcomes).
//
//kdb:locked mu
func (w *wal) injectAppendFault(o *fault.Outcome, payload []byte) error {
	if o.TornBytes > 0 {
		var frame bytes.Buffer
		if err := writeRecord(&frame, payload); err != nil {
			return err
		}
		k := o.TornBytes
		if k > frame.Len() {
			k = frame.Len()
		}
		_, _ = w.f.Write(frame.Bytes()[:k])
		_ = w.f.Sync()
		err := fmt.Errorf("%w: torn write at %s", fault.ErrInjected, fault.SiteWALAppend)
		w.failed = err
		return err
	}
	err := o.Fire(fault.SiteWALAppend)
	if err != nil {
		w.recoverLocked(err)
	}
	return err
}

// recoverLocked rewinds the log to the last durable boundary after a
// failed append: the file is truncated to the durable offset and the
// buffered writer is reset so the partial frame's bytes are dropped.
// If the rewind fails the log is poisoned. Both failure paths wrap the
// rewind error with %w alongside the original cause, so errors.Is
// still reaches whatever the filesystem reported (the errwrap
// analyzer holds this line).
//
//kdb:locked mu
func (w *wal) recoverLocked(cause error) {
	err := fault.Inject(fault.SiteWALRewind)
	if err == nil {
		err = w.f.Truncate(w.durable)
	}
	if err != nil {
		w.failed = fmt.Errorf("%w (rewind truncate failed: %w)", cause, err)
		return
	}
	if _, err := w.f.Seek(w.durable, io.SeekStart); err != nil {
		w.failed = fmt.Errorf("%w (rewind seek failed: %w)", cause, err)
		return
	}
	w.w.Reset(w.f)
}

func (w *wal) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *wal) flushLocked() error {
	if err := fault.Inject(fault.SiteWALFlush); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := fault.Inject(fault.SiteWALSync); err != nil {
		return err
	}
	start := time.Now()
	err := w.f.Sync()
	if o := w.obs.get(); err == nil && o != nil {
		o.ObserveWALSync(time.Since(start))
	}
	return err
}

// reset truncates the log after a successful snapshot. It also clears a
// poisoned state: the snapshot captured every stored fact, so the old
// log content no longer matters.
// A failure anywhere past the truncate leaves the file and w.durable
// out of sync — the old log is already destroyed — so every error path
// poisons the log. Appending to a half-reset log would otherwise place
// records at offsets the rewind bookkeeping no longer describes,
// silently corrupting later records (found by the chaos harness). The
// poison clears on the next fully successful reset (a checkpoint
// retry) or on reopen, and the published snapshot already holds every
// stored fact, so nothing acknowledged is lost.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// The checkpoint crash window: a fault here fires after the caller
	// published the snapshot but before the old log is destroyed, so
	// recovery sees both. Nothing is truncated yet — no poison.
	if err := fault.Inject(fault.SiteCheckpointReset); err != nil {
		return err
	}
	w.w.Reset(w.f) // drop any buffered partial frame
	if err := w.f.Truncate(0); err != nil {
		w.failed = fmt.Errorf("storage: wal reset truncate: %w", err)
		return w.failed
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.failed = fmt.Errorf("storage: wal reset seek: %w", err)
		return w.failed
	}
	if _, err := w.w.WriteString(walMagic); err != nil {
		w.failed = fmt.Errorf("storage: wal reset header: %w", err)
		return w.failed
	}
	if err := w.flushLocked(); err != nil {
		w.failed = fmt.Errorf("storage: wal reset flush: %w", err)
		return w.failed
	}
	w.durable = int64(len(walMagic))
	w.failed = nil
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// countingWriter tracks how many bytes passed through it (snapshot
// size reporting).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeSnapshot dumps every relation to a temp file and atomically
// renames it over the snapshot path.
func (s *Store) writeSnapshot(path string) error {
	start := time.Now()
	if err := fault.Inject(fault.SiteSnapshotWrite); err != nil {
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "kdb.snap.tmp*")
	if err != nil {
		return fmt.Errorf("storage: snapshot temp: %w", err)
	}
	// Every failure path below removes the temp file, so a failed sync
	// or rename cannot strand a kdb.snap.tmp* orphan; after a
	// successful rename the name no longer exists and the remove is a
	// no-op. Orphans from a crash (no deferred cleanup runs) are swept
	// at the next Open.
	defer os.Remove(tmp.Name())
	cw := &countingWriter{w: tmp}
	w := bufio.NewWriter(cw)
	if _, err := w.WriteString(snapshotMagic); err != nil {
		tmp.Close()
		return err
	}
	s.mu.RLock()
	preds := make([]string, 0, len(s.rels))
	for p := range s.rels {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	rels := make(map[string]*Relation, len(s.rels))
	for p, r := range s.rels {
		rels[p] = r
	}
	s.mu.RUnlock()
	var werr error
	for _, p := range preds {
		rels[p].Scan(func(t Tuple) bool {
			var payload []byte
			if payload, werr = encodeFact(p, t); werr == nil {
				werr = writeRecord(w, payload)
			}
			return werr == nil
		})
		if werr != nil {
			tmp.Close()
			return werr
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := fault.Inject(fault.SiteSnapshotSync); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: snapshot sync: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fault.Inject(fault.SiteSnapshotRename); err != nil {
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	// The rename is only durable once the directory entry is synced.
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	if o := s.obs.get(); o != nil {
		o.ObserveSnapshot(time.Since(start), cw.n)
	}
	return nil
}

// loadSnapshot populates the store from a snapshot file, if present.
func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapshotMagic {
		return fmt.Errorf("storage: %s is not a kdb snapshot", path)
	}
	for {
		payload, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("storage: corrupt snapshot %s: %w", path, err)
		}
		pred, tuple, err := decodeFact(payload)
		if err != nil {
			return fmt.Errorf("storage: corrupt snapshot %s: %w", path, err)
		}
		if _, err := s.insertLocked(pred, tuple); err != nil {
			return err
		}
	}
}

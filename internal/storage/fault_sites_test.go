package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kdb/internal/fault"
	"kdb/internal/term"
)

// TestWALRewindFaultPoisonsLog arms storage/wal.rewind so the
// truncate-to-durable recovery after a failed append itself fails: the
// log must come out poisoned (sticky ErrDurability on every later
// append), because the on-disk state past the durable offset is
// unknown.
func TestWALRewindFaultPoisonsLog(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	insertNames(t, s, "a")

	// First fault fails the append's flush; second fails the rewind.
	if err := fault.Enable(fault.SiteWALFlush, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable(fault.SiteWALRewind, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("b")}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append with failed flush: want ErrDurability, got %v", err)
	}
	if err := s.DurabilityErr(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("failed rewind must poison the log, got %v", err)
	}
	// The poison is sticky: later appends fail without touching disk.
	if _, err := s.Insert("p", Tuple{term.Sym("c")}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append on poisoned log: want ErrDurability, got %v", err)
	}
}

// TestWALRewindSucceedsWithoutFault is the control: with only the
// flush fault armed, the rewind runs, the log stays healthy, and the
// next append succeeds.
func TestWALRewindSucceedsWithoutFault(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := fault.Enable(fault.SiteWALFlush, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("a")}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append with failed flush: want ErrDurability, got %v", err)
	}
	if err := s.DurabilityErr(); err != nil {
		t.Fatalf("clean rewind must not poison the log, got %v", err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("b")}); err != nil {
		t.Fatalf("append after clean rewind: %v", err)
	}
}

// TestSnapshotSweepFaultIsTolerated arms storage/snapshot.sweep: a
// failed orphan sweep must not fail Open — the orphan simply survives
// to the next open, which (disarmed) removes it.
func TestSnapshotSweepFaultIsTolerated(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	orphan := filepath.Join(dir, "kdb.snap.tmp42")
	if err := os.WriteFile(orphan, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable(fault.SiteSnapshotSweep, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open with failed sweep must succeed, got %v", err)
	}
	insertNames(t, s, "a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatalf("faulted sweep should have skipped the orphan, stat: %v", err)
	}

	// Next open runs disarmed: the orphan is gone and the data intact.
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("second open should have swept the orphan, stat err=%v", err)
	}
	if got := factNames(s); len(got) != 1 || got[0] != "a" {
		t.Fatalf("recovered facts = %v, want [a]", got)
	}
}

package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"kdb/internal/term"
)

func tup(args ...term.Term) Tuple { return Tuple(args) }

func mustRelation(t *testing.T, arity int) *Relation {
	t.Helper()
	r, err := NewRelation(arity)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRelationInsertAndDedup(t *testing.T) {
	r := mustRelation(t, 2)
	fresh, err := r.Insert(tup(term.Sym("a"), term.Num(1)))
	if err != nil || !fresh {
		t.Fatalf("first insert: fresh=%v err=%v", fresh, err)
	}
	fresh, err = r.Insert(tup(term.Sym("a"), term.Num(1)))
	if err != nil || fresh {
		t.Fatalf("duplicate insert: fresh=%v err=%v", fresh, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(tup(term.Sym("a"), term.Num(1))) {
		t.Error("Contains must find the tuple")
	}
	if r.Contains(tup(term.Sym("a"), term.Num(2))) {
		t.Error("Contains must not find absent tuples")
	}
}

func TestRelationInsertErrors(t *testing.T) {
	r := mustRelation(t, 2)
	if _, err := r.Insert(tup(term.Sym("a"))); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := r.Insert(tup(term.Var("X"), term.Sym("a"))); err == nil {
		t.Error("non-ground tuple must fail")
	}
}

func TestTupleKeyDistinguishesKinds(t *testing.T) {
	// Symbol "a" vs string "a" vs number encodings must not collide, and
	// adjacent strings must not be confused by concatenation.
	keys := map[string]Tuple{}
	for _, tp := range []Tuple{
		tup(term.Sym("a"), term.Sym("b")),
		tup(term.Sym("ab"), term.Sym("")),
		tup(term.Str("a"), term.Sym("b")),
		tup(term.Sym("a"), term.Str("b")),
		tup(term.Num(1), term.Num(2)),
		tup(term.Num(12), term.Num(0)),
	} {
		k := tp.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		keys[k] = tp
	}
}

func TestRelationScanOrder(t *testing.T) {
	r := mustRelation(t, 1)
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(tup(term.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	var got []float64
	r.Scan(func(tp Tuple) bool {
		got = append(got, tp[0].Float())
		return true
	})
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("scan order = %v", got)
		}
	}
	// Early stop.
	n := 0
	r.Scan(func(Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRelationSelect(t *testing.T) {
	r := mustRelation(t, 3)
	data := []Tuple{
		tup(term.Sym("ann"), term.Sym("math"), term.Num(3.9)),
		tup(term.Sym("bob"), term.Sym("cs"), term.Num(3.5)),
		tup(term.Sym("cid"), term.Sym("math"), term.Num(3.2)),
	}
	for _, d := range data {
		if _, err := r.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	count := func(pattern []term.Term) int {
		n := 0
		if err := r.Select(pattern, func(Tuple) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	x, y, z := term.Var("X"), term.Var("Y"), term.Var("Z")
	if got := count([]term.Term{x, y, z}); got != 3 {
		t.Errorf("full scan = %d, want 3", got)
	}
	if got := count([]term.Term{x, term.Sym("math"), z}); got != 2 {
		t.Errorf("math students = %d, want 2", got)
	}
	if got := count([]term.Term{term.Sym("ann"), term.Sym("math"), z}); got != 1 {
		t.Errorf("ann math = %d, want 1", got)
	}
	if got := count([]term.Term{term.Sym("ann"), term.Sym("cs"), z}); got != 0 {
		t.Errorf("ann cs = %d, want 0", got)
	}
	// Index reuse after more inserts (incremental maintenance).
	if _, err := r.Insert(tup(term.Sym("dee"), term.Sym("math"), term.Num(4))); err != nil {
		t.Fatal(err)
	}
	if got := count([]term.Term{x, term.Sym("math"), z}); got != 3 {
		t.Errorf("math students after insert = %d, want 3", got)
	}
	// Arity error.
	if err := r.Select([]term.Term{x}, func(Tuple) bool { return true }); err == nil {
		t.Error("pattern arity mismatch must fail")
	}
}

func TestRelationSelectRepeatedVariable(t *testing.T) {
	r := mustRelation(t, 2)
	for _, d := range []Tuple{
		tup(term.Sym("a"), term.Sym("a")),
		tup(term.Sym("a"), term.Sym("b")),
		tup(term.Sym("b"), term.Sym("b")),
	} {
		if _, err := r.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	x := term.Var("X")
	n := 0
	if err := r.Select([]term.Term{x, x}, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("p(X, X) matches = %d, want 2", n)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewMemory()
	fresh, err := s.InsertAtom(term.NewAtom("student", term.Sym("ann"), term.Sym("math"), term.Num(3.9)))
	if err != nil || !fresh {
		t.Fatalf("insert: %v %v", fresh, err)
	}
	if s.Count("student") != 1 || s.Count("ghost") != 0 {
		t.Error("Count misreports")
	}
	if !s.Contains(term.NewAtom("student", term.Sym("ann"), term.Sym("math"), term.Num(3.9))) {
		t.Error("Contains must find the fact")
	}
	if s.Contains(term.NewAtom("student", term.Sym("ann"))) {
		t.Error("arity-mismatched Contains must be false")
	}
	if _, err := s.InsertAtom(term.NewAtom("p", term.Var("X"))); err == nil {
		t.Error("non-ground InsertAtom must fail")
	}
	if got := s.Preds(); len(got) != 1 || got[0] != "student" {
		t.Errorf("Preds = %v", got)
	}
	facts := s.Facts("student")
	if len(facts) != 1 || facts[0].Pred != "student" {
		t.Errorf("Facts = %v", facts)
	}
	if s.Facts("ghost") != nil {
		t.Error("Facts of unknown predicate must be nil")
	}
	if s.Dir() != "" {
		t.Error("memory store has no dir")
	}
}

func TestStoreMatch(t *testing.T) {
	s := NewMemory()
	for _, f := range []string{"ann", "bob", "cid"} {
		if _, err := s.InsertAtom(term.NewAtom("enroll", term.Sym(f), term.Sym("databases"))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.InsertAtom(term.NewAtom("enroll", term.Sym("ann"), term.Sym("ai"))); err != nil {
		t.Fatal(err)
	}
	x := term.Var("X")
	var got []string
	err := s.Match(term.NewAtom("enroll", x, term.Sym("databases")), nil, func(sub term.Subst) bool {
		got = append(got, sub.Walk(x).Name())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("matches = %v", got)
	}
	// Base substitution narrows the match.
	base := term.Subst{x: term.Sym("ann")}
	n := 0
	if err := s.Match(term.NewAtom("enroll", x, term.Var("C")), base, func(term.Subst) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("ann enrollments = %d, want 2", n)
	}
	// Unknown predicate: no matches, no error.
	if err := s.Match(term.NewAtom("ghost", x), nil, func(term.Subst) bool { return true }); err != nil {
		t.Errorf("unknown predicate: %v", err)
	}
	// Arity mismatch is an error.
	if err := s.Match(term.NewAtom("enroll", x), nil, func(term.Subst) bool { return true }); err == nil {
		t.Error("arity mismatch must fail")
	}
	// Early stop.
	n = 0
	if err := s.Match(term.NewAtom("enroll", x, term.Var("C")), nil, func(term.Subst) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStoreConcurrentInsertAndMatch(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := s.Insert("p", tup(term.Num(float64(g)), term.Num(float64(i))))
				if err != nil {
					t.Error(err)
					return
				}
				_ = s.Match(term.NewAtom("p", term.Num(float64(g)), term.Var("X")), nil, func(term.Subst) bool { return true })
			}
		}(g)
	}
	wg.Wait()
	if got := s.Count("p"); got != 8*200 {
		t.Errorf("Count = %d, want %d", got, 8*200)
	}
}

// --- durability ---

func TestOpenEmptyAndPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Insert("edge", tup(term.Num(float64(i)), term.Num(float64(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: WAL replay restores everything.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("edge"); got != 10 {
		t.Errorf("recovered %d tuples, want 10", got)
	}
	if !s2.Contains(term.NewAtom("edge", term.Num(3), term.Num(4))) {
		t.Error("recovered store missing a fact")
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint inserts land in the fresh WAL.
	for i := 5; i < 8; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("p"); got != 8 {
		t.Errorf("recovered %d tuples, want 8", got)
	}
	// The WAL must be small after checkpoint (3 records, not 8).
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 200 {
		t.Errorf("WAL size %d suspiciously large after checkpoint", st.Size())
	}
}

func TestTornWALTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: append garbage half-record.
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery must tolerate a torn tail: %v", err)
	}
	if got := s2.Count("p"); got != 4 {
		t.Errorf("recovered %d tuples, want 4", got)
	}
	// The torn bytes must be gone; appending must work again.
	if _, err := s2.Insert("p", tup(term.Num(99))); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Count("p"); got != 5 {
		t.Errorf("after torn-tail recovery + insert, recovered %d, want 5", got)
	}
}

func TestCorruptRecordCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a byte in the last record's payload.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("CRC corruption must be survivable: %v", err)
	}
	defer s2.Close()
	if got := s2.Count("p"); got != 2 {
		t.Errorf("recovered %d tuples, want 2 (corrupt record dropped)", got)
	}
}

func TestSnapshotRoundTripAllKinds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	facts := []term.Atom{
		term.NewAtom("mix", term.Sym("sym"), term.Num(-3.25), term.Str("a \"quoted\"\nstring")),
		term.NewAtom("mix", term.Sym(""), term.Num(0), term.Str("")),
		term.NewAtom("solo", term.Num(1e100)),
	}
	for _, f := range facts {
		if _, err := s.InsertAtom(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, f := range facts {
		if !s2.Contains(f) {
			t.Errorf("fact %v lost in snapshot round trip", f)
		}
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(5)
		tp := make(Tuple, n)
		for i := range tp {
			switch r.Intn(3) {
			case 0:
				tp[i] = term.Num(r.NormFloat64() * 100)
			case 1:
				tp[i] = term.Sym(fmt.Sprintf("s%d", r.Intn(100)))
			default:
				tp[i] = term.Str(fmt.Sprintf("str %d\x00with nul", r.Intn(100)))
			}
		}
		pred := fmt.Sprintf("pred%d", r.Intn(10))
		enc, err := encodeFact(pred, tp)
		if err != nil {
			return false
		}
		got, gotTuple, err := decodeFact(enc)
		if err != nil || got != pred || len(gotTuple) != len(tp) {
			return false
		}
		for i := range tp {
			if gotTuple[i] != tp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFactErrors(t *testing.T) {
	good, err := encodeFact("p", tup(term.Num(1), term.Sym("a")))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := decodeFact(good[:cut]); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
	if _, _, err := decodeFact(append(good, 0x00)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func BenchmarkStorageInsert(b *testing.B) {
	s := NewMemory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)), term.Num(float64(i+1)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageIndexedLookup(b *testing.B) {
	s := NewMemory()
	for i := 0; i < 10000; i++ {
		if _, err := s.Insert("edge", tup(term.Num(float64(i)), term.Num(float64(i+1)))); err != nil {
			b.Fatal(err)
		}
	}
	x := term.Var("X")
	// Warm the index.
	_ = s.Match(term.NewAtom("edge", term.Num(0), x), nil, func(term.Subst) bool { return true })
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = s.Match(term.NewAtom("edge", term.Num(float64(i%10000)), x), nil, func(term.Subst) bool { n++; return true })
		if n != 1 {
			b.Fatalf("matches = %d", n)
		}
	}
}

func BenchmarkStorageFullScan(b *testing.B) {
	s := NewMemory()
	for i := 0; i < 10000; i++ {
		if _, err := s.Insert("edge", tup(term.Num(float64(i)), term.Num(float64(i+1)))); err != nil {
			b.Fatal(err)
		}
	}
	x, y := term.Var("X"), term.Var("Y")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = s.Match(term.NewAtom("edge", x, y), nil, func(term.Subst) bool { n++; return true })
		if n != 10000 {
			b.Fatalf("matches = %d", n)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := s.Insert("p", tup(term.Num(float64(i)), term.Sym("x"))); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if s2.Count("p") != 5000 {
			b.Fatal("bad replay")
		}
		s2.Close()
	}
}

package storage

import (
	"sync/atomic"
	"time"
)

// Observer receives storage-layer timing events: WAL appends and
// fsyncs, and snapshot writes. It is defined here (not in the obs
// package) so storage has no observability dependency; obs.StorageMetrics
// satisfies it structurally. Implementations must be safe for
// concurrent use.
type Observer interface {
	// ObserveWALAppend reports one durable WAL append: the full
	// encode+write+flush+fsync latency and the framed record size.
	ObserveWALAppend(d time.Duration, bytes int)
	// ObserveWALSync reports one WAL fsync.
	ObserveWALSync(d time.Duration)
	// ObserveSnapshot reports one completed snapshot write: total
	// latency (including rename and directory sync) and snapshot size.
	ObserveSnapshot(d time.Duration, bytes int64)
}

// obsBox wraps the Observer interface in a concrete type so it can
// live in an atomic.Pointer.
type obsBox struct{ o Observer }

// observerHolder is an atomically swappable Observer slot shared by a
// Store and its WAL.
type observerHolder struct{ p atomic.Pointer[obsBox] }

// get returns the current Observer, or nil. It runs on every WAL
// append, so it must stay a bare atomic load.
//
//kdb:hotpath
func (h *observerHolder) get() Observer {
	if h == nil {
		return nil
	}
	if b := h.p.Load(); b != nil {
		return b.o
	}
	return nil
}

func (h *observerHolder) set(o Observer) {
	if o == nil {
		h.p.Store(nil)
		return
	}
	h.p.Store(&obsBox{o: o})
}

// SetObserver attaches (or, with nil, detaches) a storage Observer.
// Events from then on — WAL appends/fsyncs and snapshot writes — are
// reported to it.
func (s *Store) SetObserver(o Observer) { s.obs.set(o) }

package storage

import (
	"os"
	"path/filepath"
	"testing"

	"kdb/internal/term"
)

func TestNewRelationRejectsBadArity(t *testing.T) {
	for _, arity := range []int{-1, 64} {
		if _, err := NewRelation(arity); err == nil {
			t.Errorf("NewRelation(%d) must fail", arity)
		}
	}
	// 0 and 63 are fine.
	if r, err := NewRelation(0); err != nil || r.Arity() != 0 {
		t.Errorf("arity 0 must be allowed (propositional facts): %v", err)
	}
	if r, err := NewRelation(63); err != nil || r.Arity() != 63 {
		t.Errorf("arity 63 must be allowed: %v", err)
	}
}

func TestZeroArityRelation(t *testing.T) {
	s := NewMemory()
	fresh, err := s.InsertAtom(term.NewAtom("ready"))
	if err != nil || !fresh {
		t.Fatalf("insert: %v %v", fresh, err)
	}
	if !s.Contains(term.NewAtom("ready")) {
		t.Error("propositional fact lost")
	}
	n := 0
	if err := s.Match(term.NewAtom("ready"), nil, func(term.Subst) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("matches = %d", n)
	}
}

func TestCheckpointOnMemoryStoreIsNoop(t *testing.T) {
	s := NewMemory()
	if _, err := s.Insert("p", Tuple{term.Num(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Errorf("memory checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("memory close: %v", err)
	}
}

func TestOpenRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("not a wal at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("foreign WAL must be rejected, not silently overwritten")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, snapshotName), []byte("junk snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Error("foreign snapshot must be rejected")
	}
}

func TestCorruptSnapshotRecordFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Insert("p", Tuple{term.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt a byte inside the snapshot body: unlike the WAL (where a
	// torn tail is expected), snapshot corruption is a hard error.
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt snapshot must fail loudly")
	}
}

func TestDoubleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Insert("p", Tuple{term.Sym("a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("b")}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenAfterCheckpointAndMoreWrites(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := s.Count("p"); got != round*2 {
			t.Fatalf("round %d recovered %d, want %d", round, got, round*2)
		}
		for i := 0; i < 2; i++ {
			if _, err := s.Insert("p", Tuple{term.Num(float64(round)), term.Num(float64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := Tuple{term.Sym("a"), term.Num(1)}
	c := orig.Clone()
	c[0] = term.Sym("b")
	if orig[0] != term.Sym("a") {
		t.Error("Clone must be independent")
	}
}

func TestSelectEmptyRelation(t *testing.T) {
	r := mustRelation(t, 2)
	n := 0
	if err := r.Select([]term.Term{term.Var("X"), term.Var("Y")}, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("matches = %d", n)
	}
	if err := r.Select([]term.Term{term.Sym("a"), term.Var("Y")}, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("indexed matches = %d", n)
	}
}

//go:build unix

package storage

import (
	"errors"
	"syscall"
)

// ignorableSyncErr reports whether a directory-fsync failure means
// "this filesystem cannot fsync directories" rather than "the sync
// failed": EINVAL (e.g. some overlay and virtiofs mounts) and ENOTSUP
// (FUSE and network filesystems). Real I/O failures (EIO, ENOSPC,
// EBADF, …) stay fatal.
func ignorableSyncErr(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

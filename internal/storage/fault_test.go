package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"testing"

	"kdb/internal/fault"
	"kdb/internal/term"
)

// factNames collects the first argument of every stored p-fact, sorted
// — the canonical shape the crash tests compare against.
func factNames(s *Store) []string {
	var out []string
	for _, a := range s.Facts("p") {
		out = append(out, a.Args[0].Name())
	}
	sort.Strings(out)
	return out
}

func insertNames(t *testing.T, s *Store, names ...string) {
	t.Helper()
	for _, n := range names {
		if _, err := s.Insert("p", Tuple{term.Sym(n)}); err != nil {
			t.Fatalf("insert %s: %v", n, err)
		}
	}
}

// TestCheckpointCrashAfterRename injects a crash in the checkpoint
// window between the snapshot rename and the WAL reset: the new
// snapshot and the old (pre-checkpoint) log are both on disk. Reopen
// must land on the checkpointed state — replaying the stale log over
// the fresh snapshot is idempotent for inserts and a no-op for
// tombstones of facts the snapshot already dropped.
func TestCheckpointCrashAfterRename(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "a", "b", "c")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "d")
	if removed, err := s.Delete("p", Tuple{term.Sym("b")}); err != nil || !removed {
		t.Fatalf("delete b: removed=%v err=%v", removed, err)
	}
	want := []string{"a", "c", "d"}

	if err := fault.Enable(fault.SiteCheckpointReset, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	err = s.Checkpoint()
	if !errors.Is(err, ErrDurability) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint error %v, want ErrDurability wrapping the injection", err)
	}
	fault.Reset()
	// Crash: abandon the handle without Close and recover from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint crash: %v", err)
	}
	if got := factNames(s2); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	// The store must be fully functional: another checkpoint and another
	// reopen round-trip the same state.
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := factNames(s3); !equalStrings(got, want) {
		t.Fatalf("after recovery checkpoint: %v, want %v", got, want)
	}
}

// TestCheckpointCrashBeforeRename injects the crash on the other side
// of the window — the snapshot temp file was written but never
// published. Reopen must land on the other consistent state: the old
// snapshot plus the intact log, which replays to the same facts.
func TestCheckpointCrashBeforeRename(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "a", "b")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "c")
	if removed, err := s.Delete("p", Tuple{term.Sym("a")}); err != nil || !removed {
		t.Fatalf("delete a: removed=%v err=%v", removed, err)
	}
	want := []string{"b", "c"}

	if err := fault.Enable(fault.SiteSnapshotRename, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint error %v, want the injection", err)
	}
	fault.Reset()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after rename crash: %v", err)
	}
	defer s2.Close()
	if got := factNames(s2); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

// TestTornWriteInjectionRecovery arms the torn-write outcome: the
// append persists only a prefix of the frame and poisons the log, as
// a crash mid-write would. Reopen must truncate the torn tail — the
// durable prefix survives, the half-written fact does not.
func TestTornWriteInjectionRecovery(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "a", "b")
	if err := fault.Enable(fault.SiteWALAppend, fault.Outcome{TornBytes: 3}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = s.Insert("p", Tuple{term.Sym("victim")})
	if !errors.Is(err, ErrDurability) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn insert error %v, want ErrDurability wrapping the injection", err)
	}
	if s.DurabilityErr() == nil {
		t.Fatal("torn write must poison the log")
	}
	// The poison is sticky: later appends fail without touching disk.
	if _, err := s.Insert("p", Tuple{term.Sym("after")}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append on poisoned log: %v, want ErrDurability", err)
	}
	fault.Reset()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	if got := factNames(s2); !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("recovered %v, want the durable prefix [a b]", got)
	}
	if _, err := s2.Insert("p", Tuple{term.Sym("c")}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestWALSyncFaultRewindsCleanly: an injected fsync failure takes the
// production rewind path; the log stays healthy and later appends and
// reopens see only the acknowledged facts.
func TestWALSyncFaultRewindsCleanly(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "a")
	if err := fault.Enable(fault.SiteWALSync, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("lost")}); !errors.Is(err, ErrDurability) {
		t.Fatalf("insert during sync fault: %v, want ErrDurability", err)
	}
	if s.DurabilityErr() != nil {
		t.Fatalf("a clean rewind must not poison the log: %v", s.DurabilityErr())
	}
	insertNames(t, s, "b")
	fault.Reset()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// "lost" reached RAM but never the log; only a and b are durable.
	if got := factNames(s2); !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("recovered %v, want [a b]", got)
	}
}

// TestReplayFaultFailsOpenStructured: a fault during recovery surfaces
// as an error from Open, not a half-recovered store.
func TestReplayFaultFailsOpenStructured(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	insertNames(t, s, "a", "b")
	s.Close()
	if err := fault.Enable(fault.SiteWALReplay, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{SkipFirst: 1, Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("open during replay fault: %v, want the injection", err)
	}
	fault.Reset()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after fault cleared: %v", err)
	}
	defer s2.Close()
	if got := factNames(s2); !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("recovered %v, want [a b]", got)
	}
}

// TestSnapshotTempOrphansSweptOnOpen: crash-orphaned kdb.snap.tmp*
// files are removed at the next Open instead of accumulating.
func TestSnapshotTempOrphansSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"kdb.snap.tmp123", "kdb.snap.tmp999x"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	left, err := filepath.Glob(filepath.Join(dir, "kdb.snap.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("orphans survived open: %v", left)
	}
}

// TestSnapshotFaultLeavesNoTemp: every writeSnapshot error path —
// here an injected temp-file sync failure and a rename failure —
// must remove the temp file.
func TestSnapshotFaultLeavesNoTemp(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	insertNames(t, s, "a")
	for _, site := range []string{fault.SiteSnapshotSync, fault.SiteSnapshotRename} {
		if err := fault.Enable(site, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: checkpoint error %v, want the injection", site, err)
		}
		left, err := filepath.Glob(filepath.Join(dir, "kdb.snap.tmp*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 0 {
			t.Fatalf("%s: temp files left behind: %v", site, left)
		}
		fault.Reset()
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after faults cleared: %v", err)
	}
}

// TestSyncDirTolerance: EINVAL and ENOTSUP from a directory fsync are
// tolerated (filesystems that cannot sync directories), while any
// other failure still fails the operation.
func TestSyncDirTolerance(t *testing.T) {
	t.Cleanup(fault.Reset)
	for _, errno := range []error{syscall.EINVAL, syscall.ENOTSUP} {
		if err := fault.Enable(fault.SiteDirSync, fault.Outcome{Err: errno}, fault.Policy{}); err != nil {
			t.Fatal(err)
		}
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatalf("open under %v dir-sync: %v (want tolerated)", errno, err)
		}
		insertNames(t, s, "a")
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint under %v dir-sync: %v (want tolerated)", errno, err)
		}
		s.Close()
		fault.Reset()
	}
	if ignorableSyncErr(errors.New("io failure")) {
		t.Skip("platform tolerates all directory-sync errors")
	}
	if err := fault.Enable(fault.SiteDirSync, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("open under injected dir-sync failure: %v, want the failure to propagate", err)
	}
}

// TestWALFailpointDisabledZeroAlloc is the acceptance gate: with no
// failpoint armed, the checks compiled into the WAL hot path cost
// zero allocations (and, by the benchmark in internal/fault, one
// atomic load each).
func TestWALFailpointDisabledZeroAlloc(t *testing.T) {
	fault.Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		if o := fault.Eval(fault.SiteWALAppend); o != nil {
			t.Fatal("disabled failpoint triggered")
		}
		if err := fault.Inject(fault.SiteWALSync); err != nil {
			t.Fatal(err)
		}
		if err := fault.Inject(fault.SiteWALFlush); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled failpoint checks allocate %.1f objects per append, want 0", allocs)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package storage implements the extensional database (the paper's set P
// of stored predicates): per-predicate relations with hash indexes on
// bound-column patterns, a store aggregating them, and optional
// durability via snapshot files plus a write-ahead log with CRC-checked
// records and crash recovery.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kdb/internal/term"
)

// Tuple is one stored fact's argument list. All terms are constants.
type Tuple []term.Term

// Key returns a canonical byte-string identity for the tuple.
func (t Tuple) Key() string {
	var b []byte
	for _, x := range t {
		b = appendTermKey(b, x)
	}
	return string(b)
}

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Counters is the optional observability hook of a Relation: a set of
// monotonically increasing atomic counters an evaluation layer can attach
// to the relations it touches. All fields are safe for concurrent use.
type Counters struct {
	// Probes counts Select calls served by the relation.
	Probes atomic.Int64
	// Candidates counts candidate tuples examined while serving probes
	// (after index narrowing, before the final pattern check).
	Candidates atomic.Int64
	// IndexBuilds counts hash indexes built on first use of a bound-column
	// mask.
	IndexBuilds atomic.Int64
	// FullScans counts the subset of Probes served without an index (no
	// bound position): the whole extension was enumerated. Index-served
	// probes are Probes - FullScans.
	FullScans atomic.Int64

	// next, when set, receives a copy of every event charged to this
	// sink, so a narrow-scope sink (one rule's join work) can feed a
	// wider one (the whole query) without double bookkeeping at the
	// probe sites. Set via Chain before the sink is shared; the chain
	// itself is immutable afterwards.
	next *Counters
}

// Chain links parent downstream of c: every probe, candidate, index
// build, and full scan charged to c is also charged to parent (and to
// parent's own chain, transitively). It must be called before c is
// handed to any concurrent user.
func (c *Counters) Chain(parent *Counters) { c.next = parent }

// addProbe charges one probe with its candidate count (and, when the
// probe had no usable index, a full scan) to the sink and its chain.
//
//kdb:hotpath
func (c *Counters) addProbe(fullScan bool, candidates int64) {
	for s := c; s != nil; s = s.next {
		s.Probes.Add(1)
		s.Candidates.Add(candidates)
		if fullScan {
			s.FullScans.Add(1)
		}
	}
}

// addIndexBuild charges one index build to the sink and its chain.
//
//kdb:hotpath
func (c *Counters) addIndexBuild() {
	for s := c; s != nil; s = s.next {
		s.IndexBuilds.Add(1)
	}
}

// Relation is the stored extension of one predicate: a duplicate-free set
// of tuples with lazily built hash indexes. All methods are safe for
// concurrent use.
type Relation struct {
	mu    sync.RWMutex
	arity int
	// tuples holds the insertion-ordered extension.
	tuples []Tuple
	// present maps Tuple.Key to its index in tuples, for deduplication.
	present map[string]int
	// indexes maps a bound-column bitmask to a hash index: the key of the
	// bound column values → indices of matching tuples. Indexes are built
	// on first use for a mask and maintained incrementally afterwards.
	indexes map[uint64]map[string][]int
	// counters, when set, receives observability events. Attaching is
	// last-writer-wins: counts accrue to the most recently attached sink.
	counters atomic.Pointer[Counters]
}

// NewRelation returns an empty relation of the given arity. The arity
// must be in [0, 63]: column-bitmask indexes use one bit per position.
// A hostile or malformed input (e.g. a parsed atom with 64+ arguments)
// surfaces as an error, not a panic.
func NewRelation(arity int) (*Relation, error) {
	if arity < 0 || arity > 63 {
		return nil, fmt.Errorf("storage: unsupported arity %d (must be 0..63)", arity)
	}
	return &Relation{
		arity:   arity,
		present: make(map[string]int),
		indexes: make(map[uint64]map[string][]int),
	}, nil
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// SetCounters attaches (or, with nil, detaches) an observability sink
// used when a probe does not carry its own (Select, Match). It suits
// relations private to one evaluation (derived relations, top-down
// tables); for relations shared by concurrent queries, pass a per-query
// sink to SelectCounted / MatchCounted instead, so counts can never
// accrue to another query's statistics.
func (r *Relation) SetCounters(c *Counters) { r.counters.Store(c) }

// Len returns the number of stored tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Insert adds a tuple, reporting whether it was new. Tuples must be
// ground and of the right arity.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("storage: tuple arity %d, want %d", len(t), r.arity)
	}
	for _, x := range t {
		if x.IsVar() {
			return false, fmt.Errorf("storage: cannot store non-ground tuple containing %v", x)
		}
	}
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.present[key]; dup {
		return false, nil
	}
	idx := len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	r.present[key] = idx
	// Maintain existing indexes incrementally.
	for mask, index := range r.indexes {
		k := maskKey(t, mask)
		index[k] = append(index[k], idx)
	}
	return true, nil
}

// Delete removes a tuple, reporting whether it was present. The removal
// rebuilds the tuple slice copy-on-write: a concurrent Scan keeps the
// slice header it snapshotted, so racing readers observe a consistent
// (pre-delete) extension rather than a partially shifted one. Indexes
// are dropped and rebuilt lazily on the next indexed Select.
func (r *Relation) Delete(t Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("storage: tuple arity %d, want %d", len(t), r.arity)
	}
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.present[key]
	if !ok {
		return false, nil
	}
	next := make([]Tuple, 0, len(r.tuples)-1)
	next = append(next, r.tuples[:idx]...)
	next = append(next, r.tuples[idx+1:]...)
	r.tuples = next
	present := make(map[string]int, len(next))
	for i, u := range next {
		present[u.Key()] = i
	}
	r.present = present
	r.indexes = make(map[uint64]map[string][]int)
	return true, nil
}

// Contains reports whether the exact tuple is stored.
func (r *Relation) Contains(t Tuple) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.present[t.Key()]
	return ok
}

// Scan calls fn for every tuple in insertion order until fn returns
// false. The tuple passed to fn must not be modified.
func (r *Relation) Scan(fn func(Tuple) bool) {
	r.mu.RLock()
	// Copy the slice header; tuples are append-only so the snapshot is
	// consistent even if inserts race with the scan.
	tuples := r.tuples
	r.mu.RUnlock()
	for _, t := range tuples {
		if !fn(t) {
			return
		}
	}
}

// Select calls fn for every tuple matching the pattern until fn returns
// false. The pattern has the relation's arity; constant positions must
// match exactly and variable positions match anything (repeated
// variables in the pattern must match equal values). When at least one
// position is bound, a hash index on that column set is used (built on
// first use).
func (r *Relation) Select(pattern []term.Term, fn func(Tuple) bool) error {
	return r.SelectCounted(pattern, nil, fn)
}

// SelectCounted is Select with an explicit observability sink for this
// probe. A nil sink falls back to the relation-attached counters (see
// SetCounters). Threading the sink per call keeps concurrent queries'
// statistics independent even though they share the stored relation.
func (r *Relation) SelectCounted(pattern []term.Term, c *Counters, fn func(Tuple) bool) error {
	if len(pattern) != r.arity {
		return fmt.Errorf("storage: pattern arity %d, want %d", len(pattern), r.arity)
	}
	if c == nil {
		c = r.counters.Load()
	}
	var mask uint64
	for i, p := range pattern {
		if p.IsConst() {
			mask |= 1 << uint(i)
		}
	}
	if mask == 0 {
		all := r.snapshotAll()
		if c != nil {
			c.addProbe(true, int64(len(all)))
		}
		r.scanMatching(pattern, all, fn)
		return nil
	}
	idxs := r.lookup(mask, pattern, c)
	if c != nil {
		c.addProbe(false, int64(len(idxs)))
	}
	r.mu.RLock()
	tuples := r.tuples
	r.mu.RUnlock()
	for _, i := range idxs {
		t := tuples[i]
		if matches(pattern, t) {
			if !fn(t) {
				return nil
			}
		}
	}
	return nil
}

func (r *Relation) snapshotAll() []Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tuples
}

func (r *Relation) scanMatching(pattern []term.Term, tuples []Tuple, fn func(Tuple) bool) {
	for _, t := range tuples {
		if matches(pattern, t) {
			if !fn(t) {
				return
			}
		}
	}
}

// lookup returns the candidate tuple indices for the mask/pattern pair,
// building the index on first use. Index builds are charged to c, the
// probe's observability sink.
func (r *Relation) lookup(mask uint64, pattern []term.Term, c *Counters) []int {
	r.mu.RLock()
	index, ok := r.indexes[mask]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		index, ok = r.indexes[mask]
		if !ok {
			index = make(map[string][]int)
			for i, t := range r.tuples {
				k := maskKey(t, mask)
				index[k] = append(index[k], i)
			}
			r.indexes[mask] = index
			if c != nil {
				c.addIndexBuild()
			}
		}
		r.mu.Unlock()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return index[maskKey(pattern, mask)]
}

// matches reports whether the tuple agrees with the pattern's constants
// and with repeated pattern variables.
func matches(pattern []term.Term, t Tuple) bool {
	var bound map[term.Term]term.Term
	for i, p := range pattern {
		switch {
		case p.IsConst():
			if p != t[i] {
				return false
			}
		default:
			if bound == nil {
				bound = make(map[term.Term]term.Term, 2)
			}
			if prev, ok := bound[p]; ok {
				if prev != t[i] {
					return false
				}
			} else {
				bound[p] = t[i]
			}
		}
	}
	return true
}

// maskKey extracts the identity of the masked columns.
func maskKey(t []term.Term, mask uint64) string {
	var b []byte
	for i, x := range t {
		if mask&(1<<uint(i)) != 0 {
			b = appendTermKey(b, x)
		}
	}
	return string(b)
}

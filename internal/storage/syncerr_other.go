//go:build !unix

package storage

// ignorableSyncErr: on non-unix platforms directory fsync semantics
// differ (Windows has no directory sync at all, and os.File.Sync on a
// directory handle reports an invalid-handle class of error); treat
// any sync failure on the directory as non-fatal, matching what the
// platform can actually promise.
func ignorableSyncErr(err error) bool {
	return err != nil
}

package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kdb/internal/term"
)

// TestWALTornTailRecovery simulates a crash mid-append: garbage partial
// frame bytes at the end of the log must be truncated on reopen, keeping
// every fully written record.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	facts := []Tuple{
		{term.Sym("a"), term.Num(1)},
		{term.Sym("b"), term.Num(2)},
		{term.Sym("c"), term.Num(3)},
	}
	for _, f := range facts {
		if _, err := s.Insert("p", f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash tail: a length header promising more bytes than exist.
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if got := s2.Count("p"); got != len(facts) {
		t.Fatalf("recovered %d facts, want %d", got, len(facts))
	}
	// The log must be clean again: appends and another reopen round-trip.
	if _, err := s2.Insert("p", Tuple{term.Sym("d"), term.Num(4)}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Count("p"); got != len(facts)+1 {
		t.Errorf("after torn-tail truncation recovered %d facts, want %d", got, len(facts)+1)
	}
}

// TestWALAppendFailureRewind drives the rewind path directly: a partial
// frame left in the buffer by a failed append must not corrupt records
// appended afterwards.
func TestWALAppendFailureRewind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	w, err := openWAL(path, func(string, Tuple, bool) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append("p", Tuple{term.Sym("a")}); err != nil {
		t.Fatal(err)
	}
	// Simulate a failed append: partial frame bytes buffered (and even
	// flushed) past the durable boundary, then the rewind.
	w.mu.Lock()
	w.w.Write([]byte{0x7f, 0x01, 0x02})
	w.w.Flush()
	w.recoverLocked(errors.New("injected write failure"))
	w.mu.Unlock()
	if w.failed != nil {
		t.Fatalf("rewind on a healthy file must succeed: %v", w.failed)
	}
	if err := w.append("p", Tuple{term.Sym("b")}); err != nil {
		t.Fatalf("append after rewind: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	_, err = func() (*wal, error) {
		return openWAL(path, func(pred string, tp Tuple, _ bool) error {
			got = append(got, tp[0].Name())
			return nil
		})
	}()
	if err != nil {
		t.Fatalf("replay after rewind: %v", err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("replayed %v, want [a b]", got)
	}
}

// TestWALPoisonIsSticky: when even the rewind fails, the WAL must refuse
// all further appends rather than risk silent corruption.
func TestWALPoisonIsSticky(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(filepath.Join(dir, walName), func(string, Tuple, bool) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Close the file underneath the WAL: the flush fails, and so does the
	// rewind (truncate on a closed file), poisoning the log.
	w.f.Close()
	if err := w.append("p", Tuple{term.Sym("a")}); err == nil {
		t.Fatal("append on a closed file must fail")
	}
	err = w.append("p", Tuple{term.Sym("b")})
	if err == nil || !errors.Is(err, w.failed) {
		t.Fatalf("second append = %v, want the sticky poison error", err)
	}
}

// TestCheckpointClearsPoison: a successful snapshot captures every stored
// fact, so Checkpoint must reset a poisoned WAL back to a working state.
func TestCheckpointClearsPoison(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Insert("p", Tuple{term.Sym("a")}); err != nil {
		t.Fatal(err)
	}
	s.wal.mu.Lock()
	s.wal.failed = errors.New("injected poison")
	s.wal.mu.Unlock()
	if _, err := s.Insert("p", Tuple{term.Sym("b")}); err == nil {
		t.Fatal("insert against a poisoned WAL must fail")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint must recover a poisoned WAL: %v", err)
	}
	if _, err := s.Insert("p", Tuple{term.Sym("c")}); err != nil {
		t.Fatalf("insert after checkpoint: %v", err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// "b" was rejected by the poisoned WAL but had already entered the
	// in-memory relation before the append; the snapshot captured it.
	if got := s2.Count("p"); got != 3 {
		t.Errorf("recovered %d facts, want 3", got)
	}
}

// TestWALDurableOffsetTracksAppends: the recorded durable boundary must
// equal the real file size after every successful append, or rewinds
// would land mid-record.
func TestWALDurableOffsetTracksAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	w, err := openWAL(path, func(string, Tuple, bool) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	for i, tp := range []Tuple{
		{},
		{term.Sym("x")},
		{term.Num(3.14), term.Str("long string to vary the record size considerably")},
	} {
		if err := w.append("p", tp); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if w.durable != st.Size() {
			t.Fatalf("append %d: durable = %d, file size = %d", i, w.durable, st.Size())
		}
	}
}

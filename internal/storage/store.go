package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kdb/internal/fault"
	"kdb/internal/term"
)

// ErrDurability matches (via errors.Is) every error meaning "the
// in-memory state changed but the change may not have reached stable
// storage": a WAL append or fsync failure, a poisoned log, a failed
// checkpoint. Callers that must distinguish "your request was wrong"
// from "the storage under this database is failing" — the server's
// circuit breaker, the chaos harness's invariant checks — key on it.
var ErrDurability = errors.New("storage: durability failure")

// Store aggregates the relations of one extensional database. A Store is
// either purely in-memory (NewMemory) or durable (Open), in which case
// every insert is appended to a write-ahead log and Checkpoint folds the
// log into a snapshot. All methods are safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	//kdb:guarded-by mu
	rels map[string]*Relation

	dir string // empty for in-memory stores
	wal *wal

	// obs, when set, receives WAL and snapshot timing events. Shared
	// with the WAL by pointer.
	obs observerHolder
}

// NewMemory returns an empty, non-durable store.
func NewMemory() *Store {
	return &Store{rels: make(map[string]*Relation)}
}

// Open returns a durable store rooted at dir, creating it if needed and
// recovering state from the snapshot and write-ahead log if present.
// A torn final WAL record (crash mid-append) is truncated away.
func Open(dir string) (*Store, error) {
	if err := fault.Inject(fault.SiteStoreOpen); err != nil {
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	removeSnapshotOrphans(dir)
	s := &Store{rels: make(map[string]*Relation), dir: dir}
	if err := s.loadSnapshot(filepath.Join(dir, snapshotName)); err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, walName), func(pred string, t Tuple, tombstone bool) error {
		if tombstone {
			_, err := s.deleteLocked(pred, t)
			return err
		}
		_, err := s.insertLocked(pred, t)
		return err
	})
	if err != nil {
		return nil, err
	}
	w.obs = &s.obs
	s.wal = w
	return s, nil
}

// removeSnapshotOrphans sweeps kdb.snap.tmp* files left behind by a
// crash mid-snapshot. The deferred cleanup in writeSnapshot covers
// every error return, but a process death between temp creation and
// rename leaves the file on disk — and without this sweep such
// orphans would accumulate across restarts.
func removeSnapshotOrphans(dir string) {
	// Best-effort: an injected fault models an unreadable directory or
	// failed unlink; the orphan then simply survives until the next
	// open, which the faultsite suite proves is harmless.
	if fault.Inject(fault.SiteSnapshotSweep) != nil {
		return
	}
	matches, err := filepath.Glob(filepath.Join(dir, "kdb.snap.tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

// Dir returns the durable directory, or "" for in-memory stores.
func (s *Store) Dir() string { return s.dir }

// DurabilityErr returns the sticky error poisoning the write-ahead
// log, or nil while the log is healthy (always nil for in-memory
// stores). A poisoned log rejects every append until a successful
// Checkpoint captures the state and resets it; health surfaces
// (the server's /healthz) report it per tenant.
func (s *Store) DurabilityErr() error {
	if s.wal == nil {
		return nil
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.failed
}

// Relation returns the relation for pred, or nil if no fact for pred has
// been stored.
func (s *Store) Relation(pred string) *Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rels[pred]
}

// Preds returns the stored predicate names, sorted.
func (s *Store) Preds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels))
	for p := range s.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored tuples for pred.
func (s *Store) Count(pred string) int {
	if r := s.Relation(pred); r != nil {
		return r.Len()
	}
	return 0
}

// Insert stores a fact, reporting whether it was new. The first insert
// for a predicate fixes its arity.
func (s *Store) Insert(pred string, t Tuple) (bool, error) {
	fresh, err := s.insertLocked(pred, t)
	if err != nil || !fresh {
		return fresh, err
	}
	if s.wal != nil {
		if err := s.wal.append(pred, t); err != nil {
			return true, durabilityErr("fact stored but WAL append failed", err)
		}
	}
	return true, nil
}

// durabilityErr wraps a WAL failure so it matches ErrDurability
// without double-tagging errors that already carry it (the poisoned-
// log error appendPayload returns).
func durabilityErr(msg string, err error) error {
	if errors.Is(err, ErrDurability) {
		return fmt.Errorf("storage: %s: %w", msg, err)
	}
	return fmt.Errorf("%w: %s: %w", ErrDurability, msg, err)
}

func (s *Store) insertLocked(pred string, t Tuple) (bool, error) {
	if pred == "" {
		// The WAL tombstone encoding relies on insert payloads never
		// starting with a 0x00 byte, i.e. on nonempty predicate names.
		return false, fmt.Errorf("storage: empty predicate name")
	}
	s.mu.Lock()
	r, ok := s.rels[pred]
	if !ok {
		var err error
		r, err = NewRelation(len(t))
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
		s.rels[pred] = r
	}
	s.mu.Unlock()
	return r.Insert(t)
}

// Delete removes a stored fact, reporting whether it was present. On a
// durable store the deletion is logged as a WAL tombstone, so it
// survives a crash before the next checkpoint.
func (s *Store) Delete(pred string, t Tuple) (bool, error) {
	removed, err := s.deleteLocked(pred, t)
	if err != nil || !removed {
		return removed, err
	}
	if s.wal != nil {
		if err := s.wal.appendDelete(pred, t); err != nil {
			return true, durabilityErr("fact removed but WAL append failed", err)
		}
	}
	return true, nil
}

func (s *Store) deleteLocked(pred string, t Tuple) (bool, error) {
	s.mu.RLock()
	r := s.rels[pred]
	s.mu.RUnlock()
	if r == nil || r.Arity() != len(t) {
		return false, nil
	}
	return r.Delete(t)
}

// DeleteAtom removes a ground atom's fact, reporting whether it was
// present.
func (s *Store) DeleteAtom(a term.Atom) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("storage: fact %v is not ground", a)
	}
	return s.Delete(a.Pred, Tuple(a.Args))
}

// InsertAtom stores a ground atom as a fact.
func (s *Store) InsertAtom(a term.Atom) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("storage: fact %v is not ground", a)
	}
	return s.Insert(a.Pred, Tuple(a.Args))
}

// Contains reports whether the ground atom is stored.
func (s *Store) Contains(a term.Atom) bool {
	r := s.Relation(a.Pred)
	if r == nil || r.Arity() != len(a.Args) {
		return false
	}
	return r.Contains(Tuple(a.Args))
}

// Match finds all stored facts unifying with atom under base and calls fn
// with each extended substitution until fn returns false. Constant
// positions (after applying base) are served from a hash index.
func (s *Store) Match(atom term.Atom, base term.Subst, fn func(term.Subst) bool) error {
	return s.MatchCounted(atom, base, nil, fn)
}

// MatchCounted is Match with an explicit observability sink for this
// probe (see Relation.SelectCounted). Evaluation engines pass their
// per-query Counters here so that concurrent queries sharing the store
// never contaminate each other's statistics.
func (s *Store) MatchCounted(atom term.Atom, base term.Subst, c *Counters, fn func(term.Subst) bool) error {
	r := s.Relation(atom.Pred)
	if r == nil {
		return nil // unknown predicate: empty extension
	}
	if r.Arity() != len(atom.Args) {
		return fmt.Errorf("storage: %s used with arity %d, stored with %d", atom.Pred, len(atom.Args), r.Arity())
	}
	pattern := base.Apply(atom)
	return r.SelectCounted(pattern.Args, c, func(t Tuple) bool {
		ext, ok := term.Match(pattern, term.Atom{Pred: atom.Pred, Args: t}, base)
		if !ok {
			return true // repeated-variable mismatch already filtered, but stay safe
		}
		return fn(ext)
	})
}

// Facts returns all stored facts for pred as atoms, in insertion order.
func (s *Store) Facts(pred string) []term.Atom {
	r := s.Relation(pred)
	if r == nil {
		return nil
	}
	out := make([]term.Atom, 0, r.Len())
	r.Scan(func(t Tuple) bool {
		out = append(out, term.Atom{Pred: pred, Args: t.Clone()})
		return true
	})
	return out
}

// Checkpoint writes a snapshot of the full store and truncates the WAL.
// It is a no-op for in-memory stores.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil
	}
	if err := s.writeSnapshot(filepath.Join(s.dir, snapshotName)); err != nil {
		return durabilityErr("checkpoint", err)
	}
	// The crash window: the snapshot is published but the log still
	// holds the pre-checkpoint records. Recovery from here is safe —
	// replaying the old log over the new snapshot is idempotent — and
	// the chaos tests prove it by arming checkpoint.reset (the
	// failpoint lives at the top of wal.reset, before any truncation).
	if err := s.wal.reset(); err != nil {
		return durabilityErr("checkpoint", err)
	}
	return nil
}

// Close flushes and closes the WAL. The store must not be used after.
func (s *Store) Close() error {
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

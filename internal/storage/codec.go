package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"kdb/internal/term"
)

// Binary term encoding shared by tuple keys, the snapshot file and the
// write-ahead log:
//
//	kind byte ('v' var, 's' symbol, 'n' number, 'q' string)
//	number:            8 bytes big-endian IEEE 754
//	var/symbol/string: uvarint length + bytes

const (
	tagVar    = 'v'
	tagSymbol = 's'
	tagNumber = 'n'
	tagString = 'q'
)

func appendTermKey(b []byte, t term.Term) []byte {
	switch t.Kind() {
	case term.KindNumber:
		b = append(b, tagNumber)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(t.Float()))
		return append(b, buf[:]...)
	case term.KindVar:
		b = append(b, tagVar)
	case term.KindSymbol:
		b = append(b, tagSymbol)
	case term.KindString:
		b = append(b, tagString)
	default:
		// An unknown kind cannot reach the durable encoding (encodeFact
		// validates), but in-memory keys must stay total and
		// deterministic — tag it distinctly instead of panicking.
		b = append(b, '?')
	}
	b = binary.AppendUvarint(b, uint64(len(t.Name())))
	return append(b, t.Name()...)
}

// decodeTerm reads one term from b, returning it and the remaining bytes.
func decodeTerm(b []byte) (term.Term, []byte, error) {
	if len(b) == 0 {
		return term.Term{}, nil, fmt.Errorf("storage: truncated term")
	}
	tag := b[0]
	b = b[1:]
	if tag == tagNumber {
		if len(b) < 8 {
			return term.Term{}, nil, fmt.Errorf("storage: truncated number")
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
		return term.Num(v), b[8:], nil
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return term.Term{}, nil, fmt.Errorf("storage: truncated string payload")
	}
	s := string(b[sz : sz+int(n)])
	b = b[sz+int(n):]
	switch tag {
	case tagVar:
		return term.Var(s), b, nil
	case tagSymbol:
		return term.Sym(s), b, nil
	case tagString:
		return term.Str(s), b, nil
	default:
		return term.Term{}, nil, fmt.Errorf("storage: unknown term tag %q", tag)
	}
}

// encodeFact serializes (pred, tuple) for the snapshot and WAL. A term
// of unknown kind is a caller bug, reported as an error so it cannot
// poison the durable files with undecodable records.
func encodeFact(pred string, t Tuple) ([]byte, error) {
	b := binary.AppendUvarint(nil, uint64(len(pred)))
	b = append(b, pred...)
	b = binary.AppendUvarint(b, uint64(len(t)))
	for _, x := range t {
		switch x.Kind() {
		case term.KindVar, term.KindSymbol, term.KindNumber, term.KindString:
		default:
			return nil, fmt.Errorf("storage: cannot encode term of unknown kind %d in %s%v", x.Kind(), pred, t)
		}
		b = appendTermKey(b, x)
	}
	return b, nil
}

// decodeFact parses a record produced by encodeFact.
func decodeFact(b []byte) (string, Tuple, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("storage: truncated predicate name")
	}
	pred := string(b[sz : sz+int(n)])
	b = b[sz+int(n):]
	arity, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", nil, fmt.Errorf("storage: truncated arity")
	}
	b = b[sz:]
	t := make(Tuple, 0, arity)
	for i := uint64(0); i < arity; i++ {
		var x term.Term
		var err error
		x, b, err = decodeTerm(b)
		if err != nil {
			return "", nil, err
		}
		t = append(t, x)
	}
	if len(b) != 0 {
		return "", nil, fmt.Errorf("storage: %d trailing bytes in fact record", len(b))
	}
	return pred, t, nil
}

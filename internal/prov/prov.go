// Package prov implements why-provenance for derived facts: while an
// evaluation engine runs with recording enabled, every newly derived
// fact is paired with one witness — the rule that fired and the ground
// parent facts that satisfied its body. The store is compact (one
// witness per fact, first derivation wins, rules interned by identity)
// and the derivation tree of any recorded fact can be reconstructed
// after the query, cycle-safely, with EDB and built-in leaves
// distinguished as in the paper's derivation trees (Algorithm 1).
//
// Recording is strictly opt-in: engines hold a nil *Recorder by default
// and guard every call site with a nil check, so the hot derive path of
// an unrecorded query pays nothing (enforced by alloc-counting tests in
// internal/eval).
package prov

import (
	"sync"

	"kdb/internal/term"
)

// Witness is one recorded derivation step: Fact was produced by the
// rule identified by RuleID within the recorder, from the ground Body
// atoms — parent facts and the comparison atoms that held, in rule-body
// order (comparisons are told apart by term.IsComparison).
type Witness struct {
	Fact   term.Atom
	RuleID int
	Body   []term.Atom
}

// recorderState is the shared core of a Recorder; rewritten views (see
// Rewritten) alias it so the magic engine records into the same store.
type recorderState struct {
	mu        sync.Mutex
	witnesses map[string]*Witness // fact key → first witness
	ruleIDs   map[string]int      // rule key → id (index into rules)
	rules     []term.Rule
}

// Recorder accumulates witnesses during one evaluation. It is safe for
// concurrent use (the parallel scheduler shares it across SCC workers).
// All methods are nil-safe so ungoverned call sites stay trivial.
type Recorder struct {
	state *recorderState
	// rewrite, when set, maps each atom before recording and may drop
	// it (the magic engine strips adornments and discards magic
	// guards). Returning ok=false for a fact skips the whole witness;
	// for a parent it removes just that parent.
	rewrite func(term.Atom) (term.Atom, bool)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{state: &recorderState{
		witnesses: make(map[string]*Witness),
		ruleIDs:   make(map[string]int),
	}}
}

// Rewritten returns a view of r that applies fn to every fact, parent,
// and rule atom before recording into the same underlying store. The
// magic engine uses it to record witnesses under the original
// (unadorned) predicate names of the source program.
func (r *Recorder) Rewritten(fn func(term.Atom) (term.Atom, bool)) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{state: r.state, rewrite: fn}
}

// Record stores the first witness for fact: rule fired under
// substitution s, with body the (possibly partially instantiated) rule
// body whose full instantiation under s yields the parent facts. It
// returns the total number of recorded witnesses, which the caller
// checks against the governor's MaxProvenanceEntries.
//
// Later witnesses for an already recorded fact are ignored: the first
// derivation is the one the reconstruction shows, which keeps the
// witness graph well-founded for a single engine run.
func (r *Recorder) Record(fact term.Atom, rule term.Rule, body term.Formula, s term.Subst) int {
	if r == nil {
		return 0
	}
	if r.rewrite != nil {
		var ok bool
		if fact, ok = r.rewrite(fact); !ok {
			return r.Len()
		}
	}
	key := fact.Key()
	st := r.state

	st.mu.Lock()
	if _, dup := st.witnesses[key]; dup {
		n := len(st.witnesses)
		st.mu.Unlock()
		return n
	}
	st.mu.Unlock()

	// Build the witness outside the lock: Key/Apply allocate and the
	// parallel engines contend on this recorder.
	w := &Witness{Fact: fact}
	for _, a := range body {
		ground := s.Apply(a)
		if !term.IsComparison(ground) && r.rewrite != nil {
			var ok bool
			if ground, ok = r.rewrite(ground); !ok {
				continue
			}
		}
		w.Body = append(w.Body, ground)
	}
	display := rule
	if r.rewrite != nil {
		display = r.rewriteRule(rule)
	}
	ruleKey := display.Key()

	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.witnesses[key]; dup { // lost the race to another worker
		return len(st.witnesses)
	}
	id, ok := st.ruleIDs[ruleKey]
	if !ok {
		id = len(st.rules)
		st.ruleIDs[ruleKey] = id
		st.rules = append(st.rules, display)
	}
	w.RuleID = id
	st.witnesses[key] = w
	return len(st.witnesses)
}

// rewriteRule maps a rule of the rewritten program back to presentation
// form: the head and every body atom go through the rewrite hook, and
// dropped atoms (magic guards) disappear from the body. Comparisons are
// kept as-is.
func (r *Recorder) rewriteRule(rule term.Rule) term.Rule {
	head, _ := r.rewrite(rule.Head)
	out := term.Rule{Head: head, Pos: rule.Pos}
	for _, a := range rule.Body {
		if term.IsComparison(a) {
			out.Body = append(out.Body, a)
			continue
		}
		if b, ok := r.rewrite(a); ok {
			out.Body = append(out.Body, b)
		}
	}
	return out
}

// Len returns the number of recorded witnesses.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	return len(r.state.witnesses)
}

// witness returns the recorded witness for the ground atom, or nil.
func (r *Recorder) witness(key string) *Witness {
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	return r.state.witnesses[key]
}

// rule returns the interned rule with the given id.
func (r *Recorder) rule(id int) term.Rule {
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	return r.state.rules[id]
}

package prov

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"kdb/internal/obs"
	"kdb/internal/term"
)

// NodeKind classifies one node of a derivation tree.
type NodeKind uint8

const (
	// NodeDerived is an IDB fact with a recorded witness; its children
	// are the instantiated body of the rule that fired.
	NodeDerived NodeKind = iota
	// NodeEDB is a stored (extensional) fact — a leaf, as in the
	// paper's derivation trees.
	NodeEDB
	// NodeBuiltin is a ground comparison that held (e.g. 3.9 > 3.7).
	NodeBuiltin
	// NodeCycle marks a fact already being expanded higher on the same
	// path; reconstruction cuts here so recursive witnesses (possible
	// after the magic engine collapses adorned variants) terminate.
	NodeCycle
	// NodeUnknown is a fact with no witness and no stored tuple — the
	// recorder was bounded, or the fact came from outside the query.
	NodeUnknown
	// NodeTruncated replaces a subtree cut by the node budget.
	NodeTruncated
)

// String returns the leaf marker used in text rendering.
func (k NodeKind) String() string {
	switch k {
	case NodeDerived:
		return "derived"
	case NodeEDB:
		return "edb"
	case NodeBuiltin:
		return "builtin"
	case NodeCycle:
		return "cycle"
	case NodeUnknown:
		return "unknown"
	default:
		return "truncated"
	}
}

// Node is one node of a reconstructed derivation tree.
type Node struct {
	Fact term.Atom
	Kind NodeKind
	// Rule is the 1-based display id of the rule that derived Fact
	// (index+1 into Explanation.Rules); 0 for leaves.
	Rule int
	// Children are the instantiated body atoms of the firing rule, in
	// body order. Empty for leaves and for bodiless (axiom) rules.
	Children []*Node
}

// Explanation is the result of explaining one subject: a derivation
// tree per ground instance, plus the legend of rules the trees use,
// numbered in first-use (pre-order) order so the rendering is stable
// across engines.
type Explanation struct {
	Subject term.Atom
	Trees   []*Node
	Rules   []term.Rule
	// Entries is how many witnesses the evaluation recorded.
	Entries int
	// Nodes is the total node count across Trees.
	Nodes int
	// Truncated reports that the node budget cut at least one subtree.
	Truncated bool
}

// Explain reconstructs derivation trees for the given ground facts from
// the recorder's witnesses. isEDB reports whether an atom is a stored
// extensional fact (those become leaves even if a witness exists, e.g.
// facts of predicates that also have rules). maxNodes bounds the total
// node count across all trees; 0 means unbounded.
func (r *Recorder) Explain(subject term.Atom, facts []term.Atom, isEDB func(term.Atom) bool, maxNodes int) *Explanation {
	e := &Explanation{Subject: subject, Entries: r.Len()}
	b := &builder{
		rec:      r,
		isEDB:    isEDB,
		maxNodes: maxNodes,
		ruleIDs:  make(map[int]int),
		onPath:   make(map[string]bool),
	}
	for _, f := range facts {
		e.Trees = append(e.Trees, b.build(f))
	}
	e.Rules = b.rules
	e.Nodes = b.nodes
	e.Truncated = b.truncated
	return e
}

type builder struct {
	rec       *Recorder
	isEDB     func(term.Atom) bool
	maxNodes  int
	nodes     int
	truncated bool
	ruleIDs   map[int]int // recorder rule id → 1-based display id
	rules     []term.Rule
	onPath    map[string]bool
}

func (b *builder) build(a term.Atom) *Node {
	b.nodes++
	if b.maxNodes > 0 && b.nodes > b.maxNodes {
		b.truncated = true
		return &Node{Fact: a, Kind: NodeTruncated}
	}
	if term.IsComparison(a) {
		return &Node{Fact: a, Kind: NodeBuiltin}
	}
	key := a.Key()
	if b.onPath[key] {
		return &Node{Fact: a, Kind: NodeCycle}
	}
	if b.isEDB != nil && b.isEDB(a) {
		return &Node{Fact: a, Kind: NodeEDB}
	}
	w := b.rec.witness(key)
	if w == nil {
		return &Node{Fact: a, Kind: NodeUnknown}
	}
	id, ok := b.ruleIDs[w.RuleID]
	if !ok {
		b.rules = append(b.rules, b.rec.rule(w.RuleID))
		id = len(b.rules)
		b.ruleIDs[w.RuleID] = id
	}
	n := &Node{Fact: a, Kind: NodeDerived, Rule: id}
	b.onPath[key] = true
	for _, p := range w.Body {
		n.Children = append(n.Children, b.build(p))
	}
	delete(b.onPath, key)
	return n
}

// WriteText renders the explanation as an indented tree followed by the
// rule legend, in the style of the tracer's console tree.
func (e *Explanation) WriteText(w io.Writer) error {
	var b strings.Builder
	if len(e.Trees) == 0 {
		fmt.Fprintf(&b, "no derivation: %s is not in the answer set\n", e.Subject)
	}
	for i, t := range e.Trees {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeNode(&b, t, 0)
	}
	if len(e.Rules) > 0 {
		b.WriteString("\nrules:\n")
		for i, r := range e.Rules {
			fmt.Fprintf(&b, "  r%d: %s\n", i+1, r)
		}
	}
	if e.Truncated {
		b.WriteString("\n(tree truncated by node budget)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Fact.String())
	switch n.Kind {
	case NodeDerived:
		fmt.Fprintf(b, "  [r%d]", n.Rule)
	default:
		fmt.Fprintf(b, "  [%s]", n.Kind)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(b, c, depth+1)
	}
}

// String renders the explanation as text.
func (e *Explanation) String() string {
	var b strings.Builder
	e.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// jsonNode is the wire form of a derivation-tree node.
type jsonNode struct {
	Fact     string     `json:"fact"`
	Kind     string     `json:"kind"`
	Rule     int        `json:"rule,omitempty"`
	Children []jsonNode `json:"children,omitempty"`
}

func toJSONNode(n *Node) jsonNode {
	out := jsonNode{Fact: n.Fact.String(), Kind: n.Kind.String(), Rule: n.Rule}
	for _, c := range n.Children {
		out.Children = append(out.Children, toJSONNode(c))
	}
	return out
}

// MarshalJSON emits the subject, trees, and rule legend (1-based ids
// matching each node's "rule" field).
func (e *Explanation) MarshalJSON() ([]byte, error) {
	type wire struct {
		Subject   string     `json:"subject"`
		Trees     []jsonNode `json:"trees"`
		Rules     []string   `json:"rules,omitempty"`
		Entries   int        `json:"entries"`
		Nodes     int        `json:"nodes"`
		Truncated bool       `json:"truncated,omitempty"`
	}
	out := wire{
		Subject:   e.Subject.String(),
		Trees:     make([]jsonNode, 0, len(e.Trees)),
		Entries:   e.Entries,
		Nodes:     e.Nodes,
		Truncated: e.Truncated,
	}
	for _, t := range e.Trees {
		out.Trees = append(out.Trees, toJSONNode(t))
	}
	for _, r := range e.Rules {
		out.Rules = append(out.Rules, r.String())
	}
	return json.Marshal(out)
}

// WriteJSON writes the explanation as one indented JSON document.
func (e *Explanation) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteChromeTrace renders the derivation trees as a Chrome/Perfetto
// trace via the obs exporter: each node becomes a synthetic complete
// event whose width is its leaf count, so the trace viewer shows the
// derivation as a flame graph (children partition their parent).
func (e *Explanation) WriteChromeTrace(w io.Writer) error {
	base := time.Unix(0, 0)
	var roots []*obs.Span
	offset := int64(0)
	for _, t := range e.Trees {
		sp, width := syntheticSpan(t, base, offset)
		roots = append(roots, sp)
		offset += width
	}
	return obs.WriteChromeTrace(w, roots)
}

// syntheticSpan converts a node into an ended span covering one
// microsecond per leaf under it, starting at base+offset µs. Children
// partition the parent's interval left to right in body order.
func syntheticSpan(n *Node, base time.Time, offset int64) (*obs.Span, int64) {
	width := int64(0)
	var kids []*obs.Span
	for _, c := range n.Children {
		sp, w := syntheticSpan(c, base, offset+width)
		kids = append(kids, sp)
		width += w
	}
	if width == 0 {
		width = 1 // a leaf occupies one unit
	}
	start := base.Add(time.Duration(offset) * time.Microsecond)
	end := base.Add(time.Duration(offset+width) * time.Microsecond)
	sp := obs.NewSpanAt(n.Fact.String(), start, end)
	sp.SetStr("kind", n.Kind.String())
	if n.Kind == NodeDerived {
		sp.SetInt("rule", int64(n.Rule))
	}
	for _, k := range kids {
		sp.AddChild(k)
	}
	return sp, width
}

package prov

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kdb/internal/term"
)

func atom(pred string, args ...string) term.Atom {
	ts := make([]term.Term, len(args))
	for i, a := range args {
		ts[i] = term.Sym(a)
	}
	return term.NewAtom(pred, ts...)
}

// edge/path fixture: path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y).
var (
	x, y, z  = term.Var("X"), term.Var("Y"), term.Var("Z")
	baseRule = term.NewRule(term.NewAtom("path", x, y), term.NewAtom("edge", x, y))
	stepRule = term.NewRule(term.NewAtom("path", x, y),
		term.NewAtom("edge", x, z), term.NewAtom("path", z, y))
)

func recordPath(t *testing.T, r *Recorder) {
	t.Helper()
	// path(b,c) :- edge(b,c).   path(a,c) :- edge(a,b), path(b,c).
	r.Record(atom("path", "b", "c"), baseRule, baseRule.Body,
		term.Subst{x: term.Sym("b"), y: term.Sym("c")})
	r.Record(atom("path", "a", "c"), stepRule, stepRule.Body,
		term.Subst{x: term.Sym("a"), y: term.Sym("c"), z: term.Sym("b")})
}

func TestRecordFirstWitnessWins(t *testing.T) {
	r := NewRecorder()
	recordPath(t, r)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	// A second derivation of path(b,c) must not replace the first.
	n := r.Record(atom("path", "b", "c"), stepRule, stepRule.Body,
		term.Subst{x: term.Sym("b"), y: term.Sym("c"), z: term.Sym("q")})
	if n != 2 || r.Len() != 2 {
		t.Fatalf("duplicate record changed the store: n=%d len=%d", n, r.Len())
	}
	w := r.witness(atom("path", "b", "c").Key())
	if w == nil || len(w.Body) != 1 || w.Body[0].Pred != "edge" {
		t.Fatalf("first witness replaced: %+v", w)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if n := r.Record(atom("p", "a"), baseRule, baseRule.Body, nil); n != 0 {
		t.Errorf("nil Record = %d, want 0", n)
	}
	if r.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", r.Len())
	}
	if r.Rewritten(nil) != nil {
		t.Error("nil Rewritten must stay nil")
	}
}

func TestRewrittenView(t *testing.T) {
	r := NewRecorder()
	// Magic-style rewrite: strip '#bf' adornments, drop 'm$' guards.
	view := r.Rewritten(func(a term.Atom) (term.Atom, bool) {
		if strings.HasPrefix(a.Pred, "m$") {
			return term.Atom{}, false
		}
		if i := strings.IndexByte(a.Pred, '#'); i >= 0 {
			return term.Atom{Pred: a.Pred[:i], Args: a.Args}, true
		}
		return a, true
	})
	guard := term.NewAtom("m$path#bf", x)
	head := term.NewAtom("path#bf", x, y)
	rule := term.NewRule(head, guard, term.NewAtom("edge", x, y))
	view.Record(term.NewAtom("path#bf", term.Sym("a"), term.Sym("b")), rule, rule.Body,
		term.Subst{x: term.Sym("a"), y: term.Sym("b")})

	// The shared store sees the original predicate name...
	if r.Len() != 1 {
		t.Fatalf("shared store Len = %d, want 1", r.Len())
	}
	w := r.witness(atom("path", "a", "b").Key())
	if w == nil {
		t.Fatal("witness not recorded under the unadorned name")
	}
	// ...the guard atom vanished from the body...
	if len(w.Body) != 1 || w.Body[0].Pred != "edge" {
		t.Fatalf("guard survived in witness body: %v", w.Body)
	}
	// ...and the display rule is back in source form.
	if got := r.rule(w.RuleID).String(); got != "path(X, Y) :- edge(X, Y)." {
		t.Fatalf("display rule = %q", got)
	}
	// A fact dropped by the rewrite records nothing.
	view.Record(term.NewAtom("m$path#bf", term.Sym("a")), rule, nil, nil)
	if r.Len() != 1 {
		t.Fatalf("dropped fact was recorded: Len = %d", r.Len())
	}
}

func TestExplainTree(t *testing.T) {
	r := NewRecorder()
	recordPath(t, r)
	isEDB := func(a term.Atom) bool { return a.Pred == "edge" }
	e := r.Explain(term.NewAtom("path", term.Sym("a"), y),
		[]term.Atom{atom("path", "a", "c")}, isEDB, 0)
	want := `path(a, c)  [r1]
  edge(a, b)  [edb]
  path(b, c)  [r2]
    edge(b, c)  [edb]

rules:
  r1: path(X, Y) :- edge(X, Z), path(Z, Y).
  r2: path(X, Y) :- edge(X, Y).
`
	if got := e.String(); got != want {
		t.Errorf("text rendering:\n got:\n%s\nwant:\n%s", got, want)
	}
	if e.Nodes != 4 || e.Entries != 2 || e.Truncated {
		t.Errorf("Nodes=%d Entries=%d Truncated=%v", e.Nodes, e.Entries, e.Truncated)
	}
}

func TestExplainCycleSafe(t *testing.T) {
	r := NewRecorder()
	// A self-supporting witness (possible after the magic engine collapses
	// adorned variants onto one fact): p(a) witnessed by p(a) itself.
	self := term.NewRule(term.NewAtom("p", x), term.NewAtom("p", x))
	r.Record(atom("p", "a"), self, self.Body, term.Subst{x: term.Sym("a")})
	e := r.Explain(atom("p", "a"), []term.Atom{atom("p", "a")}, nil, 0)
	tree := e.Trees[0]
	if tree.Kind != NodeDerived || len(tree.Children) != 1 {
		t.Fatalf("root: %+v", tree)
	}
	if tree.Children[0].Kind != NodeCycle {
		t.Fatalf("child kind = %v, want cycle", tree.Children[0].Kind)
	}
}

func TestExplainLeafKinds(t *testing.T) {
	r := NewRecorder()
	gt := term.NewAtom(">", term.Var("G"), term.Num(3.7))
	rule := term.NewRule(term.NewAtom("honor", x),
		term.NewAtom("student", x, term.Var("G")), gt)
	r.Record(atom("honor", "ann"), rule, rule.Body,
		term.Subst{x: term.Sym("ann"), term.Var("G"): term.Num(3.9)})
	isEDB := func(a term.Atom) bool { return a.Pred == "student" }
	e := r.Explain(atom("honor", "ann"), []term.Atom{atom("honor", "ann"), atom("honor", "zoe")}, isEDB, 0)
	root := e.Trees[0]
	if root.Children[0].Kind != NodeEDB {
		t.Errorf("student leaf kind = %v, want edb", root.Children[0].Kind)
	}
	if root.Children[1].Kind != NodeBuiltin {
		t.Errorf("comparison leaf kind = %v, want builtin", root.Children[1].Kind)
	}
	if e.Trees[1].Kind != NodeUnknown {
		t.Errorf("witness-less fact kind = %v, want unknown", e.Trees[1].Kind)
	}
}

func TestExplainNodeBudget(t *testing.T) {
	r := NewRecorder()
	recordPath(t, r)
	e := r.Explain(atom("path", "a", "c"), []term.Atom{atom("path", "a", "c")},
		func(a term.Atom) bool { return a.Pred == "edge" }, 2)
	if !e.Truncated {
		t.Fatal("budget of 2 did not truncate a 4-node tree")
	}
	if !strings.Contains(e.String(), "truncated") {
		t.Error("text rendering does not mention truncation")
	}
}

func TestExplainEmpty(t *testing.T) {
	r := NewRecorder()
	e := r.Explain(atom("p", "a"), nil, nil, 0)
	if !strings.Contains(e.String(), "no derivation") {
		t.Errorf("empty explanation rendering = %q", e.String())
	}
}

func TestExplainJSON(t *testing.T) {
	r := NewRecorder()
	recordPath(t, r)
	e := r.Explain(atom("path", "a", "c"), []term.Atom{atom("path", "a", "c")},
		func(a term.Atom) bool { return a.Pred == "edge" }, 0)
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Subject string `json:"subject"`
		Trees   []struct {
			Fact string `json:"fact"`
			Kind string `json:"kind"`
			Rule int    `json:"rule"`
		} `json:"trees"`
		Rules []string `json:"rules"`
		Nodes int      `json:"nodes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(wire.Trees) != 1 || wire.Trees[0].Fact != "path(a, c)" || wire.Trees[0].Rule != 1 {
		t.Errorf("trees: %+v", wire.Trees)
	}
	if len(wire.Rules) != 2 || wire.Nodes != 4 {
		t.Errorf("rules=%v nodes=%d", wire.Rules, wire.Nodes)
	}
}

func TestExplainChromeTrace(t *testing.T) {
	r := NewRecorder()
	recordPath(t, r)
	e := r.Explain(atom("path", "a", "c"), []term.Atom{atom("path", "a", "c")},
		func(a term.Atom) bool { return a.Pred == "edge" }, 0)
	var buf bytes.Buffer
	if err := e.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (one per node)", len(events))
	}
	// The root spans the whole two-leaf interval.
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"path(a, c)", "edge(a, b)", "path(b, c)", "edge(b, c)"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

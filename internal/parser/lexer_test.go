package parser

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicClause(t *testing.T) {
	toks, err := lexAll(`honor(X) :- student(X, Y, Z), Z > 3.7.`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokLParen, TokVariable, TokRParen, TokColonDash,
		TokIdent, TokLParen, TokVariable, TokComma, TokVariable, TokComma, TokVariable, TokRParen,
		TokComma, TokVariable, TokOp, TokNumber, TokDot, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], toks)
		}
	}
	if toks[16].Text != "3.7" {
		t.Errorf("number token = %q, want 3.7", toks[16].Text)
	}
}

func TestLexNumberVsDot(t *testing.T) {
	// `p(1).` must lex the 1 and the terminator separately.
	toks, err := lexAll(`p(1).`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokNumber || toks[2].Text != "1" {
		t.Errorf("want number 1, got %v", toks[2])
	}
	if toks[4].Kind != TokDot {
		t.Errorf("want dot, got %v", toks[4])
	}
	// Decimals, negatives, exponents.
	for _, c := range []struct{ in, out string }{
		{"3.75", "3.75"}, {"-2", "-2"}, {"-2.5", "-2.5"},
		{"1e3", "1e3"}, {"1.5e-2", "1.5e-2"}, {"4", "4"},
	} {
		toks, err := lexAll(c.in)
		if err != nil {
			t.Fatalf("lex %q: %v", c.in, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != c.out {
			t.Errorf("lex %q = %v, want number %q", c.in, toks[0], c.out)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("% a comment\np(a). % trailing\n% final")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokIdent, TokLParen, TokIdent, TokRParen, TokDot, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lexAll(`name(X, "Susan B.\n\"Q\"").`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[4].Kind != TokString || toks[4].Text != "Susan B.\n\"Q\"" {
		t.Errorf("string token = %#v", toks[4])
	}
	for _, bad := range []string{`"abc`, `"ab` + "\n" + `c"`, `"\q"`} {
		if _, err := lexAll(bad); err == nil {
			t.Errorf("lexAll(%q) succeeded, want error", bad)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lexAll(`= != < <= > >=`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"=", "!=", "<", "<=", ">", ">="}
	for i, w := range want {
		if toks[i].Kind != TokOp || toks[i].Text != w {
			t.Errorf("token %d = %v, want op %q", i, toks[i], w)
		}
	}
}

func TestLexKeywordsAndVariables(t *testing.T) {
	toks, err := lexAll(`retrieve describe compare with where and not necessary true X _tmp Abc foo`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if toks[i].Kind != TokKeyword {
			t.Errorf("token %d = %v, want keyword", i, toks[i])
		}
	}
	for i := 9; i < 12; i++ {
		if toks[i].Kind != TokVariable {
			t.Errorf("token %d = %v, want variable", i, toks[i])
		}
	}
	if toks[12].Kind != TokIdent {
		t.Errorf("token 12 = %v, want identifier", toks[12])
	}
	if !IsReserved("where") || IsReserved("student") {
		t.Error("IsReserved misbehaves")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("p(a).\n  q(b).")
	if err != nil {
		t.Fatal(err)
	}
	q := toks[5]
	if q.Pos.Line != 2 || q.Pos.Col != 3 {
		t.Errorf("q position = %v, want 2:3", q.Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{`p :- q ; r.`, `p : q.`, `a ! b`, "#"} {
		if _, err := lexAll(bad); err == nil {
			t.Errorf("lexAll(%q) succeeded, want error", bad)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error %q lacks a position", err)
		}
	}
}

func TestLexDeclTokens(t *testing.T) {
	toks, err := lexAll(`@key student/3 1.`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokAt, TokIdent, TokIdent, TokSlash, TokNumber, TokNumber, TokDot, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexStar(t *testing.T) {
	toks, err := lexAll(`describe * where p(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokStar {
		t.Errorf("token 1 = %v, want star", toks[1])
	}
}

func BenchmarkLex(b *testing.B) {
	src := strings.Repeat("can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n", 100)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lexAll(src); err != nil {
			b.Fatal(err)
		}
	}
}

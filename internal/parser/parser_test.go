package parser

import (
	"strings"
	"testing"

	"kdb/internal/term"
)

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", src, err)
	}
	return p
}

func mustQuery(t *testing.T, src string) Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestParseFact(t *testing.T) {
	p := mustProgram(t, `student(ann, math, 3.9).`)
	if len(p.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(p.Clauses))
	}
	r := p.Clauses[0]
	want := term.NewAtom("student", term.Sym("ann"), term.Sym("math"), term.Num(3.9))
	if !r.Head.Equal(want) || len(r.Body) != 0 {
		t.Errorf("parsed %v, want fact %v", r, want)
	}
	if !r.IsFact() {
		t.Error("must be a fact")
	}
}

func TestParseRule(t *testing.T) {
	p := mustProgram(t, `honor(X) :- student(X, Y, Z), Z > 3.7.`)
	r := p.Clauses[0]
	if got, want := r.String(), "honor(X) :- student(X, Y, Z), Z > 3.7."; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
	if !r.Body[1].Equal(term.NewAtom(">", term.Var("Z"), term.Num(3.7))) {
		t.Errorf("comparison = %v", r.Body[1])
	}
}

func TestParseRecursiveRules(t *testing.T) {
	src := `
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
`
	p := mustProgram(t, src)
	if len(p.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2", len(p.Clauses))
	}
	if p.Clauses[1].Body[1].Pred != "prior" {
		t.Errorf("recursive call = %v", p.Clauses[1].Body[1])
	}
}

func TestParsePropositionalAndZeroArg(t *testing.T) {
	p := mustProgram(t, `ok. ready :- ok.`)
	if p.Clauses[0].Head.Arity() != 0 || p.Clauses[1].Body[0].Pred != "ok" {
		t.Errorf("parsed %v", p.Clauses)
	}
}

func TestParseInfixComparisonForms(t *testing.T) {
	// Comparisons may appear with any term on either side.
	p := mustProgram(t, `p(X) :- q(X, Y), 3 < Y, X != Y, databases = X, "s" = X.`)
	b := p.Clauses[0].Body
	if b[1].Pred != "<" || b[1].Args[0] != term.Num(3) {
		t.Errorf("3 < Y parsed as %v", b[1])
	}
	if b[2].Pred != "!=" {
		t.Errorf("X != Y parsed as %v", b[2])
	}
	if b[3].Pred != "=" || b[3].Args[0] != term.Sym("databases") {
		t.Errorf("databases = X parsed as %v", b[3])
	}
	if b[4].Args[0] != term.Str("s") {
		t.Errorf("string comparison parsed as %v", b[4])
	}
}

func TestParseDeclarations(t *testing.T) {
	p := mustProgram(t, `
@key student/3 1.
@key complete/4 1 2 3.
@name prior_step chain.
student(ann, math, 3.9).
`)
	if len(p.Declarations) != 3 || len(p.Clauses) != 1 {
		t.Fatalf("decls=%d clauses=%d", len(p.Declarations), len(p.Clauses))
	}
	d := p.Declarations[0]
	if d.Kind != DeclKey || d.Pred != "student" || d.Arity != 3 || len(d.Columns) != 1 || d.Columns[0] != 1 {
		t.Errorf("decl 0 = %+v", d)
	}
	if got, want := d.String(), "@key student/3 1."; got != want {
		t.Errorf("decl String = %q, want %q", got, want)
	}
	d2 := p.Declarations[1]
	if len(d2.Columns) != 3 {
		t.Errorf("decl 1 = %+v", d2)
	}
	d3 := p.Declarations[2]
	if d3.Kind != DeclName || d3.Pred != "prior_step" || d3.Name != "chain" {
		t.Errorf("decl 2 = %+v", d3)
	}
	if got, want := d3.String(), "@name prior_step chain."; got != want {
		t.Errorf("decl String = %q, want %q", got, want)
	}
}

func TestParseDeclarationErrors(t *testing.T) {
	for _, bad := range []string{
		`@key student/3.`,        // no columns
		`@key student/3 4.`,      // column out of range
		`@key student/3 0.`,      // column out of range
		`@key student/x 1.`,      // bad arity
		`@frobnicate student/3.`, // unknown declaration
		`@name only_one.`,        // missing name
	} {
		if _, err := ParseProgram(bad); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRetrieve(t *testing.T) {
	q := mustQuery(t, `retrieve honor(X) where enroll(X, databases).`)
	r, ok := q.(*Retrieve)
	if !ok {
		t.Fatalf("parsed %T, want *Retrieve", q)
	}
	if r.Subject.Pred != "honor" || len(r.Where) != 1 || r.Where[0].Pred != "enroll" {
		t.Errorf("parsed %+v", r)
	}
	if got, want := r.String(), "retrieve honor(X) where enroll(X, databases)."; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestParseRetrieveExample2(t *testing.T) {
	// Paper Example 2: an ad-hoc subject predicate.
	q := mustQuery(t, `retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.`)
	r := q.(*Retrieve)
	if r.Subject.Pred != "answer" || len(r.Where) != 3 {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseRetrieveNoWhere(t *testing.T) {
	q := mustQuery(t, `retrieve honor(X).`)
	r := q.(*Retrieve)
	if len(r.Where) != 0 {
		t.Errorf("where = %v, want empty", r.Where)
	}
	if got, want := r.String(), "retrieve honor(X)."; got != want {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseDescribe(t *testing.T) {
	q := mustQuery(t, `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`)
	d, ok := q.(*Describe)
	if !ok {
		t.Fatalf("parsed %T, want *Describe", q)
	}
	if d.Subject.Pred != "can_ta" || len(d.Where) != 2 || d.Necessary || d.Wildcard || d.Subjectless {
		t.Errorf("parsed %+v", d)
	}
	if got, want := d.String(), "describe can_ta(X, databases) where student(X, math, V) and V > 3.7."; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestParseDescribeNecessary(t *testing.T) {
	q := mustQuery(t, `describe honor(X) where necessary complete(X, Y, Z, U) and U > 3.3.`)
	d := q.(*Describe)
	if !d.Necessary || len(d.Where) != 2 {
		t.Errorf("parsed %+v", d)
	}
	if !strings.Contains(d.String(), "where necessary ") {
		t.Errorf("round trip = %q", d.String())
	}
}

func TestParseDescribeNot(t *testing.T) {
	q := mustQuery(t, `describe can_ta(X, Y) where not honor(X).`)
	d := q.(*Describe)
	if len(d.Where) != 0 || len(d.Not) != 1 || d.Not[0].Pred != "honor" {
		t.Errorf("parsed %+v", d)
	}
	if got, want := d.String(), "describe can_ta(X, Y) where not honor(X)."; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
	// Mixed positive and negative conjuncts.
	q2 := mustQuery(t, `describe can_ta(X, Y) where teach(susan, Y) and not honor(X).`)
	d2 := q2.(*Describe)
	if len(d2.Where) != 1 || len(d2.Not) != 1 {
		t.Errorf("parsed %+v", d2)
	}
}

func TestParseDescribeSubjectless(t *testing.T) {
	q := mustQuery(t, `describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).`)
	d := q.(*Describe)
	if !d.Subjectless || len(d.Where) != 3 {
		t.Errorf("parsed %+v", d)
	}
	if !strings.HasPrefix(d.String(), "describe where ") {
		t.Errorf("round trip = %q", d.String())
	}
	if _, err := ParseQuery(`describe.`); err == nil {
		t.Error("subjectless describe without where must fail")
	}
}

func TestParseDescribeWildcard(t *testing.T) {
	q := mustQuery(t, `describe * where honor(X).`)
	d := q.(*Describe)
	if !d.Wildcard || len(d.Where) != 1 {
		t.Errorf("parsed %+v", d)
	}
	if got, want := d.String(), "describe * where honor(X)."; got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestParseDescribeNoWhere(t *testing.T) {
	// Paper Example 4: describe honor(X).
	q := mustQuery(t, `describe honor(X).`)
	d := q.(*Describe)
	if len(d.Where) != 0 || d.Subjectless {
		t.Errorf("parsed %+v", d)
	}
}

func TestParseCompare(t *testing.T) {
	q := mustQuery(t, `compare (describe honor(X)) with (describe deans_list(X) where student(X, math, V)).`)
	c, ok := q.(*Compare)
	if !ok {
		t.Fatalf("parsed %T, want *Compare", q)
	}
	if c.Left.Subject.Pred != "honor" || c.Right.Subject.Pred != "deans_list" {
		t.Errorf("parsed %+v", c)
	}
	if len(c.Right.Where) != 1 {
		t.Errorf("right where = %v", c.Right.Where)
	}
	want := `compare (describe honor(X)) with (describe deans_list(X) where student(X, math, V)).`
	if got := c.String(); got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestParseQueries(t *testing.T) {
	qs, err := ParseQueries(`
retrieve honor(X).
describe honor(X).
compare (describe honor(X)) with (describe deans_list(X)).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("queries = %d, want 3", len(qs))
	}
	if _, ok := qs[0].(*Retrieve); !ok {
		t.Errorf("query 0 = %T", qs[0])
	}
	if _, ok := qs[2].(*Compare); !ok {
		t.Errorf("query 2 = %T", qs[2])
	}
}

func TestParseAtomAndFormula(t *testing.T) {
	a, err := ParseAtom(`student(X, math, 3.9)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "student" || a.Args[0] != term.Var("X") {
		t.Errorf("ParseAtom = %v", a)
	}
	f, err := ParseFormula(`student(X, Y, Z) and Z > 3.7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 || f[1].Pred != ">" {
		t.Errorf("ParseFormula = %v", f)
	}
	if _, err := ParseAtom(`student(X,`); err == nil {
		t.Error("truncated atom must fail")
	}
	if _, err := ParseFormula(`p(X) and`); err == nil {
		t.Error("truncated formula must fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`student(ann, math, 3.9)`,                               // missing dot
		`:- p(X).`,                                              // missing head
		`X > 3 :- p(X).`,                                        // comparison head
		`retrieve X > 3.`,                                       // comparison subject (lexes as retrieve X > 3.0 missing dot… still error)
		`retrieve honor(X) where not p(X).`,                     // not in retrieve
		`describe honor(X) where p(X) q(X).`,                    // missing and
		`compare describe honor(X) with (describe h(X)).`,       // missing parens
		`compare (describe * where p(X)) with (describe h(X)).`, // wildcard in compare
		`flarb honor(X).`,                                       // unknown statement
		`retrieve honor(X) where true and.`,                     // dangling and
		`p(X) :- .`,                                             // empty body
	}
	for _, bad := range cases {
		if _, err := ParseQuery(bad); err == nil {
			if _, err2 := ParseProgram(bad); err2 == nil {
				t.Errorf("both ParseQuery and ParseProgram accepted %q", bad)
			}
		}
	}
}

func TestParseTrueQualifier(t *testing.T) {
	// `where true` is the explicit empty hypothesis.
	q := mustQuery(t, `describe honor(X) where true.`)
	d := q.(*Describe)
	if len(d.Where) != 0 && len(d.Not) != 0 {
		t.Errorf("parsed %+v", d)
	}
}

func TestParseReservedWordAsPredicate(t *testing.T) {
	if _, err := ParseProgram(`where(a).`); err == nil {
		t.Error("reserved word as predicate must fail")
	}
}

func TestParseStringArgsRoundTrip(t *testing.T) {
	p := mustProgram(t, `professor(susan, cs, "x5-1212").`)
	got := p.Clauses[0].String()
	want := `professor(susan, cs, "x5-1212").`
	if got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestParseLargeProgramRoundTrip(t *testing.T) {
	src := `
student(ann, math, 3.9).
student(bob, cs, 3.5).
professor(susan, cs, "x5-1212").
course(databases, 4).
enroll(ann, databases).
teach(susan, databases).
prereq(databases, datastructures).
taught(susan, databases, f89, 3.5).
complete(ann, databases, f89, 4).
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`
	p := mustProgram(t, src)
	if len(p.Clauses) != 14 {
		t.Fatalf("clauses = %d, want 14", len(p.Clauses))
	}
	// Re-parse the rendered program; must yield identical clauses.
	var b strings.Builder
	for _, c := range p.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	p2 := mustProgram(t, b.String())
	if len(p2.Clauses) != len(p.Clauses) {
		t.Fatalf("re-parse clauses = %d", len(p2.Clauses))
	}
	for i := range p.Clauses {
		if !p.Clauses[i].Equal(p2.Clauses[i]) {
			t.Errorf("clause %d: %v != %v", i, p.Clauses[i], p2.Clauses[i])
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := ParseProgram("p(a).\nq(b) :- r(c)\ns(d).")
	if err == nil {
		t.Fatal("want error for missing dot")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Pos.Line != 3 {
		t.Errorf("error line = %d, want 3 (%v)", perr.Pos.Line, err)
	}
}

func BenchmarkParseProgram(b *testing.B) {
	src := strings.Repeat(`can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
student(ann, math, 3.9).
`, 200)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	const q = `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

package parser

import (
	"strings"
	"testing"
)

// Fuzz targets: the parser must never panic, and everything it accepts
// must re-parse to the same structure after rendering (print/parse
// round-trip stability). Seeds run as part of the normal test suite;
// `go test -fuzz` explores further.

func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		``,
		`p(a).`,
		`student(ann, math, 3.9).`,
		`honor(X) :- student(X, Y, Z), Z > 3.7.`,
		`prior(X, Y) :- prereq(X, Z), prior(Z, Y).`,
		`:- honor(X), suspended(X).`,
		`@key student/3 1.`,
		`@name prior_step chain.`,
		`p("string with \"escape\"").`,
		`p(-3.5e2).`,
		`p(X) :- X = Y, q(Y).`,
		"% comment\np(a). % trailing\n",
		`p(a`, `p(a))`, `:-`, `@`, `@key x/`, `p(1.2.3).`, `p(!).`,
		`where(a).`, `p(X) :- .`, "p(\x00).", `p(Ünïcödé).`,
		strings.Repeat(`p(a). `, 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Round trip: render and re-parse; clause count and structure
		// must be stable.
		var b strings.Builder
		for _, c := range prog.Clauses {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
		for _, ic := range prog.Constraints {
			b.WriteString(":- ")
			for i, a := range ic {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.String())
			}
			b.WriteString(".\n")
		}
		for _, d := range prog.Declarations {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		again, err := ParseProgram(b.String())
		if err != nil {
			t.Fatalf("rendered program failed to re-parse: %v\nsource: %q\nrendered: %q", err, src, b.String())
		}
		if len(again.Clauses) != len(prog.Clauses) ||
			len(again.Constraints) != len(prog.Constraints) ||
			len(again.Declarations) != len(prog.Declarations) {
			t.Fatalf("round trip changed shape: %q → %q", src, b.String())
		}
		for i := range prog.Clauses {
			if !prog.Clauses[i].Equal(again.Clauses[i]) {
				t.Fatalf("clause %d changed: %v → %v", i, prog.Clauses[i], again.Clauses[i])
			}
		}
	})
}

func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`retrieve honor(X).`,
		`retrieve honor(X) where enroll(X, databases).`,
		`retrieve p(X) where a(X) or b(X).`,
		`describe honor(X).`,
		`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`,
		`describe honor(X) where necessary p(X).`,
		`describe can_ta(X, Y) where not honor(X).`,
		`describe where p(X) and q(X).`,
		`describe * where honor(X).`,
		`compare (describe a(X)) with (describe b(X)).`,
		`retrieve`, `describe .`, `compare (describe a(X)) with`, `retrieve X > 3.`,
		`describe honor(X) where p(X) or q(X) or r(X).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		// Render and re-parse: must stay accepted and stable.
		rendered := q.String()
		again, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("rendered query failed to re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if again.String() != rendered {
			t.Fatalf("round trip unstable: %q → %q → %q", src, rendered, again.String())
		}
	})
}

package parser

import (
	"strings"
	"testing"

	"kdb/internal/term"
)

func TestPlaceholdersParseInQueries(t *testing.T) {
	q, err := ParseQuery("retrieve takes($1, C) where student($1, $2).")
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountPlaceholders(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("CountPlaceholders = %d, want 2", n)
	}
}

func TestPlaceholdersRejectedInPrograms(t *testing.T) {
	_, err := ParseProgram("p($1).")
	if err == nil || !strings.Contains(err.Error(), "placeholders") {
		t.Errorf("program with placeholder: err=%v, want placeholder rejection", err)
	}
}

func TestPlaceholderLexErrors(t *testing.T) {
	if _, err := ParseQuery("retrieve p($)."); err == nil {
		t.Error("bare '$' must be rejected")
	}
	// $0 lexes as a variable, but CountPlaceholders rejects the index.
	q, err := ParseQuery("retrieve p($0).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountPlaceholders(q); err == nil {
		t.Error("$0 must be rejected by CountPlaceholders")
	}
}

func TestPlaceholdersMustBeContiguous(t *testing.T) {
	q, err := ParseQuery("retrieve p($1, $3).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountPlaceholders(q); err == nil || !strings.Contains(err.Error(), "$2") {
		t.Errorf("gap in placeholders: err=%v, want missing-$2 error", err)
	}
}

func TestBindPlaceholders(t *testing.T) {
	tmpl, err := ParseQuery("retrieve takes($1, C) where takes($1, C) and grade($1, C, $2).")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindPlaceholders(tmpl, []term.Term{term.Sym("ann"), term.Num(4)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := bound.(*Retrieve)
	if !ok {
		t.Fatalf("bound query is %T", bound)
	}
	if got := r.Subject.String(); got != "takes(ann, C)" {
		t.Errorf("bound subject = %s", got)
	}
	if got := r.Where[1].String(); got != "grade(ann, C, 4)" {
		t.Errorf("bound qualifier = %s", got)
	}
	// The template must be untouched (cached statements are shared).
	orig := tmpl.(*Retrieve)
	if got := orig.Subject.String(); got != "takes($1, C)" {
		t.Errorf("template mutated: %s", got)
	}

	// Arity mismatches and variable arguments are rejected.
	if _, err := BindPlaceholders(tmpl, []term.Term{term.Sym("ann")}); err == nil {
		t.Error("short argument list must fail")
	}
	if _, err := BindPlaceholders(tmpl, []term.Term{term.Sym("ann"), term.Var("X")}); err == nil {
		t.Error("variable argument must fail")
	}
}

func TestBindPlaceholdersExplainAndDescribe(t *testing.T) {
	q, err := ParseQuery("explain anc($1, X).")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindPlaceholders(q, []term.Term{term.Sym("tom")})
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.(*Explain).Subject.String(); got != "anc(tom, X)" {
		t.Errorf("bound explain subject = %s", got)
	}

	d, err := ParseQuery("describe honor(X) where dean_list(X) and year(X, $1).")
	if err != nil {
		t.Fatal(err)
	}
	db, err := BindPlaceholders(d, []term.Term{term.Num(1990)})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.(*Describe).Where[1].String(); got != "year(X, 1990)" {
		t.Errorf("bound describe qualifier = %s", got)
	}
}

package parser

import (
	"fmt"
	"strings"

	"kdb/internal/term"
)

// Program is a parsed knowledge-base source file: a sequence of clauses
// (facts and rules), integrity constraints, and declarations, in source
// order.
type Program struct {
	Clauses []term.Rule
	// Constraints are the paper's second Horn-clause form, ¬(p1 ∧ … ∧ pn),
	// written as a headless clause `:- p1, …, pn.`: the conjunction must
	// never hold.
	Constraints []term.Formula
	// ConstraintPos records the source position of each constraint,
	// parallel to Constraints.
	ConstraintPos []term.Pos
	Declarations  []Declaration
}

// Declaration is a schema annotation introduced with '@'.
//
//	@key student/3 1.        — column 1 of student/3 is a key (§6 ext. 3)
//	@name prior_step chain.  — preferred display name for the artificial
//	                           predicate introduced when transforming the
//	                           recursive predicate (§5.3 naming discussion)
type Declaration struct {
	Kind DeclKind
	Pos  Pos
	// Pred is the predicate the declaration applies to ("student").
	Pred string
	// Arity of the predicate (3 in student/3).
	Arity int
	// Columns are 1-based column numbers for @key.
	Columns []int
	// Name is the preferred display name for @name.
	Name string
}

// DeclKind enumerates declaration kinds.
type DeclKind uint8

// Declaration kinds.
const (
	DeclKey DeclKind = iota
	DeclName
)

// String renders the declaration in surface syntax.
func (d Declaration) String() string {
	switch d.Kind {
	case DeclKey:
		cols := make([]string, len(d.Columns))
		for i, c := range d.Columns {
			cols[i] = fmt.Sprint(c)
		}
		return fmt.Sprintf("@key %s/%d %s.", d.Pred, d.Arity, strings.Join(cols, " "))
	case DeclName:
		return fmt.Sprintf("@name %s %s.", d.Pred, d.Name)
	default:
		return fmt.Sprintf("@unknown(%d)", d.Kind)
	}
}

// Query is a parsed query statement: one of *Retrieve, *Describe,
// *Compare, *Explain, or *Profile.
type Query interface {
	fmt.Stringer
	isQuery()
}

// Retrieve is the paper's data-query statement (§3.1), extended with the
// disjunctive qualifiers of §6's second research direction:
//
//	retrieve p where ψ.
//	retrieve p where ψ1 or ψ2.
type Retrieve struct {
	Subject term.Atom
	// Where is the first (or only) disjunct of the qualifier.
	Where term.Formula
	// Or holds the remaining disjuncts, if any.
	Or  []term.Formula
	Pos Pos
}

func (*Retrieve) isQuery() {}

// Disjuncts returns the qualifier as a disjunction of conjunctions; a
// missing qualifier yields one empty (true) disjunct.
func (q *Retrieve) Disjuncts() []term.Formula {
	return append([]term.Formula{q.Where}, q.Or...)
}

// String renders the statement in surface syntax.
func (q *Retrieve) String() string {
	s := "retrieve " + q.Subject.String()
	if len(q.Where) > 0 {
		s += " where " + q.Where.String()
		for _, d := range q.Or {
			s += " or " + d.String()
		}
	}
	return s + "."
}

// Describe is the paper's knowledge-query statement (§3.2) together with
// the §6 extensions:
//
//	describe p where ψ.                  — basic knowledge query
//	describe p where necessary ψ.        — extension 1
//	describe p where not h and ψ.        — extension 2 (negated conjuncts)
//	describe where ψ.                    — extension 3 (subjectless)
//	describe * where ψ.                  — extension 4 (wildcard subject)
type Describe struct {
	// Subject is the queried atom. It is meaningless when Subjectless or
	// Wildcard is set.
	Subject term.Atom
	// Subjectless marks `describe where ψ` (possibility check).
	Subjectless bool
	// Wildcard marks `describe * where ψ`.
	Wildcard bool
	// Necessary marks `where necessary ψ`.
	Necessary bool
	// Where is the positive part of the hypothesis (the first disjunct
	// when Or is non-empty).
	Where term.Formula
	// Or holds additional hypothesis disjuncts (§6's second research
	// direction); it cannot be combined with Not, Necessary, Wildcard, or
	// Subjectless.
	Or []term.Formula
	// Not holds the negated hypothesis conjuncts (`not h`).
	Not term.Formula
	Pos Pos
}

// Disjuncts returns the hypothesis as a disjunction of conjunctions.
func (q *Describe) Disjuncts() []term.Formula {
	return append([]term.Formula{q.Where}, q.Or...)
}

func (*Describe) isQuery() {}

// String renders the statement in surface syntax.
func (q *Describe) String() string {
	var b strings.Builder
	b.WriteString("describe")
	switch {
	case q.Wildcard:
		b.WriteString(" *")
	case q.Subjectless:
		// no subject
	default:
		b.WriteByte(' ')
		b.WriteString(q.Subject.String())
	}
	if len(q.Where) > 0 || len(q.Not) > 0 {
		b.WriteString(" where ")
		if q.Necessary {
			b.WriteString("necessary ")
		}
		parts := make([]string, 0, len(q.Where)+len(q.Not))
		for _, a := range q.Where {
			parts = append(parts, a.String())
		}
		for _, a := range q.Not {
			parts = append(parts, "not "+a.String())
		}
		b.WriteString(strings.Join(parts, " and "))
		for _, d := range q.Or {
			b.WriteString(" or ")
			b.WriteString(d.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Explain is the why-provenance statement: it evaluates the subject
// like a retrieve (with an optional positive qualifier) while recording
// derivation witnesses, then reconstructs the derivation tree of every
// answer:
//
//	explain p(a, b).
//	explain p(X) where q(X).
type Explain struct {
	Subject term.Atom
	Where   term.Formula
	Pos     Pos
}

func (*Explain) isQuery() {}

// String renders the statement in surface syntax.
func (q *Explain) String() string {
	s := "explain " + q.Subject.String()
	if len(q.Where) > 0 {
		s += " where " + q.Where.String()
	}
	return s + "."
}

// Profile is the cost-accounting statement: it evaluates the subject
// like a retrieve (with an optional positive qualifier) while recording
// per-rule cost rows — wall time, rounds, tuples, probe counts — and
// renders the annotated plan alongside the answers:
//
//	profile p(a, b).
//	profile p(X) where q(X).
type Profile struct {
	Subject term.Atom
	Where   term.Formula
	Pos     Pos
}

func (*Profile) isQuery() {}

// String renders the statement in surface syntax.
func (q *Profile) String() string {
	s := "profile " + q.Subject.String()
	if len(q.Where) > 0 {
		s += " where " + q.Where.String()
	}
	return s + "."
}

// Compare is the §6 concept-comparison statement:
//
//	compare (describe p1 where ψ1) with (describe p2 where ψ2).
type Compare struct {
	Left, Right *Describe
	Pos         Pos
}

func (*Compare) isQuery() {}

// String renders the statement in surface syntax.
func (q *Compare) String() string {
	l := strings.TrimSuffix(q.Left.String(), ".")
	r := strings.TrimSuffix(q.Right.String(), ".")
	return fmt.Sprintf("compare (%s) with (%s).", l, r)
}

package parser

import (
	"fmt"
	"strconv"
	"strings"

	"kdb/internal/term"
)

// Prepared-statement placeholders. A query may contain $1..$n holes
// (lexed as variables named "$1".."$n", which cannot collide with
// source variables). The server parses and analyzes such a template
// once, then binds fresh constants per execution with
// BindPlaceholders.

// isPlaceholder reports whether t is a $n placeholder variable.
func isPlaceholder(t term.Term) bool {
	return t.IsVar() && strings.HasPrefix(t.Name(), "$")
}

// CountPlaceholders returns the number of placeholders in the query:
// the highest $n index used. The indices must be contiguous from 1 —
// a template mentioning $1 and $3 but not $2 is rejected, since an
// argument list can never bind it meaningfully.
func CountPlaceholders(q Query) (int, error) {
	seen := make(map[int]bool)
	max := 0
	var err error
	walkQueryAtoms(q, func(a term.Atom) {
		for _, t := range a.Args {
			if !isPlaceholder(t) {
				continue
			}
			n, convErr := strconv.Atoi(t.Name()[1:])
			if convErr != nil || n < 1 {
				err = fmt.Errorf("parser: invalid placeholder %s", t.Name())
				return
			}
			seen[n] = true
			if n > max {
				max = n
			}
		}
	})
	if err != nil {
		return 0, err
	}
	for i := 1; i <= max; i++ {
		if !seen[i] {
			return 0, fmt.Errorf("parser: placeholders are not contiguous: $%d is missing (highest is $%d)", i, max)
		}
	}
	return max, nil
}

// BindPlaceholders substitutes args[i-1] for each $i and returns the
// bound query. The template itself is never mutated, so a cached
// prepared statement can be bound by concurrent executions. Every
// argument must be a constant, and len(args) must equal the template's
// placeholder count.
func BindPlaceholders(q Query, args []term.Term) (Query, error) {
	n, err := CountPlaceholders(q)
	if err != nil {
		return nil, err
	}
	if len(args) != n {
		return nil, fmt.Errorf("parser: query has %d placeholders, got %d arguments", n, len(args))
	}
	if n == 0 {
		return q, nil
	}
	sub := term.NewSubst(n)
	for i, a := range args {
		if a.IsVar() {
			return nil, fmt.Errorf("parser: placeholder argument %d is not a constant", i+1)
		}
		sub[term.Var("$"+strconv.Itoa(i+1))] = a
	}
	return bindQuery(q, sub), nil
}

// WalkAtoms visits every atom of the query: subjects and all qualifier
// formulas, including both sides of a compare. Callers use it for
// read-only validation (e.g. checking arities against a catalog before
// caching a prepared statement).
func WalkAtoms(q Query, fn func(term.Atom)) { walkQueryAtoms(q, fn) }

// walkQueryAtoms visits every atom of the query (subjects and all
// qualifier formulas).
func walkQueryAtoms(q Query, fn func(term.Atom)) {
	walkFormula := func(f term.Formula) {
		for _, a := range f {
			fn(a)
		}
	}
	switch s := q.(type) {
	case *Retrieve:
		fn(s.Subject)
		walkFormula(s.Where)
		for _, d := range s.Or {
			walkFormula(d)
		}
	case *Describe:
		if !s.Wildcard && !s.Subjectless {
			fn(s.Subject)
		}
		walkFormula(s.Where)
		walkFormula(s.Not)
		for _, d := range s.Or {
			walkFormula(d)
		}
	case *Explain:
		fn(s.Subject)
		walkFormula(s.Where)
	case *Compare:
		walkQueryAtoms(s.Left, fn)
		walkQueryAtoms(s.Right, fn)
	}
}

// bindQuery returns a copy of q with sub applied to every atom.
func bindQuery(q Query, sub term.Subst) Query {
	bindOr := func(or []term.Formula) []term.Formula {
		if or == nil {
			return nil
		}
		out := make([]term.Formula, len(or))
		for i, d := range or {
			out[i] = sub.ApplyFormula(d)
		}
		return out
	}
	switch s := q.(type) {
	case *Retrieve:
		out := *s
		out.Subject = sub.Apply(s.Subject)
		out.Where = sub.ApplyFormula(s.Where)
		out.Or = bindOr(s.Or)
		return &out
	case *Describe:
		out := *s
		if !s.Wildcard && !s.Subjectless {
			out.Subject = sub.Apply(s.Subject)
		}
		out.Where = sub.ApplyFormula(s.Where)
		out.Not = sub.ApplyFormula(s.Not)
		out.Or = bindOr(s.Or)
		return &out
	case *Explain:
		out := *s
		out.Subject = sub.Apply(s.Subject)
		out.Where = sub.ApplyFormula(s.Where)
		return &out
	case *Compare:
		out := *s
		out.Left = bindQuery(s.Left, sub).(*Describe)
		out.Right = bindQuery(s.Right, sub).(*Describe)
		return &out
	}
	return q
}

// Package parser implements the surface language of the reproduction:
// Horn-clause programs (facts, rules, declarations) and the paper's query
// statements (retrieve, describe, compare) as described in Section 3 of
// "Querying Database Knowledge" (Motro & Yuan, SIGMOD 1990).
//
// Lexical conventions follow the paper (§2.1): a name whose first letter
// is upper case (or '_') is a variable; lower-case names are predicate
// symbols or symbolic constants. Numbers and double-quoted strings are
// constants. `%` starts a comment that runs to end of line.
//
// Reserved words: retrieve, describe, compare, with, where, and, or, not,
// necessary, true. They may not be used as predicate or constant names.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind enumerates the lexical token types.
type TokenKind uint8

// Token kinds.
const (
	TokEOF       TokenKind = iota
	TokIdent               // lower-case identifier: predicate or symbol
	TokVariable            // upper-case or underscore identifier
	TokNumber              // numeric literal
	TokString              // double-quoted string literal
	TokLParen              // (
	TokRParen              // )
	TokComma               // ,
	TokDot                 // .
	TokColonDash           // :-
	TokAt                  // @
	TokStar                // *
	TokSlash               // /
	TokOp                  // comparison operator: = != < <= > >=
	TokKeyword             // reserved word
)

var kindNames = map[TokenKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokVariable: "variable",
	TokNumber: "number", TokString: "string", TokLParen: "'('",
	TokRParen: "')'", TokComma: "','", TokDot: "'.'", TokColonDash: "':-'",
	TokAt: "'@'", TokStar: "'*'", TokSlash: "'/'", TokOp: "operator",
	TokKeyword: "keyword",
}

// String names the token kind for error messages.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"retrieve": true, "describe": true, "compare": true, "explain": true,
	"profile": true,
	"with":    true, "where": true, "and": true, "or": true, "not": true,
	"necessary": true, "true": true,
}

// IsReserved reports whether name is a reserved word of the language.
func IsReserved(name string) bool { return keywords[name] }

// Error is a lexical or syntactic error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns input text into tokens. It is an internal type; Parse*
// functions drive it.
type lexer struct {
	src  string
	off  int
	line int
	col  int
	// placeholders permits $1..$n prepared-statement placeholders,
	// lexed as variables named "$n". Only the query entry points set it:
	// programs are stored knowledge and may not contain holes.
	placeholders bool
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '%':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token or an error.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.src[l.off]
	switch c {
	case '(':
		l.advance(1)
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case ')':
		l.advance(1)
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case ',':
		l.advance(1)
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case '@':
		l.advance(1)
		return Token{Kind: TokAt, Text: "@", Pos: pos}, nil
	case '*':
		l.advance(1)
		return Token{Kind: TokStar, Text: "*", Pos: pos}, nil
	case '/':
		l.advance(1)
		return Token{Kind: TokSlash, Text: "/", Pos: pos}, nil
	case '.':
		// Distinguish the clause terminator from a leading-dot number (.5
		// is not supported; numbers need a leading digit).
		l.advance(1)
		return Token{Kind: TokDot, Text: ".", Pos: pos}, nil
	case ':':
		if strings.HasPrefix(l.src[l.off:], ":-") {
			l.advance(2)
			return Token{Kind: TokColonDash, Text: ":-", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected ':' (did you mean ':-'?)")
	case '=':
		l.advance(1)
		return Token{Kind: TokOp, Text: "=", Pos: pos}, nil
	case '!':
		if strings.HasPrefix(l.src[l.off:], "!=") {
			l.advance(2)
			return Token{Kind: TokOp, Text: "!=", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '!' (did you mean '!='?)")
	case '<':
		if strings.HasPrefix(l.src[l.off:], "<=") {
			l.advance(2)
			return Token{Kind: TokOp, Text: "<=", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: TokOp, Text: "<", Pos: pos}, nil
	case '>':
		if strings.HasPrefix(l.src[l.off:], ">=") {
			l.advance(2)
			return Token{Kind: TokOp, Text: ">=", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: TokOp, Text: ">", Pos: pos}, nil
	case '"':
		return l.lexString(pos)
	case '$':
		if !l.placeholders {
			return Token{}, errf(pos, "placeholders ($n) are only allowed in queries")
		}
		start := l.off
		l.advance(1)
		n := 0
		for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
			l.advance(1)
			n++
		}
		if n == 0 {
			return Token{}, errf(pos, "expected a number after '$' (placeholders are $1, $2, …)")
		}
		// "$n" can never collide with a source variable: user variables
		// start with an upper-case letter or '_'.
		return Token{Kind: TokVariable, Text: l.src[start:l.off], Pos: pos}, nil
	}
	if c >= '0' && c <= '9' || c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
		return l.lexNumber(pos)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	if isIdentStart(r) {
		return l.lexIdent(pos)
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

func (l *lexer) lexString(pos Pos) (Token, error) {
	l.advance(1) // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch c {
		case '"':
			l.advance(1)
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case '\\':
			if l.off+1 >= len(l.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			esc := l.src[l.off+1]
			switch esc {
			case '"', '\\':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return Token{}, errf(l.pos(), "unknown escape \\%c in string", esc)
			}
			l.advance(2)
		case '\n':
			return Token{}, errf(pos, "unterminated string literal")
		default:
			r, sz := utf8.DecodeRuneInString(l.src[l.off:])
			if r == utf8.RuneError && sz == 1 {
				return Token{}, errf(l.pos(), "invalid UTF-8 in string literal")
			}
			if !unicode.IsPrint(r) {
				return Token{}, errf(l.pos(), "unprintable character %q in string literal (use \\n or \\t)", r)
			}
			b.WriteString(l.src[l.off : l.off+sz])
			l.advance(sz)
		}
	}
	return Token{}, errf(pos, "unterminated string literal")
}

func (l *lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	if l.peekByte() == '-' {
		l.advance(1)
	}
	digits := func() int {
		n := 0
		for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
			l.advance(1)
			n++
		}
		return n
	}
	digits()
	// A '.' is part of the number only if followed by a digit; otherwise it
	// is the clause terminator (so `p(1).` lexes as NUMBER DOT).
	if l.peekByte() == '.' && l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
		l.advance(1)
		digits()
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		save := l.off
		l.advance(1)
		if c := l.peekByte(); c == '+' || c == '-' {
			l.advance(1)
		}
		if digits() == 0 {
			// Not an exponent after all (e.g. `1e` then identifier); back off.
			l.off = save
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *lexer) lexIdent(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentRune(r) {
			break
		}
		l.advance(sz)
	}
	text := l.src[start:l.off]
	first, _ := utf8.DecodeRuneInString(text)
	switch {
	case keywords[text]:
		return Token{Kind: TokKeyword, Text: text, Pos: pos}, nil
	case unicode.IsUpper(first) || first == '_':
		return Token{Kind: TokVariable, Text: text, Pos: pos}, nil
	default:
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	}
}

// lexAll tokenizes the whole input; used by tests.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

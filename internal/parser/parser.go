package parser

import (
	"strconv"

	"kdb/internal/term"
)

// parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type parser struct {
	lex  *lexer
	tok  Token  // current token
	file string // source name for rule positions ("" when unnamed)
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	return p, p.advance()
}

// newQueryParser is newParser with $n placeholders enabled (prepared
// statements are queries; programs may not contain holes).
func newQueryParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	p.lex.placeholders = true
	return p, p.advance()
}

// rulePos converts a token position into a term.Pos carrying the source
// file name.
func (p *parser) rulePos(pos Pos) term.Pos {
	return term.Pos{File: p.file, Line: pos.Line, Col: pos.Col}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", kind, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return errf(p.tok.Pos, "expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

// ParseProgram parses a knowledge-base source: a sequence of facts, rules
// and declarations, each terminated by '.'. Clause positions are recorded
// without a file name; use ParseProgramFile to attach one.
func ParseProgram(src string) (*Program, error) {
	return ParseProgramFile("", src)
}

// ParseProgramFile parses a knowledge-base source like ParseProgram and
// stamps every clause position with the given source name (typically the
// path of the loaded file), so diagnostics can point at file:line:col.
func ParseProgramFile(name, src string) (*Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	p.file = name
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokAt:
			d, err := p.parseDeclaration()
			if err != nil {
				return nil, err
			}
			prog.Declarations = append(prog.Declarations, d)
		case TokColonDash:
			// Headless clause: an integrity constraint ¬(p1 ∧ … ∧ pn).
			cpos := p.rulePos(p.tok.Pos)
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			prog.Constraints = append(prog.Constraints, c)
			prog.ConstraintPos = append(prog.ConstraintPos, cpos)
		default:
			r, err := p.parseClause()
			if err != nil {
				return nil, err
			}
			prog.Clauses = append(prog.Clauses, r)
		}
	}
	return prog, nil
}

// parseConstraint parses `:- p1, …, pn.` (the paper's second Horn-clause
// form, §2.1).
func (p *parser) parseConstraint() (term.Formula, error) {
	if err := p.advance(); err != nil { // consume ':-'
		return nil, err
	}
	var body term.Formula
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		body = append(body, a)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	ordinary := 0
	for _, a := range body {
		if !term.IsComparison(a) {
			ordinary++
		}
	}
	if ordinary == 0 {
		return nil, errf(p.tok.Pos, "a constraint needs at least one ordinary atom")
	}
	return body, nil
}

// ParseQuery parses a single query statement (retrieve / describe /
// compare), terminated by '.'.
func ParseQuery(src string) (Query, error) {
	p, err := newQueryParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "unexpected input after query: %s", p.tok)
	}
	return q, nil
}

// ParseQueries parses a sequence of query statements.
func ParseQueries(src string) ([]Query, error) {
	p, err := newQueryParser(src)
	if err != nil {
		return nil, err
	}
	var out []Query
	for p.tok.Kind != TokEOF {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// ParseAtom parses a single atom (no trailing '.').
func ParseAtom(src string) (term.Atom, error) {
	p, err := newParser(src)
	if err != nil {
		return term.Atom{}, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return term.Atom{}, err
	}
	if p.tok.Kind != TokEOF {
		return term.Atom{}, errf(p.tok.Pos, "unexpected input after atom: %s", p.tok)
	}
	return a, nil
}

// ParseFormula parses a conjunction `a1 and a2 and …` (no trailing '.').
func ParseFormula(src string) (term.Formula, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	f, _, err := p.parseConjunction(false)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "unexpected input after formula: %s", p.tok)
	}
	return f, nil
}

func (p *parser) parseDeclaration() (Declaration, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokAt); err != nil {
		return Declaration{}, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return Declaration{}, err
	}
	switch name.Text {
	case "key":
		return p.parseKeyDecl(pos)
	case "name":
		return p.parseNameDecl(pos)
	default:
		return Declaration{}, errf(name.Pos, "unknown declaration @%s (want @key or @name)", name.Text)
	}
}

// @key pred/arity col [col…].
func (p *parser) parseKeyDecl(pos Pos) (Declaration, error) {
	d := Declaration{Kind: DeclKey, Pos: pos}
	pred, err := p.expect(TokIdent)
	if err != nil {
		return d, err
	}
	d.Pred = pred.Text
	if _, err := p.expect(TokSlash); err != nil {
		return d, err
	}
	ar, err := p.expect(TokNumber)
	if err != nil {
		return d, err
	}
	n, err2 := strconv.Atoi(ar.Text)
	if err2 != nil || n < 0 {
		return d, errf(ar.Pos, "invalid arity %q", ar.Text)
	}
	d.Arity = n
	for p.tok.Kind == TokNumber {
		c, err2 := strconv.Atoi(p.tok.Text)
		if err2 != nil || c < 1 || c > n {
			return d, errf(p.tok.Pos, "key column %q out of range 1..%d", p.tok.Text, n)
		}
		d.Columns = append(d.Columns, c)
		if err := p.advance(); err != nil {
			return d, err
		}
	}
	if len(d.Columns) == 0 {
		return d, errf(p.tok.Pos, "@key needs at least one column number")
	}
	_, err = p.expect(TokDot)
	return d, err
}

// @name pred preferred_name.
func (p *parser) parseNameDecl(pos Pos) (Declaration, error) {
	d := Declaration{Kind: DeclName, Pos: pos}
	pred, err := p.expect(TokIdent)
	if err != nil {
		return d, err
	}
	d.Pred = pred.Text
	name, err := p.expect(TokIdent)
	if err != nil {
		return d, err
	}
	d.Name = name.Text
	_, err = p.expect(TokDot)
	return d, err
}

// parseClause parses `head.` or `head :- body.`. The returned rule
// carries the source position of its head.
func (p *parser) parseClause() (term.Rule, error) {
	pos := p.rulePos(p.tok.Pos)
	head, err := p.parseAtom()
	if err != nil {
		return term.Rule{}, err
	}
	if term.IsComparison(head) {
		return term.Rule{}, errf(p.tok.Pos, "a comparison cannot be the head of a clause")
	}
	switch p.tok.Kind {
	case TokDot:
		if err := p.advance(); err != nil {
			return term.Rule{}, err
		}
		return term.Rule{Head: head, Pos: pos}, nil
	case TokColonDash:
		if err := p.advance(); err != nil {
			return term.Rule{}, err
		}
		var body term.Formula
		for {
			a, err := p.parseAtom()
			if err != nil {
				return term.Rule{}, err
			}
			body = append(body, a)
			if p.tok.Kind == TokComma {
				if err := p.advance(); err != nil {
					return term.Rule{}, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(TokDot); err != nil {
			return term.Rule{}, err
		}
		return term.Rule{Head: head, Body: body, Pos: pos}, nil
	default:
		return term.Rule{}, errf(p.tok.Pos, "expected '.' or ':-' after clause head, found %s", p.tok)
	}
}

// parseAtom parses `pred(args)` or `pred` or an infix comparison
// `term op term`.
func (p *parser) parseAtom() (term.Atom, error) {
	// An atom can start with a term when it is an infix comparison
	// (`X > 3.7`, `3 < Y`), or with a predicate identifier.
	if p.tok.Kind == TokVariable || p.tok.Kind == TokNumber || p.tok.Kind == TokString {
		left, err := p.parseTerm()
		if err != nil {
			return term.Atom{}, err
		}
		return p.parseComparisonRest(left)
	}
	if p.tok.Kind != TokIdent {
		return term.Atom{}, errf(p.tok.Pos, "expected atom, found %s", p.tok)
	}
	pred := p.tok
	if err := p.advance(); err != nil {
		return term.Atom{}, err
	}
	if p.tok.Kind != TokLParen {
		// Could be a propositional atom, or a symbol followed by an infix
		// comparison (`databases = X` — rare but legal).
		if p.tok.Kind == TokOp {
			return p.parseComparisonRest(term.Sym(pred.Text))
		}
		return term.NewAtom(pred.Text), nil
	}
	if err := p.advance(); err != nil {
		return term.Atom{}, err
	}
	var args []term.Term
	if p.tok.Kind != TokRParen {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return term.Atom{}, err
			}
			args = append(args, t)
			if p.tok.Kind == TokComma {
				if err := p.advance(); err != nil {
					return term.Atom{}, err
				}
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return term.Atom{}, err
	}
	return term.NewAtom(pred.Text, args...), nil
}

func (p *parser) parseComparisonRest(left term.Term) (term.Atom, error) {
	op, err := p.expect(TokOp)
	if err != nil {
		return term.Atom{}, err
	}
	right, err := p.parseTerm()
	if err != nil {
		return term.Atom{}, err
	}
	return term.NewAtom(op.Text, left, right), nil
}

func (p *parser) parseTerm() (term.Term, error) {
	tok := p.tok
	switch tok.Kind {
	case TokVariable:
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		return term.Var(tok.Text), nil
	case TokIdent:
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		return term.Sym(tok.Text), nil
	case TokNumber:
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return term.Term{}, errf(tok.Pos, "invalid number %q", tok.Text)
		}
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		return term.Num(v), nil
	case TokString:
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		return term.Str(tok.Text), nil
	default:
		return term.Term{}, errf(tok.Pos, "expected a term, found %s", tok)
	}
}

// parseQuery parses one query statement ending in '.'.
func (p *parser) parseQuery() (Query, error) {
	pos := p.tok.Pos
	switch {
	case p.atKeyword("retrieve"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseRetrieve(pos)
	case p.atKeyword("describe"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseDescribe(pos)
	case p.atKeyword("compare"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseCompare(pos)
	case p.atKeyword("explain"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseExplain(pos)
	case p.atKeyword("profile"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseProfile(pos)
	default:
		return nil, errf(pos, "expected retrieve, describe, compare, explain, or profile, found %s", p.tok)
	}
}

// parseProfile parses `profile p(…) [where ψ].` — a retrieve-shaped
// statement without disjunction, mirroring explain: the cost rows
// account for one evaluation, not a union of them.
func (p *parser) parseProfile(pos Pos) (Query, error) {
	subject, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if term.IsComparison(subject) {
		return nil, errf(pos, "the subject of profile cannot be a comparison")
	}
	q := &Profile{Subject: subject, Pos: pos}
	if p.atKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		where, nots, err := p.parseConjunction(false)
		if err != nil {
			return nil, err
		}
		if len(nots) > 0 {
			return nil, errf(pos, "profile qualifiers are positive formulas; 'not' is not allowed")
		}
		q.Where = where
		if p.atKeyword("or") {
			return nil, errf(pos, "'or' is not allowed in profile qualifiers")
		}
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return q, nil
}

// parseExplain parses `explain p(…) [where ψ].` — a retrieve-shaped
// statement without disjunction (a derivation tree explains one
// evaluation, not a union of them).
func (p *parser) parseExplain(pos Pos) (Query, error) {
	subject, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if term.IsComparison(subject) {
		return nil, errf(pos, "the subject of explain cannot be a comparison")
	}
	q := &Explain{Subject: subject, Pos: pos}
	if p.atKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		where, nots, err := p.parseConjunction(false)
		if err != nil {
			return nil, err
		}
		if len(nots) > 0 {
			return nil, errf(pos, "explain qualifiers are positive formulas; 'not' is not allowed")
		}
		q.Where = where
		if p.atKeyword("or") {
			return nil, errf(pos, "'or' is not allowed in explain qualifiers")
		}
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseRetrieve(pos Pos) (Query, error) {
	subject, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if term.IsComparison(subject) {
		return nil, errf(pos, "the subject of retrieve cannot be a comparison")
	}
	q := &Retrieve{Subject: subject, Pos: pos}
	if p.atKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		where, nots, err := p.parseConjunction(false)
		if err != nil {
			return nil, err
		}
		if len(nots) > 0 {
			return nil, errf(pos, "retrieve qualifiers are positive formulas; 'not' is not allowed")
		}
		q.Where = where
		for p.atKeyword("or") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, nots, err := p.parseConjunction(false)
			if err != nil {
				return nil, err
			}
			if len(nots) > 0 {
				return nil, errf(pos, "'not' is not allowed in retrieve qualifiers")
			}
			q.Or = append(q.Or, d)
		}
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return q, nil
}

// parseDescribe parses the describe body after the keyword, with an
// optional subject / '*' / nothing, then the where clause. The final '.'
// is consumed unless inParens is implied by the caller (compare handles
// its own parentheses by calling parseDescribeNoDot).
func (p *parser) parseDescribe(pos Pos) (Query, error) {
	q, err := p.parseDescribeNoDot(pos)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseDescribeNoDot(pos Pos) (*Describe, error) {
	q := &Describe{Pos: pos}
	switch {
	case p.tok.Kind == TokStar:
		q.Wildcard = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.atKeyword("where"):
		q.Subjectless = true
	default:
		subject, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if term.IsComparison(subject) {
			return nil, errf(pos, "the subject of describe cannot be a comparison")
		}
		q.Subject = subject
	}
	if p.atKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("necessary") {
			q.Necessary = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		where, nots, err := p.parseConjunction(true)
		if err != nil {
			return nil, err
		}
		q.Where, q.Not = where, nots
		for p.atKeyword("or") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, dnots, err := p.parseConjunction(false)
			if err != nil {
				return nil, err
			}
			if len(dnots) > 0 {
				return nil, errf(pos, "'not' cannot be combined with 'or'")
			}
			q.Or = append(q.Or, d)
		}
		if len(q.Or) > 0 {
			switch {
			case len(q.Not) > 0:
				return nil, errf(pos, "'not' cannot be combined with 'or'")
			case q.Necessary:
				return nil, errf(pos, "'necessary' cannot be combined with 'or'")
			case q.Wildcard || q.Subjectless:
				return nil, errf(pos, "'or' needs an explicit describe subject")
			}
		}
	} else if q.Subjectless {
		return nil, errf(pos, "subjectless describe requires a where clause")
	}
	return q, nil
}

func (p *parser) parseCompare(pos Pos) (Query, error) {
	parseSide := func() (*Describe, error) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		dpos := p.tok.Pos
		if err := p.expectKeyword("describe"); err != nil {
			return nil, err
		}
		d, err := p.parseDescribeNoDot(dpos)
		if err != nil {
			return nil, err
		}
		if d.Wildcard || d.Subjectless {
			return nil, errf(dpos, "compare sides must have explicit subjects")
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return d, nil
	}
	left, err := parseSide()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	right, err := parseSide()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return &Compare{Left: left, Right: right, Pos: pos}, nil
}

// parseConjunction parses `item (and item)*` where item is an atom or,
// when allowNot is true, `not atom`. It returns the positive and negated
// conjuncts separately.
func (p *parser) parseConjunction(allowNot bool) (term.Formula, term.Formula, error) {
	var pos, neg term.Formula
	for {
		negated := false
		if p.atKeyword("not") {
			if !allowNot {
				return nil, nil, errf(p.tok.Pos, "'not' is not allowed here")
			}
			negated = true
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		}
		if p.atKeyword("true") {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			if negated {
				return nil, nil, errf(p.tok.Pos, "'not true' is not a useful hypothesis")
			}
		} else {
			a, err := p.parseAtom()
			if err != nil {
				return nil, nil, err
			}
			if negated {
				neg = append(neg, a)
			} else {
				pos = append(pos, a)
			}
		}
		if p.atKeyword("and") {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			continue
		}
		return pos, neg, nil
	}
}

// Package builtin implements the paper's set R of built-in predicates —
// the binary comparisons =, !=, <, <=, >, >= — in two capacities:
//
//   - ground evaluation, used by the retrieve engines (§3.1), and
//   - a decision procedure for conjunctions of comparison atoms over
//     variables and constants, deciding satisfiability and implication.
//
// The decision procedure is what Section 4 of the paper needs for its
// special handling of comparison formulas in knowledge answers: a
// comparison β in a candidate answer body is dropped when the hypothesis
// comparison α implies it (α ⊢ β), and the whole answer is discarded when
// α ∧ β is unsatisfiable. The same procedure powers the §6 possibility
// checker and the redundancy eliminator.
//
// Numbers are ordered numerically over a dense domain (ℝ); symbols and
// strings are ordered lexicographically within their own kind. Constants
// of different kinds are incomparable: `=` between them is false, `!=`
// true, and the order predicates false.
package builtin

import (
	"fmt"
	"strings"

	"kdb/internal/term"
)

// Eval evaluates a ground comparison atom. It reports an error when the
// atom is not a comparison or not ground.
func Eval(a term.Atom) (bool, error) {
	if !term.IsComparison(a) {
		return false, fmt.Errorf("builtin: %v is not a comparison", a)
	}
	l, r := a.Args[0], a.Args[1]
	if l.IsVar() || r.IsVar() {
		return false, fmt.Errorf("builtin: comparison %v is not ground", a)
	}
	cmp, comparable := CompareConst(l, r)
	switch a.Pred {
	case term.PredEq:
		return comparable && cmp == 0, nil
	case term.PredNe:
		return !comparable || cmp != 0, nil
	case term.PredLt:
		return comparable && cmp < 0, nil
	case term.PredLe:
		return comparable && cmp <= 0, nil
	case term.PredGt:
		return comparable && cmp > 0, nil
	case term.PredGe:
		return comparable && cmp >= 0, nil
	}
	return false, fmt.Errorf("builtin: unknown comparison %q", a.Pred)
}

// CompareConst orders two constants. comparable is false when the
// constants are of different kinds (a number and a symbol, say); then cmp
// is meaningless. Symbols and strings of the same kind compare
// lexicographically; numbers numerically.
func CompareConst(a, b term.Term) (cmp int, comparable bool) {
	if a.Kind() != b.Kind() {
		return 0, false
	}
	switch a.Kind() {
	case term.KindNumber:
		av, bv := a.Float(), b.Float()
		switch {
		case av < bv:
			return -1, true
		case av > bv:
			return 1, true
		default:
			return 0, true
		}
	case term.KindSymbol, term.KindString:
		return strings.Compare(a.Name(), b.Name()), true
	default:
		return 0, false
	}
}

// Normalize rewrites a comparison atom so its predicate is one of
// =, !=, <, <= (flipping > and >= around), which halves the cases the
// solver must consider. Non-comparison atoms are returned unchanged.
func Normalize(a term.Atom) term.Atom {
	if !term.IsComparison(a) {
		return a
	}
	switch a.Pred {
	case term.PredGt:
		return term.NewAtom(term.PredLt, a.Args[1], a.Args[0])
	case term.PredGe:
		return term.NewAtom(term.PredLe, a.Args[1], a.Args[0])
	default:
		return a
	}
}

// Negate returns the complementary comparison: ¬(a < b) is (a >= b), etc.
func Negate(a term.Atom) (term.Atom, error) {
	if !term.IsComparison(a) {
		return term.Atom{}, fmt.Errorf("builtin: cannot negate non-comparison %v", a)
	}
	l, r := a.Args[0], a.Args[1]
	switch a.Pred {
	case term.PredEq:
		return term.NewAtom(term.PredNe, l, r), nil
	case term.PredNe:
		return term.NewAtom(term.PredEq, l, r), nil
	case term.PredLt:
		return term.NewAtom(term.PredGe, l, r), nil
	case term.PredLe:
		return term.NewAtom(term.PredGt, l, r), nil
	case term.PredGt:
		return term.NewAtom(term.PredLe, l, r), nil
	case term.PredGe:
		return term.NewAtom(term.PredLt, l, r), nil
	}
	return term.Atom{}, fmt.Errorf("builtin: unknown comparison %q", a.Pred)
}

// Split separates a formula into its comparison atoms and its ordinary
// (EDB/IDB) atoms, preserving order within each part.
func Split(f term.Formula) (comparisons, ordinary term.Formula) {
	for _, a := range f {
		if term.IsComparison(a) {
			comparisons = append(comparisons, a)
		} else {
			ordinary = append(ordinary, a)
		}
	}
	return comparisons, ordinary
}

package builtin

import (
	"testing"

	"kdb/internal/term"
)

func atom(pred string, l, r term.Term) term.Atom { return term.NewAtom(pred, l, r) }

func TestEvalNumbers(t *testing.T) {
	cases := []struct {
		pred string
		l, r float64
		want bool
	}{
		{"=", 1, 1, true}, {"=", 1, 2, false},
		{"!=", 1, 2, true}, {"!=", 1, 1, false},
		{"<", 1, 2, true}, {"<", 2, 1, false}, {"<", 1, 1, false},
		{"<=", 1, 1, true}, {"<=", 1, 2, true}, {"<=", 2, 1, false},
		{">", 2, 1, true}, {">", 1, 2, false},
		{">=", 2, 2, true}, {">=", 1, 2, false},
	}
	for _, c := range cases {
		got, err := Eval(atom(c.pred, term.Num(c.l), term.Num(c.r)))
		if err != nil {
			t.Fatalf("Eval(%v %s %v): %v", c.l, c.pred, c.r, err)
		}
		if got != c.want {
			t.Errorf("Eval(%v %s %v) = %v, want %v", c.l, c.pred, c.r, got, c.want)
		}
	}
}

func TestEvalSymbolsAndStrings(t *testing.T) {
	if ok, _ := Eval(atom("<", term.Sym("apple"), term.Sym("banana"))); !ok {
		t.Error("apple < banana lexicographically")
	}
	if ok, _ := Eval(atom("=", term.Str("x"), term.Str("x"))); !ok {
		t.Error("identical strings are equal")
	}
	// Cross-kind: = false, != true, orders false.
	if ok, _ := Eval(atom("=", term.Num(1), term.Sym("a"))); ok {
		t.Error("1 = a must be false")
	}
	if ok, _ := Eval(atom("!=", term.Num(1), term.Sym("a"))); !ok {
		t.Error("1 != a must be true")
	}
	if ok, _ := Eval(atom("<", term.Num(1), term.Sym("a"))); ok {
		t.Error("1 < a must be false (incomparable)")
	}
	// Symbols vs strings are different kinds.
	if ok, _ := Eval(atom("=", term.Sym("a"), term.Str("a"))); ok {
		t.Error("symbol a and string \"a\" are distinct")
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(term.NewAtom("p", term.Num(1), term.Num(2))); err == nil {
		t.Error("non-comparison must error")
	}
	if _, err := Eval(atom("<", term.Var("X"), term.Num(2))); err == nil {
		t.Error("non-ground comparison must error")
	}
}

func TestNormalize(t *testing.T) {
	x, y := term.Var("X"), term.Var("Y")
	if got := Normalize(atom(">", x, y)); got.Pred != "<" || got.Args[0] != y {
		t.Errorf("Normalize(X>Y) = %v", got)
	}
	if got := Normalize(atom(">=", x, y)); got.Pred != "<=" || got.Args[0] != y {
		t.Errorf("Normalize(X>=Y) = %v", got)
	}
	if got := Normalize(atom("<", x, y)); got.Pred != "<" || got.Args[0] != x {
		t.Errorf("Normalize(X<Y) = %v", got)
	}
	p := term.NewAtom("p", x)
	if got := Normalize(p); !got.Equal(p) {
		t.Errorf("Normalize(p(X)) = %v", got)
	}
}

func TestNegate(t *testing.T) {
	x, y := term.Var("X"), term.Var("Y")
	pairs := map[string]string{"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
	for from, to := range pairs {
		got, err := Negate(atom(from, x, y))
		if err != nil || got.Pred != to {
			t.Errorf("Negate(%s) = %v, %v; want %s", from, got, err, to)
		}
	}
	if _, err := Negate(term.NewAtom("p", x)); err == nil {
		t.Error("negating non-comparison must error")
	}
}

func TestSplit(t *testing.T) {
	f := term.Formula{
		term.NewAtom("student", term.Var("X")),
		atom(">", term.Var("Z"), term.Num(3.7)),
		term.NewAtom("enroll", term.Var("X"), term.Sym("db")),
	}
	cmps, ord := Split(f)
	if len(cmps) != 1 || len(ord) != 2 || cmps[0].Pred != ">" {
		t.Errorf("Split = %v | %v", cmps, ord)
	}
}

func TestSatBasics(t *testing.T) {
	x, y, z := term.Var("X"), term.Var("Y"), term.Var("Z")
	cases := []struct {
		name string
		conj term.Formula
		want bool
	}{
		{"empty", nil, true},
		{"single", term.Formula{atom("<", x, y)}, true},
		{"strict cycle 2", term.Formula{atom("<", x, y), atom("<", y, x)}, false},
		{"strict cycle 3", term.Formula{atom("<", x, y), atom("<", y, z), atom("<", z, x)}, false},
		{"le cycle ok", term.Formula{atom("<=", x, y), atom("<=", y, x)}, true},
		{"le cycle plus neq", term.Formula{atom("<=", x, y), atom("<=", y, x), atom("!=", x, y)}, false},
		{"le cycle plus strict", term.Formula{atom("<=", x, y), atom("<", y, x)}, false},
		{"eq then lt", term.Formula{atom("=", x, y), atom("<", x, y)}, false},
		{"eq then le", term.Formula{atom("=", x, y), atom("<=", x, y)}, true},
		{"eq neq", term.Formula{atom("=", x, y), atom("!=", x, y)}, false},
		{"self neq", term.Formula{atom("!=", x, x)}, false},
		{"self lt", term.Formula{atom("<", x, x)}, false},
		{"const order ok", term.Formula{atom("<", term.Num(1), term.Num(2))}, true},
		{"const order bad", term.Formula{atom("<", term.Num(2), term.Num(1))}, false},
		{"var between consts", term.Formula{atom("<", term.Num(1), x), atom("<", x, term.Num(2))}, true},
		{"var between equal consts", term.Formula{atom("<", term.Num(1), x), atom("<", x, term.Num(1))}, false},
		{"var eq two consts", term.Formula{atom("=", x, term.Num(1)), atom("=", x, term.Num(2))}, false},
		{"transitive const clash", term.Formula{atom("<=", term.Num(2), x), atom("<=", x, term.Num(1))}, false},
		{"paper gpa", term.Formula{atom(">", x, term.Num(3.7)), atom("<", x, term.Num(3.5))}, false},
		{"paper gpa ok", term.Formula{atom(">", x, term.Num(3.3)), atom("<", x, term.Num(3.5))}, true},
		{"incomparable kinds ordered", term.Formula{atom("<", term.Num(1), x), atom("<", x, term.Sym("a"))}, false},
		{"incomparable kinds eq", term.Formula{atom("=", x, term.Num(1)), atom("=", x, term.Sym("a"))}, false},
		{"incomparable kinds neq ok", term.Formula{atom("=", x, term.Num(1)), atom("!=", x, term.Sym("a"))}, true},
		{"eq const propagates", term.Formula{atom("=", x, term.Num(3)), atom("=", y, x), atom("<", y, term.Num(2))}, false},
		{"ge gt forms", term.Formula{atom(">=", x, term.Num(2)), atom(">", term.Num(3), x)}, true},
		{"symbol order", term.Formula{atom("<", term.Sym("a"), x), atom("<", x, term.Sym("b"))}, true},
		{"symbol order bad", term.Formula{atom("<", term.Sym("b"), x), atom("<", x, term.Sym("a"))}, false},
	}
	for _, c := range cases {
		got, err := Sat(c.conj)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Sat(%v) = %v, want %v", c.name, c.conj, got, c.want)
		}
	}
}

func TestSatRejectsNonComparison(t *testing.T) {
	if _, err := Sat(term.Formula{term.NewAtom("p", term.Var("X"))}); err == nil {
		t.Error("Sat must reject ordinary atoms")
	}
}

func TestImpliesBasics(t *testing.T) {
	x, y, z := term.Var("X"), term.Var("Y"), term.Var("Z")
	cases := []struct {
		name        string
		alpha, beta term.Formula
		want        bool
	}{
		{"reflexive le", nil, term.Formula{atom("<=", x, x)}, true},
		{"reflexive eq", nil, term.Formula{atom("=", x, x)}, true},
		{"reflexive lt", nil, term.Formula{atom("<", x, x)}, false},
		{"unconstrained", nil, term.Formula{atom("<", x, y)}, false},
		{"same atom", term.Formula{atom("<", x, y)}, term.Formula{atom("<", x, y)}, true},
		{"lt implies le", term.Formula{atom("<", x, y)}, term.Formula{atom("<=", x, y)}, true},
		{"lt implies neq", term.Formula{atom("<", x, y)}, term.Formula{atom("!=", x, y)}, true},
		{"lt implies flipped gt", term.Formula{atom("<", x, y)}, term.Formula{atom(">", y, x)}, true},
		{"le not lt", term.Formula{atom("<=", x, y)}, term.Formula{atom("<", x, y)}, false},
		{"transitivity", term.Formula{atom("<", x, y), atom("<", y, z)}, term.Formula{atom("<", x, z)}, true},
		{"transitivity mixed", term.Formula{atom("<=", x, y), atom("<", y, z)}, term.Formula{atom("<", x, z)}, true},
		{"eq substitution", term.Formula{atom("=", x, y), atom("<", y, z)}, term.Formula{atom("<", x, z)}, true},
		{"le antisym eq", term.Formula{atom("<=", x, y), atom("<=", y, x)}, term.Formula{atom("=", x, y)}, true},
		{"const tighten", term.Formula{atom(">", x, term.Num(3.7))}, term.Formula{atom(">", x, term.Num(3.3))}, true},
		{"const tighten fail", term.Formula{atom(">", x, term.Num(3.3))}, term.Formula{atom(">", x, term.Num(3.7))}, false},
		{"paper e3", term.Formula{atom(">", x, term.Num(3.7))}, term.Formula{atom(">", x, term.Num(3.7))}, true},
		{"ge from eq const", term.Formula{atom("=", x, term.Num(4))}, term.Formula{atom(">", x, term.Num(3.3))}, true},
		{"neq from consts", term.Formula{atom("=", x, term.Num(1)), atom("=", y, term.Num(2))}, term.Formula{atom("!=", x, y)}, true},
		{"neq from kinds", term.Formula{atom("=", x, term.Num(1)), atom("=", y, term.Sym("a"))}, term.Formula{atom("!=", x, y)}, true},
		{"unsat implies anything", term.Formula{atom("<", x, x)}, term.Formula{atom("<", y, z)}, true},
		{"multi beta", term.Formula{atom("<", x, y), atom("<", y, z)}, term.Formula{atom("<", x, z), atom("<=", x, y)}, true},
		{"multi beta fail", term.Formula{atom("<", x, y)}, term.Formula{atom("<=", x, y), atom("<", y, z)}, false},
		{"ground beta", nil, term.Formula{atom("<", term.Num(1), term.Num(2))}, true},
		{"ground beta false", nil, term.Formula{atom(">", term.Num(1), term.Num(2))}, false},
		{"fresh var in beta", term.Formula{atom("<", x, y)}, term.Formula{atom("<", x, z)}, false},
	}
	for _, c := range cases {
		got, err := Implies(c.alpha, c.beta)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Implies(%v ⊢ %v) = %v, want %v", c.name, c.alpha, c.beta, got, c.want)
		}
	}
}

func TestContradicts(t *testing.T) {
	x := term.Var("X")
	alpha := term.Formula{atom(">", x, term.Num(3.7))}
	beta := term.Formula{atom("<", x, term.Num(3.5))}
	if got, _ := Contradicts(alpha, beta); !got {
		t.Error("X>3.7 contradicts X<3.5")
	}
	beta2 := term.Formula{atom("<", x, term.Num(4))}
	if got, _ := Contradicts(alpha, beta2); got {
		t.Error("X>3.7 is consistent with X<4")
	}
	if _, err := Contradicts(term.Formula{term.NewAtom("p", x)}, nil); err == nil {
		t.Error("Contradicts must reject ordinary atoms")
	}
}

func TestEntailsNonComparison(t *testing.T) {
	net, err := Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Entails(term.NewAtom("p", term.Var("X"))); err == nil {
		t.Error("Entails must reject ordinary atoms")
	}
}

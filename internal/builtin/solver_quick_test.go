package builtin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kdb/internal/term"
)

// The brute-force oracle evaluates a conjunction of numeric comparisons
// under every assignment of the variables to grid points. The grid is
// fine enough (step 0.25 around the constants 1..3) that for up to three
// variables the restricted problem is equisatisfiable with the dense one:
// a chain of strict inequalities between adjacent constants needs at most
// three intermediate points and the grid provides them.

var gridPoints = func() []float64 {
	var pts []float64
	for v := 0.0; v <= 4.0; v += 0.25 {
		pts = append(pts, v)
	}
	return pts
}()

var quickVars = []term.Term{term.Var("X"), term.Var("Y"), term.Var("Z")}

func randComparison(r *rand.Rand) term.Atom {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	pick := func() term.Term {
		if r.Intn(3) == 0 {
			return term.Num(float64(1 + r.Intn(3)))
		}
		return quickVars[r.Intn(len(quickVars))]
	}
	return term.NewAtom(ops[r.Intn(len(ops))], pick(), pick())
}

func randConj(r *rand.Rand, n int) term.Formula {
	f := make(term.Formula, n)
	for i := range f {
		f[i] = randComparison(r)
	}
	return f
}

func groundEval(f term.Formula, env map[term.Term]float64) bool {
	for _, a := range f {
		val := func(t term.Term) float64 {
			if t.IsVar() {
				return env[t]
			}
			return t.Float()
		}
		l, r := val(a.Args[0]), val(a.Args[1])
		var ok bool
		switch a.Pred {
		case "=":
			ok = l == r
		case "!=":
			ok = l != r
		case "<":
			ok = l < r
		case "<=":
			ok = l <= r
		case ">":
			ok = l > r
		case ">=":
			ok = l >= r
		}
		if !ok {
			return false
		}
	}
	return true
}

// forEachAssignment enumerates grid assignments; fn returning false stops.
func forEachAssignment(fn func(env map[term.Term]float64) bool) {
	env := make(map[term.Term]float64, len(quickVars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(quickVars) {
			return fn(env)
		}
		for _, v := range gridPoints {
			env[quickVars[i]] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

func bruteSat(f term.Formula) bool {
	sat := false
	forEachAssignment(func(env map[term.Term]float64) bool {
		if groundEval(f, env) {
			sat = true
			return false
		}
		return true
	})
	return sat
}

func bruteImplies(alpha, beta term.Formula) bool {
	holds := true
	forEachAssignment(func(env map[term.Term]float64) bool {
		if groundEval(alpha, env) && !groundEval(beta, env) {
			holds = false
			return false
		}
		return true
	})
	return holds
}

// TestQuickSatMatchesBruteForce cross-checks the solver's satisfiability
// against grid enumeration on random numeric conjunctions.
func TestQuickSatMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		conj := randConj(r, 1+r.Intn(4))
		got, err := Sat(conj)
		if err != nil {
			return false
		}
		want := bruteSat(conj)
		if got != want {
			t.Logf("seed %d: Sat(%v) = %v, brute force = %v", seed, conj, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickImpliesSound: whenever the solver claims α ⊢ β, the brute-force
// oracle agrees (no grid assignment satisfies α but violates β). The
// solver is deliberately incomplete (it may miss entailments), so only
// the sound direction is asserted.
func TestQuickImpliesSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := randConj(r, 1+r.Intn(3))
		beta := randConj(r, 1+r.Intn(2))
		got, err := Implies(alpha, beta)
		if err != nil {
			return false
		}
		if got && !bruteImplies(alpha, beta) {
			t.Logf("seed %d: claimed %v ⊢ %v but brute force disagrees", seed, alpha, beta)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickImpliesSingleAtomComplete: for single-atom β over terms that
// appear in α, the solver's entailment matches brute force exactly. This
// is the case the paper's comparison post-pass relies on ("corresponding
// variables are identical").
func TestQuickImpliesSingleAtomComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := randConj(r, 1+r.Intn(3))
		// Build β from terms appearing in alpha to keep it relevant.
		var pool []term.Term
		for _, a := range alpha {
			pool = append(pool, a.Args...)
		}
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		beta := term.Formula{term.NewAtom(ops[r.Intn(len(ops))], pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])}
		got, err := Implies(alpha, beta)
		if err != nil {
			return false
		}
		want := bruteImplies(alpha, beta)
		if got != want {
			t.Logf("seed %d: Implies(%v ⊢ %v) = %v, brute force = %v", seed, alpha, beta, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickContradictsMatchesBruteForce: the discard test of §4.
func TestQuickContradictsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := randConj(r, 1+r.Intn(2))
		beta := randConj(r, 1+r.Intn(2))
		got, err := Contradicts(alpha, beta)
		if err != nil {
			return false
		}
		want := !bruteSat(append(alpha.Clone(), beta...))
		if got != want {
			t.Logf("seed %d: Contradicts(%v, %v) = %v, brute force = %v", seed, alpha, beta, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolverSat(b *testing.B) {
	x, y, z := term.Var("X"), term.Var("Y"), term.Var("Z")
	conj := term.Formula{
		term.NewAtom(">", x, term.Num(3.3)),
		term.NewAtom("<", x, term.Num(4)),
		term.NewAtom("<=", y, x),
		term.NewAtom("<", z, y),
		term.NewAtom("!=", z, term.Num(3.5)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sat(conj); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverImplies(b *testing.B) {
	x := term.Var("X")
	alpha := term.Formula{term.NewAtom(">", x, term.Num(3.7))}
	beta := term.Formula{term.NewAtom(">", x, term.Num(3.3))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Implies(alpha, beta); err != nil {
			b.Fatal(err)
		}
	}
}

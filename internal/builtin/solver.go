package builtin

import (
	"fmt"

	"kdb/internal/term"
)

// Relation strengths along an order path.
type strength uint8

const (
	relNone strength = iota // no known path
	relLe                   // u ≤ v
	relLt                   // u < v
)

// Network is a compiled conjunction of comparison atoms, supporting
// satisfiability and entailment queries. Build one with Compile; a
// Network is immutable afterwards and safe for concurrent reads.
type Network struct {
	nodes  map[term.Term]int // term → node id (pre union-find)
	parent []int             // union-find forest over node ids
	consts []term.Term       // class representative constant (zero Term if none)
	pinned []bool
	n      int

	// dist[u][v] is the strongest known order relation u→v between class
	// representatives, after transitive closure.
	dist [][]strength
	// neq records explicit disequalities between class representatives.
	neq map[[2]int]bool

	unsat bool

	// conj retains the source conjunction for entailment queries, which
	// are answered by refutation: α ⊢ β iff unsat(α ∧ ¬β).
	conj term.Formula
}

// Compile builds the constraint network for a conjunction of comparison
// atoms. Non-comparison atoms cause an error. An empty conjunction
// compiles to the trivially satisfiable network.
func Compile(conj term.Formula) (*Network, error) {
	net := &Network{nodes: make(map[term.Term]int), neq: make(map[[2]int]bool), conj: conj.Clone()}
	type edge struct {
		u, v int
		s    strength
	}
	var edges []edge
	var neqPairs [][2]int
	var eqPairs [][2]int
	for _, raw := range conj {
		if !term.IsComparison(raw) {
			return nil, fmt.Errorf("builtin: %v is not a comparison", raw)
		}
		a := Normalize(raw)
		u := net.node(a.Args[0])
		v := net.node(a.Args[1])
		switch a.Pred {
		case term.PredEq:
			eqPairs = append(eqPairs, [2]int{u, v})
		case term.PredNe:
			neqPairs = append(neqPairs, [2]int{u, v})
		case term.PredLt:
			edges = append(edges, edge{u, v, relLt})
		case term.PredLe:
			edges = append(edges, edge{u, v, relLe})
		}
	}
	// Union-find over equalities.
	net.parent = make([]int, net.n)
	for i := range net.parent {
		net.parent[i] = i
	}
	for _, p := range eqPairs {
		net.union(p[0], p[1])
	}
	// Pin classes to constants; two distinct constants in one class is a
	// contradiction (they are distinct Term values, so distinct nodes).
	net.consts = make([]term.Term, net.n)
	net.pinned = make([]bool, net.n)
	for t, id := range net.nodes {
		if t.IsVar() {
			continue
		}
		r := net.find(id)
		if net.pinned[r] && net.consts[r] != t {
			net.unsat = true
		}
		net.pinned[r] = true
		net.consts[r] = t
	}
	// Order edges between class representatives, plus the intrinsic order
	// of pinned constants.
	net.dist = make([][]strength, net.n)
	for i := range net.dist {
		net.dist[i] = make([]strength, net.n)
	}
	addEdge := func(u, v int, s strength) {
		u, v = net.find(u), net.find(v)
		if u == v {
			if s == relLt {
				net.unsat = true // u < u
			}
			return
		}
		if net.dist[u][v] < s {
			net.dist[u][v] = s
		}
	}
	for _, e := range edges {
		addEdge(e.u, e.v, e.s)
	}
	for i := 0; i < net.n; i++ {
		if net.find(i) != i || !net.pinned[i] {
			continue
		}
		for j := i + 1; j < net.n; j++ {
			if net.find(j) != j || !net.pinned[j] {
				continue
			}
			cmp, comparable := CompareConst(net.consts[i], net.consts[j])
			if !comparable {
				continue // incomparable constants carry no order edge
			}
			switch {
			case cmp < 0:
				addEdge(i, j, relLt)
			case cmp > 0:
				addEdge(j, i, relLt)
			}
		}
	}
	// Disequalities between representatives.
	for _, p := range neqPairs {
		u, v := net.find(p[0]), net.find(p[1])
		if u == v {
			net.unsat = true
			continue
		}
		if u > v {
			u, v = v, u
		}
		net.neq[[2]int{u, v}] = true
	}
	net.close()
	net.check()
	return net, nil
}

func (net *Network) node(t term.Term) int {
	if id, ok := net.nodes[t]; ok {
		return id
	}
	id := net.n
	net.nodes[t] = id
	net.n++
	return id
}

func (net *Network) find(x int) int {
	for net.parent[x] != x {
		net.parent[x] = net.parent[net.parent[x]]
		x = net.parent[x]
	}
	return x
}

func (net *Network) union(a, b int) {
	ra, rb := net.find(a), net.find(b)
	if ra != rb {
		net.parent[ra] = rb
	}
}

// close computes the transitive closure of the order relation, keeping
// the strongest strength along any path (any strict edge makes the whole
// path strict).
func (net *Network) close() {
	d := net.dist
	for k := 0; k < net.n; k++ {
		for i := 0; i < net.n; i++ {
			if d[i][k] == relNone {
				continue
			}
			for j := 0; j < net.n; j++ {
				if d[k][j] == relNone {
					continue
				}
				s := relLe
				if d[i][k] == relLt || d[k][j] == relLt {
					s = relLt
				}
				if d[i][j] < s {
					d[i][j] = s
				}
			}
		}
	}
}

// check scans the closed network for contradictions.
func (net *Network) check() {
	if net.unsat {
		return
	}
	for i := 0; i < net.n; i++ {
		if net.find(i) != i {
			continue
		}
		if net.dist[i][i] == relLt {
			net.unsat = true // strict cycle
			return
		}
		for j := 0; j < net.n; j++ {
			if i == j || net.find(j) != j {
				continue
			}
			// u ≤ v and v ≤ u force equality: contradicts a disequality or
			// an order between constants of incomparable kinds.
			forcedEq := net.dist[i][j] != relNone && net.dist[j][i] != relNone
			if forcedEq {
				// A strict edge inside a ≤-cycle is a strict cycle.
				if net.dist[i][j] == relLt || net.dist[j][i] == relLt {
					net.unsat = true
					return
				}
				if net.neqRel(i, j) {
					net.unsat = true
					return
				}
				if net.pinned[i] && net.pinned[j] {
					// Distinct constants forced equal.
					net.unsat = true
					return
				}
			}
			// Any order path between constants of incomparable kinds is
			// contradictory: values of different kinds are unordered.
			if net.dist[i][j] != relNone && net.pinned[i] && net.pinned[j] {
				if _, comparable := CompareConst(net.consts[i], net.consts[j]); !comparable {
					net.unsat = true
					return
				}
			}
		}
	}
}

func (net *Network) neqRel(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return net.neq[[2]int{u, v}]
}

// Sat reports whether the compiled conjunction is satisfiable over the
// dense, per-kind-ordered constant domain.
func (net *Network) Sat() bool { return !net.unsat }

// Entails reports whether the compiled conjunction entails the single
// comparison atom b, decided by refutation: α ⊢ β iff α ∧ ¬β is
// unsatisfiable. The negation of a comparison is again a comparison, so
// the refutation is a single satisfiability test and the decision is
// exact over the dense per-kind domain. An unsatisfiable conjunction
// entails everything.
func (net *Network) Entails(b term.Atom) (bool, error) {
	if !term.IsComparison(b) {
		return false, fmt.Errorf("builtin: %v is not a comparison", b)
	}
	if net.unsat {
		return true, nil
	}
	neg, err := Negate(b)
	if err != nil {
		return false, err
	}
	joint := make(term.Formula, 0, len(net.conj)+1)
	joint = append(joint, net.conj...)
	joint = append(joint, neg)
	refut, err := Compile(joint)
	if err != nil {
		return false, err
	}
	return !refut.Sat(), nil
}

// Sat reports whether the conjunction of comparison atoms is satisfiable.
func Sat(conj term.Formula) (bool, error) {
	net, err := Compile(conj)
	if err != nil {
		return false, err
	}
	return net.Sat(), nil
}

// Implies reports whether alpha entails every atom of beta (α ⊢ β).
// Both formulas must consist of comparison atoms only.
func Implies(alpha, beta term.Formula) (bool, error) {
	net, err := Compile(alpha)
	if err != nil {
		return false, err
	}
	for _, b := range beta {
		ok, err := net.Entails(b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Contradicts reports whether alpha ∧ beta is unsatisfiable — the paper's
// ¬(α ∧ β) test that discards a candidate knowledge answer (§4).
func Contradicts(alpha, beta term.Formula) (bool, error) {
	joint := make(term.Formula, 0, len(alpha)+len(beta))
	joint = append(joint, alpha...)
	joint = append(joint, beta...)
	ok, err := Sat(joint)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kdb/internal/storage"
	"kdb/internal/term"
)

func TestDescribeOrDegenerateForms(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `honor(X)`)
	// Zero disjuncts = no hypothesis.
	ans, err := d.DescribeOr(subject, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Formulas) != 1 {
		t.Errorf("= %q", ans.SortedStrings())
	}
	// One disjunct = plain describe.
	one, err := d.DescribeOr(subject, []term.Formula{formula(t, `student(X, math, V) and V > 3.8`)})
	if err != nil {
		t.Fatal(err)
	}
	if one.SortedStrings()[0] != "honor(X) <- true" {
		t.Errorf("= %q", one.SortedStrings())
	}
	// Empty disjunct among several is rejected.
	if _, err := d.DescribeOr(subject, []term.Formula{formula(t, `student(X, math, V)`), {}}); err == nil {
		t.Error("empty disjunct must be rejected")
	}
}

func TestDescribeOrWeakestCommonAnswer(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `honor(X)`)
	ans, err := d.DescribeOr(subject, []term.Formula{
		formula(t, `student(X, math, V) and V > 3.9`),
		formula(t, `student(X, cs, V) and V > 3.2`),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Disjunct 1 collapses to `true`; disjunct 2 leaves `V > 3.7`. The
	// weakest formula valid under both is `V > 3.7`.
	got := ans.SortedStrings()
	if len(got) != 1 || got[0] != "honor(X) <- V > 3.7" {
		t.Errorf("= %q", got)
	}
	// UsedHypothesis is cleared after a merge (indices are per-disjunct).
	if len(ans.Formulas[0].UsedHypothesis) != 0 {
		t.Errorf("UsedHypothesis = %v", ans.Formulas[0].UsedHypothesis)
	}
}

func TestDescribeOrRecursiveSubject(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `prior(X, Y)`)
	ans, err := d.DescribeOr(subject, []term.Formula{
		formula(t, `prior(databases, Y)`),
		formula(t, `prior(databases, Z)`), // a variant of the same hypothesis
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ans.SortedStrings()
	// Each disjunct uses its own variable for the reachable course, so
	// the second disjunct's root identification additionally binds
	// Y = Z — and that equality is required for soundness (under
	// prior(databases, Z), prior(databases, Y) holds only when Y = Z).
	// The merged answers carry it.
	want := []string{
		"prior(X, Y) <- X = databases and Y = Z",
		"prior(X, Y) <- Y = Z and prior(X, databases)",
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("= %q, want %q", got, want)
	}
}

// TestQuickDescribeOrSound: every DescribeOr answer is model-checked
// against BOTH hypotheses on random EDBs (it must be sound under each
// disjunct separately).
func TestQuickDescribeOrSound(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `can_ta(X, Y)`)
	d1 := formula(t, `complete(X, Y, S, 4)`)
	d2 := formula(t, `honor(X) and teach(susan, Y)`)
	ans, err := d.DescribeOr(subject, []term.Formula{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Formulas) == 0 {
		t.Skip("no common answers for this pair")
	}
	rules := d.Rules()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomUniversityStore(r)
		for _, a := range ans.Formulas {
			for _, hyp := range []term.Formula{d1, d2} {
				if err := checkAnswerSound(st, rules, subject, hyp, a); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickRetrieveOrMatchesUnion is in the kb package (the union is a
// kb-level operation); here we check the intersection property of
// DescribeOr: every merged answer appears (up to subsumption) in each
// disjunct's closure.
func TestQuickDescribeOrIsIntersection(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `honor(X)`)
	bounds := []float64{3.2, 3.5, 3.8, 3.9}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b1 := bounds[r.Intn(len(bounds))]
		b2 := bounds[r.Intn(len(bounds))]
		d1 := formula(t, fmt.Sprintf(`student(X, math, V) and V > %g`, b1))
		d2 := formula(t, fmt.Sprintf(`student(X, cs, V) and V > %g`, b2))
		merged, err := d.DescribeOr(subject, []term.Formula{d1, d2})
		if err != nil {
			return false
		}
		// The merged answer must equal the answer under the WEAKER bound
		// (the weaker hypothesis determines what both can support).
		weak := b1
		if b2 < b1 {
			weak = b2
		}
		var want string
		if weak >= 3.7 {
			want = "honor(X) <- true"
		} else {
			want = "honor(X) <- V > 3.7"
		}
		got := merged.SortedStrings()
		if len(got) != 1 || got[0] != want {
			t.Logf("seed %d bounds (%g, %g): got %q, want %q", seed, b1, b2, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDescribeOr(b *testing.B) {
	d := newDescriber(b, universityIDB, Options{})
	subject := term.NewAtom("honor", term.Var("X"))
	disjuncts := []term.Formula{
		formula(b, `student(X, math, V) and V > 3.8`),
		formula(b, `student(X, cs, V) and V > 3.5`),
		formula(b, `student(X, physics, V) and V > 3.9`),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.DescribeOr(subject, disjuncts); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = storage.NewMemory // keep the import for the soundness helper

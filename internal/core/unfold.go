package core

import (
	"kdb/internal/builtin"
	"kdb/internal/term"
)

// unfoldLimits bound the §6 unfolding machinery (negative hypotheses,
// possibility checks, concept comparison). Recursive predicates make the
// exact expansion infinite; the bounds keep it a sound approximation.
type unfoldLimits struct {
	// maxExpansions bounds rule applications along one branch.
	maxExpansions int
	// maxDisjuncts bounds the number of produced EDB-level conjunctions.
	maxDisjuncts int
	// banned, when non-nil, rejects any branch in which a goal atom
	// unifies with a banned atom — the `where not h` extension.
	banned []term.Atom
}

func defaultUnfoldLimits() unfoldLimits {
	return unfoldLimits{maxExpansions: 8, maxDisjuncts: 128}
}

// unfold expands the formula into conjunctions over EDB predicates and
// comparisons only, by resolving IDB atoms against the original rules in
// all ways, up to the limits. Disjuncts with unsatisfiable comparison
// parts are dropped. The result is the DNF of the input over the stored
// vocabulary; truncated reports whether a limit cut the expansion short
// (a verdict of "impossible" is then only valid within the bound).
func (d *Describer) unfold(f term.Formula, lim unfoldLimits) (out []term.Formula, truncated bool, err error) {
	var rn term.Renamer
	var rec func(goals []term.Atom, acc term.Formula, sigma term.Subst, budget int) error
	rec = func(goals []term.Atom, acc term.Formula, sigma term.Subst, budget int) error {
		if len(out) >= lim.maxDisjuncts {
			truncated = true
			return nil
		}
		if len(goals) == 0 {
			dis := sigma.ApplyFormula(acc)
			cmp, _ := builtin.Split(dis)
			sat, err := builtin.Sat(cmp)
			if err != nil {
				return err
			}
			if sat {
				out = append(out, dis)
			}
			return nil
		}
		g := goals[0]
		rest := goals[1:]
		inst := sigma.Apply(g)
		for _, b := range lim.banned {
			if _, ok := term.Unify(inst, b, sigma); ok {
				return nil // this branch relies on banned knowledge
			}
		}
		rules := d.graph.RulesFor(g.Pred)
		if term.IsComparison(g) || len(rules) == 0 {
			// EDB atom or comparison: keep it.
			return rec(rest, append(acc, g), sigma, budget)
		}
		if budget <= 0 {
			truncated = true
			return nil // recursion bound reached: drop the branch
		}
		for _, r := range rules {
			fresh := rn.RenameRule(r)
			ext, ok := term.Unify(inst, fresh.Head, sigma)
			if !ok {
				continue
			}
			next := append(append([]term.Atom{}, fresh.Body...), rest...)
			if err := rec(next, acc, ext, budget-1); err != nil {
				return err
			}
		}
		return nil
	}
	err = rec(append([]term.Atom{}, f...), nil, nil, lim.maxExpansions)
	return out, truncated, err
}

// chaseKeys applies the declared candidate keys to one EDB-level
// conjunction: whenever two atoms of a predicate agree on all key
// columns, their remaining columns are unified (the functional reading of
// §6's third extension). It returns the rewritten conjunction and false
// when a forced unification fails (two distinct constants in a non-key
// column), meaning the conjunction is unsatisfiable under the keys.
func (d *Describer) chaseKeys(f term.Formula) (term.Formula, bool) {
	cur := f.Clone()
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				a, b := cur[i], cur[j]
				if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
					continue
				}
				keys := d.keys[a.Pred]
				for _, key := range keys {
					match := true
					for _, col := range key {
						if a.Args[col-1] != b.Args[col-1] {
							match = false
							break
						}
					}
					if !match {
						continue
					}
					mgu, ok := term.Unify(a, b, nil)
					if !ok {
						return nil, false
					}
					if len(mgu) > 0 {
						cur = mgu.ApplyFormula(cur)
						changed = true
					}
				}
			}
		}
	}
	return cur, true
}

// consistent reports whether the EDB-level conjunction describes a
// possible situation: the declared keys chase without clash, the
// comparison part is satisfiable, and no integrity constraint (§2.1,
// second Horn-clause form) is triggered.
func (d *Describer) consistent(f term.Formula) (bool, error) {
	chased, ok := d.chaseKeys(f)
	if !ok {
		return false, nil
	}
	cmp, _ := builtin.Split(chased)
	sat, err := builtin.Sat(cmp)
	if err != nil || !sat {
		return false, err
	}
	for _, alternatives := range d.icDisjuncts {
		for _, ic := range alternatives {
			hit, err := constraintTriggered(chased, ic)
			if err != nil {
				return false, err
			}
			if hit {
				return false, nil
			}
		}
	}
	return true, nil
}

// constraintTriggered reports whether the conjunction entails the
// constraint's forbidden pattern: a substitution maps every ordinary atom
// of the constraint onto an atom of the conjunction and the conjunction's
// comparisons imply the constraint's.
func constraintTriggered(dis, ic term.Formula) (bool, error) {
	icCmp, icOrd := builtin.Split(renameApart(ic, nil))
	disCmp, disOrd := builtin.Split(dis)
	var ierr error
	hit := matchAtoms(icOrd, disOrd, nil, nil, func(theta term.Subst) bool {
		implied, err := builtin.Implies(disCmp, theta.ApplyFormula(icCmp))
		if err != nil {
			ierr = err
			return false
		}
		return implied
	})
	return hit, ierr
}

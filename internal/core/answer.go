// Package core implements the paper's primary contribution: evaluation of
// knowledge queries — the `describe p where ψ` statement (§3.2) — through
// Algorithm 1 (non-recursive subjects, §4) and Algorithm 2 (the general
// case via the rule transformation, tags and typed substitutions, §5),
// together with the Section 6 extensions: `where necessary`, negative
// hypotheses, the subjectless possibility check, the wildcard subject,
// and concept comparison.
package core

import (
	"fmt"
	"sort"
	"strings"

	"kdb/internal/term"
)

// Answer is one formula of a knowledge answer: a rule `subject ← body`
// that is logically derived from the IDB under the query's hypothesis.
type Answer struct {
	// Head is the subject atom with the user's variables.
	Head term.Atom
	// Body is the residual positive formula: the derivation-tree leaves
	// that were not identified with hypothesis formulas, plus equality
	// atoms recording bindings the identification imposed on subject
	// variables.
	Body term.Formula
	// UsedHypothesis holds the indices (into the query's hypothesis) of
	// the conjuncts that participated in this answer — by identification
	// for ordinary conjuncts, by implication for comparisons. It drives
	// the `where necessary` extension.
	UsedHypothesis []int
	// ViaRules records the rules applied in the derivation, for
	// provenance display.
	ViaRules []term.Rule
}

// Rule renders the answer as a Horn rule.
func (a Answer) Rule() term.Rule { return term.Rule{Head: a.Head, Body: a.Body} }

// Provenance returns the distinct IDB rules the derivation applied, in
// application order — the paper's theorems are consequences of these
// axioms plus the hypothesis.
func (a Answer) Provenance() []term.Rule {
	seen := make(map[string]bool, len(a.ViaRules))
	out := make([]term.Rule, 0, len(a.ViaRules))
	for _, r := range a.ViaRules {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// String renders the answer in the paper's style, e.g.
// "can_ta(X, databases) <- complete(X, databases, Z, U) and U > 3.3".
func (a Answer) String() string {
	if len(a.Body) == 0 {
		return a.Head.String() + " <- true"
	}
	return a.Head.String() + " <- " + a.Body.String()
}

// StringWithProvenance renders the answer followed by one indented
// "via" line per distinct applied rule — the describe-side counterpart
// of the explain statement's derivation trees, shared by every surface
// that shows provenance (the REPL's .provenance toggle, intensional
// answers).
func (a Answer) StringWithProvenance() string {
	var b strings.Builder
	b.WriteString(a.String())
	for _, r := range a.Provenance() {
		b.WriteString("\n   via ")
		b.WriteString(r.String())
	}
	return b.String()
}

// key canonicalizes the answer for duplicate elimination: user variables
// (those of the head) stay fixed, all other variables are renamed in
// order of first occurrence, and the body is treated as a set.
func (a Answer) key(userVars map[term.Term]bool) string {
	renamed := canonicalizeVars(a.Body, userVars)
	return a.Head.Key() + "\x03" + renamed.SetKey()
}

// canonicalizeVars renames every non-user variable of the formula to
// _G1, _G2, … in order of first occurrence.
func canonicalizeVars(f term.Formula, userVars map[term.Term]bool) term.Formula {
	s := term.NewSubst(4)
	n := 0
	out := make(term.Formula, len(f))
	for i, atom := range f {
		args := make([]term.Term, len(atom.Args))
		for j, t := range atom.Args {
			if t.IsVar() && !userVars[t] {
				v, ok := s[t]
				if !ok {
					n++
					v = term.Var(fmt.Sprintf("_G%d", n))
					s[t] = v
				}
				args[j] = v
			} else {
				args[j] = t
			}
		}
		out[i] = term.Atom{Pred: atom.Pred, Args: args}
	}
	return out
}

// Answers is the complete response to a describe query.
type Answers struct {
	// Subject and Hypothesis echo the query.
	Subject    term.Atom
	Hypothesis term.Formula
	// Formulas are the answer rules, redundancy-eliminated, in derivation
	// order.
	Formulas []Answer
	// Contradiction is the paper's special answer: every candidate was
	// discarded because the hypothesis contradicts the IDB's comparison
	// constraints (§4, end).
	Contradiction bool
	// Truncated reports that the search hit a resource bound (MaxNodes or
	// MaxAnswers) and the answer may be incomplete.
	Truncated bool
	// Nodes counts the derivation-tree search steps the query took — a
	// machine-independent cost measure for the ablation benchmarks.
	Nodes int
	// Notes carry advisory findings about how the answer was produced
	// (e.g. the subject depends on recursion outside the §2.1 discipline,
	// so the bounded §5.3 mode answered). They are attached by the caller
	// and deliberately not rendered by String.
	Notes []string
}

// Empty reports whether the answer carries no information.
func (as *Answers) Empty() bool { return len(as.Formulas) == 0 && !as.Contradiction }

// String renders the whole answer, one formula per line.
func (as *Answers) String() string {
	if as.Contradiction {
		return "false (the hypothesis contradicts the knowledge base)"
	}
	if len(as.Formulas) == 0 {
		return "no answer"
	}
	lines := make([]string, len(as.Formulas))
	for i, a := range as.Formulas {
		lines[i] = a.String()
	}
	return strings.Join(lines, "\n")
}

// SortedStrings renders the formulas in a deterministic order (for tests).
func (as *Answers) SortedStrings() []string {
	out := make([]string, len(as.Formulas))
	for i, a := range as.Formulas {
		out[i] = a.String()
	}
	sort.Strings(out)
	return out
}

// prettify renames machine-generated variables (X_12) in the answer body
// back to readable base names (X), provided the base name does not clash
// with a user variable or another renamed variable of the same answer.
func (a *Answer) prettify(userVars map[term.Term]bool) {
	taken := make(map[string]bool, len(userVars)+4)
	for v := range userVars {
		taken[v.Name()] = true
	}
	rename := term.NewSubst(4)
	fresh := 0
	for _, atom := range a.Body {
		for _, t := range atom.Args {
			if !t.IsVar() || userVars[t] {
				continue
			}
			if _, done := rename[t]; done {
				continue
			}
			base := t.Name()
			if i := strings.IndexByte(base, '_'); i > 0 {
				base = base[:i]
			}
			name := base
			for taken[name] {
				fresh++
				name = fmt.Sprintf("%s%d", base, fresh)
			}
			taken[name] = true
			rename[t] = term.Var(name)
		}
	}
	if len(rename) > 0 {
		a.Body = rename.ApplyFormula(a.Body)
	}
}

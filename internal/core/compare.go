package core

import (
	"fmt"
	"strings"

	"kdb/internal/builtin"
	"kdb/internal/term"
)

// Relation classifies how two concepts relate (§6, final extension).
type Relation uint8

// Concept relations.
const (
	// RelUnrelated: the maximal shared concept is empty.
	RelUnrelated Relation = iota
	// RelOverlapping: the concepts share a non-trivial concept but
	// neither subsumes the other.
	RelOverlapping
	// RelLeftSubsumesRight: every instance of the right concept is an
	// instance of the left (right ⊑ left).
	RelLeftSubsumesRight
	// RelRightSubsumesLeft: every instance of the left concept is an
	// instance of the right (left ⊑ right).
	RelRightSubsumesLeft
	// RelEquivalent: each subsumes the other.
	RelEquivalent
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case RelUnrelated:
		return "unrelated"
	case RelOverlapping:
		return "overlapping"
	case RelLeftSubsumesRight:
		return "left subsumes right"
	case RelRightSubsumesLeft:
		return "right subsumes left"
	case RelEquivalent:
		return "equivalent"
	default:
		return fmt.Sprintf("relation(%d)", uint8(r))
	}
}

// ConceptComparison is the answer to a compare statement: the relation,
// the maximal shared concept found, and the residual differences of the
// best-matching definition pair.
type ConceptComparison struct {
	Left, Right term.Atom
	Relation    Relation
	// Shared is the maximal shared concept (over the best-matching pair
	// of EDB-level definitions).
	Shared term.Formula
	// LeftOnly and RightOnly elucidate the difference: conjuncts present
	// in one concept's definition but not the shared concept.
	LeftOnly, RightOnly term.Formula
}

// String renders the comparison.
func (c *ConceptComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s: %s\n", c.Left, c.Right, c.Relation)
	fmt.Fprintf(&b, "  shared concept: %s\n", c.Shared)
	if len(c.LeftOnly) > 0 {
		fmt.Fprintf(&b, "  only %s: %s\n", c.Left.Pred, c.LeftOnly)
	}
	if len(c.RightOnly) > 0 {
		fmt.Fprintf(&b, "  only %s: %s\n", c.Right.Pred, c.RightOnly)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Compare evaluates the §6 compare statement over two described concepts.
// Both subjects must have the same arity; the right subject's variables
// are aligned with the left's. Each side is expanded (under its
// hypothesis) to EDB-level definitions; subsumption between the
// definition sets determines the relation, and the best-matching pair
// yields the shared concept and the differences.
func (d *Describer) Compare(left term.Atom, leftHyp term.Formula, right term.Atom, rightHyp term.Formula) (*ConceptComparison, error) {
	if len(left.Args) != len(right.Args) {
		return nil, fmt.Errorf("core: cannot compare %s/%d with %s/%d: different arities",
			left.Pred, len(left.Args), right.Pred, len(right.Args))
	}
	// Align the right subject's variables with the left's.
	align := term.NewSubst(len(right.Args))
	for i, t := range right.Args {
		if t.IsVar() {
			if t != left.Args[i] {
				align[t] = left.Args[i]
			}
		} else if t != left.Args[i] {
			return nil, fmt.Errorf("core: cannot align constant argument %v with %v", t, left.Args[i])
		}
	}
	right = align.Apply(right)
	rightHyp = align.ApplyFormula(rightHyp)

	lim := defaultUnfoldLimits()
	leftDefs, _, err := d.unfold(append(term.Formula{left}, leftHyp...), lim)
	if err != nil {
		return nil, err
	}
	rightDefs, _, err := d.unfold(append(term.Formula{right}, rightHyp...), lim)
	if err != nil {
		return nil, err
	}
	if len(leftDefs) == 0 || len(rightDefs) == 0 {
		return nil, fmt.Errorf("core: a compared concept has no consistent definition")
	}

	fixed := make(map[term.Term]bool)
	for _, v := range left.Vars(nil) {
		fixed[v] = true
	}

	leftInRight := defsSubsumed(leftDefs, rightDefs, fixed)
	rightInLeft := defsSubsumed(rightDefs, leftDefs, fixed)

	cmp := &ConceptComparison{Left: left, Right: right}
	switch {
	case leftInRight && rightInLeft:
		cmp.Relation = RelEquivalent
	case rightInLeft:
		cmp.Relation = RelLeftSubsumesRight
	case leftInRight:
		cmp.Relation = RelRightSubsumesLeft
	}

	// Maximal shared concept over the best-matching definition pair.
	best := -1
	for _, dl := range leftDefs {
		for _, dr := range rightDefs {
			shared, lOnly, rOnly := sharedConcept(dl, dr, fixed)
			score := len(shared)
			if score > best {
				best = score
				cmp.Shared, cmp.LeftOnly, cmp.RightOnly = shared, lOnly, rOnly
			}
		}
	}
	if cmp.Relation == RelUnrelated && len(cmp.Shared) > 0 {
		cmp.Relation = RelOverlapping
	}
	return cmp, nil
}

// defsSubsumed reports whether every definition in sub is θ-subsumed by
// some definition in super (with head variables fixed): then the sub
// concept is contained in the super concept.
func defsSubsumed(sub, super []term.Formula, fixed map[term.Term]bool) bool {
	for _, s := range sub {
		covered := false
		for _, g := range super {
			if defSubsumes(g, s, fixed) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// defSubsumes reports whether general θ-subsumes specific: a substitution
// fixing the head variables maps general's ordinary atoms into specific's,
// and specific's comparisons imply θ(general's comparisons). The pattern
// (general) side is renamed apart first.
func defSubsumes(general, specific term.Formula, fixed map[term.Term]bool) bool {
	gCmp, gOrd := builtin.Split(renameApart(general, fixed))
	sCmp, sOrd := builtin.Split(specific)
	return matchAtoms(gOrd, sOrd, fixed, nil, func(theta term.Subst) bool {
		implied, err := builtin.Implies(sCmp, theta.ApplyFormula(gCmp))
		return err == nil && implied
	})
}

// sharedConcept computes a greedy maximal common generalization of two
// EDB-level definitions: ordinary atoms matched under a substitution
// fixing the head variables, plus every comparison entailed by both
// sides. The leftovers on each side elucidate the difference.
func sharedConcept(dl, dr term.Formula, fixed map[term.Term]bool) (shared, leftOnly, rightOnly term.Formula) {
	// Rename the left side apart: the two definitions typically share
	// variable names (both come from unfolding), and the matcher may only
	// bind the pattern's variables. Originals are kept for reporting.
	renamed := renameApart(dl, fixed)
	lCmpOrig, lOrdOrig := builtin.Split(dl)
	lCmp, lOrd := builtin.Split(renamed)
	rCmp, rOrd := builtin.Split(dr)

	theta := term.NewSubst(4)
	usedRight := make([]bool, len(rOrd))
	for i, la := range lOrd {
		matched := false
		for j, ra := range rOrd {
			if usedRight[j] {
				continue
			}
			ext, ok := matchFixed(la, ra, fixed, theta)
			if !ok {
				continue
			}
			theta = ext
			usedRight[j] = true
			shared = append(shared, ra)
			matched = true
			break
		}
		if !matched {
			leftOnly = append(leftOnly, lOrdOrig[i])
		}
	}
	for j, ra := range rOrd {
		if !usedRight[j] {
			rightOnly = append(rightOnly, ra)
		}
	}

	// Comparisons entailed by BOTH sides belong to the shared concept;
	// the rest are differences.
	candidates := append(theta.ApplyFormula(lCmp), rCmp...)
	seen := make(map[string]bool)
	for _, c := range candidates {
		if seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		li, err1 := builtin.Implies(theta.ApplyFormula(lCmp), term.Formula{c})
		ri, err2 := builtin.Implies(rCmp, term.Formula{c})
		if err1 == nil && err2 == nil && li && ri {
			shared = append(shared, c)
		}
	}
	appliedL := theta.ApplyFormula(lCmp)
	for i, c := range appliedL {
		if !bothImply(appliedL, rCmp, c) {
			leftOnly = append(leftOnly, lCmpOrig[i])
		}
	}
	for _, c := range rCmp {
		if !bothImply(appliedL, rCmp, c) {
			rightOnly = append(rightOnly, c)
		}
	}
	return shared, leftOnly, rightOnly
}

func bothImply(a, b term.Formula, c term.Atom) bool {
	ai, err1 := builtin.Implies(a, term.Formula{c})
	bi, err2 := builtin.Implies(b, term.Formula{c})
	return err1 == nil && err2 == nil && ai && bi
}

package core

import (
	"context"
	"fmt"
	"sort"

	"kdb/internal/governor"
	"kdb/internal/term"
)

// This file implements the four describe-statement extensions sketched in
// Section 6 of the paper.

// DescribeNecessary is extension 1: `describe p where necessary ψ` keeps
// only the answers in which every hypothesis conjunct proved necessary —
// ordinary conjuncts by identification, comparisons by eliminating a body
// comparison.
//
//kdb:entrypoint
func (d *Describer) DescribeNecessary(subject term.Atom, hypothesis term.Formula) (*Answers, error) {
	return d.DescribeNecessaryContext(context.Background(), subject, hypothesis, governor.Limits{})
}

// DescribeNecessaryContext is DescribeNecessary under a query governor
// (see DescribeContext).
func (d *Describer) DescribeNecessaryContext(ctx context.Context, subject term.Atom, hypothesis term.Formula, limits governor.Limits) (*Answers, error) {
	ans, err := d.DescribeContext(ctx, subject, hypothesis, limits)
	if err != nil {
		return nil, err
	}
	kept := ans.Formulas[:0:0]
	for _, a := range ans.Formulas {
		used := make(map[int]bool, len(a.UsedHypothesis))
		for _, idx := range a.UsedHypothesis {
			used[idx] = true
		}
		all := true
		for i := range hypothesis {
			if !used[i] {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, a)
		}
	}
	ans.Formulas = kept
	return ans, nil
}

// Necessity is the result of extension 2 (`describe p where not h`): is
// the excluded knowledge necessary for the subject?
type Necessity struct {
	Subject term.Atom
	// Excluded echoes the banned atoms.
	Excluded term.Formula
	// Possible reports whether the subject has a derivation that avoids
	// every banned atom. The paper's `false` answer — the banned concept
	// is necessary — corresponds to Possible == false.
	Possible bool
	// Truncated reports that the expansion hit a bound; a negative
	// verdict is then only valid within it.
	Truncated bool
	// Witnesses are EDB-level derivations avoiding the banned atoms
	// (present only when Possible).
	Witnesses []term.Formula
}

// String renders the verdict in the paper's style.
func (n *Necessity) String() string {
	if n.Possible {
		return "true (derivable without the excluded knowledge)"
	}
	return "false (the excluded knowledge is necessary)"
}

// DescribeNot evaluates extension 2: it checks whether the subject can be
// derived into stored predicates without ever resolving against an atom
// that unifies with one of the banned atoms. Positive hypothesis
// conjuncts, when present, are conjoined to each candidate derivation for
// the satisfiability test. The expansion is bounded (see unfoldLimits);
// within the bound the verdict is exact.
func (d *Describer) DescribeNot(subject term.Atom, banned term.Formula, positive term.Formula) (*Necessity, error) {
	if len(d.graph.RulesFor(subject.Pred)) == 0 {
		return nil, fmt.Errorf("core: %s is not an IDB predicate", subject.Pred)
	}
	lim := defaultUnfoldLimits()
	lim.banned = banned
	goals := append(term.Formula{subject}, positive...)
	disjuncts, truncated, err := d.unfold(goals, lim)
	if err != nil {
		return nil, err
	}
	n := &Necessity{Subject: subject, Excluded: banned, Truncated: truncated}
	for _, dis := range disjuncts {
		ok, err := d.consistent(dis)
		if err != nil {
			return nil, err
		}
		if ok {
			n.Possible = true
			if len(n.Witnesses) < 4 {
				n.Witnesses = append(n.Witnesses, dis)
			}
		}
	}
	return n, nil
}

// Possibility is the result of extension 3 (subjectless describe): can
// the hypothetical situation ψ arise at all?
type Possibility struct {
	Hypothesis term.Formula
	// Possible reports whether some EDB-level reading of ψ is consistent
	// with the rules, the declared keys, and the comparison constraints.
	Possible bool
	// Witness is one consistent EDB-level reading (when Possible).
	Witness term.Formula
	// Conflicts lists one inconsistent reading per discarded disjunct,
	// for explanation (capped).
	Conflicts []term.Formula
	// Truncated reports that the expansion hit a bound; a negative
	// verdict is then only valid within it.
	Truncated bool
}

// String renders the verdict in the paper's style.
func (p *Possibility) String() string {
	if p.Possible {
		return "true (the situation is possible)"
	}
	return "false (the situation contradicts the knowledge base)"
}

// Possible evaluates extension 3: `describe where ψ`. Every IDB atom of ψ
// is unfolded into stored predicates; a disjunct is consistent when the
// declared keys can be chased without clash and the comparison part is
// satisfiable. The situation is possible when any disjunct survives.
func (d *Describer) Possible(hypothesis term.Formula) (*Possibility, error) {
	if len(hypothesis) == 0 {
		return nil, fmt.Errorf("core: a subjectless describe needs a hypothesis")
	}
	disjuncts, truncated, err := d.unfold(hypothesis, defaultUnfoldLimits())
	if err != nil {
		return nil, err
	}
	p := &Possibility{Hypothesis: hypothesis, Truncated: truncated}
	for _, dis := range disjuncts {
		ok, err := d.consistent(dis)
		if err != nil {
			return nil, err
		}
		if ok {
			if !p.Possible {
				p.Possible = true
				p.Witness = dis
			}
		} else if len(p.Conflicts) < 4 {
			p.Conflicts = append(p.Conflicts, dis)
		}
	}
	return p, nil
}

// maxWildcardAnswers caps the digest shown per wildcard subject.
const maxWildcardAnswers = 4

// WildcardEntry pairs a derivable subject with its knowledge answers.
type WildcardEntry struct {
	Subject term.Atom
	Answers *Answers
}

// DescribeWildcard evaluates extension 4: `describe * where ψ` — all the
// subjects derivable from the qualifier. Every IDB predicate is
// described under ψ; entries whose answers actually use the hypothesis
// are returned, most specific first (fewest residual conjuncts).
func (d *Describer) DescribeWildcard(hypothesis term.Formula) ([]WildcardEntry, error) {
	if len(hypothesis) == 0 {
		return nil, fmt.Errorf("core: describe * needs a hypothesis")
	}
	// Enumerate IDB predicates (those with rules). Predicates named by
	// the hypothesis itself are skipped — "honor is derivable from
	// honor" carries no information.
	inHyp := make(map[string]bool, len(hypothesis))
	for _, h := range hypothesis {
		inHyp[h.Pred] = true
	}
	seen := make(map[string]int) // pred → arity
	var preds []string
	for _, r := range d.rules {
		if _, ok := seen[r.Head.Pred]; !ok {
			seen[r.Head.Pred] = r.Head.Arity()
			preds = append(preds, r.Head.Pred)
		}
	}
	sort.Strings(preds)
	var out []WildcardEntry
	for _, pred := range preds {
		if inHyp[pred] {
			continue
		}
		args := make([]term.Term, seen[pred])
		for i := range args {
			args[i] = term.Var(fmt.Sprintf("W%d", i+1))
		}
		subject := term.NewAtom(pred, args...)
		ans, err := d.Describe(subject, hypothesis)
		if err != nil {
			return nil, err
		}
		var used []Answer
		for _, a := range ans.Formulas {
			if len(a.UsedHypothesis) > 0 {
				used = append(used, inlineSubjectEqualities(a))
			}
		}
		if len(used) == 0 {
			continue
		}
		// The wildcard is a digest: keep the most specific answers (the
		// fewest residual conjuncts), capped per subject.
		sort.SliceStable(used, func(i, j int) bool { return len(used[i].Body) < len(used[j].Body) })
		if len(used) > maxWildcardAnswers {
			used = used[:maxWildcardAnswers]
		}
		out = append(out, WildcardEntry{
			Subject: subject,
			Answers: &Answers{Subject: subject, Hypothesis: hypothesis, Formulas: used},
		})
	}
	return out, nil
}

// inlineSubjectEqualities folds `W = X` equalities between the synthetic
// wildcard head variables and the hypothesis's variables back into the
// head, so entries read the way the paper presents them
// (can_ta(X, W2) <- complete(X, W2, Z, 4) rather than a W1 = X conjunct).
func inlineSubjectEqualities(a Answer) Answer {
	headVars := make(map[term.Term]bool)
	for _, v := range a.Head.Vars(nil) {
		headVars[v] = true
	}
	sub := term.NewSubst(2)
	var rest term.Formula
	for _, atom := range a.Body {
		if atom.Pred == term.PredEq && len(atom.Args) == 2 &&
			atom.Args[0].IsVar() && headVars[atom.Args[0]] && atom.Args[1].IsVar() {
			sub[atom.Args[0]] = atom.Args[1]
			continue
		}
		rest = append(rest, atom)
	}
	if len(sub) == 0 {
		return a
	}
	return Answer{
		Head:           sub.Apply(a.Head),
		Body:           sub.ApplyFormula(rest),
		UsedHypothesis: a.UsedHypothesis,
		ViaRules:       a.ViaRules,
	}
}

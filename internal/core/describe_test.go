package core

import (
	"reflect"
	"strings"
	"testing"

	"kdb/internal/parser"
	"kdb/internal/term"
)

// The paper's example IDB (§2.2).
const universityIDB = `
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`

func newDescriber(t testing.TB, src string, opts Options) *Describer {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var rules []term.Rule
	for _, c := range p.Clauses {
		if !c.IsFact() {
			rules = append(rules, c)
		}
	}
	d, err := New(rules, nil, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func describe(t testing.TB, d *Describer, q string) *Answers {
	t.Helper()
	pq, err := parser.ParseQuery(q)
	if err != nil {
		t.Fatalf("parse query %q: %v", q, err)
	}
	dq, ok := pq.(*parser.Describe)
	if !ok {
		t.Fatalf("not a describe: %T", pq)
	}
	ans, err := d.Describe(dq.Subject, dq.Where)
	if err != nil {
		t.Fatalf("describe %q: %v", q, err)
	}
	return ans
}

func assertAnswers(t *testing.T, got *Answers, want []string) {
	t.Helper()
	gs := got.SortedStrings()
	if !reflect.DeepEqual(gs, want) {
		t.Errorf("answers:\n got: %q\nwant: %q", gs, want)
	}
}

// --- Paper Example 4 (§3.2): describe honor(X). ---
func TestExample4DescribeHonor(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe honor(X).`)
	assertAnswers(t, ans, []string{
		"honor(X) <- student(X, Y, Z) and Z > 3.7",
	})
	if ans.Contradiction {
		t.Error("no contradiction expected")
	}
}

// --- Paper Example 3 (§3.2): when is a math student with GPA > 3.7
// eligible for TA-ship in databases? ---
func TestExample3DescribeCanTA(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`)
	// Two theorems (paper): completed under the current professor with
	// grade > 3.3, or completed with 4.0. The honor subtree is consumed by
	// the hypothesis; the GPA comparison is removed because V > 3.7 (the
	// hypothesis) implies it.
	assertAnswers(t, ans, []string{
		"can_ta(X, databases) <- complete(X, databases, Z, 4)",
		"can_ta(X, databases) <- complete(X, databases, Z, U) and U > 3.3 and taught(V1, databases, Z, W) and teach(V1, databases)",
	})
	// Both answers used both hypothesis conjuncts (student by
	// identification, V > 3.7 by implication).
	for _, a := range ans.Formulas {
		if len(a.UsedHypothesis) != 2 {
			t.Errorf("answer %v used %v, want both conjuncts", a, a.UsedHypothesis)
		}
	}
}

// --- Paper Example 5 (§4): honor student, Susan teaching. ---
func TestExample5DescribeCanTASusan(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe can_ta(X, Y) where honor(X) and teach(susan, Y).`)
	assertAnswers(t, ans, []string{
		"can_ta(X, Y) <- complete(X, Y, Z, 4)",
		"can_ta(X, Y) <- complete(X, Y, Z, U) and U > 3.3 and taught(susan, Y, Z, W)",
	})
}

// --- Paper §3.2 text: the third English example — when are students who
// completed a course with 4.0 eligible for TA-ship in it? Answer: when
// they are honor students. ---
func TestDescribeCompletedWithFour(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe can_ta(X, Y) where complete(X, Y, Z, 4).`)
	got := ans.SortedStrings()
	// Rule 2 collapses to honor(X); rule 1's completion with U=4 > 3.3
	// also surfaces, with the taught/teach residue.
	found := false
	for _, s := range got {
		if s == "can_ta(X, Y) <- honor(X)" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected `can_ta(X, Y) <- honor(X)` among %q", got)
	}
}

// --- Paper Example 6 (§5): recursive subject, finite answer. ---
func TestExample6DescribePriorRecursive(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe prior(X, Y) where prior(databases, Y).`)
	// The paper's preferred (modified-transformation) rendering:
	//   prior(X, Y) <- X = databases
	//   prior(X, Y) <- prior(X, databases)
	assertAnswers(t, ans, []string{
		"prior(X, Y) <- X = databases",
		"prior(X, Y) <- prior(X, databases)",
	})
}

// The same query with KeepSteps shows the artificial step predicate.
func TestExample6StepPredicateForm(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{KeepSteps: true})
	ans := describe(t, d, `describe prior(X, Y) where prior(databases, Y).`)
	assertAnswers(t, ans, []string{
		"prior(X, Y) <- X = databases",
		"prior(X, Y) <- prior_step(databases, X)",
	})
}

// --- Paper Example 7 (§5): type conflicts must not produce the unsound
// "loop" answers. ---
func TestExample7TypedSubstitutions(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe prior(X, Y) where prior(X, databases).`)
	// Only the sound binding answer survives; every prereq-loop formula
	// the untyped Algorithm 1 would emit is rejected by the typing guard.
	assertAnswers(t, ans, []string{
		"prior(X, Y) <- Y = databases",
	})
	for _, a := range ans.Formulas {
		if strings.Contains(a.String(), "prereq") {
			t.Errorf("unsound loop answer leaked: %v", a)
		}
	}
}

// --- Paper Example 8 (§5): subject depending on a recursive predicate;
// the naive algorithm hangs, Algorithm 2 terminates. ---
func TestExample8Terminates(t *testing.T) {
	d := newDescriber(t, `
p(X, Y) :- q(X, Z), r(Z, Y).
q(X, Y) :- q(X, Z), s(Z, Y).
q(X, Y) :- r(X, Y).
`, Options{})
	ans := describe(t, d, `describe p(X, Y) where r(a, Y).`)
	if ans.Empty() {
		t.Fatal("expected answers")
	}
	// The most general productive answer: the r conjunct of p's rule is
	// identified, leaving q.
	found := false
	for _, s := range ans.SortedStrings() {
		if s == "p(X, Y) <- q(X, a)" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected `p(X, Y) <- q(X, a)` among %q", ans.SortedStrings())
	}
}

// --- §6 remark: a hypothesis that cannot participate leaves the answer
// identical to the hypothesis-free one. ---
func TestIrrelevantHypothesisIgnored(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	with := describe(t, d, `describe honor(X) where enroll(X, databases).`)
	without := describe(t, d, `describe honor(X).`)
	if !reflect.DeepEqual(with.SortedStrings(), without.SortedStrings()) {
		t.Errorf("answers differ:\nwith:    %q\nwithout: %q",
			with.SortedStrings(), without.SortedStrings())
	}
	// And the unused conjunct is reported unused (enabling `necessary`).
	for _, a := range with.Formulas {
		if len(a.UsedHypothesis) != 0 {
			t.Errorf("hypothesis should be unused, got %v", a.UsedHypothesis)
		}
	}
}

// --- §4: contradiction discard and the special answer. ---
func TestHypothesisContradiction(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	// A student with GPA below 3.5 can never satisfy honor's Z > 3.7.
	ans := describe(t, d, `describe honor(X) where student(X, math, V) and V < 3.5.`)
	if !ans.Contradiction {
		t.Fatalf("expected the contradiction answer, got %q", ans.SortedStrings())
	}
	if len(ans.Formulas) != 0 {
		t.Errorf("contradiction answer must carry no formulas, got %q", ans.SortedStrings())
	}
	if !strings.Contains(ans.String(), "contradicts") {
		t.Errorf("String = %q", ans.String())
	}
}

func TestComparisonRemovalExactBoundary(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	// V > 3.7 implies Z > 3.7 exactly (identical bound).
	ans := describe(t, d, `describe honor(X) where student(X, M, V) and V > 3.7.`)
	assertAnswers(t, ans, []string{"honor(X) <- true"})
	// V > 3.5 does NOT imply Z > 3.7: the comparison stays.
	ans = describe(t, d, `describe honor(X) where student(X, M, V) and V > 3.5.`)
	assertAnswers(t, ans, []string{"honor(X) <- V > 3.7"})
	if ans.Contradiction {
		t.Error("3.5 hypothesis is consistent with 3.7 requirement")
	}
}

func TestDescribeGroundSubject(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe can_ta(ann, databases) where honor(ann).`)
	got := ans.SortedStrings()
	if len(got) != 2 {
		t.Fatalf("answers = %q, want 2", got)
	}
	for _, s := range got {
		if !strings.HasPrefix(s, "can_ta(ann, databases) <- complete(ann, databases,") {
			t.Errorf("unexpected answer %q", s)
		}
	}
}

func TestDescribeSubjectMustBeIDB(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	if _, err := d.Describe(term.NewAtom("student", term.Var("X"), term.Var("Y"), term.Var("Z")), nil); err == nil {
		t.Error("EDB subject must be rejected")
	}
	if _, err := d.Describe(term.NewAtom(">", term.Var("X"), term.Num(1)), nil); err == nil {
		t.Error("comparison subject must be rejected")
	}
	if _, err := d.Describe(term.NewAtom("ghost", term.Var("X")), nil); err == nil {
		t.Error("unknown subject must be rejected")
	}
}

// Multi-level identification: the hypothesis names a concept two levels
// below the subject.
func TestDeepIdentification(t *testing.T) {
	d := newDescriber(t, `
a(X) :- b(X), d(X).
b(X) :- c(X), e(X).
`, Options{})
	ans := describe(t, d, `describe a(X) where c(X).`)
	assertAnswers(t, ans, []string{
		"a(X) <- e(X) and d(X)",
	})
}

// The hypothesis may mention the same predicate twice.
func TestRepeatedHypothesisConjunct(t *testing.T) {
	d := newDescriber(t, `
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
`, Options{})
	ans := describe(t, d, `describe grandparent(X, Z) where parent(X, Y) and parent(Y, Z).`)
	assertAnswers(t, ans, []string{"grandparent(X, Z) <- true"})
	// With a single conjunct, one parent step remains.
	ans = describe(t, d, `describe grandparent(X, Z) where parent(X, Y).`)
	assertAnswers(t, ans, []string{"grandparent(X, Z) <- parent(Y, Z)"})
}

// §5.3 end: untyped recursive rules (symmetry) under bounded application.
func TestUntypedBoundedSymmetry(t *testing.T) {
	d := newDescriber(t, `
reach(X, Y) :- flight(X, Y).
reach(X, Y) :- reach(Y, X).
`, Options{})
	// "When Y is reachable from X, is X reachable from Y?" — describe
	// reach(X, Y) given reach(Y, X): the symmetry rule answers directly.
	ans := describe(t, d, `describe reach(X, Y) where reach(Y, X).`)
	found := false
	for _, s := range ans.SortedStrings() {
		if s == "reach(X, Y) <- true" {
			found = true
		}
	}
	if !found {
		t.Errorf("symmetry should derive the subject from the hypothesis alone: %q", ans.SortedStrings())
	}
}

// Bounded application terminates even though the rule is untyped and
// would loop forever unbounded.
func TestUntypedBoundTerminates(t *testing.T) {
	d := newDescriber(t, `
reach(X, Y) :- flight(X, Y).
reach(X, Y) :- reach(Y, X).
`, Options{UntypedBound: 3, MaxDepth: 10})
	ans := describe(t, d, `describe reach(X, Y) where flight(Y, X).`)
	found := false
	for _, s := range ans.SortedStrings() {
		if s == "reach(X, Y) <- true" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected reach(X,Y) <- true via one symmetry step: %q", ans.SortedStrings())
	}
}

// Redundancy: an answer subsumed by a more general one is dropped.
func TestRedundancyElimination(t *testing.T) {
	d := newDescriber(t, `
goal(X) :- big(X).
goal(X) :- big(X), extra(X).
`, Options{})
	ans := describe(t, d, `describe goal(X).`)
	assertAnswers(t, ans, []string{"goal(X) <- big(X)"})
}

func TestAnswerAccessors(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	ans := describe(t, d, `describe honor(X).`)
	if len(ans.Formulas) != 1 {
		t.Fatal("want one formula")
	}
	a := ans.Formulas[0]
	r := a.Rule()
	if r.Head.Pred != "honor" || len(r.Body) != 2 {
		t.Errorf("Rule() = %v", r)
	}
	if len(a.ViaRules) != 1 {
		t.Errorf("ViaRules = %v", a.ViaRules)
	}
	empty := &Answers{}
	if !empty.Empty() || empty.String() != "no answer" {
		t.Error("empty answers misrender")
	}
}

func TestMaxAnswersTruncation(t *testing.T) {
	// A predicate with many rules; MaxAnswers=2 keeps the search bounded.
	d := newDescriber(t, `
p(X) :- a(X).
p(X) :- b(X).
p(X) :- c(X).
p(X) :- d(X).
`, Options{MaxAnswers: 2})
	ans := describe(t, d, `describe p(X).`)
	if len(ans.Formulas) > 4 {
		t.Errorf("answers = %d", len(ans.Formulas))
	}
}

func BenchmarkDescribeNonRecursive(b *testing.B) {
	d := newDescriber(b, universityIDB, Options{})
	pq, _ := parser.ParseQuery(`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`)
	dq := pq.(*parser.Describe)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Describe(dq.Subject, dq.Where); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescribeRecursive(b *testing.B) {
	d := newDescriber(b, universityIDB, Options{})
	pq, _ := parser.ParseQuery(`describe prior(X, Y) where prior(databases, Y).`)
	dq := pq.(*parser.Describe)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Describe(dq.Subject, dq.Where); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSearchNodeAccounting(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	small := describe(t, d, `describe honor(X) where student(X, math, V) and V > 3.7.`)
	large := describe(t, d, `describe prior(X, Y) where prior(databases, Y).`)
	if small.Nodes <= 0 || large.Nodes <= 0 {
		t.Fatalf("node counts must be positive: %d, %d", small.Nodes, large.Nodes)
	}
	if large.Nodes <= small.Nodes {
		t.Errorf("the recursive search should cost more nodes: %d vs %d", large.Nodes, small.Nodes)
	}
	if small.Truncated || large.Truncated {
		t.Error("neither query should truncate")
	}
}

// The tag discipline is what keeps the recursive search finite; widening
// MaxDepth must NOT change the answer set (tags, not depth, bound it).
func TestTagsBoundRecursionNotDepth(t *testing.T) {
	shallow := newDescriber(t, universityIDB, Options{MaxDepth: 6})
	deep := newDescriber(t, universityIDB, Options{MaxDepth: 64})
	q := `describe prior(X, Y) where prior(databases, Y).`
	a := describe(t, shallow, q).SortedStrings()
	b := describe(t, deep, q).SortedStrings()
	if len(a) != len(b) {
		t.Fatalf("depth changed the recursive answer set: %q vs %q", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("answer %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

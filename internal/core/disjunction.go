package core

import (
	"context"
	"fmt"

	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/term"
)

// DescribeOr evaluates a describe query with a disjunctive hypothesis
// ψ1 ∨ … ∨ ψn — the first of the research directions Section 6 lists
// ("we are interested in generalizing this formula to allow
// disjunctions"). A formula `p ← φ` is an answer exactly when it is a
// knowledge answer under every disjunct: (ψ1 ∨ ψ2) ⊢ (p ← φ) iff
// ψ1 ⊢ (p ← φ) and ψ2 ⊢ (p ← φ).
//
// Disjuncts whose hypothesis contradicts the knowledge base are skipped
// (⊥ ∨ ψ ≡ ψ); if every disjunct contradicts, the special contradiction
// answer is returned.
//
//kdb:entrypoint
func (d *Describer) DescribeOr(subject term.Atom, disjuncts []term.Formula) (*Answers, error) {
	return d.DescribeOrContext(context.Background(), subject, disjuncts, governor.Limits{})
}

// DescribeOrContext is DescribeOr under a query governor: one governor
// (context, deadline) spans all disjunct searches, while
// limits.MaxDescribeNodes bounds the steps of each disjunct's search
// individually.
func (d *Describer) DescribeOrContext(ctx context.Context, subject term.Atom, disjuncts []term.Formula, limits governor.Limits) (ans *Answers, err error) {
	defer governor.Recover(&err)
	gov, cancel := governor.New(ctx, limits)
	defer cancel()
	return d.describeOr(gov, obs.SpanFromContext(ctx), subject, disjuncts)
}

func (d *Describer) describeOr(gov *governor.Governor, sp *obs.Span, subject term.Atom, disjuncts []term.Formula) (*Answers, error) {
	if len(disjuncts) == 0 {
		return d.describe(gov, sp, subject, nil)
	}
	if len(disjuncts) == 1 {
		return d.describe(gov, sp, subject, disjuncts[0])
	}
	if err := validateDisjuncts(disjuncts); err != nil {
		return nil, err
	}
	userVars := make(map[term.Term]bool)
	for _, v := range subject.Vars(nil) {
		userVars[v] = true
	}
	var full term.Formula
	for _, dis := range disjuncts {
		for _, v := range dis.Vars() {
			userVars[v] = true
		}
		full = append(full, dis...)
	}

	// Evaluate each disjunct independently.
	perDisjunct := make([][]Answer, 0, len(disjuncts))
	contradictions := 0
	truncated := false
	for _, dis := range disjuncts {
		ans, err := d.describe(gov, sp, subject, dis)
		if err != nil {
			return nil, err
		}
		truncated = truncated || ans.Truncated
		if ans.Contradiction {
			contradictions++
			continue // an impossible disjunct never weakens the others
		}
		perDisjunct = append(perDisjunct, ans.Formulas)
	}
	out := &Answers{Subject: subject, Hypothesis: full, Truncated: truncated}
	if contradictions == len(disjuncts) {
		out.Contradiction = true
		return out, nil
	}

	// A candidate (from any disjunct) is an answer when it is valid under
	// every disjunct. Validity under disjunct j holds when one of j's own
	// answers θ-subsumes the candidate: a more general valid rule implies
	// every specialization. (Emitted sets alone would be too syntactic:
	// under a strong hypothesis only the strongest formula is emitted,
	// yet all its weakenings remain valid.)
	var kept []Answer
	seen := make(map[string]bool)
	for i, answers := range perDisjunct {
		for _, a := range answers {
			key := a.key(userVars)
			if seen[key] {
				continue
			}
			seen[key] = true
			valid := true
			for j, others := range perDisjunct {
				if i == j {
					continue
				}
				covered := false
				for _, b := range others {
					if subsumes(b, a, userVars) {
						covered = true
						break
					}
				}
				if !covered {
					valid = false
					break
				}
			}
			if valid {
				// Per-disjunct hypothesis-usage indices would be
				// meaningless after the merge.
				a.UsedHypothesis = nil
				kept = append(kept, a)
			}
		}
	}
	out.Formulas = eliminateRedundant(kept, userVars)
	return out, nil
}

// validateDisjuncts rejects qualifier shapes the disjunctive forms do not
// support.
func validateDisjuncts(disjuncts []term.Formula) error {
	for _, d := range disjuncts {
		if len(d) == 0 {
			return fmt.Errorf("core: an empty disjunct makes the qualifier trivially true")
		}
	}
	return nil
}

package core

import (
	"fmt"

	"kdb/internal/builtin"
	"kdb/internal/term"
)

// eliminateRedundant removes answers that are logical consequences of
// other answers (the paper's redundancy-free requirement, §3.2). The test
// is θ-subsumption strengthened with comparison implication: answer a
// makes answer b redundant when a substitution θ that fixes the head
// variables maps every ordinary atom of a's body onto an atom of b's
// body, and b's comparisons imply θ of a's comparisons. Then b's rule is
// a logical consequence of a's and b adds nothing.
func eliminateRedundant(answers []Answer, userVars map[term.Term]bool) []Answer {
	if len(answers) <= 1 {
		return answers
	}
	redundant := make([]bool, len(answers))
	for i := range answers {
		if redundant[i] {
			continue
		}
		for j := range answers {
			if i == j || redundant[j] {
				continue
			}
			if subsumes(answers[i], answers[j], userVars) {
				// Keep the earlier answer on mutual subsumption.
				if j > i || !subsumes(answers[j], answers[i], userVars) {
					redundant[j] = true
				}
			}
		}
	}
	out := make([]Answer, 0, len(answers))
	for i, a := range answers {
		if !redundant[i] {
			out = append(out, a)
		}
	}
	return out
}

// subsumes reports whether answer a θ-subsumes answer b: a's body, under
// some substitution fixing the user's variables (both answers implicitly
// carry the same head and hypothesis, whose variables denote the same
// objects), is covered by b's body — ordinary atoms by matching,
// comparisons by implication. The pattern side is renamed apart first:
// the two answers typically share non-user variable names, and
// θ-subsumption may bind only the pattern's own variables.
func subsumes(a, b Answer, userVars map[term.Term]bool) bool {
	if !a.Head.Equal(b.Head) {
		return false
	}
	fixed := make(map[term.Term]bool, len(userVars)+2)
	for v := range userVars {
		fixed[v] = true
	}
	for _, v := range a.Head.Vars(nil) {
		fixed[v] = true
	}
	aCmp, aOrd := builtin.Split(renameApart(a.Body, fixed))
	bCmp, bOrd := builtin.Split(b.Body)
	// Enumerate matchers of a's ordinary atoms into b's.
	return matchAtoms(aOrd, bOrd, fixed, nil, func(theta term.Subst) bool {
		implied, err := builtin.Implies(bCmp, theta.ApplyFormula(aCmp))
		return err == nil && implied
	})
}

// renameApart replaces every non-fixed variable of the formula with a
// fresh variable whose name cannot occur in user programs, so pattern and
// target of a matching problem never share variables.
func renameApart(f term.Formula, fixed map[term.Term]bool) term.Formula {
	sub := term.NewSubst(4)
	n := 0
	for _, v := range f.Vars() {
		if !fixed[v] {
			n++
			sub[v] = term.Var(fmt.Sprintf("\x01R%d", n))
		}
	}
	return sub.ApplyFormula(f)
}

// matchAtoms enumerates substitutions θ (extending base, fixing the
// variables in fixed) with θ(pattern[i]) ∈ targets for every i, calling
// ok for each; it returns true as soon as ok does.
func matchAtoms(pattern, targets term.Formula, fixed map[term.Term]bool, base term.Subst, ok func(term.Subst) bool) bool {
	if len(pattern) == 0 {
		return ok(base)
	}
	p := pattern[0]
	for _, t := range targets {
		theta, matched := matchFixed(p, t, fixed, base)
		if !matched {
			continue
		}
		if matchAtoms(pattern[1:], targets, fixed, theta, ok) {
			return true
		}
	}
	return false
}

// matchFixed is one-way matching where variables in fixed may only map to
// themselves.
func matchFixed(pattern, target term.Atom, fixed map[term.Term]bool, base term.Subst) (term.Subst, bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = term.NewSubst(len(pattern.Args))
	}
	for i := range pattern.Args {
		p := s.Walk(pattern.Args[i])
		g := target.Args[i]
		switch {
		case p == g:
		case p.IsVar() && !fixed[p]:
			s.Bind(p, g)
		default:
			return nil, false
		}
	}
	return s, true
}

package core

import (
	"testing"

	"kdb/internal/term"
)

func TestAnswerStringWithProvenance(t *testing.T) {
	x := term.Var("X")
	honor := term.NewRule(term.NewAtom("honor", x),
		term.NewAtom("student", x, term.Var("Y"), term.Var("Z")),
		term.NewAtom(">", term.Var("Z"), term.Num(3.7)))
	a := Answer{
		Head: term.NewAtom("honor", x),
		Body: term.Formula{term.NewAtom("student", x, term.Var("Y"), term.Var("Z")),
			term.NewAtom(">", term.Var("Z"), term.Num(3.7))},
		// The same rule applied twice renders one via line (Provenance
		// deduplicates).
		ViaRules: []term.Rule{honor, honor},
	}
	want := "honor(X) <- student(X, Y, Z) and Z > 3.7\n" +
		"   via honor(X) :- student(X, Y, Z), Z > 3.7."
	if got := a.StringWithProvenance(); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	// Without ViaRules it degrades to the plain rendering.
	a.ViaRules = nil
	if got := a.StringWithProvenance(); got != a.String() {
		t.Errorf("no-provenance rendering = %q", got)
	}
}

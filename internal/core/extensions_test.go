package core

import (
	"strings"
	"testing"

	"kdb/internal/parser"
	"kdb/internal/term"
)

func formula(t testing.TB, src string) term.Formula {
	t.Helper()
	f, err := parser.ParseFormula(src)
	if err != nil {
		t.Fatalf("parse formula %q: %v", src, err)
	}
	return f
}

func atomOf(t testing.TB, src string) term.Atom {
	t.Helper()
	a, err := parser.ParseAtom(src)
	if err != nil {
		t.Fatalf("parse atom %q: %v", src, err)
	}
	return a
}

// --- §6 extension 1: where necessary ---

func TestNecessaryFiltersUnusedHypotheses(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	subject := atomOf(t, `honor(X)`)

	// The paper's example: describe honor where necessary complete(...)
	// and U > 3.3 — complete never participates in honor's derivations,
	// so no answer survives.
	ans, err := d.DescribeNecessary(subject, formula(t, `complete(X, Y, Z, U) and U > 3.3`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Formulas) != 0 {
		t.Errorf("necessary hypothesis unused: want no answers, got %q", ans.SortedStrings())
	}

	// A hypothesis that IS fully used survives the filter.
	ans, err = d.DescribeNecessary(subject, formula(t, `student(X, math, V) and V > 3.7`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Formulas) != 1 {
		t.Fatalf("fully used hypothesis: want 1 answer, got %q", ans.SortedStrings())
	}

	// Partially used: student identifies, the comparison never helps
	// (V > 3.5 does not imply Z > 3.7) — filtered out.
	ans, err = d.DescribeNecessary(subject, formula(t, `student(X, math, V) and V > 3.5`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Formulas) != 0 {
		t.Errorf("partially used hypothesis must be filtered, got %q", ans.SortedStrings())
	}
}

// --- §6 extension 2: describe … where not h ---

func TestDescribeNotHonorIsNecessary(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	// The paper's example: can_ta without honor → false (honor necessary).
	n, err := d.DescribeNot(atomOf(t, `can_ta(X, Y)`), formula(t, `honor(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Possible {
		t.Errorf("honor is necessary for can_ta; witnesses: %v", n.Witnesses)
	}
	if !strings.Contains(n.String(), "false") {
		t.Errorf("String = %q", n.String())
	}
}

func TestDescribeNotAlternativeRouteExists(t *testing.T) {
	d := newDescriber(t, `
eligible(X) :- honor(X).
eligible(X) :- staff(X).
`, Options{})
	// eligible without honor: possible via the staff route.
	n, err := d.DescribeNot(atomOf(t, `eligible(X)`), formula(t, `honor(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Possible {
		t.Error("eligibility without honor must be possible via staff")
	}
	if len(n.Witnesses) == 0 || n.Witnesses[0][0].Pred != "staff" {
		t.Errorf("witnesses = %v", n.Witnesses)
	}
	// eligible without both routes: impossible.
	n, err = d.DescribeNot(atomOf(t, `eligible(X)`), formula(t, `honor(X) and staff(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Possible {
		t.Error("excluding both routes must make eligibility impossible")
	}
}

func TestDescribeNotBansDeepAtoms(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	// Banning `student` (which honor needs transitively) also blocks
	// can_ta: the ban applies at every level of the derivation.
	n, err := d.DescribeNot(atomOf(t, `can_ta(X, Y)`), formula(t, `student(X, M, G)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Possible {
		t.Errorf("student is (deeply) necessary for can_ta: %v", n.Witnesses)
	}
}

func TestDescribeNotRejectsNonIDBSubject(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	if _, err := d.DescribeNot(atomOf(t, `student(X, Y, Z)`), formula(t, `honor(X)`), nil); err == nil {
		t.Error("EDB subject must be rejected")
	}
}

// --- §6 extension 3: subjectless describe (possibility) ---

func keysStudent() map[string][][]int {
	return map[string][][]int{"student": {{1}}}
}

func newDescriberWithKeys(t testing.TB, src string, keys map[string][][]int) *Describer {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var rules []term.Rule
	for _, c := range p.Clauses {
		if !c.IsFact() {
			rules = append(rules, c)
		}
	}
	d, err := New(rules, keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPossiblePaperExample(t *testing.T) {
	// The paper's subjectless query: can a student with GPA under 3.5 be
	// a teaching assistant? With student's name as a key, the GPA in the
	// hypothesis and the GPA required by honor must be the same value —
	// contradiction, so: false.
	d := newDescriberWithKeys(t, universityIDB, keysStudent())
	p, err := d.Possible(formula(t, `student(X, Y, Z) and Z < 3.5 and can_ta(X, U)`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Possible {
		t.Errorf("paper X3 expects false; witness: %v", p.Witness)
	}
	if len(p.Conflicts) == 0 {
		t.Error("conflicts should explain the verdict")
	}
	if !strings.Contains(p.String(), "false") {
		t.Errorf("String = %q", p.String())
	}
}

func TestPossibleWithoutKeyIsTrue(t *testing.T) {
	// Without the key declaration nothing forces the two student atoms to
	// agree, so the hypothetical situation is (vacuously) possible — this
	// is why the paper's intended reading needs the functional constraint.
	d := newDescriber(t, universityIDB, Options{})
	p, err := d.Possible(formula(t, `student(X, Y, Z) and Z < 3.5 and can_ta(X, U)`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Possible {
		t.Error("without keys the situation is not refutable")
	}
}

func TestPossibleConsistentSituation(t *testing.T) {
	d := newDescriberWithKeys(t, universityIDB, keysStudent())
	// GPA over 3.8 is perfectly consistent with being a TA.
	p, err := d.Possible(formula(t, `student(X, Y, Z) and Z > 3.8 and can_ta(X, U)`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Possible {
		t.Errorf("consistent situation judged impossible; conflicts: %v", p.Conflicts)
	}
	if len(p.Witness) == 0 {
		t.Error("witness must be reported")
	}
}

func TestPossiblePureComparisons(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	p, err := d.Possible(formula(t, `X > 3 and X < 2`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Possible {
		t.Error("X > 3 and X < 2 is impossible")
	}
	if _, err := d.Possible(nil); err == nil {
		t.Error("empty hypothesis must be rejected")
	}
}

// Intro example 3: "Could an honor student be foreign?" — hypothetical
// knowledge checked against the stored knowledge.
func TestPossibleIntroForeignHonor(t *testing.T) {
	src := `
honor(X) :- student2(X, G, N), G > 3.7.
foreign(X) :- student2(X, G, N), N != usa.
`
	d := newDescriberWithKeys(t, src, map[string][][]int{"student2": {{1}}})
	p, err := d.Possible(formula(t, `honor(X) and foreign(X)`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Possible {
		t.Errorf("an honor student can be foreign; conflicts: %v", p.Conflicts)
	}
	// But an honor student with GPA 2.0 cannot exist.
	p, err = d.Possible(formula(t, `honor(X) and student2(X, 2, N)`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Possible {
		t.Error("honor with GPA 2.0 must be impossible under the key")
	}
}

// --- §6 extension 4: wildcard subject ---

func TestWildcardDescribe(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	// The paper's example: the advantages of honor status.
	entries, err := d.DescribeWildcard(formula(t, `honor(X)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Subject.Pred != "can_ta" {
		t.Fatalf("entries = %+v, want just can_ta", entries)
	}
	strs := entries[0].Answers.SortedStrings()
	if len(strs) != 2 {
		t.Errorf("can_ta answers = %q", strs)
	}
	// The synthetic W1 head variable is folded into the hypothesis's X,
	// matching the paper's presentation of the extension.
	for _, s := range strs {
		if !strings.HasPrefix(s, "can_ta(X, W2) <- complete(X, W2,") {
			t.Errorf("unexpected wildcard answer %q", s)
		}
	}
	if _, err := d.DescribeWildcard(nil); err == nil {
		t.Error("wildcard without hypothesis must be rejected")
	}
}

func TestWildcardMultipleSubjects(t *testing.T) {
	d := newDescriber(t, `
honor(X) :- student(X, M, G), G > 3.7.
deans_list(X) :- student(X, M, G), G > 3.9.
award(X) :- honor(X), thesis(X).
`, Options{})
	entries, err := d.DescribeWildcard(formula(t, `student(X, math, G) and G > 3.95`))
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]string, 0, len(entries))
	for _, e := range entries {
		preds = append(preds, e.Subject.Pred)
	}
	want := []string{"award", "deans_list", "honor"}
	if len(preds) != 3 || preds[0] != want[0] || preds[1] != want[1] || preds[2] != want[2] {
		t.Errorf("subjects = %v, want %v", preds, want)
	}
	// honor and deans_list fully collapse (G > 3.95 implies both bounds).
	for _, e := range entries {
		if e.Subject.Pred == "honor" {
			if e.Answers.Formulas[0].String() != "honor(X) <- true" {
				t.Errorf("honor = %q", e.Answers.Formulas[0].String())
			}
		}
	}
}

// --- §6 final extension: compare ---

const compareIDB = `
honor(X) :- student(X, M, G), G > 3.7.
deans_list(X) :- student(X, M, G), G > 3.9.
sporty(X) :- athlete(X, S).
varsity(X) :- athlete(X, S), letter(X, S).
`

func TestCompareSubsumption(t *testing.T) {
	d := newDescriber(t, compareIDB, Options{})
	// Every dean's-list student is an honor student: honor subsumes.
	c, err := d.Compare(atomOf(t, `honor(X)`), nil, atomOf(t, `deans_list(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != RelLeftSubsumesRight {
		t.Errorf("relation = %v, want left subsumes right", c.Relation)
	}
	// The shared concept is the weaker condition.
	if got := c.Shared.String(); !strings.Contains(got, "student(") || !strings.Contains(got, "> 3.7") {
		t.Errorf("shared = %q", got)
	}
	// The difference is the stronger GPA bound on the right.
	if got := c.RightOnly.String(); !strings.Contains(got, "> 3.9") {
		t.Errorf("rightOnly = %q", got)
	}
	// Reversed orientation flips the relation.
	c, err = d.Compare(atomOf(t, `deans_list(X)`), nil, atomOf(t, `honor(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != RelRightSubsumesLeft {
		t.Errorf("relation = %v, want right subsumes left", c.Relation)
	}
}

func TestCompareEquivalent(t *testing.T) {
	d := newDescriber(t, `
a(X) :- p(X, Y), q(Y).
b(Z) :- p(Z, W), q(W).
`, Options{})
	c, err := d.Compare(atomOf(t, `a(X)`), nil, atomOf(t, `b(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != RelEquivalent {
		t.Errorf("relation = %v, want equivalent", c.Relation)
	}
	if len(c.LeftOnly) != 0 || len(c.RightOnly) != 0 {
		t.Errorf("differences must be empty: %v / %v", c.LeftOnly, c.RightOnly)
	}
}

func TestCompareOverlapping(t *testing.T) {
	d := newDescriber(t, compareIDB, Options{})
	c, err := d.Compare(atomOf(t, `sporty(X)`), nil, atomOf(t, `varsity(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	// varsity ⊑ sporty (athlete shared, letter extra).
	if c.Relation != RelLeftSubsumesRight {
		t.Errorf("relation = %v", c.Relation)
	}
	if !strings.Contains(c.RightOnly.String(), "letter") {
		t.Errorf("rightOnly = %q", c.RightOnly.String())
	}
}

func TestCompareUnrelated(t *testing.T) {
	d := newDescriber(t, compareIDB, Options{})
	c, err := d.Compare(atomOf(t, `honor(X)`), nil, atomOf(t, `sporty(X)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != RelUnrelated {
		t.Errorf("relation = %v, want unrelated", c.Relation)
	}
	if len(c.Shared) != 0 {
		t.Errorf("shared = %v, want empty", c.Shared)
	}
	if c.String() == "" {
		t.Error("String must render")
	}
}

func TestCompareWithHypotheses(t *testing.T) {
	d := newDescriber(t, compareIDB, Options{})
	// Under the hypothesis that the student is on the dean's list, honor
	// adds nothing: the concepts become equivalent… honor's definition
	// under `deans_list(X)`'s expansion still requires student; compare
	// the raw definitions restricted by hypotheses instead.
	c, err := d.Compare(
		atomOf(t, `honor(X)`), formula(t, `student(X, math, G)`),
		atomOf(t, `deans_list(X)`), formula(t, `student(X, math, G)`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Relation != RelLeftSubsumesRight {
		t.Errorf("relation = %v", c.Relation)
	}
}

func TestCompareArityMismatch(t *testing.T) {
	d := newDescriber(t, compareIDB+"\nrel(X, Y) :- p(X, Y).\n", Options{})
	if _, err := d.Compare(atomOf(t, `honor(X)`), nil, atomOf(t, `rel(X, Y)`), nil); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// --- unfolding machinery ---

func TestUnfoldBoundsRecursion(t *testing.T) {
	d := newDescriber(t, `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`, Options{})
	lim := defaultUnfoldLimits()
	lim.maxExpansions = 5
	defs, _, err := d.unfold(formula(t, `path(X, Y)`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) == 0 {
		t.Fatal("expected some expansions")
	}
	for _, def := range defs {
		for _, a := range def {
			if a.Pred != "edge" {
				t.Errorf("non-EDB atom %v in unfolding", a)
			}
		}
	}
	// Expansion count grows with the bound but stays finite.
	lim.maxExpansions = 7
	more, _, err := d.unfold(formula(t, `path(X, Y)`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) <= len(defs) {
		t.Errorf("larger bound must yield more expansions: %d vs %d", len(more), len(defs))
	}
}

func TestChaseKeysUnifiesAndDetectsClash(t *testing.T) {
	d := newDescriberWithKeys(t, universityIDB, keysStudent())
	// Same key → remaining columns unified.
	f := formula(t, `student(ann, M1, G1) and student(ann, M2, G2)`)
	chased, ok := d.chaseKeys(f)
	if !ok {
		t.Fatal("chase must succeed")
	}
	if chased[0].Args[2] != chased[1].Args[2] {
		t.Errorf("GPA columns not unified: %v", chased)
	}
	// Distinct constants in a dependent column → clash.
	f = formula(t, `student(ann, math, 3) and student(ann, math, 4)`)
	if _, ok := d.chaseKeys(f); ok {
		t.Error("key clash must be detected")
	}
	// Different keys don't interact.
	f = formula(t, `student(ann, math, 3) and student(bob, math, 4)`)
	if _, ok := d.chaseKeys(f); !ok {
		t.Error("distinct keys must not clash")
	}
}

func BenchmarkPossible(b *testing.B) {
	d := newDescriberWithKeys(b, universityIDB, keysStudent())
	h := formula(b, `student(X, Y, Z) and Z < 3.5 and can_ta(X, U)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Possible(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	d := newDescriber(b, compareIDB, Options{})
	l, r := atomOf(b, `honor(X)`), atomOf(b, `deans_list(X)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Compare(l, nil, r, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"context"
	"fmt"

	"kdb/internal/builtin"
	"kdb/internal/depgraph"
	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/term"
	"kdb/internal/transform"
)

// Options tune the describe engine.
type Options struct {
	// MaxDepth bounds rule expansions along any derivation-tree branch
	// (a safety net; the tags already bound disciplined recursion).
	MaxDepth int
	// UntypedBound is the §5.3 escape hatch: the maximum number of
	// applications of undisciplined (untyped / non-strongly-linear)
	// recursive rules along one branch.
	UntypedBound int
	// MaxAnswers caps the number of raw answers explored.
	MaxAnswers int
	// MaxNodes caps the total number of search steps; when exceeded the
	// search stops and returns the answers found so far (Truncated is set
	// on the result).
	MaxNodes int
	// KeepSteps disables rewriting artificial step-predicate atoms into
	// atoms of the original predicate (the modified transformation of
	// §5.3). By default answers prefer the original predicate, matching
	// the paper's preferred rendering of Example 6.
	KeepSteps bool
	// Constraints are the knowledge base's integrity constraints — the
	// paper's second Horn-clause form ¬(p1 ∧ … ∧ pn) (§2.1). The §6
	// possibility checker and negative-hypothesis checker reject
	// situations that trigger one.
	Constraints []term.Formula
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 16
	}
	if o.UntypedBound == 0 {
		o.UntypedBound = 2
	}
	if o.MaxAnswers == 0 {
		o.MaxAnswers = 512
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 2_000_000
	}
	return o
}

// Describer answers knowledge queries over a fixed rule set. Build one
// with New; it is safe for concurrent use.
type Describer struct {
	rules []term.Rule
	graph *depgraph.Graph

	trans  *transform.Result
	tgraph *depgraph.Graph
	// recPreds are the predicates with recursive rules in the transformed
	// set; the typed-substitution guard of Algorithm 2 applies to them.
	recPreds map[string]bool

	// keys are candidate keys per predicate (1-based columns), used by
	// the possibility checker (§6 extension 3).
	keys map[string][][]int

	// icDisjuncts are the integrity constraints expanded to EDB level,
	// one slice of alternative forbidden patterns per constraint.
	icDisjuncts [][]term.Formula

	opts Options
}

// New builds a describer for the rule set. keys may be nil.
func New(rules []term.Rule, keys map[string][][]int, opts Options) (*Describer, error) {
	trans, err := transform.Apply(rules)
	if err != nil {
		return nil, err
	}
	tgraph := depgraph.New(trans.Rules)
	// The typed-substitution guard applies to the predicates that went
	// through the transformation and their step predicates. Undisciplined
	// recursive rules are exempt from the typing requirement (§5.3, end):
	// they are metered by the untyped bound instead.
	rec := make(map[string]bool)
	for pred, tr := range trans.ByPred {
		rec[pred] = true
		rec[tr.StepPred] = true
	}
	if keys == nil {
		keys = map[string][][]int{}
	}
	d := &Describer{
		rules:    rules,
		graph:    depgraph.New(rules),
		trans:    trans,
		tgraph:   tgraph,
		recPreds: rec,
		keys:     keys,
		opts:     opts.withDefaults(),
	}
	// Expand each integrity constraint to stored-predicate level so the
	// consistency checker can match it against unfolded situations even
	// when the constraint names derived concepts.
	for _, ic := range d.opts.Constraints {
		dis, _, err := d.unfold(ic, defaultUnfoldLimits())
		if err != nil {
			return nil, err
		}
		d.icDisjuncts = append(d.icDisjuncts, dis)
	}
	return d, nil
}

// Rules returns the original rule set.
func (d *Describer) Rules() []term.Rule { return d.rules }

// TransformedRules returns the rule set after the §5.2 transformation.
func (d *Describer) TransformedRules() []term.Rule { return d.trans.Rules }

// Describe evaluates `describe subject where hypothesis` (§3.2). The
// subject must be an IDB predicate (it has at least one rule). The
// hypothesis is a positive formula; its comparison conjuncts drive the §4
// comparison post-pass, its ordinary conjuncts are identification
// targets.
//
// The algorithm selection follows the paper: when the subject predicate
// is not recursive and does not depend on a recursive predicate,
// Algorithm 1 runs over the original rules; otherwise Algorithm 2 runs
// over the transformed rules with tags and typed substitutions.
//
//kdb:entrypoint
func (d *Describer) Describe(subject term.Atom, hypothesis term.Formula) (*Answers, error) {
	return d.DescribeContext(context.Background(), subject, hypothesis, governor.Limits{})
}

// DescribeContext is Describe under a query governor: the search checks
// the context cooperatively (amortized, once per tick interval of search
// steps) and limits.MaxDescribeNodes bounds the steps of the search as a
// hard error — unlike Options.MaxNodes, which truncates and returns the
// answers found so far. A breach surfaces as an errors.Is/As-able error
// (governor.ErrCanceled, context.DeadlineExceeded, *governor.LimitError);
// an internal panic is contained as a *governor.PanicError.
func (d *Describer) DescribeContext(ctx context.Context, subject term.Atom, hypothesis term.Formula, limits governor.Limits) (ans *Answers, err error) {
	defer governor.Recover(&err)
	gov, cancel := governor.New(ctx, limits)
	defer cancel()
	return d.describe(gov, obs.SpanFromContext(ctx), subject, hypothesis)
}

// describe runs one governed describe search. sp, when non-nil, is the
// query span the search phases are recorded under: "eval" covers the
// derivation-tree construction and cutting, "describe" the redundancy
// elimination and comparison post-processing.
func (d *Describer) describe(gov *governor.Governor, sp *obs.Span, subject term.Atom, hypothesis term.Formula) (*Answers, error) {
	if term.IsComparison(subject) {
		return nil, fmt.Errorf("core: the subject of describe cannot be a comparison")
	}
	if len(d.graph.RulesFor(subject.Pred)) == 0 {
		return nil, fmt.Errorf("core: %s is not an IDB predicate; describe inquires about defined concepts", subject.Pred)
	}
	hypOrd, hypCmp := splitHypothesis(hypothesis)
	alg2 := d.graph.DependsOnRecursive(subject.Pred)
	if len(hypOrd) == 0 {
		// No identification targets: the answer is the subject's own
		// definition (§4's one-level exception, Example 4). The original
		// rules are the right rendering — the transformation is an
		// internal device of Algorithm 2's search.
		alg2 = false
	}
	rules := d.rules
	g := d.graph
	if alg2 {
		rules = d.trans.Rules
		g = d.tgraph
	}
	userVars := make(map[term.Term]bool)
	subjectVars := make(map[term.Term]bool)
	hypVars := make(map[term.Term]bool)
	for _, v := range subject.Vars(nil) {
		userVars[v] = true
		subjectVars[v] = true
	}
	for _, v := range hypothesis.Vars() {
		userVars[v] = true
		hypVars[v] = true
	}

	s := &search{
		d:           d,
		gov:         gov,
		alg2:        alg2,
		graph:       g,
		subject:     subject,
		hypOrd:      hypOrd,
		hypCmp:      hypCmp,
		userVars:    userVars,
		subjectVars: subjectVars,
		hypVars:     hypVars,
		seen:        make(map[string]bool),
		usedHyp:     make(map[int]bool),
	}
	byHead := make(map[string][]term.Rule)
	for _, r := range rules {
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], r)
	}
	s.byHead = byHead

	esp := sp.Child("eval")
	esp.SetStr("algorithm", map[bool]string{false: "1", true: "2"}[alg2])
	err := s.run()
	esp.SetInt("nodes", int64(s.nodes))
	esp.SetInt("answers", int64(len(s.answers)))
	esp.SetBool("truncated", s.truncated)
	if err != nil {
		esp.SetStr("stop", governor.StopReason(err))
		esp.End()
		return nil, err
	}
	esp.End()

	dsp := sp.Child("describe")
	ans := &Answers{Subject: subject, Hypothesis: hypothesis, Truncated: s.truncated, Nodes: s.nodes}
	ans.Formulas = eliminateRedundant(s.answers, userVars)
	if len(ans.Formulas) == 0 && s.discarded > 0 {
		ans.Contradiction = true
	}
	dsp.SetInt("formulas", int64(len(ans.Formulas)))
	dsp.End()
	return ans, nil
}

// indexedAtom is a hypothesis conjunct with its original index.
type indexedAtom struct {
	idx  int
	atom term.Atom
}

func splitHypothesis(h term.Formula) (ord []indexedAtom, cmp []indexedAtom) {
	for i, a := range h {
		if term.IsComparison(a) {
			cmp = append(cmp, indexedAtom{i, a})
		} else {
			ord = append(ord, indexedAtom{i, a})
		}
	}
	return ord, cmp
}

// node tags of Algorithm 2 (§5.3): tag 0 forbids applying a recursive
// rule to the node; 1 and 2 meter the continuation rule.
type nodeTag uint8

const (
	tagNone nodeTag = iota
	tag0
	tag1
	tag2
)

// node is one open formula of the derivation tree.
type node struct {
	atom term.Atom
	tag  nodeTag
	// obligations are indices into search.obls: every expansion requires
	// an identification somewhere in its subtree (the paper's
	// productivity cut), and these are the obligations this node's
	// subtree can still satisfy.
	obligations []int
	// depth counts rule expansions on the path to this node.
	depth int
	// untyped counts undisciplined recursive rule applications on the
	// path (the §5.3 bounded mode).
	untyped int
}

// search carries the backtracking state of one describe evaluation.
type search struct {
	d           *Describer
	gov         *governor.Governor
	alg2        bool
	graph       *depgraph.Graph
	byHead      map[string][]term.Rule
	subject     term.Atom
	hypOrd      []indexedAtom
	hypCmp      []indexedAtom
	userVars    map[term.Term]bool
	subjectVars map[term.Term]bool
	hypVars     map[term.Term]bool

	rn term.Renamer

	// Path state (saved/restored around choices).
	leaves    term.Formula
	treeAtoms []term.Atom
	viaRules  []term.Rule
	obls      []bool
	usedHyp   map[int]bool

	answers       []Answer
	seen          map[string]bool
	discarded     int
	anyProductive bool
	truncated     bool
	nodes         int
}

// run explores the root choices: identification of the subject with
// hypothesis conjuncts, and expansion by each rule of the subject's
// predicate. Root rules that never complete productively contribute
// their one-level answer — but only when no productive answer exists at
// all, which reproduces the paper's displayed outputs (Examples 4–6) and
// its §6 remark that a hypothesis that cannot participate leaves the
// answer identical to the hypothesis-free one.
func (s *search) run() error {
	s.treeAtoms = append(s.treeAtoms, s.subject)

	// Root identification (Example 6's first answer).
	for _, h := range s.hypOrd {
		sigma, ok := term.Unify(s.subject, h.atom, nil)
		if !ok {
			continue
		}
		if s.alg2 && !s.typedOK(nil, sigma) {
			continue
		}
		s.usedHyp[h.idx] = true
		s.anyProductive = true
		if err := s.emit(sigma); err != nil {
			return err
		}
		delete(s.usedHyp, h.idx)
	}

	// Root rule expansions.
	type pending struct {
		rule  term.Rule
		sigma term.Subst
		body  term.Formula
	}
	var unproductive []pending
	for _, r := range s.byHead[s.subject.Pred] {
		fresh := s.rn.RenameRule(r)
		sigma, ok := term.Unify(s.subject, fresh.Head, nil)
		if !ok {
			continue
		}
		before := len(s.answers)
		beforeDiscarded := s.discarded
		agenda := s.childNodes(fresh.Body, r, node{})
		s.viaRules = append(s.viaRules, r)
		s.treeAtoms = append(s.treeAtoms, fresh.Body...)
		oblID := len(s.obls)
		s.obls = append(s.obls, false)
		for i := range agenda {
			agenda[i].obligations = []int{oblID}
		}
		if err := s.step(agenda, sigma); err != nil {
			return err
		}
		s.obls = s.obls[:oblID]
		s.treeAtoms = s.treeAtoms[:len(s.treeAtoms)-len(fresh.Body)]
		s.viaRules = s.viaRules[:len(s.viaRules)-1]
		if len(s.answers) == before && s.discarded == beforeDiscarded {
			unproductive = append(unproductive, pending{rule: r, sigma: sigma, body: fresh.Body})
		} else {
			// A completion existed — even one discarded for contradicting
			// the hypothesis counts as productive (§4's special answer).
			s.anyProductive = true
		}
	}

	// One-level answers for unproductive rules, when nothing was
	// productive anywhere (§4's exception; Example 4).
	if !s.anyProductive {
		for _, p := range unproductive {
			s.leaves = append(s.leaves, p.body...)
			s.viaRules = append(s.viaRules, p.rule)
			if err := s.emit(p.sigma); err != nil {
				return err
			}
			s.viaRules = s.viaRules[:len(s.viaRules)-1]
			s.leaves = s.leaves[:len(s.leaves)-len(p.body)]
		}
	}
	return nil
}

// step processes the agenda depth-first (leftmost open formula first).
func (s *search) step(agenda []node, sigma term.Subst) error {
	if s.truncated {
		return nil
	}
	s.nodes++
	// Node expansion is heavyweight, so consult the context on every
	// node (not amortized): small searches must still observe a
	// cancellation promptly.
	if err := s.gov.Err(); err != nil {
		return err
	}
	if err := s.gov.CheckDescribeNodes(s.nodes); err != nil {
		return err
	}
	if s.nodes > s.d.opts.MaxNodes || len(s.answers) >= s.d.opts.MaxAnswers {
		s.truncated = true
		return nil
	}
	if len(agenda) == 0 {
		for _, ok := range s.obls {
			if !ok {
				return nil // an expansion without an identification: cut
			}
		}
		return s.emit(sigma)
	}
	q := agenda[0]
	rest := agenda[1:]

	// Comparison formulas are never identified and never expanded (§4):
	// they drop to the leaves and meet the hypothesis in the post-pass.
	if term.IsComparison(q.atom) {
		s.leaves = append(s.leaves, q.atom)
		err := s.step(rest, sigma)
		s.leaves = s.leaves[:len(s.leaves)-1]
		return err
	}

	// Choice 1: identify with a hypothesis conjunct. Away from the root,
	// an identification that would constrain the user's variables (bind
	// two of them together, or bind one to a constant) is skipped: such
	// bindings narrow the answer's head and belong only to root
	// identifications (Example 6's `X = databases`). This choice of
	// interpretation reproduces the paper's displayed outputs.
	identified := false
	for _, h := range s.hypOrd {
		ext, ok := term.Unify(q.atom, h.atom, sigma)
		if !ok {
			continue
		}
		if s.constrainsUserVars(sigma, ext) {
			continue
		}
		if s.alg2 && !s.typedOK(sigma, ext) {
			continue
		}
		identified = true
		sat := s.satisfy(q.obligations)
		wasUsed := s.usedHyp[h.idx]
		s.usedHyp[h.idx] = true
		if err := s.step(rest, ext); err != nil {
			return err
		}
		if !wasUsed {
			delete(s.usedHyp, h.idx)
		}
		s.unsatisfy(sat)
	}

	// Choice 2: expand with each admissible rule. The expansion carries a
	// new obligation: its subtree must identify something, or the branch
	// is cut (the paper's "subtrees without hypothesis leaves are cut off
	// below their subtree roots"). With no identification targets at all,
	// no expansion can ever be productive — skip the choice entirely,
	// which also keeps hypothesis-free describes of recursive subjects
	// linear over the original rules.
	if q.depth < s.d.opts.MaxDepth && len(s.hypOrd) > 0 {
		for _, r := range s.byHead[q.atom.Pred] {
			if !s.ruleAllowed(q, r) {
				continue
			}
			fresh := s.rn.RenameRule(r)
			ext, ok := term.Unify(sigma.Apply(q.atom), fresh.Head, sigma)
			if !ok {
				continue
			}
			children := s.childNodes(fresh.Body, r, q)
			oblID := len(s.obls)
			s.obls = append(s.obls, false)
			inherited := append(append([]int{}, q.obligations...), oblID)
			for i := range children {
				children[i].obligations = inherited
			}
			s.treeAtoms = append(s.treeAtoms, fresh.Body...)
			s.viaRules = append(s.viaRules, r)
			next := append(children, rest...)
			if err := s.step(next, ext); err != nil {
				return err
			}
			s.viaRules = s.viaRules[:len(s.viaRules)-1]
			s.treeAtoms = s.treeAtoms[:len(s.treeAtoms)-len(fresh.Body)]
			s.obls = s.obls[:oblID]
		}
	}

	// Choice 3: remain a leaf — only when no identification was possible,
	// which keeps answers at the paper's displayed generality (a formula
	// that can meet the hypothesis must meet it).
	if !identified {
		s.leaves = append(s.leaves, q.atom)
		err := s.step(rest, sigma)
		s.leaves = s.leaves[:len(s.leaves)-1]
		return err
	}
	return nil
}

func containsVar(vs []term.Term, v term.Term) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}

// constrainsUserVars reports whether ext narrows the user's variables
// relative to sigma: a user variable newly bound to a constant, or two
// user variables newly unified. Unifying a subject-only variable with a
// hypothesis-only variable is NOT constraining — that is the natural
// reading when the query spells the subject and the hypothesis with
// different names (and what the wildcard extension relies on).
func (s *search) constrainsUserVars(sigma, ext term.Subst) bool {
	vars := make([]term.Term, 0, len(s.userVars))
	for v := range s.userVars {
		vars = append(vars, v)
	}
	crossGroup := func(v, w term.Term) bool {
		subjOnlyV := s.subjectVars[v] && !s.hypVars[v]
		hypOnlyV := s.hypVars[v] && !s.subjectVars[v]
		subjOnlyW := s.subjectVars[w] && !s.hypVars[w]
		hypOnlyW := s.hypVars[w] && !s.subjectVars[w]
		return subjOnlyV && hypOnlyW || hypOnlyV && subjOnlyW
	}
	for i, v := range vars {
		if ext.Walk(v).IsConst() && !sigma.Walk(v).IsConst() {
			return true
		}
		for j := 0; j < i; j++ {
			w := vars[j]
			if ext.Walk(v) == ext.Walk(w) && sigma.Walk(v) != sigma.Walk(w) && !crossGroup(v, w) {
				return true
			}
		}
	}
	return false
}

// childNodes builds agenda nodes for a rule's body, assigning Algorithm 2
// tags according to the rule kind (§5.3, Figure 3 boxes 9a–9e).
func (s *search) childNodes(body term.Formula, r term.Rule, parent node) []node {
	kind := transform.KindOrdinary
	untyped := parent.untyped
	if s.alg2 {
		kind = s.d.trans.Kind(r)
		if s.d.trans.IsUntypedRule(r) && s.graph.IsRecursiveRule(r) {
			untyped++
		}
	}
	children := make([]node, len(body))
	for i, a := range body {
		children[i] = node{atom: a, depth: parent.depth + 1, untyped: untyped}
	}
	switch kind {
	case transform.KindRT:
		// The step-atom child gets tag 2, the predicate child tag 0.
		for i, a := range body {
			if _, isStep := s.d.trans.IsStepPred(a.Pred); isStep {
				children[i].tag = tag2
			} else {
				children[i].tag = tag0
			}
		}
	case transform.KindRC:
		switch parent.tag {
		case tag1:
			for i := range children {
				children[i].tag = tag0
			}
		default: // tag2 or an untagged step goal
			children[0].tag = tag1
			for i := 1; i < len(children); i++ {
				children[i].tag = tag0
			}
		}
	}
	return children
}

// ruleAllowed enforces the tag discipline and the untyped bound.
func (s *search) ruleAllowed(q node, r term.Rule) bool {
	if !s.alg2 {
		return true
	}
	switch s.d.trans.Kind(r) {
	case transform.KindRT, transform.KindRC:
		return q.tag != tag0
	}
	if s.d.trans.IsUntypedRule(r) && s.graph.IsRecursiveRule(r) {
		return q.untyped < s.d.opts.UntypedBound
	}
	return true
}

// typedOK implements Algorithm 2's substitution guard: the candidate
// substitution ext is disqualified when it would cause two occurrences of
// a (transformed) recursive predicate somewhere in the tree or hypothesis
// to hold the same variable at different positions (§5.3; sufficient
// condition of footnote 4). A predicate that already exhibits swapped
// positions under the current substitution sigma — because an ordinary
// rule like `roundtrip(X, Y) ← reachable(X, Y) ∧ reachable(Y, X)` is
// legitimately untyped with respect to it — is exempt: the guard only
// rejects conflicts the new substitution introduces.
func (s *search) typedOK(sigma, ext term.Subst) bool {
	before := s.conflictedPreds(sigma)
	for pred := range s.conflictedPreds(ext) {
		if !before[pred] {
			return false
		}
	}
	return true
}

// conflictedPreds returns the recursive predicates for which some
// variable occupies two distinct argument positions across the tree and
// hypothesis atoms, under the given substitution.
func (s *search) conflictedPreds(sub term.Subst) map[string]bool {
	out := make(map[string]bool)
	positions := make(map[string]map[term.Term]int)
	check := func(a term.Atom) {
		if !s.d.recPreds[a.Pred] || out[a.Pred] {
			return
		}
		pos := positions[a.Pred]
		if pos == nil {
			pos = make(map[term.Term]int)
			positions[a.Pred] = pos
		}
		b := sub.Apply(a)
		for i, t := range b.Args {
			if !t.IsVar() {
				continue
			}
			if prev, ok := pos[t]; ok && prev != i {
				out[a.Pred] = true
				return
			}
			pos[t] = i
		}
	}
	for _, a := range s.treeAtoms {
		check(a)
	}
	for _, h := range s.hypOrd {
		check(h.atom)
	}
	return out
}

// satisfy marks obligations satisfied, returning the ones newly set so
// the caller can restore them.
func (s *search) satisfy(ids []int) []int {
	var newly []int
	for _, id := range ids {
		if !s.obls[id] {
			s.obls[id] = true
			newly = append(newly, id)
		}
	}
	return newly
}

func (s *search) unsatisfy(ids []int) {
	for _, id := range ids {
		s.obls[id] = false
	}
}

// emit assembles one answer from the current path state, applies the §4
// comparison post-pass, and records it (deduplicated).
func (s *search) emit(sigma term.Subst) error {
	body := sigma.ApplyFormula(s.leaves)

	// User-variable bindings: rename fresh images back to the user's
	// variable where possible, otherwise surface the binding as an
	// equality atom (Example 6's `X = databases`). Hypothesis variables
	// are treated like subject variables — a binding imposed on them is
	// part of the answer's meaning. Subject variables take rename
	// priority.
	var equalities term.Formula
	rename := term.NewSubst(2)
	userOrder := s.subject.Vars(nil)
	var hypVars []term.Term
	for _, h := range s.hypOrd {
		hypVars = h.atom.Vars(hypVars)
	}
	for _, h := range s.hypCmp {
		hypVars = h.atom.Vars(hypVars)
	}
	for _, v := range hypVars {
		if !containsVar(userOrder, v) {
			userOrder = append(userOrder, v)
		}
	}
	for _, v := range userOrder {
		t := sigma.Walk(v)
		if t == v {
			continue
		}
		if t.IsVar() && !s.userVars[t] {
			if prev, ok := rename[t]; ok {
				// Two user variables share an image: keep one rename,
				// surface the other as an equality.
				equalities = append(equalities, term.NewAtom(term.PredEq, v, prev))
			} else {
				rename[t] = v
			}
			continue
		}
		equalities = append(equalities, term.NewAtom(term.PredEq, v, t))
	}
	if len(rename) > 0 {
		body = rename.ApplyFormula(body)
	}
	full := append(equalities, body...)

	// §4 comparison post-pass. α is the hypothesis's comparison part under
	// the answer's substitution (and the rename).
	alpha := make(term.Formula, 0, len(s.hypCmp))
	for _, c := range s.hypCmp {
		alpha = append(alpha, rename.Apply(sigma.Apply(c.atom)))
	}
	kept := make(term.Formula, 0, len(full))
	var removed term.Formula
	for _, a := range full {
		if !term.IsComparison(a) {
			kept = append(kept, a)
			continue
		}
		implied, err := builtin.Implies(alpha, term.Formula{a})
		if err != nil {
			return err
		}
		if implied {
			removed = append(removed, a)
			continue
		}
		kept = append(kept, a)
	}
	// Discard the answer when the hypothesis contradicts its comparisons.
	var bodyCmp term.Formula
	for _, a := range kept {
		if term.IsComparison(a) {
			bodyCmp = append(bodyCmp, a)
		}
	}
	if len(alpha) > 0 && len(bodyCmp) > 0 {
		contra, err := builtin.Contradicts(alpha, bodyCmp)
		if err != nil {
			return err
		}
		if contra {
			s.discarded++
			return nil
		}
	}

	used := make([]int, 0, len(s.usedHyp))
	for idx := range s.usedHyp {
		used = append(used, idx)
	}
	// Comparison hypothesis conjuncts count as used when their removal
	// would lose a β-elimination.
	for _, c := range s.hypCmp {
		needed := false
		for _, beta := range removed {
			reduced := make(term.Formula, 0, len(alpha)-1)
			for _, other := range s.hypCmp {
				if other.idx == c.idx {
					continue
				}
				reduced = append(reduced, rename.Apply(sigma.Apply(other.atom)))
			}
			still, err := builtin.Implies(reduced, term.Formula{beta})
			if err != nil {
				return err
			}
			if !still {
				needed = true
				break
			}
		}
		if needed {
			used = append(used, c.idx)
		}
	}

	// Prefer the original predicate over the artificial step predicate
	// when the modified transformation applies (§5.3).
	if s.alg2 && !s.d.opts.KeepSteps {
		for i, a := range kept {
			if rewritten, ok := s.d.trans.RewriteStepAtom(a); ok {
				kept[i] = rewritten
			}
		}
	}

	ans := Answer{
		Head:           term.NewAtom(s.subject.Pred, s.subject.Args...),
		Body:           kept,
		UsedHypothesis: used,
		ViaRules:       append([]term.Rule(nil), s.viaRules...),
	}
	ans.prettify(s.userVars)
	key := ans.key(s.userVars)
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	s.answers = append(s.answers, ans)
	return nil
}

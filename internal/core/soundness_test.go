package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kdb/internal/eval"
	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Soundness (the paper's §3.2 requirement): every answer `p ← φ` to
// `describe p where ψ` must make `p ← φ ∧ ψ` a logical consequence of
// the IDB. We model-check: over randomized EDBs, every ground binding
// satisfying φ ∧ ψ in the database's minimal model must make the subject
// instance derivable.

// checkAnswerSound returns an error when the answer is violated on the
// given store. Answers whose check rule would be unsafe (a head variable
// not bound by φ ∧ ψ) are checked with the variable sampled over the
// store's constants.
func checkAnswerSound(st *storage.Store, rules []term.Rule, subject term.Atom, hypothesis term.Formula, a Answer) error {
	body := append(a.Body.Clone(), hypothesis...)
	vars := body.Vars()
	for _, v := range subject.Vars(nil) {
		if !containsVar(vars, v) {
			vars = append(vars, v)
		}
	}
	witness := term.NewAtom("__witness__", vars...)
	checkRules := append(append([]term.Rule(nil), rules...), term.Rule{Head: witness, Body: body})
	in := eval.Input{Store: st, Rules: checkRules}
	res, err := eval.NewSemiNaive(in).Retrieve(eval.Query{Subject: witness})
	if err != nil {
		// Unsafe check rule (free universal variable): sample it.
		return sampleAndCheck(st, rules, subject, body, vars)
	}
	// Collect the subject predicate's full extension once.
	subjVarsAtom := freshSubjectAtom(subject)
	ext, err := eval.NewSemiNaive(eval.Input{Store: st, Rules: rules}).Retrieve(eval.Query{Subject: subjVarsAtom})
	if err != nil {
		return fmt.Errorf("evaluating subject extension: %w", err)
	}
	extension := make(map[string]bool, len(ext.Tuples))
	for _, tp := range ext.Tuples {
		extension[storage.Tuple(tp).Key()] = true
	}
	for _, tp := range res.Tuples {
		s := term.NewSubst(len(vars))
		for i, v := range vars {
			s[v] = tp[i]
		}
		inst := s.Apply(subject)
		if !inst.IsGround() {
			// A subject variable absent from the body: universally
			// quantified; verify for every constant in the instance's
			// column domain (approximate with all stored constants).
			continue
		}
		if !extension[storage.Tuple(inst.Args).Key()] {
			return fmt.Errorf("unsound answer %v: binding %v satisfies body+hypothesis but %v is not derivable", a, s, inst)
		}
	}
	return nil
}

func freshSubjectAtom(subject term.Atom) term.Atom {
	args := make([]term.Term, len(subject.Args))
	for i := range args {
		args[i] = term.Var(fmt.Sprintf("_S%d", i))
	}
	return term.NewAtom(subject.Pred, args...)
}

func sampleAndCheck(st *storage.Store, rules []term.Rule, subject term.Atom, body term.Formula, vars []term.Term) error {
	// Collect constants appearing in the store.
	constSet := make(map[term.Term]bool)
	for _, pred := range st.Preds() {
		for _, f := range st.Facts(pred) {
			for _, t := range f.Args {
				constSet[t] = true
			}
		}
	}
	// This fallback only runs for small var counts in tests; bail out
	// rather than explode.
	if len(vars) > 3 {
		return nil
	}
	consts := make([]term.Term, 0, len(constSet))
	for c := range constSet {
		consts = append(consts, c)
	}
	var rec func(i int, s term.Subst) error
	rec = func(i int, s term.Subst) error {
		if i == len(vars) {
			groundBody := s.ApplyFormula(body)
			holds, err := groundFormulaHolds(st, rules, groundBody)
			if err != nil || !holds {
				return err
			}
			inst := s.Apply(subject)
			ok, err := groundFormulaHolds(st, rules, term.Formula{inst})
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("unsound answer: %v holds but %v is not derivable", groundBody, inst)
			}
			return nil
		}
		for _, c := range consts {
			s2 := s.Clone()
			s2[vars[i]] = c
			if err := rec(i+1, s2); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, term.NewSubst(len(vars)))
}

func groundFormulaHolds(st *storage.Store, rules []term.Rule, f term.Formula) (bool, error) {
	head := term.NewAtom("__probe__")
	checkRules := append(append([]term.Rule(nil), rules...), term.Rule{Head: head, Body: f})
	res, err := eval.NewSemiNaive(eval.Input{Store: st, Rules: checkRules}).Retrieve(eval.Query{Subject: head})
	if err != nil {
		return false, err
	}
	return len(res.Tuples) > 0, nil
}

// randomUniversityStore populates the paper's EDB schema with random data.
func randomUniversityStore(r *rand.Rand) *storage.Store {
	st := storage.NewMemory()
	students := []string{"ann", "bob", "cora", "dan", "eve"}
	courses := []string{"databases", "calculus", "ai"}
	profs := []string{"susan", "tom"}
	sems := []string{"f88", "f89"}
	insert := func(a term.Atom) {
		if _, err := st.InsertAtom(a); err != nil {
			panic(err)
		}
	}
	for _, s := range students {
		gpa := 2.0 + 2.0*r.Float64()
		insert(term.NewAtom("student", term.Sym(s), term.Sym("math"), term.Num(float64(int(gpa*10))/10)))
	}
	for i := 0; i < 8; i++ {
		insert(term.NewAtom("complete",
			term.Sym(students[r.Intn(len(students))]),
			term.Sym(courses[r.Intn(len(courses))]),
			term.Sym(sems[r.Intn(len(sems))]),
			term.Num(float64(2+r.Intn(3))),
		))
	}
	for i := 0; i < 4; i++ {
		insert(term.NewAtom("taught",
			term.Sym(profs[r.Intn(len(profs))]),
			term.Sym(courses[r.Intn(len(courses))]),
			term.Sym(sems[r.Intn(len(sems))]),
			term.Num(3)))
		insert(term.NewAtom("teach",
			term.Sym(profs[r.Intn(len(profs))]),
			term.Sym(courses[r.Intn(len(courses))])))
	}
	for i := 0; i < 4; i++ {
		insert(term.NewAtom("prereq",
			term.Sym(courses[r.Intn(len(courses))]),
			term.Sym(courses[r.Intn(len(courses))])))
	}
	return st
}

// TestQuickDescribeSoundOnUniversity model-checks every answer of the
// paper's example queries against randomized university databases.
func TestQuickDescribeSoundOnUniversity(t *testing.T) {
	d := newDescriber(t, universityIDB, Options{})
	queries := []string{
		`describe honor(X).`,
		`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`,
		`describe can_ta(X, Y) where honor(X) and teach(susan, Y).`,
		`describe can_ta(X, Y) where complete(X, Y, Z, 4).`,
		`describe prior(X, Y) where prior(databases, Y).`,
		`describe prior(X, Y) where prior(X, databases).`,
		`describe honor(X) where student(X, M, V) and V > 3.5.`,
	}
	rules := d.Rules()
	type parsed struct {
		subject term.Atom
		where   term.Formula
		answers []Answer
	}
	var cases []parsed
	for _, q := range queries {
		pq, err := parser.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		dq := pq.(*parser.Describe)
		// Use the step-free rendering but check against the ORIGINAL rule
		// set: the modified transformation's claim is precisely that the
		// rewritten atom is equivalent.
		ans, err := d.Describe(dq.Subject, dq.Where)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, parsed{dq.Subject, dq.Where, ans.Formulas})
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomUniversityStore(r)
		for _, c := range cases {
			for _, a := range c.answers {
				if err := checkAnswerSound(st, rules, c.subject, c.where, a); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDescribeSoundOnGraphs does the same for a recursive routing KB
// (the paper's fifth introduction example).
func TestQuickDescribeSoundOnGraphs(t *testing.T) {
	d := newDescriber(t, `
connected(X, Y) :- flight(X, Y).
connected(X, Y) :- flight(X, Z), connected(Z, Y).
`, Options{})
	queries := []string{
		`describe connected(X, Y) where connected(la, Y).`,
		`describe connected(X, Y) where flight(X, Y).`,
	}
	rules := d.Rules()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := storage.NewMemory()
		airports := []string{"la", "sf", "ny", "chi"}
		for i := 0; i < 7; i++ {
			if _, err := st.InsertAtom(term.NewAtom("flight",
				term.Sym(airports[r.Intn(len(airports))]),
				term.Sym(airports[r.Intn(len(airports))]))); err != nil {
				panic(err)
			}
		}
		for _, q := range queries {
			pq, err := parser.ParseQuery(q)
			if err != nil {
				return false
			}
			dq := pq.(*parser.Describe)
			ans, err := d.Describe(dq.Subject, dq.Where)
			if err != nil {
				return false
			}
			for _, a := range ans.Formulas {
				if err := checkAnswerSound(st, rules, dq.Subject, dq.Where, a); err != nil {
					t.Logf("seed %d query %s: %v", seed, q, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package governor provides per-query execution control for the
// evaluation engines: cooperative cancellation (context deadlines and
// Ctrl-C), resource limits (derived facts, fixpoint iterations, tabling
// and describe-search budgets), and panic containment.
//
// Production deductive-query systems treat termination control as a
// first-class concern: a runaway recursive query must not hold the
// knowledge base's locks forever or exhaust memory with derived facts.
// A Governor is created at each engine entry point and threaded through
// the hot loops, which call its cheap cooperative checks; a breach
// surfaces as a structured, errors.Is/As-able error rather than an
// abandoned goroutine or a crash.
package governor

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Limits are the per-query resource bounds. The zero value of every
// field means "unlimited"; a zero Limits governs nothing but still
// honors context cancellation.
type Limits struct {
	// MaxWall bounds the query's wall-clock time. It is applied as a
	// context deadline, so a breach surfaces as an error wrapping
	// context.DeadlineExceeded.
	MaxWall time.Duration
	// MaxFacts bounds the total number of facts a query may derive
	// (bottom-up: inserted tuples across all SCCs; top-down: table
	// answers; magic: facts of the rewritten program, magic seeds
	// included).
	MaxFacts int
	// MaxIterations bounds the fixpoint rounds of any single recursive
	// SCC (bottom-up engines) and the naive-iteration passes of the
	// top-down driver.
	MaxIterations int
	// MaxTableEntries bounds the number of distinct call-pattern tables
	// the top-down engine may allocate.
	MaxTableEntries int
	// MaxDescribeNodes bounds the search steps of one describe
	// evaluation. Unlike the describe engine's own MaxNodes option
	// (which truncates and returns partial answers), a governor breach
	// is an error.
	MaxDescribeNodes int
	// MaxProvenanceEntries bounds the number of derivation witnesses a
	// query may record when provenance recording is enabled. It governs
	// nothing when recording is off.
	MaxProvenanceEntries int
}

// Clamp merges a requested Limits against a ceiling: the result never
// exceeds any ceiling bound. For each field, a zero ceiling leaves the
// request as-is (that resource is uncapped); a nonzero ceiling replaces
// a zero (unlimited) or looser request with the ceiling itself. A
// multi-tenant server uses this to let clients tighten — but never
// loosen — the per-request quotas it enforces.
func Clamp(req, ceiling Limits) Limits {
	req.MaxWall = clampDur(req.MaxWall, ceiling.MaxWall)
	req.MaxFacts = clampInt(req.MaxFacts, ceiling.MaxFacts)
	req.MaxIterations = clampInt(req.MaxIterations, ceiling.MaxIterations)
	req.MaxTableEntries = clampInt(req.MaxTableEntries, ceiling.MaxTableEntries)
	req.MaxDescribeNodes = clampInt(req.MaxDescribeNodes, ceiling.MaxDescribeNodes)
	req.MaxProvenanceEntries = clampInt(req.MaxProvenanceEntries, ceiling.MaxProvenanceEntries)
	return req
}

func clampInt(req, ceiling int) int {
	if ceiling > 0 && (req <= 0 || req > ceiling) {
		return ceiling
	}
	return req
}

func clampDur(req, ceiling time.Duration) time.Duration {
	if ceiling > 0 && (req <= 0 || req > ceiling) {
		return ceiling
	}
	return req
}

// LimitKind identifies which limit a LimitError reports.
type LimitKind string

// Limit kinds, one per Limits field enforced by LimitError (MaxWall
// breaches surface as context.DeadlineExceeded instead).
const (
	LimitFacts         LimitKind = "facts"
	LimitIterations    LimitKind = "iterations"
	LimitTableEntries  LimitKind = "tables"
	LimitDescribeNodes LimitKind = "describe-nodes"
	LimitProvenance    LimitKind = "provenance"
)

// ErrCanceled matches (via errors.Is) every error the governor returns
// for a canceled or expired context. The concrete error also wraps the
// context's cause, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) work as expected.
var ErrCanceled = errors.New("governor: query canceled")

// canceledError wraps the context cause and additionally matches
// ErrCanceled.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "governor: query canceled: " + e.cause.Error() }
func (e *canceledError) Unwrap() error { return e.cause }
func (e *canceledError) Is(target error) bool {
	return target == ErrCanceled
}

// LimitError reports a breached resource limit.
type LimitError struct {
	// Kind names the breached limit.
	Kind LimitKind
	// Limit is the configured bound that was exceeded.
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("governor: %s limit exceeded (max %d)", e.Kind, e.Limit)
}

// PanicError is an internal panic converted to an error at an engine
// boundary, so a bug in rule evaluation (or a hostile input that trips
// one) surfaces to the caller instead of killing its goroutine — or,
// on a parallel scheduler worker, the whole process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("governor: internal panic: %v", e.Value)
}

// Recover converts a panic on the current goroutine into a *PanicError
// assigned to *errp. Use it as a deferred call at engine entry points
// and on scheduler worker goroutines:
//
//	defer governor.Recover(&err)
func Recover(errp *error) {
	if v := recover(); v != nil {
		*errp = &PanicError{Value: v, Stack: debug.Stack()}
	}
}

// tickInterval amortizes context checks: Tick consults the context once
// every tickInterval calls, so the hot loops pay one atomic increment
// per call.
const tickInterval = 64

// Governor enforces one query's limits. It is safe for concurrent use
// (the parallel scheduler shares it across SCC workers); every check is
// nil-safe, so an ungoverned evaluation may simply pass a nil Governor.
type Governor struct {
	ctx    context.Context
	limits Limits
	facts  atomic.Int64
	ticks  atomic.Uint64
}

// New builds a governor for one query. When limits.MaxWall is set the
// context is wrapped with a deadline; the returned cancel function must
// be called (defer it) to release the timer.
func New(ctx context.Context, limits Limits) (*Governor, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if limits.MaxWall > 0 {
		ctx, cancel = context.WithTimeout(ctx, limits.MaxWall)
	}
	return &Governor{ctx: ctx, limits: limits}, cancel
}

// Err reports cancellation: nil while the query may continue, a
// *canceledError (matching ErrCanceled and the context cause) once the
// context is done.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return &canceledError{cause: err}
	}
	return nil
}

// Tick is the amortized cooperative check for hot loops: it consults
// the context once every tickInterval calls.
func (g *Governor) Tick() error {
	if g == nil {
		return nil
	}
	if g.ticks.Add(1)%tickInterval != 0 {
		return nil
	}
	return g.Err()
}

// CountFacts adds n newly derived facts to the query-global tally and
// reports a LimitError once the tally exceeds MaxFacts.
func (g *Governor) CountFacts(n int) error {
	if g == nil {
		return nil
	}
	total := g.facts.Add(int64(n))
	if max := g.limits.MaxFacts; max > 0 && total > int64(max) {
		return &LimitError{Kind: LimitFacts, Limit: int64(max)}
	}
	return nil
}

// Facts returns the number of derived facts counted so far.
func (g *Governor) Facts() int64 {
	if g == nil {
		return 0
	}
	return g.facts.Load()
}

// CheckIterations guards a fixpoint round counter (per SCC, or the
// top-down engine's pass counter).
func (g *Governor) CheckIterations(n int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxIterations; max > 0 && n > max {
		return &LimitError{Kind: LimitIterations, Limit: int64(max)}
	}
	return nil
}

// CheckTableEntries guards the top-down engine's call-pattern table
// count.
func (g *Governor) CheckTableEntries(n int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxTableEntries; max > 0 && n > max {
		return &LimitError{Kind: LimitTableEntries, Limit: int64(max)}
	}
	return nil
}

// CheckProvenanceEntries guards the witness count of a provenance
// recorder.
func (g *Governor) CheckProvenanceEntries(n int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxProvenanceEntries; max > 0 && n > max {
		return &LimitError{Kind: LimitProvenance, Limit: int64(max)}
	}
	return nil
}

// CheckDescribeNodes guards the describe search's step counter.
func (g *Governor) CheckDescribeNodes(n int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxDescribeNodes; max > 0 && n > max {
		return &LimitError{Kind: LimitDescribeNodes, Limit: int64(max)}
	}
	return nil
}

// StopReason classifies a governed stop for observability records
// ("deadline", "canceled", "limit:<kind>", "panic") and returns "error"
// for any other failure. A nil error yields "".
func StopReason(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, context.Canceled) {
		return "canceled"
	}
	var le *LimitError
	if errors.As(err, &le) {
		return "limit:" + string(le.Kind)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	return "error"
}

package governor

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGovernorIsUnlimited(t *testing.T) {
	var g *Governor
	if err := g.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := g.Tick(); err != nil {
		t.Errorf("nil Tick = %v", err)
	}
	if err := g.CountFacts(1 << 30); err != nil {
		t.Errorf("nil CountFacts = %v", err)
	}
	if err := g.CheckIterations(1 << 30); err != nil {
		t.Errorf("nil CheckIterations = %v", err)
	}
	if err := g.CheckTableEntries(1 << 30); err != nil {
		t.Errorf("nil CheckTableEntries = %v", err)
	}
	if err := g.CheckDescribeNodes(1 << 30); err != nil {
		t.Errorf("nil CheckDescribeNodes = %v", err)
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	g, cancel := New(context.Background(), Limits{})
	defer cancel()
	if err := g.CountFacts(1 << 20); err != nil {
		t.Errorf("CountFacts with zero limit = %v", err)
	}
	if err := g.CheckIterations(1 << 20); err != nil {
		t.Errorf("CheckIterations with zero limit = %v", err)
	}
}

func TestFactLimit(t *testing.T) {
	g, cancel := New(context.Background(), Limits{MaxFacts: 10})
	defer cancel()
	if err := g.CountFacts(10); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	err := g.CountFacts(1)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("over the limit = %v, want *LimitError", err)
	}
	if le.Kind != LimitFacts || le.Limit != 10 {
		t.Errorf("LimitError = %+v", le)
	}
	if StopReason(err) != "limit:facts" {
		t.Errorf("StopReason = %q", StopReason(err))
	}
}

func TestIterationTableAndDescribeLimits(t *testing.T) {
	g, cancel := New(context.Background(), Limits{MaxIterations: 3, MaxTableEntries: 5, MaxDescribeNodes: 7})
	defer cancel()
	if err := g.CheckIterations(3); err != nil {
		t.Errorf("iterations at limit: %v", err)
	}
	if err := g.CheckIterations(4); err == nil || StopReason(err) != "limit:iterations" {
		t.Errorf("iterations over limit = %v", err)
	}
	if err := g.CheckTableEntries(6); err == nil || StopReason(err) != "limit:tables" {
		t.Errorf("tables over limit = %v", err)
	}
	if err := g.CheckDescribeNodes(8); err == nil || StopReason(err) != "limit:describe-nodes" {
		t.Errorf("describe nodes over limit = %v", err)
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, gcancel := New(ctx, Limits{})
	defer gcancel()
	err := g.Err()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Err must also unwrap to context.Canceled, got %v", err)
	}
	if StopReason(err) != "canceled" {
		t.Errorf("StopReason = %q", StopReason(err))
	}
}

func TestDeadline(t *testing.T) {
	g, cancel := New(context.Background(), Limits{MaxWall: time.Nanosecond})
	defer cancel()
	deadline := time.Now().Add(time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = g.Err(); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("deadline error must match ErrCanceled, got %v", err)
	}
	if StopReason(err) != "deadline" {
		t.Errorf("StopReason = %q", StopReason(err))
	}
}

func TestTickAmortization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, gcancel := New(ctx, Limits{})
	defer gcancel()
	cancel()
	// Tick consults the context only every tickInterval calls, so a
	// cancellation must surface within one interval.
	var err error
	for i := 0; i < tickInterval+1; i++ {
		if err = g.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation not observed within one tick interval: %v", err)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err)
		panic("boom")
	}
	err := f()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if StopReason(err) != "panic" {
		t.Errorf("StopReason = %q", StopReason(err))
	}
}

func TestRecoverLeavesRealErrors(t *testing.T) {
	want := errors.New("ordinary")
	f := func() (err error) {
		defer Recover(&err)
		return want
	}
	if err := f(); !errors.Is(err, want) {
		t.Errorf("Recover clobbered a normal error: %v", err)
	}
}

func TestStopReasonPlainError(t *testing.T) {
	if got := StopReason(errors.New("x")); got != "error" {
		t.Errorf("StopReason(plain) = %q", got)
	}
	if got := StopReason(nil); got != "" {
		t.Errorf("StopReason(nil) = %q", got)
	}
}

package kb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kdb/internal/eval"
	"kdb/internal/governor"
	"kdb/internal/term"
)

// cycleKB is an expensive finite program: the transitive closure of an
// n-node cycle (n² pairs, ~n fixpoint rounds).
func cycleKB(t testing.TB, n int) *KB {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, (i+1)%n)
	}
	sb.WriteString("reach(X, Y) :- edge(X, Y).\n")
	sb.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	return loadKB(t, sb.String())
}

func TestKBContextDeadline(t *testing.T) {
	for _, engine := range []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic} {
		engine := engine
		t.Run(string(engine), func(t *testing.T) {
			k := cycleKB(t, 500)
			if err := k.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := k.ExecStringContext(ctx, `retrieve reach(X, Y).`)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
				t.Errorf("took %v to observe the deadline", elapsed)
			}
			// The governed stop must be observable after the fact.
			if st := k.LastStats(); st == nil || st.StopReason != "deadline" {
				t.Errorf("LastStats = %+v, want StopReason deadline", st)
			}
		})
	}
}

func TestKBQueryLimitsOption(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, (i+1)%200)
	}
	sb.WriteString("reach(X, Y) :- edge(X, Y).\n")
	sb.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	k := New(WithQueryLimits(governor.Limits{MaxFacts: 100}))
	if err := k.LoadString(sb.String()); err != nil {
		t.Fatal(err)
	}
	_, err := k.ExecString(`retrieve reach(X, Y).`)
	var le *governor.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Kind != governor.LimitFacts {
		t.Errorf("kind = %q, want %q", le.Kind, governor.LimitFacts)
	}
	// Raising the limits at runtime lets the same query finish.
	k.SetQueryLimits(governor.Limits{})
	if _, err := k.ExecString(`retrieve reach(n0, Y).`); err != nil {
		t.Fatalf("after clearing limits: %v", err)
	}
}

func TestKBDescribeNodeLimit(t *testing.T) {
	k := loadKB(t, universityKB)
	k.SetQueryLimits(governor.Limits{MaxDescribeNodes: 1})
	_, err := k.ExecString(`describe can_ta(X, databases).`)
	var le *governor.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Kind != governor.LimitDescribeNodes {
		t.Errorf("kind = %q, want %q", le.Kind, governor.LimitDescribeNodes)
	}
	k.SetQueryLimits(governor.Limits{})
	if _, err := k.ExecString(`describe can_ta(X, databases).`); err != nil {
		t.Fatalf("after clearing limits: %v", err)
	}
}

func TestKBDescribeContextCancel(t *testing.T) {
	k := loadKB(t, universityKB)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := k.ExecStringContext(ctx, `describe can_ta(X, databases).`)
	if !errors.Is(err, governor.ErrCanceled) {
		t.Errorf("err = %v, want governor.ErrCanceled", err)
	}
}

func TestKBPanicSurfacesAsError(t *testing.T) {
	k := cycleKB(t, 5)
	eval.DeriveHook = func(term.Atom) { panic("injected kb panic") }
	defer func() { eval.DeriveHook = nil }()
	_, err := k.ExecString(`retrieve reach(X, Y).`)
	var pe *governor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

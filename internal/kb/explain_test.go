package kb

import (
	"errors"
	"strings"
	"testing"

	"kdb/internal/governor"
	"kdb/internal/parser"
	"kdb/internal/prov"
	"kdb/internal/term"
)

const universityProgram = `
student(ann, math, 3.9).
student(bob, cs, 3.5).
student(cora, math, 3.8).
student(dan, cs, 4).

enroll(ann, databases).
enroll(bob, databases).

teach(susan, databases).
taught(susan, databases, f89, 3.5).

complete(ann, databases, f89, 3.6).
complete(cora, databases, f88, 4).

prereq(databases, datastructures).
prereq(datastructures, programming).
prereq(ai, datastructures).

honor(X) :- student(X, Y, Z), Z > 3.7.

prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).

can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`

const routesProgram = `
flight(la, sf). flight(sf, sea). flight(sea, chi). flight(chi, ny).
flight(ny, la). flight(dal, chi). flight(la, dal).
reachable(X, Y) :- flight(X, Y).
reachable(X, Y) :- flight(X, Z), reachable(Z, Y).
`

var allEngines = []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic}

func loadEngineKB(t *testing.T, src string, engine EngineKind, parallel int) *KB {
	t.Helper()
	k := New(WithParallelism(parallel))
	if err := k.LoadString(src); err != nil {
		t.Fatal(err)
	}
	if err := k.SetEngine(engine); err != nil {
		t.Fatal(err)
	}
	return k
}

// TestExplainParityAcrossEngines pins the exact rendered derivation
// trees of facts with a unique derivation — including the recursive
// prior — and requires every engine (and the parallel bottom-up
// variants) to produce the identical explanation.
func TestExplainParityAcrossEngines(t *testing.T) {
	cases := []struct {
		stmt string
		want string
	}{
		{
			stmt: "explain honor(ann).",
			want: `honor(ann)  [r1]
  student(ann, math, 3.9)  [edb]
  3.9 > 3.7  [builtin]

rules:
  r1: honor(X) :- student(X, Y, Z), Z > 3.7.
`,
		},
		{
			stmt: "explain can_ta(ann, databases).",
			want: `can_ta(ann, databases)  [r1]
  honor(ann)  [r2]
    student(ann, math, 3.9)  [edb]
    3.9 > 3.7  [builtin]
  complete(ann, databases, f89, 3.6)  [edb]
  3.6 > 3.3  [builtin]
  taught(susan, databases, f89, 3.5)  [edb]
  teach(susan, databases)  [edb]

rules:
  r1: can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
  r2: honor(X) :- student(X, Y, Z), Z > 3.7.
`,
		},
		{
			stmt: "explain prior(databases, programming).",
			want: `prior(databases, programming)  [r1]
  prereq(databases, datastructures)  [edb]
  prior(datastructures, programming)  [r2]
    prereq(datastructures, programming)  [edb]

rules:
  r1: prior(X, Y) :- prereq(X, Z), prior(Z, Y).
  r2: prior(X, Y) :- prereq(X, Y).
`,
		},
	}
	for _, engine := range allEngines {
		for _, parallel := range []int{1, 4} {
			for _, tc := range cases {
				k := loadEngineKB(t, universityProgram, engine, parallel)
				res, err := k.ExecString(tc.stmt)
				if err != nil {
					t.Fatalf("%s/p%d %s: %v", engine, parallel, tc.stmt, err)
				}
				got := res.Explanation.String()
				if got != tc.want {
					t.Errorf("%s/p%d %s:\n got:\n%s\nwant:\n%s",
						engine, parallel, tc.stmt, got, tc.want)
				}
			}
		}
	}
}

// TestExplainRecursiveSound verifies structural soundness on a program
// where the first witness is engine-dependent (multiple routes between
// the same airports): every engine must still justify every answer with
// a well-formed tree — derived nodes carry a rule and children, leaves
// are stored facts or comparisons, and nothing is unknown or truncated.
// With -race and parallel workers this doubles as the recorder's
// concurrency test.
func TestExplainRecursiveSound(t *testing.T) {
	for _, engine := range allEngines {
		for _, parallel := range []int{1, 4} {
			k := loadEngineKB(t, routesProgram, engine, parallel)
			exp, err := k.Explain(term.NewAtom("reachable", term.Sym("la"), term.Var("Y")), nil)
			if err != nil {
				t.Fatalf("%s/p%d: %v", engine, parallel, err)
			}
			// Every airport is reachable from la (the graph is one cycle
			// plus the dal chord).
			if len(exp.Trees) != 6 {
				t.Fatalf("%s/p%d: %d answers, want 6", engine, parallel, len(exp.Trees))
			}
			for _, tree := range exp.Trees {
				checkSound(t, k, tree, string(engine))
			}
		}
	}
}

func checkSound(t *testing.T, k *KB, n *prov.Node, engine string) {
	t.Helper()
	switch n.Kind {
	case prov.NodeDerived:
		if n.Rule < 1 {
			t.Errorf("%s: derived node %v without a rule id", engine, n.Fact)
		}
		if len(n.Children) == 0 {
			t.Errorf("%s: derived node %v has no children", engine, n.Fact)
		}
		for _, c := range n.Children {
			checkSound(t, k, c, engine)
		}
	case prov.NodeEDB:
		if !k.Store().Contains(n.Fact) {
			t.Errorf("%s: edb leaf %v is not stored", engine, n.Fact)
		}
	case prov.NodeBuiltin, prov.NodeCycle:
		// Comparisons hold by construction; cycles are legal cuts.
	default:
		t.Errorf("%s: node %v has kind %v", engine, n.Fact, n.Kind)
	}
}

// TestExplainProvenanceLimit exercises the governor's
// MaxProvenanceEntries bound: a recursive explain over the routes
// program records more witnesses than the limit allows and must stop
// with a structured LimitError.
func TestExplainProvenanceLimit(t *testing.T) {
	for _, engine := range allEngines {
		k := loadEngineKB(t, routesProgram, engine, 1)
		k.SetQueryLimits(governor.Limits{MaxProvenanceEntries: 3})
		_, err := k.ExecString("explain reachable(la, ny).")
		if err == nil {
			t.Fatalf("%s: no error with MaxProvenanceEntries=3", engine)
		}
		var le *governor.LimitError
		if !errors.As(err, &le) {
			t.Fatalf("%s: error %v is not a LimitError", engine, err)
		}
		if le.Kind != governor.LimitProvenance || le.Limit != 3 {
			t.Errorf("%s: LimitError = %+v, want kind=provenance limit=3", engine, le)
		}
	}
}

// TestExplainStatement checks the parser surface: rendering, the where
// qualifier, and rejection of forms explain does not support.
func TestExplainStatement(t *testing.T) {
	q, err := parser.ParseQuery("explain reachable(la, X) where flight(X, ny).")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := q.(*parser.Explain)
	if !ok {
		t.Fatalf("parsed %T, want *parser.Explain", q)
	}
	if got := e.String(); got != "explain reachable(la, X) where flight(X, ny)." {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{
		"explain reachable(la, X) where not flight(X, ny).",
		"explain reachable(la, X) where flight(X, ny) or flight(ny, X).",
		"explain X > 3.",
	} {
		if _, err := parser.ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", bad)
		}
	}
	// The where qualifier restricts which answers get explained.
	k := loadEngineKB(t, routesProgram, EngineSemiNaive, 1)
	res, err := k.ExecString("explain reachable(la, X) where flight(X, la).")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanation.Trees) != 1 || res.Explanation.Trees[0].Fact.String() != "reachable(la, ny)" {
		t.Errorf("qualified explain trees: %v", res.Explanation.Trees)
	}
}

// TestExplainEmptyAnswer pins the no-derivation rendering.
func TestExplainEmptyAnswer(t *testing.T) {
	k := loadEngineKB(t, routesProgram, EngineSemiNaive, 1)
	res, err := k.ExecString("explain reachable(la, mars).")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); !strings.Contains(got, "no derivation") {
		t.Errorf("empty explain rendering = %q", got)
	}
}

// TestExplainStoredPromotedFact: a predicate with both stored facts and
// rules (an EDB predicate promoted by a later rule) must show its stored
// tuples as edb leaves, not derived or unknown.
func TestExplainStoredPromotedFact(t *testing.T) {
	k := loadEngineKB(t, `vip(ann).`, EngineSemiNaive, 1)
	if err := k.LoadString(`
vip(X) :- sponsor(X, Y), vip(Y).
sponsor(bob, ann).
`); err != nil {
		t.Fatal(err)
	}
	res, err := k.ExecString("explain vip(bob).")
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Explanation.Trees[0]
	if len(tree.Children) != 2 {
		t.Fatalf("tree: %s", res.Explanation)
	}
	leaf := tree.Children[1]
	if leaf.Fact.String() != "vip(ann)" || leaf.Kind != prov.NodeEDB {
		t.Errorf("promoted fact leaf = %v [%v], want vip(ann) [edb]", leaf.Fact, leaf.Kind)
	}
}

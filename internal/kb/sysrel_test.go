package kb

import (
	"strings"
	"testing"
	"time"

	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/obs/sysrel"
	"kdb/internal/term"
)

// TestSysRetrieveAllEngines: the catalog-shaped virtual relations
// answer identically on every engine.
func TestSysRetrieveAllEngines(t *testing.T) {
	k := loadKB(t, universityKB)
	queries := []string{
		"retrieve sys_relation(N, A, F).",
		"retrieve sys_relation(N, A, F) where A > 3.",
		"retrieve sys_rule(I, H, B, S).",
		"retrieve sys_rule(I, can_ta, B, S).",
	}
	for _, q := range queries {
		want := ""
		for _, e := range []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic} {
			if err := k.SetEngine(e); err != nil {
				t.Fatal(err)
			}
			got := execStr(t, k, q)
			if got == "" {
				t.Errorf("%s: %s returned nothing", e, q)
			}
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("%s: %s = %q, want %q (naive)", e, q, got, want)
			}
		}
	}
	if err := k.SetEngine(EngineSemiNaive); err != nil {
		t.Fatal(err)
	}
	// Spot-check content: student/3 holds 4 facts.
	out := execStr(t, k, "retrieve sys_relation(student, A, F).")
	if out != "sys_relation(student, 3, 4)" {
		t.Errorf("sys_relation(student, ...) = %q", out)
	}
}

// TestSysJoinsWithUserData: virtual and stored relations join in one
// query body.
func TestSysJoinsWithUserData(t *testing.T) {
	k := loadKB(t, universityKB+`
crowded(N) :- sys_relation(N, A, F), F > 2.
`)
	out := execStr(t, k, "retrieve crowded(N).")
	for _, want := range []string{"course", "enroll", "student"} {
		if !strings.Contains(out, want) {
			t.Errorf("crowded = %q, missing %s", out, want)
		}
	}
}

func TestSysMetricRetrieve(t *testing.T) {
	reg := obs.NewRegistry()
	k := New(WithMetrics(reg))
	defer k.Close()
	if err := k.LoadString("edge(a, b)."); err != nil {
		t.Fatal(err)
	}
	// Warm the query metrics with one ordinary query.
	execStr(t, k, "retrieve edge(X, Y).")
	out := execStr(t, k, `retrieve sys_metric(N, counter, V) where V > 0.`)
	if out == "" {
		t.Fatal("sys_metric returned no counter rows after a query")
	}
}

func TestSysMetricHistoryRetrieve(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("ticks_total", "Ticks.")
	reg.Counter("ticks_total").Add(5)
	buf := history.New(reg, time.Second, time.Minute)
	buf.Sample()
	k := New(WithMetrics(reg), WithMetricsHistory(buf))
	defer k.Close()
	if err := k.LoadString("edge(a, b)."); err != nil {
		t.Fatal(err)
	}
	out := execStr(t, k, "retrieve sys_metric_history(ticks_total, Age, V).")
	if !strings.Contains(out, "sys_metric_history(ticks_total, 0, 5)") {
		t.Errorf("sys_metric_history = %q", out)
	}
}

func TestSysQueryStats(t *testing.T) {
	k := New(WithQueryStats())
	defer k.Close()
	if err := k.LoadString("edge(a, b). edge(b, c)."); err != nil {
		t.Fatal(err)
	}
	execStr(t, k, "retrieve edge(X, Y).")
	execStr(t, k, "retrieve edge(X, Y).")
	out := execStr(t, k, `retrieve sys_query_stats(S, C, T, M) where C > 1.`)
	if !strings.Contains(out, `"retrieve edge(X, Y)."`) {
		t.Errorf("sys_query_stats = %q, want the repeated statement", out)
	}

	// Without the option the relation is simply empty.
	k2 := loadKB(t, "edge(a, b).")
	defer k2.Close()
	execStr(t, k2, "retrieve edge(X, Y).")
	if out := execStr(t, k2, "retrieve sys_query_stats(S, C, T, M)."); out != "no answers" {
		t.Errorf("sys_query_stats without WithQueryStats = %q, want empty", out)
	}
}

func TestDescribeSysRelation(t *testing.T) {
	k := loadKB(t, universityKB)
	res, err := k.ExecString("describe sys_metric.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.System, "sys_metric(Name, Kind, Value)") ||
		!strings.Contains(res.System, "virtual relation") {
		t.Errorf("describe sys_metric = %q", res.System)
	}
	if res.String() != res.System {
		t.Errorf("String() = %q, want the system text", res.String())
	}
	if _, err := k.ExecString("describe sys_bogus."); err == nil {
		t.Error("describe of an unknown system relation succeeded")
	}
}

func TestSysNamespaceRejections(t *testing.T) {
	k := loadKB(t, universityKB)

	if err := k.Assert(term.NewAtom("sys_metric", term.Sym("a"), term.Sym("b"), term.Num(1))); err == nil {
		t.Error("asserting into a virtual relation succeeded")
	}
	if _, err := k.Retract(term.NewAtom("sys_metric", term.Sym("a"), term.Sym("b"), term.Num(1))); err == nil {
		t.Error("retracting from a virtual relation succeeded")
	}

	for _, src := range []string{
		"sys_thing(a).",
		"sys_mine(X) :- student(X, D, G).",
	} {
		err := k.LoadString(src)
		if err == nil {
			t.Errorf("loading %q succeeded", src)
			continue
		}
		if !strings.Contains(err.Error(), "reserved") {
			t.Errorf("loading %q: error %v does not mention the reserved namespace", src, err)
		}
	}

	// A rule using a sys_ relation with the wrong arity is rejected with
	// the schema in the message.
	err := k.LoadString("busy(K) :- sys_activity(K).")
	if err == nil || !strings.Contains(err.Error(), "sys_activity(Id, Kind, Tenant, ElapsedUs)") {
		t.Errorf("wrong-arity load error = %v", err)
	}

	if _, err := k.ExecString("retrieve sys_bogus(X)."); err == nil {
		t.Error("retrieving an unknown system relation succeeded")
	}
	if _, err := k.ExecString("retrieve sys_metric(X)."); err == nil {
		t.Error("retrieving sys_metric at the wrong arity succeeded")
	}
}

func TestWithoutSystemRelations(t *testing.T) {
	k := New(WithoutSystemRelations())
	defer k.Close()
	if k.SystemRelations() != nil {
		t.Fatal("provider survived WithoutSystemRelations")
	}
	// The nil-safe setters keep embedder code unconditional.
	k.SystemRelations().SetTenants(func() []sysrel.TenantInfo { return nil })
	if err := k.LoadString("edge(a, b)."); err != nil {
		t.Fatal(err)
	}
	if out := execStr(t, k, "retrieve edge(X, Y)."); out != "edge(a, b)" {
		t.Errorf("plain retrieve = %q", out)
	}
	if _, err := k.ExecString("retrieve sys_relation(N, A, F)."); err == nil {
		t.Error("sys_relation answered on a KB without system relations")
	}
	// The namespace stays reserved even with the provider off.
	if err := k.LoadString("sys_thing(a)."); err == nil {
		t.Error("sys_ definition accepted without system relations")
	}
}

// TestSysTenantStandaloneEmpty: without a server-installed source the
// relation exists but is empty.
func TestSysTenantStandaloneEmpty(t *testing.T) {
	k := loadKB(t, "edge(a, b).")
	defer k.Close()
	if out := execStr(t, k, "retrieve sys_tenant(N, O, D, P)."); out != "no answers" {
		t.Errorf("sys_tenant = %q, want empty", out)
	}
	k.SystemRelations().SetTenants(func() []sysrel.TenantInfo {
		return []sysrel.TenantInfo{{Name: "acme", Open: true}}
	})
	if out := execStr(t, k, "retrieve sys_tenant(N, 1, D, P)."); out != "sys_tenant(acme, 1, 0, 0)" {
		t.Errorf("sys_tenant after source = %q", out)
	}
}

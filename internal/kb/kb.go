// Package kb assembles a complete knowledge-rich database in the sense of
// Section 2 of the paper: an extensional database of stored facts (with
// optional durability), an intensional database of rules, the built-in
// comparison predicates, a catalog of schema annotations, and the query
// machinery — retrieve engines (§3.1) and the describe engine with its §6
// extensions.
package kb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"kdb/internal/analysis"
	"kdb/internal/catalog"
	"kdb/internal/core"
	"kdb/internal/depgraph"
	"kdb/internal/eval"
	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/obs/profile"
	"kdb/internal/obs/sysrel"
	"kdb/internal/parser"
	"kdb/internal/prov"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// EngineKind selects the retrieve evaluation strategy.
type EngineKind string

// Retrieve engines.
const (
	EngineNaive     EngineKind = "naive"
	EngineSemiNaive EngineKind = "seminaive"
	EngineTopDown   EngineKind = "topdown"
	EngineMagic     EngineKind = "magic"
)

// ErrClosed is returned (via errors.Is) by every query and mutation
// entry point after Close: callers holding a stale handle get a
// structured, recognizable error instead of a raw I/O failure from the
// closed store underneath.
var ErrClosed = errors.New("kb: knowledge base is closed")

// KB is one knowledge-rich database. All methods are safe for concurrent
// use; loads are serialized.
type KB struct {
	mu sync.RWMutex

	// cat and store are set at construction and the pointers never
	// change; the structures themselves do their own locking.
	cat   *catalog.Catalog
	store *storage.Store
	//kdb:guarded-by mu
	rules []term.Rule
	//kdb:guarded-by mu
	constraints []term.Formula
	//kdb:guarded-by mu
	engine EngineKind
	//kdb:guarded-by mu
	parallelism int
	//kdb:guarded-by mu
	limits governor.Limits
	//kdb:guarded-by mu
	opts core.Options
	//kdb:guarded-by mu
	intensional bool
	//kdb:guarded-by mu
	provenance bool
	// profiling makes every retrieve-style evaluation record per-rule
	// cost rows (the .profile REPL toggle / -profile flag).
	//kdb:guarded-by mu
	profiling bool
	// closed is set by Close; every entry point checks it first.
	//kdb:guarded-by mu
	closed bool

	// gen counts schema mutations (program loads; asserts that declare a
	// new predicate). Prepared-statement caches compare it to detect
	// staleness; fact-only mutations do not invalidate a prepared
	// program's analysis and leave it unchanged.
	gen atomic.Uint64

	// lastStats holds the evaluation statistics of the most recent
	// retrieve (or constraint check), for observability.
	lastStats atomic.Pointer[eval.EvalStats]

	// tracer and qmetrics are the optional observability hooks
	// (WithTracer, WithMetrics). Both are nil-safe throughout: when
	// unset, the query path does no observability work and no
	// allocation.
	tracer   atomic.Pointer[obs.Tracer]
	qmetrics atomic.Pointer[obs.QueryMetrics]

	// qlog is the optional structured query log (WithQueryLog); nil-safe
	// like the other hooks.
	qlog atomic.Pointer[obs.QueryLog]

	// activity is the optional in-flight query registry (WithActivity);
	// nil-safe like the other hooks.
	activity atomic.Pointer[obs.ActivityRegistry]

	// sys serves the sys_* virtual relations. It is created at
	// construction (nil after WithoutSystemRelations) and the pointer
	// never changes afterwards; the provider's sources are attached by
	// the observability options and are internally synchronized.
	sys *sysrel.Provider

	// qstats is the optional per-statement aggregate (WithQueryStats)
	// behind sys_query_stats; nil-safe like the other hooks.
	qstats atomic.Pointer[sysrel.QueryStats]

	// describer is rebuilt lazily after each load.
	//kdb:guarded-by mu
	describer *core.Describer

	// report is the static-analysis report of the most recent successful
	// load, covering the whole accumulated program.
	//kdb:guarded-by mu
	report *analysis.Report
}

// Option configures a KB at construction time.
type Option func(*KB)

// WithParallelism sets the worker count for bottom-up evaluation: how
// many independent strata (SCCs of the rule dependency graph) may be
// evaluated concurrently. n <= 0 selects GOMAXPROCS. The default is 1
// (sequential evaluation).
func WithParallelism(n int) Option {
	return func(k *KB) { k.setParallelism(n) }
}

// WithQueryLimits sets the per-query resource limits the query governor
// enforces on every retrieve and describe evaluation: maximum wall time,
// derived facts, fixpoint iterations per stratum, top-down table
// entries, and describe search steps. The zero value of each field
// means unlimited. Context cancellation is honored regardless.
func WithQueryLimits(l governor.Limits) Option {
	// Construction-time: the KB is not yet published to any other
	// goroutine when options run.
	return func(k *KB) { k.limits = l } //kdb:nolint lockcheck
}

// New returns an empty in-memory knowledge base.
func New(opts ...Option) *KB {
	k := &KB{cat: catalog.New(), store: storage.NewMemory(), engine: EngineSemiNaive, parallelism: 1,
		sys: sysrel.NewProvider()}
	for _, o := range opts {
		o(k)
	}
	return k
}

// Open returns a knowledge base whose facts persist under dir (snapshot +
// write-ahead log). Rules are not persisted by the store; reload them
// from source (or use LoadFile) after opening.
func Open(dir string, opts ...Option) (*KB, error) {
	st, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	k := &KB{cat: catalog.New(), store: st, engine: EngineSemiNaive, parallelism: 1,
		sys: sysrel.NewProvider()}
	for _, o := range opts {
		o(k)
	}
	// Register recovered predicates in the catalog.
	for _, pred := range st.Preds() {
		if _, err := k.cat.Declare(pred, st.Relation(pred).Arity(), catalog.ClassEDB); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// Close flushes durable state and marks the knowledge base closed:
// every later query or mutation returns ErrClosed. Taking the write
// lock makes Close wait for in-flight queries (which hold the read
// lock) to drain, so the store is never closed under a running
// evaluation. A second Close is a no-op.
func (k *KB) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil
	}
	k.closed = true
	return k.store.Close()
}

// Checkpoint folds the write-ahead log into a snapshot (durable KBs).
//
//kdb:entrypoint
func (k *KB) Checkpoint() error {
	return k.CheckpointContext(context.Background())
}

// CheckpointContext folds the write-ahead log into a snapshot (durable
// KBs), honoring cancellation up to the point of no return: once the
// snapshot write begins the operation runs to completion, since an
// abandoned half-checkpoint is exactly the crash window the storage
// layer exists to survive. It holds the write lock: a checkpoint racing
// concurrent asserts could otherwise truncate a WAL record whose fact
// had not reached the snapshot, silently losing a durable write.
func (k *KB) CheckpointContext(ctx context.Context) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return k.store.Checkpoint()
}

// DurabilityErr returns the sticky error poisoning the store's
// write-ahead log, or nil while it is healthy (always nil for
// in-memory KBs). A poisoned log rejects every durable write until a
// successful Checkpoint resets it; health probes surface it per
// tenant.
func (k *KB) DurabilityErr() error {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.store.DurabilityErr()
}

// Generation returns a counter that increases on every schema mutation
// (LoadProgram; an Assert that declares a new predicate). Prepared
// statements validated at generation g remain valid while Generation
// reports g.
func (k *KB) Generation() uint64 { return k.gen.Load() }

// SetEngine selects the retrieve engine (default: semi-naive).
func (k *KB) SetEngine(e EngineKind) error {
	switch e {
	case EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic:
		k.mu.Lock()
		k.engine = e
		k.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("kb: unknown engine %q", e)
	}
}

// SetParallelism sets the bottom-up worker count (see WithParallelism);
// n <= 0 selects GOMAXPROCS.
func (k *KB) SetParallelism(n int) {
	k.mu.Lock()
	k.setParallelism(n)
	k.mu.Unlock()
}

// setParallelism is called with k.mu held (SetParallelism) or at
// construction time, before the KB is published.
//
//kdb:locked mu
func (k *KB) setParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	k.parallelism = n
}

// Parallelism returns the configured bottom-up worker count.
func (k *KB) Parallelism() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.parallelism
}

// SetQueryLimits replaces the per-query resource limits (see
// WithQueryLimits); it takes effect on the next query.
func (k *KB) SetQueryLimits(l governor.Limits) {
	k.mu.Lock()
	k.limits = l
	k.mu.Unlock()
}

// QueryLimits returns the configured per-query resource limits.
func (k *KB) QueryLimits() governor.Limits {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.limits
}

// limitsKey carries per-request limits in a context.
type limitsKey struct{}

// ContextWithLimits attaches per-request query limits to the context.
// They govern every evaluation under that context, clamped against the
// KB's configured limits (governor.Clamp): a request may tighten but
// never loosen the KB-level ceiling. The kdb server uses this to apply
// per-tenant quotas to individual requests.
func ContextWithLimits(ctx context.Context, l governor.Limits) context.Context {
	return context.WithValue(ctx, limitsKey{}, l)
}

// LimitsFromContext returns the limits attached by ContextWithLimits.
func LimitsFromContext(ctx context.Context) (governor.Limits, bool) {
	l, ok := ctx.Value(limitsKey{}).(governor.Limits)
	return l, ok
}

// effectiveLimitsLocked resolves the limits governing one query:
// context-carried per-request limits clamped by the configured limits.
// Callers hold k.mu in either mode.
//
//kdb:rlocked mu
func (k *KB) effectiveLimitsLocked(ctx context.Context) governor.Limits {
	if req, ok := LimitsFromContext(ctx); ok {
		return governor.Clamp(req, k.limits)
	}
	return k.limits
}

func (k *KB) effectiveLimits(ctx context.Context) governor.Limits {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.effectiveLimitsLocked(ctx)
}

// LastStats returns the evaluation statistics of the most recent
// retrieve or constraint check, or nil if none has run yet. The pointer
// changes on every evaluation, so callers can detect fresh stats by
// comparing pointers.
func (k *KB) LastStats() *eval.EvalStats {
	return k.lastStats.Load()
}

// recordStats captures the engine's statistics after an evaluation.
func (k *KB) recordStats(e eval.Engine) {
	if sr, ok := e.(eval.StatsReporter); ok {
		if st := sr.LastStats(); st != nil {
			k.lastStats.Store(st)
		}
	}
}

// SetDescribeOptions tunes the describe engine (takes effect on the next
// describe).
func (k *KB) SetDescribeOptions(opts core.Options) {
	k.mu.Lock()
	k.opts = opts
	k.describer = nil
	k.mu.Unlock()
}

// LoadFile loads a .kdb program file. Clause positions (and hence
// diagnostics) carry the file path.
func (k *KB) LoadFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kb: %w", err)
	}
	prog, err := parser.ParseProgramFile(path, string(src))
	if err != nil {
		return err
	}
	return k.LoadProgram(prog)
}

// LoadString parses and loads a program: facts into the store, rules into
// the IDB, declarations into the catalog. A predicate that heads any
// proper rule (with a body or with variables) is intensional; ground
// bodiless clauses for it are kept as bodiless IDB rules (§2.1 permits
// rules with zero subgoals).
func (k *KB) LoadString(src string) error {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	return k.LoadProgram(prog)
}

// LoadProgram loads an already-parsed program. The static-analysis suite
// runs over the combined program (existing knowledge plus the new
// clauses) before any state changes: error-severity diagnostics reject
// the load, leaving the knowledge base untouched; warnings and infos are
// retained and queryable via Diagnostics.
func (k *KB) LoadProgram(prog *parser.Program) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return ErrClosed
	}

	rep := analysis.Run(k.analysisProgramLocked(prog))
	if rep.HasErrors() {
		return &analysis.Error{Diags: rep.Errors()}
	}

	// Classify head predicates: any non-fact clause makes the predicate
	// intensional. Include predicates that are already intensional.
	intensional := make(map[string]bool)
	for _, r := range k.rules {
		intensional[r.Head.Pred] = true
	}
	for _, c := range prog.Clauses {
		if !c.IsFact() {
			intensional[c.Head.Pred] = true
		}
	}

	// Validate arities and classes against the catalog.
	for _, c := range prog.Clauses {
		class := catalog.ClassEDB
		if intensional[c.Head.Pred] {
			class = catalog.ClassIDB
		}
		if term.IsComparisonPred(c.Head.Pred) {
			return fmt.Errorf("kb: %v: a comparison cannot be defined", c.Head)
		}
		if err := k.checkAtomArity(c.Head, class); err != nil {
			return err
		}
		for _, a := range c.Body {
			if err := k.checkAtomArity(a, catalog.ClassEDB); err != nil {
				return err
			}
		}
	}

	// A stored predicate gaining rules is promoted; its stored facts are
	// re-read as bodiless rules.
	for pred := range intensional {
		if p := k.cat.Lookup(pred); p != nil && p.Class == catalog.ClassEDB {
			if err := k.cat.Promote(pred); err != nil {
				return err
			}
			for _, f := range k.store.Facts(pred) {
				k.rules = append(k.rules, term.Rule{Head: f})
			}
			// Facts stay in the store as well; the engines read both.
		}
	}

	for _, d := range prog.Declarations {
		switch d.Kind {
		case parser.DeclKey:
			if err := k.cat.AddKey(d.Pred, d.Arity, d.Columns); err != nil {
				return err
			}
		case parser.DeclName:
			k.cat.SetDisplay(d.Pred, d.Name)
		}
	}

	for _, c := range prog.Clauses {
		if c.IsFact() && !intensional[c.Head.Pred] {
			if _, err := k.store.InsertAtom(c.Head); err != nil {
				return err
			}
		} else {
			k.rules = append(k.rules, c)
		}
	}
	for _, ic := range prog.Constraints {
		for _, a := range ic {
			if err := k.checkAtomArity(a, catalog.ClassEDB); err != nil {
				return err
			}
		}
		k.constraints = append(k.constraints, ic)
	}
	k.describer = nil // rebuild lazily
	k.report = rep
	k.gen.Add(1)
	return nil
}

// analysisProgramLocked assembles the analysis view of the knowledge
// base as it would look after loading prog: the accumulated rules and
// constraints plus the new clauses, and the EDB schema restricted to
// predicates that actually hold facts or carry a @key declaration (the
// catalog also auto-declares body predicates on first use; counting
// those as defined would blind the undefined-predicate analyzer).
//
//kdb:rlocked mu
func (k *KB) analysisProgramLocked(prog *parser.Program) *analysis.Program {
	intensional := make(map[string]bool)
	for _, r := range k.rules {
		intensional[r.Head.Pred] = true
	}
	for _, c := range prog.Clauses {
		if !c.IsFact() {
			intensional[c.Head.Pred] = true
		}
	}
	ap := &analysis.Program{EDB: make(map[string]int)}
	ap.Rules = append(ap.Rules, k.rules...)
	ap.Constraints = append(ap.Constraints, k.constraints...)
	ap.ConstraintPos = make([]term.Pos, len(k.constraints))
	for _, p := range k.cat.Preds(catalog.ClassEDB) {
		if intensional[p.Name] {
			continue
		}
		if k.store.Count(p.Name) > 0 || len(p.Keys) > 0 {
			ap.EDB[p.Name] = p.Arity
		}
	}
	for _, c := range prog.Clauses {
		if c.IsFact() && !intensional[c.Head.Pred] {
			if _, ok := ap.EDB[c.Head.Pred]; !ok {
				ap.EDB[c.Head.Pred] = c.Head.Arity()
			}
			ap.Facts = append(ap.Facts, c)
		} else {
			ap.Rules = append(ap.Rules, c)
		}
	}
	for _, d := range prog.Declarations {
		if d.Kind == parser.DeclKey && !intensional[d.Pred] {
			if _, ok := ap.EDB[d.Pred]; !ok {
				ap.EDB[d.Pred] = d.Arity
			}
		}
	}
	for i, ic := range prog.Constraints {
		ap.Constraints = append(ap.Constraints, ic)
		var pos term.Pos
		if i < len(prog.ConstraintPos) {
			pos = prog.ConstraintPos[i]
		}
		ap.ConstraintPos = append(ap.ConstraintPos, pos)
	}
	return ap
}

// Diagnostics returns the static-analysis report of the most recent
// successful load (covering the whole accumulated program), or nil if
// nothing has been loaded. The report is shared; callers must not
// mutate it.
func (k *KB) Diagnostics() *analysis.Report {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.report
}

func (k *KB) checkAtomArity(a term.Atom, class catalog.Class) error {
	if term.IsComparisonPred(a.Pred) {
		if len(a.Args) != 2 {
			return fmt.Errorf("kb: comparison %v must be binary", a)
		}
		return nil
	}
	// The sys_ namespace is reserved: virtual relations validate against
	// their fixed schema and never enter the catalog (the reserved
	// analyzer already rejects definitions, so only body uses get here).
	if sysrel.IsName(a.Pred) {
		d := sysrel.Lookup(a.Pred)
		if d == nil {
			return fmt.Errorf("kb: unknown system relation %s (the sys_ namespace is reserved)", a.Pred)
		}
		if len(a.Args) != d.Arity {
			return fmt.Errorf("kb: %s used with arity %d but the system relation is %s", a.Pred, len(a.Args), d.Signature())
		}
		return nil
	}
	if p := k.cat.Lookup(a.Pred); p != nil {
		if p.Arity != len(a.Args) {
			return fmt.Errorf("kb: %s used with arity %d but known with arity %d", a.Pred, len(a.Args), p.Arity)
		}
		if class == catalog.ClassIDB && p.Class == catalog.ClassEDB {
			return nil // promotion handled by the caller
		}
		return nil
	}
	_, err := k.cat.Declare(a.Pred, len(a.Args), class)
	return err
}

// Assert inserts one ground fact (EDB predicates only).
func (k *KB) Assert(a term.Atom) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return ErrClosed
	}
	if sysrel.IsName(a.Pred) {
		return fmt.Errorf("kb: %s is a virtual system relation; it cannot be asserted", a.Pred)
	}
	if k.cat.IsIDB(a.Pred) {
		return fmt.Errorf("kb: %s is intensional; assert rules by loading a program", a.Pred)
	}
	declares := k.cat.Lookup(a.Pred) == nil
	if err := k.checkAtomArity(a, catalog.ClassEDB); err != nil {
		return err
	}
	if _, err := k.store.InsertAtom(a); err != nil {
		return err
	}
	if declares {
		k.gen.Add(1)
	}
	return nil
}

// Retract removes one ground fact (EDB predicates only), reporting
// whether it was present. On a durable KB the deletion is WAL-logged,
// so it survives a crash before the next checkpoint.
func (k *KB) Retract(a term.Atom) (bool, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return false, ErrClosed
	}
	if sysrel.IsName(a.Pred) {
		return false, fmt.Errorf("kb: %s is a virtual system relation; it cannot be retracted", a.Pred)
	}
	if k.cat.IsIDB(a.Pred) {
		return false, fmt.Errorf("kb: %s is intensional; retract only removes stored facts", a.Pred)
	}
	if !a.IsGround() {
		return false, fmt.Errorf("kb: retract %v: fact is not ground", a)
	}
	return k.store.DeleteAtom(a)
}

// Rules returns a copy of the IDB.
func (k *KB) Rules() []term.Rule {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return append([]term.Rule(nil), k.rules...)
}

// Catalog exposes the schema. The catalog is internally synchronized
// and its accessors return copies, so reading it concurrently with
// loads and asserts is safe. Mutate the schema only through KB methods
// (LoadProgram, Assert) — direct catalog writes bypass the KB's
// analysis and generation bookkeeping.
func (k *KB) Catalog() *catalog.Catalog { return k.cat }

// Store exposes the extensional database. The store is internally
// synchronized, so concurrent reads are safe. Mutate facts only
// through KB methods (Assert, Retract, LoadProgram), which keep the
// catalog, the IDB, and the WAL in step.
func (k *KB) Store() *storage.Store { return k.store }

// SystemRelations exposes the sys_* virtual-relation provider, so
// embedders (the server) can attach additional telemetry sources —
// e.g. the per-tenant rows of sys_tenant. Nil when the provider was
// disabled with WithoutSystemRelations; the sysrel setters are
// nil-receiver safe, so callers need not check.
func (k *KB) SystemRelations() *sysrel.Provider { return k.sys }

// FactCount returns the number of stored facts across all predicates.
func (k *KB) FactCount() int {
	n := 0
	for _, p := range k.store.Preds() {
		n += k.store.Count(p)
	}
	return n
}

// Constraints returns a copy of the loaded integrity constraints.
func (k *KB) Constraints() []term.Formula {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]term.Formula, len(k.constraints))
	for i, ic := range k.constraints {
		out[i] = ic.Clone()
	}
	return out
}

// CheckConstraints evaluates every integrity constraint against the
// current database and returns one message per violating instance
// (capped per constraint). An empty result means the data satisfies all
// constraints.
//
//kdb:entrypoint
func (k *KB) CheckConstraints() ([]string, error) {
	return k.CheckConstraintsContext(context.Background())
}

// CheckConstraintsContext is CheckConstraints under the context and the
// effective query limits (configured limits, clamped per-request via
// ContextWithLimits).
func (k *KB) CheckConstraintsContext(ctx context.Context) ([]string, error) {
	k.mu.RLock()
	if k.closed {
		k.mu.RUnlock()
		return nil, ErrClosed
	}
	engine := k.newEngine(ctx)
	constraints := make([]term.Formula, len(k.constraints))
	copy(constraints, k.constraints)
	k.mu.RUnlock()
	var out []string
	for _, ic := range constraints {
		vars := ic.Vars()
		probe := term.NewAtom("__ic__", vars...)
		res, err := engine.RetrieveContext(ctx, eval.Query{Subject: probe, Where: ic})
		if err != nil {
			return nil, fmt.Errorf("kb: checking constraint :- %v: %w", ic, err)
		}
		for i, tuple := range res.Tuples {
			if i == 4 {
				out = append(out, fmt.Sprintf("constraint :- %v: … and %d more violations", ic, len(res.Tuples)-i))
				break
			}
			sub := term.NewSubst(len(vars))
			for j, v := range vars {
				sub[v] = tuple[j]
			}
			out = append(out, fmt.Sprintf("constraint :- %v violated by %v", ic, sub.ApplyFormula(ic)))
		}
	}
	k.recordStats(engine)
	return out, nil
}

// Validate reports the rule-discipline diagnostics of §2.1: recursive
// rules that are not strongly linear or not typed. These are advisory;
// describe handles them in bounded mode.
func (k *KB) Validate() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	g := depgraph.New(k.rules)
	var out []string
	for _, v := range g.CheckDiscipline() {
		out = append(out, v.String())
	}
	sort.Strings(out)
	return out
}

// newEngine builds the configured retrieve engine over the current
// state, governed by the context's effective limits; extra options
// (e.g. a provenance recorder) are appended. Callers hold k.mu.
//
//kdb:rlocked mu
func (k *KB) newEngine(ctx context.Context, extra ...eval.EngineOption) eval.Engine {
	in := eval.Input{Store: k.store, Rules: k.rules}
	if k.sys != nil {
		// The view captures the store and the current rule slice; its
		// sources read telemetry directly, never back through k (whose
		// read lock this goroutine already holds).
		in.Virtual = k.sys.View(k.store, k.rules)
	}
	opts := append([]eval.EngineOption{
		eval.WithWorkers(k.parallelism),
		eval.WithLimits(k.effectiveLimitsLocked(ctx)),
	}, extra...)
	switch k.engine {
	case EngineNaive:
		return eval.NewNaive(in, opts...)
	case EngineTopDown:
		return eval.NewTopDown(in, opts...)
	case EngineMagic:
		return eval.NewMagic(in, opts...)
	default:
		return eval.NewSemiNaive(in, opts...)
	}
}

// Retrieve evaluates a data query (§3.1). The configured query limits
// (WithQueryLimits) apply; use RetrieveContext to also support
// cancellation.
//
//kdb:entrypoint
func (k *KB) Retrieve(subject term.Atom, where term.Formula) (*eval.Result, error) {
	return k.RetrieveContext(context.Background(), subject, where)
}

// RetrieveContext evaluates a data query under the context and the
// configured query limits. A governed stop — cancellation, deadline
// expiry, a breached limit, or a contained panic — returns a structured
// error (*eval.StopError wrapping governor.ErrCanceled,
// *governor.LimitError, or *governor.PanicError); the statistics
// snapshot at stop time is still recorded (LastStats) with its
// StopReason set.
func (k *KB) RetrieveContext(ctx context.Context, subject term.Atom, where term.Formula) (*eval.Result, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	if k.closed {
		return nil, ErrClosed
	}
	engine := k.newEngine(ctx)
	res, err := engine.RetrieveContext(ctx, eval.Query{Subject: subject, Where: where})
	k.recordStats(engine)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RetrieveOr evaluates a data query with a disjunctive qualifier
// (§6's second research direction): the answer is the union of the
// per-disjunct answers.
//
//kdb:entrypoint
func (k *KB) RetrieveOr(subject term.Atom, disjuncts []term.Formula) (*eval.Result, error) {
	return k.RetrieveOrContext(context.Background(), subject, disjuncts)
}

// RetrieveOrContext is RetrieveOr under the context and the configured
// query limits (per-disjunct: each disjunct is one governed evaluation).
func (k *KB) RetrieveOrContext(ctx context.Context, subject term.Atom, disjuncts []term.Formula) (*eval.Result, error) {
	if len(disjuncts) == 0 {
		return k.RetrieveContext(ctx, subject, nil)
	}
	k.mu.RLock()
	defer k.mu.RUnlock()
	if k.closed {
		return nil, ErrClosed
	}
	engine := k.newEngine(ctx)
	var merged *eval.Result
	seen := make(map[string]bool)
	for _, d := range disjuncts {
		res, err := engine.RetrieveContext(ctx, eval.Query{Subject: subject, Where: d})
		if err != nil {
			k.recordStats(engine)
			return nil, err
		}
		if merged == nil {
			merged = &eval.Result{Vars: res.Vars}
		}
		for _, t := range res.Tuples {
			key := storage.Tuple(t).Key()
			if !seen[key] {
				seen[key] = true
				merged.Tuples = append(merged.Tuples, t)
			}
		}
	}
	k.recordStats(engine)
	return merged, nil
}

// Profile evaluates a data query like Retrieve while recording per-rule
// cost rows: wall time, rounds, tuples produced, and the storage probe
// counters split index-hit/full-scan. See ProfileContext.
//
//kdb:entrypoint
func (k *KB) Profile(subject term.Atom, where term.Formula) (*eval.Result, *profile.Profile, error) {
	return k.ProfileContext(context.Background(), subject, where)
}

// ProfileContext runs a governed retrieve of subject/where with
// profiling on and returns the answers together with the per-rule cost
// profile — the runtime "explain analyze" of one evaluation. On a
// governed stop the partial profile is returned alongside the error, so
// a query killed by a limit still shows where the time went.
func (k *KB) ProfileContext(ctx context.Context, subject term.Atom, where term.Formula) (*eval.Result, *profile.Profile, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	if k.closed {
		return nil, nil, ErrClosed
	}
	p := profile.New()
	if h := profileHolderFromContext(ctx); h != nil {
		h.p.Store(p)
	}
	engine := k.newEngine(ctx, eval.WithProfile(p))
	res, err := engine.RetrieveContext(ctx, eval.Query{Subject: subject, Where: where})
	k.recordStats(engine)
	if err != nil {
		return nil, p, err
	}
	return res, p, nil
}

// maxExplainNodes bounds the reconstructed derivation tree of one
// explain statement: generous enough for real programs, small enough
// that a pathological witness graph cannot exhaust memory while
// rendering.
const maxExplainNodes = 10000

// Explain evaluates the subject like Retrieve while recording one
// why-provenance witness per derived fact, then reconstructs the
// derivation tree of every answer. See ExplainContext.
//
//kdb:entrypoint
func (k *KB) Explain(subject term.Atom, where term.Formula) (*prov.Explanation, error) {
	return k.ExplainContext(context.Background(), subject, where)
}

// ExplainContext runs a governed retrieve of subject/where with
// why-provenance recording on (the configured MaxProvenanceEntries
// limit applies), then rebuilds the derivation trees of the answers.
// Trees are cycle-safe for recursive predicates; leaves distinguish
// stored facts (edb) from comparisons (builtin). The same recording
// works on every engine, so an explain is a cross-checkable artifact:
// all four engines must justify a fact by some valid tree.
func (k *KB) ExplainContext(ctx context.Context, subject term.Atom, where term.Formula) (*prov.Explanation, error) {
	k.mu.RLock()
	if k.closed {
		k.mu.RUnlock()
		return nil, ErrClosed
	}
	rec := prov.NewRecorder()
	engine := k.newEngine(ctx, eval.WithProvenance(rec))
	res, err := engine.RetrieveContext(ctx, eval.Query{Subject: subject, Where: where})
	k.recordStats(engine)
	if err != nil {
		k.mu.RUnlock()
		return nil, err
	}
	store := k.store
	k.mu.RUnlock()

	esp := obs.SpanFromContext(ctx).Child("explain")
	isStored := func(a term.Atom) bool { return store.Contains(a) }
	exp := rec.Explain(subject, res.Atoms(subject), isStored, maxExplainNodes)
	esp.SetInt("trees", int64(len(exp.Trees)))
	esp.SetInt("nodes", int64(exp.Nodes))
	esp.End()
	k.qmetrics.Load().ObserveExplain(int64(exp.Nodes))
	return exp, nil
}

// DescribeOr evaluates a knowledge query with a disjunctive hypothesis:
// the answers that hold under every disjunct.
//
//kdb:entrypoint
func (k *KB) DescribeOr(subject term.Atom, disjuncts []term.Formula) (*core.Answers, error) {
	return k.DescribeOrContext(context.Background(), subject, disjuncts)
}

// DescribeOrContext is DescribeOr under the context and the configured
// query limits.
func (k *KB) DescribeOrContext(ctx context.Context, subject term.Atom, disjuncts []term.Formula) (*core.Answers, error) {
	asp := obs.SpanFromContext(ctx).Child("analyze")
	d, err := k.getDescriberFor(subject)
	asp.End()
	if err != nil {
		return nil, err
	}
	ans, err := d.DescribeOrContext(ctx, subject, disjuncts, k.effectiveLimits(ctx))
	if err != nil {
		return nil, err
	}
	k.observeDescribe(ans.Nodes)
	k.applyDisplayNames(ans)
	k.attachNotes(subject, ans)
	return ans, nil
}

func (k *KB) showProvenance() bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.provenance
}

// SetProvenance switches provenance display on or off (off by default):
// when on, rendered describe answers list the rules each derivation
// applied.
func (k *KB) SetProvenance(on bool) {
	k.mu.Lock()
	k.provenance = on
	k.mu.Unlock()
}

// Provenance reports whether provenance display is on.
func (k *KB) Provenance() bool { return k.showProvenance() }

// SetProfiling switches always-on profiling on or off (off by default):
// when on, every retrieve statement records per-rule cost rows and its
// ExecResult carries the profile — the .profile REPL toggle and the
// -profile CLI flag. The `profile p(…)` statement profiles one query
// regardless of this setting.
func (k *KB) SetProfiling(on bool) {
	k.mu.Lock()
	k.profiling = on
	k.mu.Unlock()
}

// Profiling reports whether always-on profiling is enabled.
func (k *KB) Profiling() bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.profiling
}

// Intensional reports whether intensional answering is on.
func (k *KB) Intensional() bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.intensional
}

// SetIntensional switches intensional answering for data queries on or
// off (off by default). When on, Exec answers a retrieve with both the
// extension AND the knowledge characterizing it — the combined
// data+knowledge responses of the intensional-answer literature the
// paper's introduction surveys (mechanism 2 of its three).
func (k *KB) SetIntensional(on bool) {
	k.mu.Lock()
	k.intensional = on
	k.mu.Unlock()
}

// getDescriberFor is getDescriber with diagnostics-aware failure: when
// building the describe engine fails (e.g. degenerate recursion makes
// the §5.2 transformation inapplicable), the error is replaced by the
// stored analyzer diagnostics relevant to the subject, when there are
// any — the caller learns which rules are at fault and why, not just
// that the transformation failed.
func (k *KB) getDescriberFor(subject term.Atom) (*core.Describer, error) {
	d, err := k.getDescriber()
	if err != nil {
		if diags := k.describeDiagnostics(subject.Pred); len(diags) > 0 {
			return nil, &analysis.Error{Diags: diags}
		}
	}
	return d, err
}

// describeDiagnostics returns the stored diagnostics about the subject
// predicate, its recursive component, and everything it depends on.
func (k *KB) describeDiagnostics(pred string) []analysis.Diagnostic {
	k.mu.RLock()
	rep := k.report
	rules := append([]term.Rule(nil), k.rules...)
	k.mu.RUnlock()
	if rep == nil {
		return nil
	}
	g := depgraph.New(rules)
	seen := make(map[string]bool)
	var out []analysis.Diagnostic
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, rep.ForPred(p)...)
		}
	}
	for _, p := range g.SCC(pred) {
		add(p)
	}
	for q := range g.Reach(pred) {
		add(q)
	}
	return out
}

// attachNotes records on the answers the analyzer warnings explaining a
// degraded describe: when the subject depends on recursion outside the
// §2.1 discipline, the bounded §5.3 mode answered, and the relevant
// recursion diagnostics say which rules are responsible.
func (k *KB) attachNotes(subject term.Atom, ans *core.Answers) {
	rep := k.Diagnostics()
	if rep == nil {
		return
	}
	relevant := false
	for _, d := range rep.Diagnostics {
		if d.Analyzer == "recursion" && d.Severity == analysis.SevWarning {
			relevant = true
			break
		}
	}
	if !relevant {
		return
	}
	for _, d := range k.describeDiagnostics(subject.Pred) {
		if d.Analyzer == "recursion" && d.Severity == analysis.SevWarning {
			ans.Notes = append(ans.Notes, d.String())
		}
	}
}

func (k *KB) getDescriber() (*core.Describer, error) {
	k.mu.RLock()
	d := k.describer
	closed := k.closed
	k.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if d != nil {
		return d, nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil, ErrClosed
	}
	if k.describer != nil {
		return k.describer, nil
	}
	keys := make(map[string][][]int)
	for _, class := range []catalog.Class{catalog.ClassEDB, catalog.ClassIDB} {
		for _, p := range k.cat.Preds(class) {
			if len(p.Keys) > 0 {
				keys[p.Name] = p.Keys
			}
		}
	}
	opts := k.opts
	opts.Constraints = append(append([]term.Formula{}, opts.Constraints...), k.constraints...)
	d, err := core.New(k.rules, keys, opts)
	if err != nil {
		return nil, err
	}
	k.describer = d
	return d, nil
}

// Describe evaluates a knowledge query (§3.2). Artificial step-predicate
// names in answers are replaced by their @name display names. The
// configured query limits apply; use DescribeContext to also support
// cancellation.
//
//kdb:entrypoint
func (k *KB) Describe(subject term.Atom, where term.Formula) (*core.Answers, error) {
	return k.DescribeContext(context.Background(), subject, where)
}

// DescribeContext evaluates a knowledge query under the context and the
// configured query limits: the describe search checks cancellation
// cooperatively, and MaxDescribeNodes bounds its steps as a hard error
// (unlike the describe engine's own MaxNodes option, which truncates).
func (k *KB) DescribeContext(ctx context.Context, subject term.Atom, where term.Formula) (*core.Answers, error) {
	asp := obs.SpanFromContext(ctx).Child("analyze")
	d, err := k.getDescriberFor(subject)
	asp.End()
	if err != nil {
		return nil, err
	}
	ans, err := d.DescribeContext(ctx, subject, where, k.effectiveLimits(ctx))
	if err != nil {
		return nil, err
	}
	k.observeDescribe(ans.Nodes)
	k.applyDisplayNames(ans)
	k.attachNotes(subject, ans)
	return ans, nil
}

// DescribeNecessary evaluates `describe … where necessary ψ` (§6 ext. 1).
//
//kdb:entrypoint
func (k *KB) DescribeNecessary(subject term.Atom, where term.Formula) (*core.Answers, error) {
	return k.DescribeNecessaryContext(context.Background(), subject, where)
}

// DescribeNecessaryContext is DescribeNecessary under the context and
// the configured query limits.
func (k *KB) DescribeNecessaryContext(ctx context.Context, subject term.Atom, where term.Formula) (*core.Answers, error) {
	asp := obs.SpanFromContext(ctx).Child("analyze")
	d, err := k.getDescriberFor(subject)
	asp.End()
	if err != nil {
		return nil, err
	}
	ans, err := d.DescribeNecessaryContext(ctx, subject, where, k.effectiveLimits(ctx))
	if err != nil {
		return nil, err
	}
	k.observeDescribe(ans.Nodes)
	k.applyDisplayNames(ans)
	k.attachNotes(subject, ans)
	return ans, nil
}

// DescribeNot evaluates `describe … where not h …` (§6 ext. 2).
func (k *KB) DescribeNot(subject term.Atom, banned, positive term.Formula) (*core.Necessity, error) {
	d, err := k.getDescriberFor(subject)
	if err != nil {
		return nil, err
	}
	return d.DescribeNot(subject, banned, positive)
}

// Possible evaluates the subjectless describe (§6 ext. 3).
func (k *KB) Possible(where term.Formula) (*core.Possibility, error) {
	d, err := k.getDescriber()
	if err != nil {
		return nil, err
	}
	return d.Possible(where)
}

// DescribeWildcard evaluates `describe * where ψ` (§6 ext. 4).
func (k *KB) DescribeWildcard(where term.Formula) ([]core.WildcardEntry, error) {
	d, err := k.getDescriber()
	if err != nil {
		return nil, err
	}
	return d.DescribeWildcard(where)
}

// Compare evaluates the §6 compare statement.
func (k *KB) Compare(left term.Atom, leftHyp term.Formula, right term.Atom, rightHyp term.Formula) (*core.ConceptComparison, error) {
	d, err := k.getDescriber()
	if err != nil {
		return nil, err
	}
	return d.Compare(left, leftHyp, right, rightHyp)
}

// applyDisplayNames rewrites predicate names in answers to their @name
// display names (meaningful names for artificial predicates, §5.3).
func (k *KB) applyDisplayNames(ans *core.Answers) {
	for i := range ans.Formulas {
		body := ans.Formulas[i].Body
		for j, a := range body {
			if display := k.cat.DisplayName(a.Pred); display != a.Pred {
				body[j] = term.Atom{Pred: display, Args: a.Args}
			}
		}
	}
}

// Exec parses and runs any query statement, returning a displayable
// result. It is the single coherent instrument the paper argues for: the
// caller does not need to know whether the question addresses data or
// knowledge.
//
//kdb:entrypoint
func (k *KB) Exec(q parser.Query) (*ExecResult, error) {
	return k.ExecContext(context.Background(), q)
}

// ExecContext is Exec under the context and the configured query limits
// (WithQueryLimits): retrieve and describe evaluations check the
// context cooperatively, so a deadline or a Ctrl-C-driven cancel stops
// an in-flight query with a structured error. The remaining statement
// forms (describe not, possible, wildcard, compare) run their bounded
// unfolding un-governed.
func (k *KB) ExecContext(ctx context.Context, q parser.Query) (*ExecResult, error) {
	ctx, finish := k.beginQuery(ctx)
	ctx, done := k.beginActivity(ctx, queryKind(q), q.String())
	res, err := k.execContext(ctx, q)
	if done != nil {
		done()
	}
	if finish != nil {
		finish(queryKind(q), q.String(), err)
	}
	return res, err
}

func (k *KB) execContext(ctx context.Context, q parser.Query) (*ExecResult, error) {
	switch s := q.(type) {
	case *parser.Retrieve:
		var res *eval.Result
		var prof *profile.Profile
		var err error
		if len(s.Or) > 0 {
			res, err = k.RetrieveOrContext(ctx, s.Subject, s.Disjuncts())
		} else if k.Profiling() {
			res, prof, err = k.ProfileContext(ctx, s.Subject, s.Where)
		} else {
			res, err = k.RetrieveContext(ctx, s.Subject, s.Where)
		}
		if err != nil {
			return nil, err
		}
		out := &ExecResult{Query: q, Retrieve: res, Profile: prof, subject: s.Subject}
		k.mu.RLock()
		intensional := k.intensional
		k.mu.RUnlock()
		if intensional {
			// Intensional answering: attach the knowledge characterizing
			// the extension, when the subject is an IDB concept.
			if ans, derr := k.DescribeOrContext(ctx, s.Subject, s.Disjuncts()); derr == nil {
				out.Knowledge = ans
			}
		}
		return out, nil
	case *parser.Describe:
		// A describe of a virtual relation answers from its fixed
		// definition: the schema is code, not loaded knowledge, so the
		// describe engine has nothing to unfold.
		if !s.Wildcard && !s.Subjectless && sysrel.IsName(s.Subject.Pred) {
			d := sysrel.Lookup(s.Subject.Pred)
			if d == nil {
				return nil, fmt.Errorf("kb: unknown system relation %s (the sys_ namespace is reserved)", s.Subject.Pred)
			}
			return &ExecResult{Query: q, System: fmt.Sprintf("%s — virtual relation: %s", d.Signature(), d.Doc)}, nil
		}
		switch {
		case s.Wildcard:
			if len(s.Not) > 0 {
				return nil, fmt.Errorf("kb: 'not' is not supported in a wildcard describe")
			}
			entries, err := k.DescribeWildcard(s.Where)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Wildcard: entries, wildcard: true}, nil
		case s.Subjectless:
			if len(s.Not) > 0 {
				return nil, fmt.Errorf("kb: 'not' is not supported in a subjectless describe")
			}
			p, err := k.Possible(s.Where)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Possibility: p}, nil
		case len(s.Not) > 0:
			n, err := k.DescribeNot(s.Subject, s.Not, s.Where)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Necessity: n}, nil
		case s.Necessary:
			ans, err := k.DescribeNecessaryContext(ctx, s.Subject, s.Where)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Describe: ans, provenance: k.showProvenance()}, nil
		case len(s.Or) > 0:
			ans, err := k.DescribeOrContext(ctx, s.Subject, s.Disjuncts())
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Describe: ans, provenance: k.showProvenance()}, nil
		default:
			ans, err := k.DescribeContext(ctx, s.Subject, s.Where)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Query: q, Describe: ans, provenance: k.showProvenance()}, nil
		}
	case *parser.Explain:
		exp, err := k.ExplainContext(ctx, s.Subject, s.Where)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Query: q, Explanation: exp}, nil
	case *parser.Profile:
		res, prof, err := k.ProfileContext(ctx, s.Subject, s.Where)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Query: q, Retrieve: res, Profile: prof, subject: s.Subject}, nil
	case *parser.Compare:
		c, err := k.Compare(s.Left.Subject, s.Left.Where, s.Right.Subject, s.Right.Where)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Query: q, Comparison: c}, nil
	default:
		return nil, fmt.Errorf("kb: unsupported query %T", q)
	}
}

// ExecString parses and runs one query given as text.
//
//kdb:entrypoint
func (k *KB) ExecString(src string) (*ExecResult, error) {
	return k.ExecStringContext(context.Background(), src)
}

// ExecStringContext parses and runs one query given as text, under the
// context and the configured query limits (see ExecContext).
func (k *KB) ExecStringContext(ctx context.Context, src string) (*ExecResult, error) {
	ctx, finish := k.beginQuery(ctx)
	psp := obs.SpanFromContext(ctx).Child("parse")
	q, err := parser.ParseQuery(src)
	psp.End()
	if err != nil {
		if finish != nil {
			finish("parse", strings.TrimSpace(src), err)
		}
		return nil, err
	}
	ctx, done := k.beginActivity(ctx, queryKind(q), q.String())
	res, err := k.execContext(ctx, q)
	if done != nil {
		done()
	}
	if finish != nil {
		finish(queryKind(q), q.String(), err)
	}
	return res, err
}

// ExecResult is the displayable outcome of Exec: exactly one of the
// result fields is set, according to the query form.
type ExecResult struct {
	Query    parser.Query
	Retrieve *eval.Result
	// Profile carries the per-rule cost rows of a `profile p(…)`
	// statement (or of any retrieve when SetProfiling is on), rendered
	// after the answers as an annotated plan.
	Profile *profile.Profile
	// Knowledge carries the intensional characterization of a retrieve
	// answer when intensional answering is on (SetIntensional).
	Knowledge   *core.Answers
	Describe    *core.Answers
	Necessity   *core.Necessity
	Possibility *core.Possibility
	Wildcard    []core.WildcardEntry
	Comparison  *core.ConceptComparison
	Explanation *prov.Explanation
	// System carries the fixed-definition answer of a `describe sys_…`
	// statement over a virtual relation.
	System string

	subject    term.Atom
	wildcard   bool
	provenance bool
}

// String renders the result for a terminal.
func (r *ExecResult) String() string {
	switch {
	case r.System != "":
		return r.System
	case r.Retrieve != nil:
		var b strings.Builder
		if len(r.Retrieve.Tuples) == 0 {
			b.WriteString("no answers")
		} else {
			atoms := r.Retrieve.Atoms(r.subject)
			lines := make([]string, len(atoms))
			for i, a := range atoms {
				lines[i] = a.String()
			}
			sort.Strings(lines)
			b.WriteString(strings.Join(lines, "\n"))
		}
		if r.Knowledge != nil && !r.Knowledge.Empty() {
			b.WriteString("\nbecause:\n")
			for _, f := range r.Knowledge.Formulas {
				b.WriteString("  " + f.String() + "\n")
			}
			return strings.TrimRight(b.String(), "\n")
		}
		if r.Profile != nil {
			b.WriteString("\n\n")
			b.WriteString(strings.TrimRight(r.Profile.String(), "\n"))
		}
		return b.String()
	case r.Describe != nil:
		if !r.provenance {
			return r.Describe.String()
		}
		var b strings.Builder
		if r.Describe.Contradiction || len(r.Describe.Formulas) == 0 {
			return r.Describe.String()
		}
		for i, a := range r.Describe.Formulas {
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString(a.StringWithProvenance())
		}
		return b.String()
	case r.Necessity != nil:
		return r.Necessity.String()
	case r.Possibility != nil:
		return r.Possibility.String()
	case r.wildcard:
		var b strings.Builder
		for i, e := range r.Wildcard {
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString(e.Answers.String())
		}
		if b.Len() == 0 {
			return "no subjects are derivable from this qualifier"
		}
		return b.String()
	case r.Explanation != nil:
		return strings.TrimRight(r.Explanation.String(), "\n")
	case r.Comparison != nil:
		return r.Comparison.String()
	default:
		return "no result"
	}
}

package kb

import (
	"errors"
	"strings"
	"testing"

	"kdb/internal/analysis"
	"kdb/internal/term"
)

func TestLoadRejectsUnsafeProgram(t *testing.T) {
	k := New()
	err := k.LoadString(`
e(1).
p(X, Y) :- e(X).
`)
	if err == nil {
		t.Fatal("unsafe program must be rejected at load")
	}
	var aerr *analysis.Error
	if !errors.As(err, &aerr) {
		t.Fatalf("want *analysis.Error, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "unsafe rule") {
		t.Errorf("error does not name the defect: %v", err)
	}
	// The rejection must leave the knowledge base untouched.
	if len(k.Rules()) != 0 || k.FactCount() != 0 {
		t.Errorf("rejected load mutated the KB: %d rules, %d facts", len(k.Rules()), k.FactCount())
	}
	// A clean follow-up load still works.
	if err := k.LoadString(`e(1). p(X) :- e(X).`); err != nil {
		t.Fatalf("clean load after rejection: %v", err)
	}
}

func TestDiagnosticsRetainedAcrossLoads(t *testing.T) {
	k := New()
	if err := k.LoadString(`
conn(a, b).
reach(X, Y) :- conn(X, Y).
reach(X, Y) :- reach(Y, X).
`); err != nil {
		t.Fatalf("load: %v", err)
	}
	rep := k.Diagnostics()
	if rep == nil {
		t.Fatal("no report after load")
	}
	var untyped bool
	for _, d := range rep.Warnings() {
		if d.Analyzer == "recursion" && strings.Contains(d.Message, "not typed") {
			untyped = true
		}
	}
	if !untyped {
		t.Errorf("missing untyped-recursion warning: %v", rep.Diagnostics)
	}
	if rep.Profile.Rules != 2 || rep.Profile.StronglyLinear != 1 {
		t.Errorf("bad profile: %+v", rep.Profile)
	}
	// An incremental load re-analyzes the combined program.
	if err := k.LoadString(`top(X) :- reach(X, b).`); err != nil {
		t.Fatalf("incremental load: %v", err)
	}
	if got := k.Diagnostics().Profile.Rules; got != 3 {
		t.Errorf("combined profile has %d rules, want 3", got)
	}
}

func TestDescribeAttachesNotesForBoundedSubject(t *testing.T) {
	k := New()
	if err := k.LoadString(`
conn(a, b).
reach(X, Y) :- conn(X, Y).
reach(X, Y) :- reach(Y, X).
linked(X) :- conn(X, Y).
`); err != nil {
		t.Fatalf("load: %v", err)
	}
	ans, err := k.Describe(term.NewAtom("reach", term.Var("X"), term.Var("Y")), nil)
	if err != nil {
		t.Fatalf("describe: %v", err)
	}
	var noted bool
	for _, n := range ans.Notes {
		if strings.Contains(n, "not typed") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("describe answer carries no bounded-mode note: %v", ans.Notes)
	}
	// A subject outside the undisciplined component gets no note.
	ans, err = k.Describe(term.NewAtom("linked", term.Var("X")), nil)
	if err != nil {
		t.Fatalf("describe linked: %v", err)
	}
	if len(ans.Notes) != 0 {
		t.Errorf("linked does not depend on reach; notes: %v", ans.Notes)
	}
}

func TestDescribeDegenerateReportsDiagnostics(t *testing.T) {
	k := New()
	if err := k.LoadString(`
q(1).
p(a).
p(X) :- p(X), q(Y).
`); err != nil {
		t.Fatalf("load (warnings must not reject): %v", err)
	}
	_, err := k.Describe(term.NewAtom("p", term.Var("X")), nil)
	if err == nil {
		t.Fatal("describe on a degenerate recursive subject must fail")
	}
	var aerr *analysis.Error
	if !errors.As(err, &aerr) {
		t.Fatalf("want *analysis.Error with stored diagnostics, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "degenerate") {
		t.Errorf("error does not carry the analyzer finding: %v", err)
	}
}

package kb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kdb/internal/obs"
)

// TestProfileStatement: the `profile p(…)` statement returns answers
// plus per-rule cost rows, and the rendering includes the annotated
// plan after the answers.
func TestProfileStatement(t *testing.T) {
	k := New()
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	res, err := k.ExecString("profile reachable(la, X).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("profile statement returned no profile")
	}
	if len(res.Retrieve.Tuples) == 0 {
		t.Error("profile statement returned no answers")
	}
	if len(res.Profile.Rows()) == 0 {
		t.Error("profile has no rows")
	}
	out := res.String()
	if !strings.Contains(out, "profile: engine=") {
		t.Errorf("rendering missing the profile section:\n%s", out)
	}
	if !strings.Contains(out, "reachable(la,") {
		t.Errorf("rendering missing the answers:\n%s", out)
	}
}

// TestSetProfiling: with always-on profiling, a plain retrieve carries
// a profile; switching it off restores the profile-free result.
func TestSetProfiling(t *testing.T) {
	k := New()
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	if k.Profiling() {
		t.Fatal("profiling on by default")
	}
	k.SetProfiling(true)
	res, err := k.ExecString("retrieve reachable(la, X).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || len(res.Profile.Rows()) == 0 {
		t.Error("always-on profiling attached no profile to retrieve")
	}
	k.SetProfiling(false)
	res, err = k.ExecString("retrieve reachable(la, X).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("profile attached with profiling off")
	}
}

// TestQueryLogProfileRows: when a query is profiled, its query-log
// record carries the per-rule rows, so the slow log explains where a
// slow query spent its time.
func TestQueryLogProfileRows(t *testing.T) {
	var buf bytes.Buffer
	ql := obs.NewQueryLog(&buf, 0)
	k := New(WithQueryLog(ql))
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("profile reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("retrieve reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2:\n%s", len(lines), buf.String())
	}
	type rec struct {
		Kind    string `json:"kind"`
		Profile []struct {
			Rule   string `json:"rule"`
			WallNS int64  `json:"wall_ns"`
			Tuples int64  `json:"tuples"`
		} `json:"profile"`
	}
	var profiled, plain rec
	if err := json.Unmarshal([]byte(lines[0]), &profiled); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &plain); err != nil {
		t.Fatal(err)
	}
	if profiled.Kind != "profile" || len(profiled.Profile) == 0 {
		t.Errorf("profiled record = %s", lines[0])
	}
	var sawRule bool
	for _, r := range profiled.Profile {
		if strings.Contains(r.Rule, "reachable") {
			sawRule = true
		}
	}
	if !sawRule {
		t.Errorf("no reachable rule in the logged profile: %s", lines[0])
	}
	if plain.Profile != nil {
		t.Errorf("unprofiled record carries profile rows: %s", lines[1])
	}
}

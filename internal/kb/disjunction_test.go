package kb

import (
	"strings"
	"testing"

	"kdb/internal/parser"
)

// Tests for the §6 research-direction features: disjunctive qualifiers
// and intensional answers to data queries.

func TestRetrieveOr(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `retrieve student(X, M, G) where M = math or G >= 4.`)
	for _, want := range []string{
		"student(ann, math, 3.9)",
		"student(cora, math, 3.8)",
		"student(dan, cs, 4)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
	if strings.Contains(got, "bob") {
		t.Errorf("bob (cs, 3.5) matches neither disjunct: %q", got)
	}
	// Union must deduplicate overlapping disjuncts.
	got = execStr(t, k, `retrieve honor(X) where enroll(X, databases) or student(X, math, G).`)
	if strings.Count(got, "honor(ann)") != 1 {
		t.Errorf("ann satisfies both disjuncts but must appear once: %q", got)
	}
}

func TestRetrieveOrThreeDisjuncts(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `retrieve course(C, U) where C = datastructures or C = programming or U = 4.`)
	for _, want := range []string{"datastructures", "programming", "databases"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestDescribeOrIntersection(t *testing.T) {
	k := loadKB(t, universityKB)
	// Under EITHER hypothesis — completed with a 4.0, or an honor student
	// with Susan teaching — only formulas valid under BOTH qualify.
	// can_ta's 4.0 route holds under the first but needs honor under the
	// second... so nothing survives both; whereas with two hypotheses that
	// each make the whole honor subtree available, the common answers
	// survive.
	got := execStr(t, k, `describe honor(X) where student(X, math, V) and V > 3.8 or student(X, cs, V) and V > 3.9.`)
	// Both disjuncts imply the GPA bound, so under each the answer is
	// `honor(X) <- true`: the intersection keeps it.
	if got != "honor(X) <- true" {
		t.Errorf("= %q", got)
	}
	// If one disjunct does NOT imply the bound, `<- true` fails on it and
	// the intersection moves to the weaker common ground.
	got = execStr(t, k, `describe honor(X) where student(X, math, V) and V > 3.8 or student(X, cs, V) and V > 3.5.`)
	if got != "honor(X) <- V > 3.7" {
		t.Errorf("= %q", got)
	}
}

func TestDescribeOrSkipsContradictoryDisjunct(t *testing.T) {
	k := loadKB(t, universityKB)
	// The first disjunct contradicts honor's GPA requirement: it is
	// impossible, so the answer is determined by the second alone.
	got := execStr(t, k, `describe honor(X) where student(X, math, V) and V < 3 or student(X, cs, V) and V > 3.8.`)
	if got != "honor(X) <- true" {
		t.Errorf("= %q", got)
	}
	// All disjuncts contradictory → the special answer.
	got = execStr(t, k, `describe honor(X) where student(X, math, V) and V < 3 or student(X, cs, V) and V < 2.`)
	if !strings.Contains(got, "contradicts") {
		t.Errorf("= %q", got)
	}
}

func TestDescribeOrDisjointAnswersIntersectEmpty(t *testing.T) {
	k := loadKB(t, `
a(X) :- p(X).
a(X) :- q(X).
`)
	// Under p the answer is `a <- true` via rule 1; under q via rule 2;
	// both produce `a(X) <- true`, which therefore survives.
	got := execStr(t, k, `describe a(X) where p(X) or q(X).`)
	if got != "a(X) <- true" {
		t.Errorf("= %q", got)
	}
	// Under p vs under r: r cannot participate in any derivation of a, so
	// that disjunct degrades to the definition listing (§6's remark), and
	// the intersection is exactly the definition — sound under any
	// hypothesis. `a <- true` does NOT survive: it is not valid under r.
	got = execStr(t, k, `describe a(X) where p(X) or r(X).`)
	if got != "a(X) <- p(X)\na(X) <- q(X)" {
		t.Errorf("= %q", got)
	}
}

func TestOrParserRestrictions(t *testing.T) {
	k := loadKB(t, universityKB)
	for _, q := range []string{
		`describe honor(X) where necessary p(X) or q(X).`,
		`describe honor(X) where not p(X) or q(X).`,
		`describe * where p(X) or q(X).`,
		`describe where p(X) or q(X).`,
		`retrieve honor(X) where not p(X) or q(X).`,
	} {
		if _, err := k.ExecString(q); err == nil {
			t.Errorf("%q must be rejected", q)
		}
	}
}

func TestOrRoundTrip(t *testing.T) {
	q, err := parser.ParseQuery(`retrieve p(X) where a(X) or b(X) and c(X).`)
	if err != nil {
		t.Fatal(err)
	}
	r := q.(*parser.Retrieve)
	if len(r.Or) != 1 || len(r.Where) != 1 || len(r.Or[0]) != 2 {
		t.Fatalf("parsed %+v", r)
	}
	want := `retrieve p(X) where a(X) or b(X) and c(X).`
	if got := r.String(); got != want {
		t.Errorf("round trip = %q, want %q", got, want)
	}
	q2, err := parser.ParseQuery(`describe p(X) where a(X) or b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	d := q2.(*parser.Describe)
	if len(d.Disjuncts()) != 2 {
		t.Fatalf("disjuncts = %v", d.Disjuncts())
	}
	if got := d.String(); got != `describe p(X) where a(X) or b(X).` {
		t.Errorf("round trip = %q", got)
	}
}

func TestIntensionalAnswers(t *testing.T) {
	k := loadKB(t, universityKB)
	k.SetIntensional(true)
	res, err := k.ExecString(`retrieve honor(X) where enroll(X, databases).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Knowledge == nil {
		t.Fatal("intensional mode must attach knowledge")
	}
	got := res.String()
	if !strings.Contains(got, "honor(ann)") {
		t.Errorf("extension missing: %q", got)
	}
	if !strings.Contains(got, "because:") || !strings.Contains(got, "honor(X) <- student(X, Y, Z) and Z > 3.7") {
		t.Errorf("knowledge missing: %q", got)
	}
	// EDB subjects have no intensional part, and the query still works.
	res, err = k.ExecString(`retrieve student(X, math, G).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Knowledge != nil {
		t.Errorf("EDB subject must not attach knowledge: %v", res.Knowledge)
	}
	// Switching off restores plain answers.
	k.SetIntensional(false)
	res, err = k.ExecString(`retrieve honor(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Knowledge != nil {
		t.Error("intensional off must not attach knowledge")
	}
}

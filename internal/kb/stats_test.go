package kb

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"kdb/internal/term"
)

func TestWithParallelism(t *testing.T) {
	k := New(WithParallelism(4))
	if got := k.Parallelism(); got != 4 {
		t.Errorf("Parallelism() = %d, want 4", got)
	}
	k.SetParallelism(2)
	if got := k.Parallelism(); got != 2 {
		t.Errorf("after SetParallelism(2): %d", got)
	}
	// n <= 0 selects GOMAXPROCS.
	k.SetParallelism(0)
	if got := k.Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetParallelism(0) → %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := New().Parallelism(); got != 1 {
		t.Errorf("default parallelism = %d, want 1", got)
	}
}

func TestLastStatsAfterRetrieve(t *testing.T) {
	k := loadKB(t, universityKB)
	if k.LastStats() != nil {
		t.Fatal("stats must be nil before any retrieve")
	}
	res, err := k.Retrieve(term.NewAtom("prior", term.Var("X"), term.Var("Y")), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := k.LastStats()
	if st == nil {
		t.Fatal("no stats after retrieve")
	}
	if st.Engine != "seminaive" || st.Workers != 1 {
		t.Errorf("engine=%q workers=%d", st.Engine, st.Workers)
	}
	if st.Facts == 0 || st.Probes == 0 {
		t.Errorf("counters empty: %+v", st)
	}
	// The prior SCC is recursive: its iteration trail must be recorded.
	found := false
	for _, c := range st.Components {
		if c.Skipped {
			continue
		}
		for _, p := range c.Preds {
			if p == "prior" {
				found = true
				if !c.Recursive || c.Iterations < 2 {
					t.Errorf("prior component: %+v", c)
				}
			}
		}
	}
	if !found {
		t.Errorf("prior component missing from stats: %+v", st.Components)
	}
	// Pointer freshness: a new retrieve stores a new record.
	if _, err := k.Retrieve(term.NewAtom("honor", term.Var("X")), nil); err != nil {
		t.Fatal(err)
	}
	if k.LastStats() == st {
		t.Error("LastStats must change after another retrieve")
	}
	_ = res
}

func TestLastStatsPerEngine(t *testing.T) {
	for _, ek := range []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic} {
		k := loadKB(t, universityKB)
		if err := k.SetEngine(ek); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Retrieve(term.NewAtom("can_ta", term.Var("X"), term.Sym("databases")), nil); err != nil {
			t.Fatalf("%s: %v", ek, err)
		}
		st := k.LastStats()
		if st == nil {
			t.Fatalf("%s: no stats", ek)
		}
		if st.Engine != string(ek) {
			t.Errorf("stats engine = %q, want %q", st.Engine, ek)
		}
	}
}

func TestParallelKBAgreesWithSequential(t *testing.T) {
	seq := loadKB(t, universityKB)
	par := loadKB(t, universityKB)
	par.SetParallelism(8)
	for _, q := range []string{
		`retrieve prior(X, Y).`,
		`retrieve can_ta(X, databases).`,
		`retrieve honor(X) where enroll(X, databases).`,
	} {
		if a, b := execStr(t, seq, q), execStr(t, par, q); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: sequential %q != parallel %q", q, a, b)
		}
	}
	st := par.LastStats()
	if st == nil || st.Workers != 8 || !strings.HasSuffix(st.Engine, "-par") {
		t.Errorf("parallel stats: %+v", st)
	}
}

func TestCheckConstraintsRecordsStats(t *testing.T) {
	k := loadKB(t, universityKB+"\n:- honor(X), student(X, cs, G).\n")
	if _, err := k.CheckConstraints(); err != nil {
		t.Fatal(err)
	}
	if k.LastStats() == nil {
		t.Error("constraint checking must record stats")
	}
}

package kb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdb/internal/parser"
	"kdb/internal/term"
)

// TestConcurrentQueriesAssertsCheckpoints is the lock-discipline
// stress test: readers (RetrieveContext, LastStats), writers (Assert),
// and Checkpoint all run concurrently against a durable KB. On the
// seed this raced — Checkpoint and Close bypassed k.mu, so a
// checkpoint could truncate the WAL under a running assert. Run with
// -race.
func TestConcurrentQueriesAssertsCheckpoints(t *testing.T) {
	k, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if err := k.LoadString("p(seed0). q(X) :- p(X)."); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := k.Assert(term.NewAtom("p", term.Sym(fmt.Sprintf("w%d_%d", w, i)))); err != nil {
					fail("assert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			subject, _ := parser.ParseAtom("q(X)")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := k.RetrieveContext(ctx, subject, nil); err != nil {
					fail("retrieve: %v", err)
					return
				}
				_ = k.LastStats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := k.Checkpoint(); err != nil {
				fail("checkpoint: %v", err)
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Everything written before the checkpoints must still be
	// derivable after reopening.
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseUnderLoad closes the KB while queries and mutations are in
// flight: every operation either completes normally or reports
// ErrClosed — never a raw I/O error from the store closing underneath
// an evaluation.
func TestCloseUnderLoad(t *testing.T) {
	k, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.LoadString("p(a). p(b). q(X) :- p(X)."); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	subject, _ := parser.ParseAtom("q(X)")
	var wg sync.WaitGroup
	var unexpected atomic.Int32
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				var err error
				switch w % 3 {
				case 0:
					_, err = k.RetrieveContext(ctx, subject, nil)
				case 1:
					err = k.Assert(term.NewAtom("p", term.Sym(fmt.Sprintf("c%d_%d", w, i))))
				case 2:
					err = k.Checkpoint()
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						unexpected.Add(1)
						t.Errorf("worker %d: unstructured post-close error: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := k.Close(); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	wg.Wait()

	// Idempotent double close.
	if err := k.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// Every entry point reports the structured error now.
	if _, err := k.RetrieveContext(ctx, subject, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("retrieve after close: %v", err)
	}
	if err := k.Assert(term.NewAtom("p", term.Sym("late"))); !errors.Is(err, ErrClosed) {
		t.Errorf("assert after close: %v", err)
	}
	if err := k.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint after close: %v", err)
	}
	if _, err := k.Retract(term.NewAtom("p", term.Sym("a"))); !errors.Is(err, ErrClosed) {
		t.Errorf("retract after close: %v", err)
	}
	if err := k.LoadString("r(z)."); !errors.Is(err, ErrClosed) {
		t.Errorf("load after close: %v", err)
	}
	if _, err := k.ExplainContext(ctx, subject, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("explain after close: %v", err)
	}
	if _, err := k.Describe(subject, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("describe after close: %v", err)
	}
	if _, err := k.CheckConstraints(); !errors.Is(err, ErrClosed) {
		t.Errorf("check after close: %v", err)
	}
}

// TestRetractDurable retracts a fact on a durable KB and confirms the
// tombstone survives a crash-style reopen (no checkpoint).
func TestRetractDurable(t *testing.T) {
	dir := t.TempDir()
	k, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.LoadString("p(a). p(b)."); err != nil {
		t.Fatal(err)
	}
	if removed, err := k.Retract(term.NewAtom("p", term.Sym("a"))); err != nil || !removed {
		t.Fatalf("retract: removed=%v err=%v", removed, err)
	}
	if removed, err := k.Retract(term.NewAtom("p", term.Sym("a"))); err != nil || removed {
		t.Fatalf("double retract: removed=%v err=%v", removed, err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	subject, _ := parser.ParseAtom("p(X)")
	res, err := k2.Retrieve(subject, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Atoms(subject); len(got) != 1 || got[0].String() != "p(b)" {
		t.Errorf("after reopen: %v, want only p(b)", got)
	}
}

// TestGenerationCounter pins the invalidation contract of prepared
// statements: loads and declaring asserts bump the generation;
// fact-only asserts do not.
func TestGenerationCounter(t *testing.T) {
	k := New()
	g0 := k.Generation()
	if err := k.LoadString("p(a)."); err != nil {
		t.Fatal(err)
	}
	g1 := k.Generation()
	if g1 == g0 {
		t.Error("load did not bump the generation")
	}
	if err := k.Assert(term.NewAtom("p", term.Sym("b"))); err != nil {
		t.Fatal(err)
	}
	if k.Generation() != g1 {
		t.Error("fact-only assert bumped the generation")
	}
	if err := k.Assert(term.NewAtom("fresh", term.Sym("x"))); err != nil {
		t.Fatal(err)
	}
	if k.Generation() == g1 {
		t.Error("declaring assert did not bump the generation")
	}
}

package kb

import (
	"fmt"
	"strings"
	"testing"

	"kdb/internal/governor"
	"kdb/internal/obs"
)

const obsTestProgram = `
student(ann, math, 3.9).
student(bob, cs, 3.5).
enroll(ann, databases).
honor(X) :- student(X, M, G), G > 3.7.
`

// spanNames collects the names of a span's direct children.
func spanNames(sp *obs.Span) []string {
	var out []string
	for _, c := range sp.Children() {
		out = append(out, c.Name())
	}
	return out
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestTracedDescribeSpanTree is the acceptance shape: a describe query
// through the string path records parse, analyze, eval, and describe
// phases with nonzero durations under one root.
func TestTracedDescribeSpanTree(t *testing.T) {
	tr := obs.NewTracer()
	k := New(WithTracer(tr))
	if err := k.LoadString(obsTestProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`describe honor(X).`); err != nil {
		t.Fatal(err)
	}
	root := tr.Last()
	if root == nil {
		t.Fatal("no trace recorded")
	}
	if root.Name() != "query" {
		t.Errorf("root = %q, want query", root.Name())
	}
	kindOK := false
	for _, a := range root.Attrs() {
		if a.Key == "kind" && a.Str == "describe" {
			kindOK = true
		}
	}
	if !kindOK {
		t.Errorf("root attrs = %v, want kind=describe", root.Attrs())
	}
	names := spanNames(root)
	for _, phase := range []string{"parse", "analyze", "eval", "describe"} {
		if !hasName(names, phase) {
			t.Errorf("missing %q phase; children = %v", phase, names)
		}
	}
	for _, c := range root.Children() {
		if c.Duration() <= 0 {
			t.Errorf("phase %q has zero duration", c.Name())
		}
	}
	if root.Duration() <= 0 {
		t.Error("root has zero duration")
	}
}

// TestTracedRetrieveSpanTree checks the retrieve path: analyze and eval
// phases, per-SCC children with worker attribution, and a storage
// probe summary.
func TestTracedRetrieveSpanTree(t *testing.T) {
	tr := obs.NewTracer()
	k := New(WithTracer(tr), WithParallelism(2))
	if err := k.LoadString(obsTestProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	root := tr.Last()
	if root == nil {
		t.Fatal("no trace recorded")
	}
	names := spanNames(root)
	for _, phase := range []string{"parse", "analyze", "eval", "storage"} {
		if !hasName(names, phase) {
			t.Errorf("missing %q phase; children = %v", phase, names)
		}
	}
	sccs := 0
	for _, c := range root.Children() {
		if c.Name() != "eval" {
			continue
		}
		for _, s := range c.Children() {
			if s.Name() == "scc" {
				sccs++
				if s.Worker() < 0 {
					t.Error("scc span lacks worker attribution")
				}
			}
		}
	}
	if sccs == 0 {
		t.Error("no scc spans under eval")
	}
}

// TestTraceSingleRootPerQuery guards the double-counting bug:
// ExecStringContext delegates to ExecContext, and only the outermost
// layer may open a root span and record the query metrics.
func TestTraceSingleRootPerQuery(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	k := New(WithTracer(tr), WithMetrics(reg))
	if err := k.LoadString(obsTestProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Recent()); got != 1 {
		t.Errorf("traces recorded = %d, want 1", got)
	}
	total := 0.0
	for _, p := range reg.Snapshot() {
		if p.Name == "kdb_queries_total" {
			total += p.Value
		}
	}
	if total != 1 {
		t.Errorf("kdb_queries_total = %v, want 1", total)
	}
}

// TestMetricsRecording checks the fold of evaluation statistics and
// describe work into the registry.
func TestMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	k := New(WithMetrics(reg))
	if err := k.LoadString(obsTestProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`describe honor(X).`); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	var latencyCount int64
	for _, p := range reg.Snapshot() {
		switch p.Name {
		case "kdb_queries_total", "kdb_facts_derived_total", "kdb_describe_nodes_total":
			got[p.Name] += p.Value
		case "kdb_query_duration_seconds":
			latencyCount += p.Count
		}
	}
	if got["kdb_queries_total"] != 2 {
		t.Errorf("kdb_queries_total = %v, want 2", got["kdb_queries_total"])
	}
	if latencyCount != 2 {
		t.Errorf("latency observations = %d, want 2", latencyCount)
	}
	if got["kdb_facts_derived_total"] == 0 {
		t.Error("kdb_facts_derived_total = 0, want > 0")
	}
	if got["kdb_describe_nodes_total"] == 0 {
		t.Error("kdb_describe_nodes_total = 0, want > 0")
	}
}

// TestStopReasonMetric checks governed stops land in
// kdb_query_stops_total with the structured reason.
func TestStopReasonMetric(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, (i+1)%50)
	}
	sb.WriteString("reach(X, Y) :- edge(X, Y).\n")
	sb.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	reg := obs.NewRegistry()
	k := New(WithMetrics(reg), WithQueryLimits(governor.Limits{MaxFacts: 5}))
	if err := k.LoadString(sb.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`retrieve reach(X, Y).`); err == nil {
		t.Fatal("expected a limit stop")
	}
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == "kdb_query_stops_total" && p.Labels["reason"] == "limit:facts" && p.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("kdb_query_stops_total{reason=\"limit:facts\"} not recorded")
	}
}

// TestSetTracerRuntimeToggle mirrors the REPL's `.trace on|off`.
func TestSetTracerRuntimeToggle(t *testing.T) {
	k := New()
	if err := k.LoadString(obsTestProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	k.SetTracer(tr)
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	if tr.Last() == nil {
		t.Fatal("no trace after SetTracer")
	}
	k.SetTracer(nil)
	prev := tr.Last()
	if _, err := k.ExecString(`retrieve honor(X).`); err != nil {
		t.Fatal(err)
	}
	if tr.Last() != prev {
		t.Error("trace recorded after SetTracer(nil)")
	}
}

// TestDisabledObservabilityAllocs asserts the kb-layer zero-cost
// contract: with neither tracer nor metrics, beginQuery adds no
// allocations.
func TestDisabledObservabilityAllocs(t *testing.T) {
	k := New()
	ctx := t.Context()
	allocs := testing.AllocsPerRun(200, func() {
		ctx2, finish := k.beginQuery(ctx)
		if ctx2 != ctx || finish != nil {
			t.Fatal("disabled beginQuery must return ctx unchanged and nil finish")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled beginQuery allocates %v per op, want 0", allocs)
	}
}

package kb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"kdb/internal/obs"
)

func fixedClock() func() time.Time {
	return func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
}

func TestQueryLogRecordsQueries(t *testing.T) {
	var buf bytes.Buffer
	ql := obs.NewQueryLog(&buf, 0)
	ql.SetClock(fixedClock())
	k := New(WithQueryLog(ql))
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("retrieve hub(X)."); err == nil {
		// hub is not defined in routesProgram; either way the log gets a line.
		t.Log("retrieve hub succeeded")
	}
	if _, err := k.ExecString("retrieve reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("explain reachable(la, ny)."); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("this is not a statement."); err == nil {
		t.Fatal("malformed statement parsed")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d log lines, want 4:\n%s", len(lines), buf.String())
	}
	type rec struct {
		Time        string `json:"time"`
		Stmt        string `json:"stmt"`
		Kind        string `json:"kind"`
		DurUS       int64  `json:"dur_us"`
		Error       string `json:"error"`
		Engine      string `json:"engine"`
		Facts       int64  `json:"facts"`
		ProvEntries int64  `json:"provenance_entries"`
	}
	var recs []rec
	for _, l := range lines {
		var r rec
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if r.Time != "2026-01-02T03:04:05Z" {
			t.Errorf("time = %q, want the fixed clock", r.Time)
		}
		recs = append(recs, r)
	}
	if recs[1].Kind != "retrieve" || recs[1].Stmt != "retrieve reachable(la, X)." {
		t.Errorf("retrieve record: %+v", recs[1])
	}
	if recs[1].Engine != "seminaive" || recs[1].Facts == 0 {
		t.Errorf("retrieve record missing eval deltas: %+v", recs[1])
	}
	if recs[1].ProvEntries != 0 {
		t.Errorf("plain retrieve recorded provenance: %+v", recs[1])
	}
	if recs[2].Kind != "explain" || recs[2].ProvEntries == 0 {
		t.Errorf("explain record: %+v", recs[2])
	}
	if recs[3].Kind != "parse" || recs[3].Error == "" {
		t.Errorf("parse-failure record: %+v", recs[3])
	}
}

func TestQueryLogSlowThreshold(t *testing.T) {
	var buf bytes.Buffer
	ql := obs.NewQueryLog(&buf, time.Hour) // nothing is that slow
	k := New(WithQueryLog(ql))
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("retrieve reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast query logged despite slow threshold: %s", buf.String())
	}
}

func TestQueryLogTraceID(t *testing.T) {
	var buf bytes.Buffer
	ql := obs.NewQueryLog(&buf, 0)
	tr := obs.NewTracer()
	k := New(WithQueryLog(ql), WithTracer(tr))
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ExecString("retrieve reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		TraceID uint64 `json:"trace_id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID == 0 {
		t.Error("trace_id missing with tracing enabled")
	}
	if root := tr.Last(); root == nil || root.ID() != rec.TraceID {
		t.Error("trace_id does not match the root span")
	}
	// File-level join: the JSONL trace export carries the same id as
	// span_id on its root record.
	var trace bytes.Buffer
	if err := obs.WriteJSONL(&trace, tr.Last()); err != nil {
		t.Fatal(err)
	}
	var span struct {
		SpanID uint64 `json:"span_id"`
	}
	first, _, _ := bytes.Cut(trace.Bytes(), []byte("\n"))
	if err := json.Unmarshal(first, &span); err != nil {
		t.Fatal(err)
	}
	if span.SpanID != rec.TraceID {
		t.Errorf("trace file span_id = %d, query log trace_id = %d", span.SpanID, rec.TraceID)
	}
}

func TestSetQueryLogDetach(t *testing.T) {
	var buf bytes.Buffer
	k := New(WithQueryLog(obs.NewQueryLog(&buf, 0)))
	if err := k.LoadString(routesProgram); err != nil {
		t.Fatal(err)
	}
	k.SetQueryLog(nil)
	if _, err := k.ExecString("retrieve reachable(la, X)."); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("detached query log still wrote: %s", buf.String())
	}
}

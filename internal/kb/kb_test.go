package kb

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"kdb/internal/core"
	"kdb/internal/parser"
	"kdb/internal/term"
)

// The paper's full example database (§2.2) with sample facts.
const universityKB = `
% --- EDB facts ---
student(ann, math, 3.9).
student(bob, cs, 3.5).
student(cora, math, 3.8).
student(dan, cs, 4).
professor(susan, cs, "x5-1212").
professor(tom, math, "x5-3434").
course(databases, 4).
course(datastructures, 3).
course(programming, 3).
enroll(ann, databases).
enroll(bob, databases).
enroll(dan, databases).
teach(susan, databases).
prereq(databases, datastructures).
prereq(datastructures, programming).
taught(susan, databases, f89, 3.5).
complete(ann, databases, f89, 3.6).
complete(cora, databases, f88, 4).

% --- IDB rules (verbatim from the paper) ---
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).

% --- schema annotations ---
@key student/3 1.
@name prior_step chain.
`

func loadKB(t testing.TB, src string) *KB {
	t.Helper()
	k := New()
	if err := k.LoadString(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	return k
}

func execStr(t testing.TB, k *KB, q string) string {
	t.Helper()
	res, err := k.ExecString(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res.String()
}

func TestLoadClassifiesPredicates(t *testing.T) {
	k := loadKB(t, universityKB)
	cat := k.Catalog()
	for _, p := range []string{"student", "professor", "enroll", "prereq", "complete"} {
		if !cat.IsEDB(p) {
			t.Errorf("%s must be EDB", p)
		}
	}
	for _, p := range []string{"honor", "prior", "can_ta"} {
		if !cat.IsIDB(p) {
			t.Errorf("%s must be IDB", p)
		}
	}
	if k.FactCount() != 18 {
		t.Errorf("FactCount = %d, want 18", k.FactCount())
	}
	if len(k.Rules()) != 5 {
		t.Errorf("rules = %d, want 5", len(k.Rules()))
	}
	if got := cat.Lookup("student").Keys; len(got) != 1 || got[0][0] != 1 {
		t.Errorf("student keys = %v", got)
	}
	if cat.DisplayName("prior_step") != "chain" {
		t.Errorf("display name = %q", cat.DisplayName("prior_step"))
	}
}

func TestExecRetrieve(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `retrieve honor(X) where enroll(X, databases).`)
	want := "honor(ann)\nhonor(dan)"
	if got != want {
		t.Errorf("= %q, want %q", got, want)
	}
	if got := execStr(t, k, `retrieve honor(zoe).`); got != "no answers" {
		t.Errorf("= %q", got)
	}
}

func TestExecDescribe(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `describe honor(X).`)
	if got != "honor(X) <- student(X, Y, Z) and Z > 3.7" {
		t.Errorf("= %q", got)
	}
}

func TestExecDescribeUsesDisplayNames(t *testing.T) {
	k := loadKB(t, universityKB)
	k.SetDescribeOptions(core.Options{KeepSteps: true})
	got := execStr(t, k, `describe prior(X, Y) where prior(databases, Y).`)
	if !strings.Contains(got, "chain(databases, X)") {
		t.Errorf("step predicate must render with its @name: %q", got)
	}
	// Default (modified transformation) prefers the original predicate.
	k.SetDescribeOptions(core.Options{})
	got = execStr(t, k, `describe prior(X, Y) where prior(databases, Y).`)
	if !strings.Contains(got, "prior(X, databases)") {
		t.Errorf("modified rendering expected: %q", got)
	}
}

func TestExecDescribeNecessary(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `describe honor(X) where necessary complete(X, Y, Z, U) and U > 3.3.`)
	if got != "no answer" {
		t.Errorf("= %q, want no answer", got)
	}
}

func TestExecDescribeNot(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `describe can_ta(X, Y) where not honor(X).`)
	if !strings.HasPrefix(got, "false") {
		t.Errorf("= %q, want false (honor necessary)", got)
	}
}

func TestExecSubjectless(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).`)
	if !strings.HasPrefix(got, "false") {
		t.Errorf("= %q, want false (paper §6 ext. 3 with @key student/3 1)", got)
	}
	got = execStr(t, k, `describe where student(X, Y, Z) and Z > 3.8 and can_ta(X, U).`)
	if !strings.HasPrefix(got, "true") {
		t.Errorf("= %q, want true", got)
	}
}

func TestExecWildcard(t *testing.T) {
	k := loadKB(t, universityKB)
	got := execStr(t, k, `describe * where honor(X).`)
	if !strings.Contains(got, "can_ta(X, W2) <- complete(X, W2,") {
		t.Errorf("= %q", got)
	}
	got = execStr(t, k, `describe * where professor(P, D, E).`)
	if got != "no subjects are derivable from this qualifier" {
		t.Errorf("= %q", got)
	}
}

func TestExecCompare(t *testing.T) {
	k := loadKB(t, universityKB+`
deans_list(X) :- student(X, M, G), G > 3.9.
`)
	got := execStr(t, k, `compare (describe honor(X)) with (describe deans_list(X)).`)
	if !strings.Contains(got, "left subsumes right") {
		t.Errorf("= %q", got)
	}
}

func TestExecErrors(t *testing.T) {
	k := loadKB(t, universityKB)
	for _, q := range []string{
		`describe student(X, Y, Z).`,             // EDB subject
		`describe * where not honor(X).`,         // not in wildcard
		`describe where not honor(X).`,           // not in subjectless
		`retrieve student(X, Y, Z) where X = Y.`, // var = var qualifier
	} {
		if _, err := k.ExecString(q); err == nil {
			t.Errorf("ExecString(%q) succeeded, want error", q)
		}
	}
}

func TestEngines(t *testing.T) {
	k := loadKB(t, universityKB)
	var results []string
	for _, e := range []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic} {
		if err := k.SetEngine(e); err != nil {
			t.Fatal(err)
		}
		results = append(results, execStr(t, k, `retrieve prior(databases, Y).`))
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("engines disagree: %q", results)
	}
	if err := k.SetEngine("quantum"); err == nil {
		t.Error("unknown engine must fail")
	}
}

func TestAssertAndRetrieve(t *testing.T) {
	k := loadKB(t, universityKB)
	if err := k.Assert(term.NewAtom("enroll", term.Sym("cora"), term.Sym("databases"))); err != nil {
		t.Fatal(err)
	}
	got := execStr(t, k, `retrieve honor(X) where enroll(X, databases).`)
	if !strings.Contains(got, "honor(cora)") {
		t.Errorf("= %q", got)
	}
	// IDB predicates reject direct assertion.
	if err := k.Assert(term.NewAtom("honor", term.Sym("zoe"))); err == nil {
		t.Error("asserting an IDB fact must fail")
	}
	// Arity mismatch.
	if err := k.Assert(term.NewAtom("enroll", term.Sym("x"))); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestIncrementalLoadPromotesPredicate(t *testing.T) {
	k := New()
	if err := k.LoadString(`likes(ann, bob). likes(bob, cora).`); err != nil {
		t.Fatal(err)
	}
	if !k.Catalog().IsEDB("likes") {
		t.Fatal("likes starts extensional")
	}
	// A later rule promotes likes to IDB; its stored facts must remain
	// visible to queries.
	if err := k.LoadString(`likes(X, Z) :- likes(X, Y), likes(Y, Z).`); err != nil {
		t.Fatal(err)
	}
	if !k.Catalog().IsIDB("likes") {
		t.Fatal("likes must be promoted")
	}
	got := execStr(t, k, `retrieve likes(ann, X).`)
	want := "likes(ann, bob)\nlikes(ann, cora)"
	if got != want {
		t.Errorf("= %q, want %q", got, want)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`student(a). student(a, b).`,           // arity conflict
		`p(X) :- q(X). q(a, b). q(c) :- p(c).`, // q arity conflict
		`@key student/3 1. student(a, b).`,     // @key arity conflict
	}
	for _, src := range cases {
		k := New()
		if err := k.LoadString(src); err == nil {
			t.Errorf("LoadString(%q) succeeded, want error", src)
		}
	}
}

func TestValidate(t *testing.T) {
	k := loadKB(t, universityKB)
	if v := k.Validate(); len(v) != 0 {
		t.Errorf("university KB must be clean: %v", v)
	}
	k2 := loadKB(t, `
sym(X, Y) :- sym(Y, X).
sym(X, Y) :- base(X, Y).
`)
	if v := k2.Validate(); len(v) == 0 {
		t.Error("symmetry rule must be flagged")
	}
}

func TestDurableKB(t *testing.T) {
	dir := t.TempDir()
	k, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.LoadString(`student(ann, math, 3.9). student(bob, cs, 3.2).`); err != nil {
		t.Fatal(err)
	}
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: facts recovered, rules reloaded from source.
	k2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if k2.FactCount() != 2 {
		t.Fatalf("recovered %d facts, want 2", k2.FactCount())
	}
	if err := k2.LoadString(`honor(X) :- student(X, M, G), G > 3.7.`); err != nil {
		t.Fatal(err)
	}
	got := execStr(t, k2, `retrieve honor(X).`)
	if got != "honor(ann)" {
		t.Errorf("= %q", got)
	}
}

func TestRetrieveAllExamplesAgainstAllEngines(t *testing.T) {
	queries := []string{
		`retrieve honor(X).`,
		`retrieve honor(X) where enroll(X, databases).`,
		`retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.`,
		`retrieve prior(databases, Y).`,
		`retrieve prior(X, programming).`,
		`retrieve can_ta(X, databases).`,
	}
	k := loadKB(t, universityKB)
	for _, q := range queries {
		var outs []string
		for _, e := range []EngineKind{EngineNaive, EngineSemiNaive, EngineTopDown, EngineMagic} {
			if err := k.SetEngine(e); err != nil {
				t.Fatal(err)
			}
			outs = append(outs, execStr(t, k, q))
		}
		sort.Strings(outs)
		if !reflect.DeepEqual(outs[0], outs[len(outs)-1]) {
			t.Errorf("query %q: engines disagree: %q", q, outs)
		}
	}
}

func TestExecResultStringForms(t *testing.T) {
	k := loadKB(t, universityKB)
	res, err := k.Exec(&parser.Retrieve{Subject: term.NewAtom("honor", term.Var("X"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrieve == nil || res.String() == "" {
		t.Error("retrieve result must render")
	}
	if (&ExecResult{}).String() != "no result" {
		t.Error("zero ExecResult must render as no result")
	}
}

func BenchmarkExecRetrieve(b *testing.B) {
	k := loadKB(b, universityKB)
	q, err := parser.ParseQuery(`retrieve honor(X) where enroll(X, databases).`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecDescribe(b *testing.B) {
	k := loadKB(b, universityKB)
	q, err := parser.ParseQuery(`describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProvenanceRendering(t *testing.T) {
	k := loadKB(t, universityKB)
	k.SetProvenance(true)
	got := execStr(t, k, `describe can_ta(X, databases) where student(X, math, V) and V > 3.7.`)
	if !strings.Contains(got, "via can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3,") {
		t.Errorf("provenance missing rule 1: %q", got)
	}
	if !strings.Contains(got, "via honor(X) :- student(X, Y, Z), Z > 3.7.") {
		t.Errorf("provenance missing honor rule: %q", got)
	}
	// Contradictions and empty answers render without provenance noise.
	got = execStr(t, k, `describe honor(X) where student(X, math, V) and V < 3.`)
	if !strings.Contains(got, "contradicts") || strings.Contains(got, "via ") {
		t.Errorf("= %q", got)
	}
	k.SetProvenance(false)
	got = execStr(t, k, `describe honor(X).`)
	if strings.Contains(got, "via ") {
		t.Errorf("provenance off must not render: %q", got)
	}
}

package kb

import (
	"context"
	"sync/atomic"
	"time"

	"kdb/internal/eval"
	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/obs/profile"
	"kdb/internal/obs/sysrel"
	"kdb/internal/parser"
)

// WithTracer attaches a span tracer: every Exec/ExecString query records
// a span tree (parse, analyze, eval, describe, storage phases) that the
// tracer retains and hands to its OnFinish callback. A nil tracer keeps
// the query path allocation-free.
func WithTracer(t *obs.Tracer) Option {
	return func(k *KB) { k.tracer.Store(t) }
}

// WithMetrics registers the knowledge base's instruments on reg — query
// latency histograms by statement kind, derived-fact and lookup tallies,
// governor stop reasons — and wires the storage observer so WAL append,
// fsync, and snapshot timings land on the same registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(k *KB) {
		if reg == nil {
			return
		}
		k.qmetrics.Store(obs.NewQueryMetrics(reg))
		k.store.SetObserver(obs.NewStorageMetrics(reg))
		k.sys.SetRegistry(reg)
	}
}

// WithMetricsHistory attaches a metrics-history ring buffer: its
// retained samples back the sys_metric_history virtual relation. The
// caller owns the buffer's sampling lifecycle (Start/Stop); the KB
// only reads snapshots.
func WithMetricsHistory(b *history.Buffer) Option {
	return func(k *KB) { k.sys.SetHistory(b) }
}

// WithQueryStats turns on per-statement execution statistics: every
// finished Exec-path query folds its latency into a bounded
// per-statement aggregate, queryable as the sys_query_stats virtual
// relation. Off by default — the aggregate costs one mutex-guarded
// map update per query.
func WithQueryStats() Option {
	return func(k *KB) {
		qs := sysrel.NewQueryStats(0)
		k.qstats.Store(qs)
		k.sys.SetQueryStats(qs)
	}
}

// WithoutSystemRelations disables the sys_* virtual relations: the
// provider is dropped and sys_ predicates behave like any other
// unknown predicate in queries (the namespace itself stays reserved —
// definitions and asserts are still rejected). Mainly for measuring
// the provider's overhead; there is no cost to leaving it on for
// programs that never mention sys_*.
func WithoutSystemRelations() Option {
	// Construction-time: the KB is not yet published to any other
	// goroutine when options run.
	return func(k *KB) { k.sys = nil } //kdb:nolint lockcheck
}

// WithQueryLog attaches a structured query log: every finished query
// (or only those at or above the log's slow threshold) appends one
// JSONL record — statement, kind, latency, stop reason, per-query
// EvalStats deltas, and the trace id of the query's root span when
// tracing is also on.
func WithQueryLog(l *obs.QueryLog) Option {
	return func(k *KB) { k.qlog.Store(l) }
}

// WithActivity attaches an in-flight query registry: every Exec-path
// query registers itself (statement, kind, tenant/client, trace id,
// stats-so-far) for the duration of its evaluation, and canceling its
// registry entry cancels the query's context — kdb's pg_stat_activity.
// The registry may be shared across KBs (the server registers every
// tenant's queries in one).
func WithActivity(reg *obs.ActivityRegistry) Option {
	return func(k *KB) {
		k.activity.Store(reg)
		k.sys.SetActivity(reg)
	}
}

// SetActivityRegistry attaches (or, given nil, detaches) the in-flight
// query registry at runtime; it takes effect on the next query.
func (k *KB) SetActivityRegistry(reg *obs.ActivityRegistry) {
	k.activity.Store(reg)
	k.sys.SetActivity(reg)
}

// ActivityRegistry returns the attached in-flight query registry, or
// nil.
func (k *KB) ActivityRegistry() *obs.ActivityRegistry { return k.activity.Load() }

// SetTracer attaches (or, given nil, detaches) the span tracer at
// runtime; it takes effect on the next query.
func (k *KB) SetTracer(t *obs.Tracer) { k.tracer.Store(t) }

// Tracer returns the attached span tracer, or nil.
func (k *KB) Tracer() *obs.Tracer { return k.tracer.Load() }

// SetQueryLog attaches (or, given nil, detaches) the structured query
// log at runtime; it takes effect on the next query.
func (k *KB) SetQueryLog(l *obs.QueryLog) { k.qlog.Store(l) }

// queryMark marks a context already inside an observed query, so nested
// Exec paths (ExecStringContext → ExecContext, intensional answering)
// neither open a second root span nor double-count metrics.
type queryMark struct{}

// profileHolder lets the finish callback of beginQuery pick up the
// per-rule profile a nested ProfileContext recorded, so slow-log
// records carry their own cost breakdown. beginQuery plants it before
// the statement kind is known; ProfileContext fills it.
type profileHolder struct {
	p atomic.Pointer[profile.Profile]
}

type profileHolderKey struct{}

func profileHolderFromContext(ctx context.Context) *profileHolder {
	h, _ := ctx.Value(profileHolderKey{}).(*profileHolder)
	return h
}

// activityMark mirrors queryMark for the activity registry: nested Exec
// paths must not register a second in-flight entry.
type activityMark struct{}

// beginActivity registers the query in the attached activity registry
// under a cancelable child context and returns it with a done func;
// done deregisters. Returns ctx, nil when no registry is attached or
// the context is already inside a registered query.
func (k *KB) beginActivity(ctx context.Context, kind, stmt string) (context.Context, func()) {
	reg := k.activity.Load()
	if reg == nil || ctx.Value(activityMark{}) != nil {
		return ctx, nil
	}
	ctx = context.WithValue(ctx, activityMark{}, true)
	cctx, cancel := context.WithCancel(ctx)
	ci, _ := obs.ClientFromContext(ctx)
	a := reg.Begin(stmt, kind, ci.Tenant, ci.Client, obs.SpanFromContext(ctx).TraceID(), cancel)
	cctx = obs.ContextWithActivity(cctx, a)
	return cctx, func() {
		reg.End(a)
		cancel()
	}
}

// beginQuery opens the per-query observability scope: a root "query"
// span placed in the context for the engines to hang children on, and a
// latency clock. When the context already carries a span (the server's
// "serve" phase), the query span is created as its child and the parent
// owns trace retention; otherwise a fresh root is started on the KB's
// tracer and finished there. The returned finish func ends the scope;
// call it exactly once with the statement kind, the statement text, and
// the query's error. When no tracer, metrics, query log, or query
// statistics is configured — or when the context is already inside an
// observed query — ctx comes back untouched and finish is nil, keeping
// the disabled path free of allocations.
func (k *KB) beginQuery(ctx context.Context) (context.Context, func(kind, stmt string, err error)) {
	tr := k.tracer.Load()
	qm := k.qmetrics.Load()
	ql := k.qlog.Load()
	qs := k.qstats.Load()
	if (tr == nil && qm == nil && ql == nil && qs == nil) || ctx.Value(queryMark{}) != nil {
		return ctx, nil
	}
	ctx = context.WithValue(ctx, queryMark{}, true)
	var root *obs.Span
	owned := true
	if parent := obs.SpanFromContext(ctx); parent != nil {
		root = parent.Child("query")
		owned = false
	} else {
		root = tr.Start("query")
	}
	ctx = obs.ContextWithSpan(ctx, root)
	var holder *profileHolder
	if ql != nil {
		holder = &profileHolder{}
		ctx = context.WithValue(ctx, profileHolderKey{}, holder)
	}
	start := time.Now()
	prev := k.lastStats.Load()
	ci, _ := obs.ClientFromContext(ctx)
	return ctx, func(kind, stmt string, err error) {
		d := time.Since(start)
		qs.Observe(stmt, d)
		stop := governor.StopReason(err)
		if stop == "error" {
			stop = "" // plain failures are not governed stops
		}
		root.SetStr("kind", kind)
		if stop != "" {
			root.SetStr("stop", stop)
		}
		if err != nil {
			root.SetBool("error", true)
		}
		// The latency sample carries the trace id, so the histogram
		// bucket's exemplar links to this query's trace and log line.
		qm.ObserveQueryTrace(kind, d, stop, err != nil, root.TraceID())
		st := k.lastStats.Load()
		freshStats := st != nil && st != prev
		if freshStats {
			qm.ObserveEval(int64(st.Facts), st.Lookups, st.Probes,
				st.Candidates, st.IndexBuilds, sumIterations(st), int64(st.ProvEntries))
		}
		if ql != nil {
			rec := obs.QueryLogRecord{
				Statement: stmt,
				Kind:      kind,
				DurUS:     d.Microseconds(),
				Stop:      stop,
				TraceID:   root.TraceID(),
				Tenant:    ci.Tenant,
				Client:    ci.Client,
			}
			if err != nil {
				rec.Error = err.Error()
			}
			if freshStats {
				rec.Engine = st.Engine
				rec.Facts = int64(st.Facts)
				rec.Lookups = st.Lookups
				rec.Probes = st.Probes
				rec.FullScans = st.FullScans
				rec.Candidates = st.Candidates
				rec.IndexBuilds = st.IndexBuilds
				rec.ProvEntries = int64(st.ProvEntries)
			}
			if p := holder.p.Load(); p != nil {
				rec.Profile = p.Rows()
			}
			ql.Observe(rec) // best-effort: a full disk must not fail the query
		}
		if owned {
			tr.Finish(root)
		} else {
			root.End()
		}
	}
}

// sumIterations totals the fixpoint rounds across an evaluation's SCCs.
func sumIterations(st *eval.EvalStats) int64 {
	n := int64(st.Passes) // top-down naive-iteration passes
	for _, c := range st.Components {
		n += int64(c.Iterations)
	}
	return n
}

// observeDescribe folds a finished describe search into the metrics.
func (k *KB) observeDescribe(nodes int) {
	k.qmetrics.Load().ObserveDescribe(int64(nodes))
}

// queryKind names the statement form for metrics and span labels.
func queryKind(q parser.Query) string {
	switch s := q.(type) {
	case *parser.Retrieve:
		return "retrieve"
	case *parser.Describe:
		switch {
		case s.Wildcard:
			return "describe-wildcard"
		case s.Subjectless:
			return "possible"
		case len(s.Not) > 0:
			return "describe-not"
		default:
			return "describe"
		}
	case *parser.Compare:
		return "compare"
	case *parser.Explain:
		return "explain"
	case *parser.Profile:
		return "profile"
	default:
		return "unknown"
	}
}

package kb

import (
	"strings"
	"testing"

	"kdb/internal/parser"
)

// Tests for integrity constraints — the paper's second Horn-clause form
// ¬(p1 ∧ … ∧ pn), written `:- p1, …, pn.` (§2.1).

func TestParseConstraints(t *testing.T) {
	prog, err := parser.ParseProgram(`
student(ann, math, 3.9).
:- enroll(X, C), suspended(X).
:- student(X, M, G), G > 4.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Constraints) != 2 || len(prog.Clauses) != 1 {
		t.Fatalf("constraints=%d clauses=%d", len(prog.Constraints), len(prog.Clauses))
	}
	if prog.Constraints[0][1].Pred != "suspended" {
		t.Errorf("constraint 0 = %v", prog.Constraints[0])
	}
	// A constraint of comparisons only is rejected.
	if _, err := parser.ParseProgram(`:- X > 3.`); err == nil {
		t.Error("comparison-only constraint must fail")
	}
	if _, err := parser.ParseProgram(`:- .`); err == nil {
		t.Error("empty constraint must fail")
	}
}

func TestCheckConstraintsOnData(t *testing.T) {
	k := loadKB(t, `
enroll(ann, databases).
enroll(bob, databases).
suspended(bob).
:- enroll(X, C), suspended(X).
`)
	if got := len(k.Constraints()); got != 1 {
		t.Fatalf("Constraints = %d", got)
	}
	violations, err := k.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "bob") {
		t.Errorf("violations = %v", violations)
	}
	// Clean data: no violations.
	k2 := loadKB(t, `
enroll(ann, databases).
:- enroll(X, C), suspended(X).
`)
	violations, err = k2.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations = %v", violations)
	}
}

func TestConstraintsOverIDBPredicates(t *testing.T) {
	// A constraint naming derived concepts is checked through the rules.
	k := loadKB(t, `
student(ann, math, 3.9).
complete(ann, probation_course, f89, 1.5).
honor(X) :- student(X, M, G), G > 3.7.
failing(X) :- complete(X, C, S, G), G < 2.
:- honor(X), failing(X).
`)
	violations, err := k.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Errorf("violations = %v", violations)
	}
}

func TestPossibleRespectsConstraints(t *testing.T) {
	// The intro's third example: "Could an honor student be foreign?" —
	// with a constraint forbidding it, the hypothetical contradicts the
	// stored knowledge.
	src := `
honor(X) :- student2(X, G, N), G > 3.7.
foreign(X) :- student2(X, G, N), N != usa.
@key student2/3 1.
`
	kAllowed := loadKB(t, src)
	res, err := kAllowed.ExecString(`describe where honor(X) and foreign(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "true") {
		t.Errorf("without a constraint the situation is possible: %q", res)
	}
	kForbidden := loadKB(t, src+`
:- honor(X), foreign(X).
`)
	res, err = kForbidden.ExecString(`describe where honor(X) and foreign(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "false") {
		t.Errorf("the constraint must forbid the situation: %q", res)
	}
}

func TestPossibleConstraintWithComparisons(t *testing.T) {
	// A purely extensional constraint with a comparison: nobody may take
	// more than 20 units.
	k := loadKB(t, `
takes(X, U) :- enrollment(X, U).
:- enrollment(X, U), U > 20.
`)
	res, err := k.ExecString(`describe where takes(X, U) and U > 25.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "false") {
		t.Errorf("25 units contradicts the 20-unit constraint: %q", res)
	}
	res, err = k.ExecString(`describe where takes(X, U) and U > 15.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "true") {
		t.Errorf("16 units is fine: %q", res)
	}
}

func TestDescribeNotRespectsConstraints(t *testing.T) {
	// eligible via staff is forbidden by a constraint, so excluding honor
	// leaves NO consistent route.
	k := loadKB(t, `
eligible(X) :- honor(X).
eligible(X) :- staff(X).
:- staff(X).
`)
	res, err := k.ExecString(`describe eligible(X) where not honor(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "false") {
		t.Errorf("the staff route is forbidden: %q", res)
	}
}

func TestConstraintArityChecked(t *testing.T) {
	k := New()
	if err := k.LoadString(`
enroll(ann, databases).
:- enroll(X).
`); err == nil {
		t.Error("constraint with wrong arity must fail to load")
	}
}

func TestValidateMetaIncludesConstraints(t *testing.T) {
	k := loadKB(t, `
p(a).
q(a).
:- p(X), q(X).
`)
	violations, err := k.CheckConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Errorf("violations = %v", violations)
	}
}

package depgraph

import (
	"testing"

	"kdb/internal/parser"
	"kdb/internal/term"
)

func rules(t *testing.T, src string) []term.Rule {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Clauses
}

// The paper's example IDB (§2.2).
const universityIDB = `
honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`

func TestDirectAndTransitiveDependency(t *testing.T) {
	g := New(rules(t, universityIDB))
	if !g.DirectlyDependsOn("honor", "student") {
		t.Error("honor directly depends on student")
	}
	if g.DirectlyDependsOn("honor", ">") {
		t.Error("comparisons are not dependency targets")
	}
	if !g.DirectlyDependsOn("can_ta", "honor") {
		t.Error("can_ta directly depends on honor")
	}
	if g.DirectlyDependsOn("can_ta", "student") {
		t.Error("can_ta does not DIRECTLY depend on student")
	}
	if !g.DependsOn("can_ta", "student") {
		t.Error("can_ta transitively depends on student")
	}
	if g.DependsOn("student", "can_ta") {
		t.Error("EDB predicates depend on nothing")
	}
	if !g.DependsOn("prior", "prior") {
		t.Error("a recursive predicate depends on itself")
	}
	if g.DependsOn("honor", "honor") {
		t.Error("honor is not recursive")
	}
}

func TestRecursionClassification(t *testing.T) {
	rs := rules(t, universityIDB)
	g := New(rs)
	if !g.IsRecursivePred("prior") {
		t.Error("prior is recursive")
	}
	for _, p := range []string{"honor", "can_ta", "student", "prereq"} {
		if g.IsRecursivePred(p) {
			t.Errorf("%s must not be recursive", p)
		}
	}
	// prior's second rule is recursive, strongly linear, typed.
	var rec term.Rule
	for _, r := range rs {
		if r.Head.Pred == "prior" && len(r.Body) == 2 {
			rec = r
		}
	}
	if !g.IsRecursiveRule(rec) || !g.IsLinear(rec) || !g.IsStronglyLinear(rec) {
		t.Errorf("prior recursive rule misclassified: rec=%v lin=%v strong=%v",
			g.IsRecursiveRule(rec), g.IsLinear(rec), g.IsStronglyLinear(rec))
	}
	if !TypedWRT(rec, "prior") {
		t.Error("prior rule is typed with respect to prior")
	}
	// The base rule is not recursive.
	base := rs[1]
	if g.IsRecursiveRule(base) || g.IsStronglyLinear(base) {
		t.Error("base rule misclassified as recursive")
	}
}

func TestDependsOnRecursive(t *testing.T) {
	g := New(rules(t, universityIDB+`
needs_path(X) :- prior(X, databases).
`))
	if !g.DependsOnRecursive("prior") {
		t.Error("prior depends on recursive (itself)")
	}
	if !g.DependsOnRecursive("needs_path") {
		t.Error("needs_path depends on recursive prior")
	}
	for _, p := range []string{"honor", "can_ta"} {
		if g.DependsOnRecursive(p) {
			t.Errorf("%s must not depend on a recursive predicate", p)
		}
	}
}

func TestMutualRecursion(t *testing.T) {
	g := New(rules(t, `
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`))
	if !g.MutuallyDependent("even", "odd") {
		t.Error("even and odd are mutually dependent")
	}
	if !g.IsRecursivePred("even") || !g.IsRecursivePred("odd") {
		t.Error("both even and odd are recursive")
	}
	// Mutual-recursion rules are linear but not strongly linear.
	for _, r := range g.RulesFor("even") {
		if len(r.Body) != 2 {
			continue
		}
		if !g.IsLinear(r) {
			t.Errorf("%v should be linear", r)
		}
		if g.IsStronglyLinear(r) {
			t.Errorf("%v should not be strongly linear", r)
		}
	}
	scc := g.SCC("even")
	if len(scc) != 2 || scc[0] != "even" || scc[1] != "odd" {
		t.Errorf("SCC(even) = %v", scc)
	}
}

func TestNonLinearRule(t *testing.T) {
	g := New(rules(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`))
	var dbl term.Rule
	for _, r := range g.RulesFor("anc") {
		if len(r.Body) == 2 {
			dbl = r
		}
	}
	if !g.IsRecursiveRule(dbl) {
		t.Error("doubling rule is recursive")
	}
	if g.IsLinear(dbl) || g.IsStronglyLinear(dbl) {
		t.Error("doubling rule is neither linear nor strongly linear")
	}
}

func TestTypedWRT(t *testing.T) {
	rs := rules(t, `
p(X, Y) :- p(X, Z), q(Z, Y).
r(X, Y) :- r(Y, X).
s(X) :- t(X, X).
u(X, Y) :- u(X, Z), u(Z, Y).
`)
	if !TypedWRT(rs[0], "p") {
		t.Error("rule 0 is typed wrt p: X and Z keep their positions")
	}
	if TypedWRT(rs[1], "r") {
		t.Error("symmetry rule is NOT typed wrt r (paper example)")
	}
	if !TypedWRT(rs[2], "s") {
		t.Error("rule 2 is trivially typed wrt s")
	}
	if TypedWRT(rs[2], "t") {
		t.Error("t(X, X) is not typed wrt t (paper example)")
	}
	if TypedWRT(rs[3], "u") {
		t.Error("u(X,Y) :- u(X,Z), u(Z,Y) is not typed wrt u: Z occurs at positions 2 and 1")
	}
	// Constants do not affect typedness.
	rs2 := rules(t, `p(X, Y) :- p(X, a), q(Y).`)
	if !TypedWRT(rs2[0], "p") {
		t.Error("constants are exempt from the typing requirement")
	}
}

func TestSCCOrder(t *testing.T) {
	g := New(rules(t, universityIDB))
	order := g.SCCOrder()
	pos := make(map[string]int)
	for i, comp := range order {
		for _, p := range comp {
			pos[p] = i
		}
	}
	// Dependencies must come before dependents.
	if !(pos["student"] < pos["honor"] && pos["honor"] < pos["can_ta"]) {
		t.Errorf("SCC order wrong: %v", order)
	}
	if !(pos["prereq"] < pos["prior"]) {
		t.Errorf("SCC order wrong: %v", order)
	}
}

func TestSCCDeps(t *testing.T) {
	g := New(rules(t, universityIDB+`
needs_path(X) :- prior(X, databases), honor(X).
`))
	order := g.SCCOrder()
	deps := g.SCCDeps()
	if len(deps) != len(order) {
		t.Fatalf("deps has %d entries for %d components", len(deps), len(order))
	}
	idx := make(map[string]int)
	for i, comp := range order {
		for _, p := range comp {
			idx[p] = i
		}
	}
	// Every dependency edge points at an earlier component.
	for i, ds := range deps {
		for _, d := range ds {
			if d >= i {
				t.Errorf("component %d (%v) depends on later component %d (%v)", i, order[i], d, order[d])
			}
		}
	}
	contains := func(ds []int, j int) bool {
		for _, d := range ds {
			if d == j {
				return true
			}
		}
		return false
	}
	// Direct cross-component dependencies are recorded; self-loops and
	// transitive-only edges are not.
	if !contains(deps[idx["honor"]], idx["student"]) {
		t.Errorf("honor's component must depend on student's: %v", deps[idx["honor"]])
	}
	if !contains(deps[idx["prior"]], idx["prereq"]) {
		t.Errorf("prior's component must depend on prereq's: %v", deps[idx["prior"]])
	}
	if contains(deps[idx["prior"]], idx["prior"]) {
		t.Errorf("recursive component must not list itself: %v", deps[idx["prior"]])
	}
	if contains(deps[idx["can_ta"]], idx["student"]) {
		t.Errorf("can_ta→student is transitive only, must not be a direct edge: %v", deps[idx["can_ta"]])
	}
	// needs_path joins two independent chains: both must be direct deps.
	np := idx["needs_path"]
	if !contains(deps[np], idx["prior"]) || !contains(deps[np], idx["honor"]) {
		t.Errorf("needs_path must depend on prior and honor: %v", deps[np])
	}
}

func TestCheckDiscipline(t *testing.T) {
	// The paper's example database obeys the discipline.
	g := New(rules(t, universityIDB))
	if v := g.CheckDiscipline(); len(v) != 0 {
		t.Errorf("university IDB must be clean, got %v", v)
	}
	// A symmetry rule violates typedness.
	g2 := New(rules(t, `
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
reach(X, Y) :- reach(Y, X).
`))
	vs := g2.CheckDiscipline()
	found := false
	for _, v := range vs {
		if v.Reason == "recursive rule is not typed with respect to its head predicate" {
			found = true
			if v.String() == "" {
				t.Error("violation must render")
			}
		}
	}
	if !found {
		t.Errorf("symmetry rule must violate typedness, got %v", vs)
	}
	// A doubling rule violates strong linearity.
	g3 := New(rules(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`))
	vs3 := g3.CheckDiscipline()
	if len(vs3) == 0 {
		t.Error("doubling rule must violate strong linearity")
	}
}

func TestMakeStronglyLinearPassThrough(t *testing.T) {
	rs := rules(t, universityIDB)
	out, err := MakeStronglyLinear(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rs) {
		t.Fatalf("rule count changed: %d → %d", len(rs), len(out))
	}
	for i := range rs {
		if !out[i].Equal(rs[i]) {
			t.Errorf("rule %d changed: %v → %v", i, rs[i], out[i])
		}
	}
}

func TestMakeStronglyLinearMutualRecursion(t *testing.T) {
	rs := rules(t, `
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`)
	out, err := MakeStronglyLinear(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := New(out)
	for _, r := range out {
		if g.IsRecursiveRule(r) && !g.IsStronglyLinear(r) {
			t.Errorf("rule %v is recursive but not strongly linear after rewrite", r)
		}
	}
	// even must now have a direct recursive rule through two succ steps.
	foundDirect := false
	for _, r := range g.RulesFor("even") {
		for _, a := range r.Body {
			if a.Pred == "even" {
				foundDirect = true
			}
		}
	}
	if !foundDirect {
		t.Errorf("expected a direct even-recursion after unfolding, got %v", out)
	}
}

func TestMakeStronglyLinearNonLinearFails(t *testing.T) {
	rs := rules(t, `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	if _, err := MakeStronglyLinear(rs, 8); err == nil {
		t.Error("non-linear recursion must fail to rewrite")
	}
}

func TestSCCUnknownPredicate(t *testing.T) {
	g := New(nil)
	if scc := g.SCC("ghost"); len(scc) != 1 || scc[0] != "ghost" {
		t.Errorf("SCC(ghost) = %v", scc)
	}
}

func BenchmarkNewGraph(b *testing.B) {
	rs := func() []term.Rule {
		p, err := parser.ParseProgram(universityIDB)
		if err != nil {
			b.Fatal(err)
		}
		return p.Clauses
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(rs)
	}
}

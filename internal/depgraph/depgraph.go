// Package depgraph analyzes the predicate dependency structure of a rule
// set, implementing the definitions of Section 2.1 of the paper: direct
// dependency, (transitive) dependency, recursive rules and predicates,
// linear and strongly linear recursive rules, and typedness of a rule
// with respect to a predicate. It also provides the rewrite promised by
// the paper's footnote 2 — every linear recursive rule can be rewritten
// as a strongly linear one — via rule unfolding, and the topological SCC
// order used by the bottom-up retrieve engines.
package depgraph

import (
	"fmt"
	"sort"

	"kdb/internal/term"
)

// Graph is the dependency analysis of a fixed rule set. Build one with
// New; it is immutable afterwards and safe for concurrent reads.
type Graph struct {
	rules []term.Rule

	// byHead indexes rules by head predicate.
	byHead map[string][]term.Rule
	// direct[p] is the set of predicates p directly depends on.
	direct map[string]map[string]bool
	// sccOf assigns each predicate its strongly connected component id.
	sccOf map[string]int
	// sccs lists components in reverse topological order as produced by
	// Tarjan: each component appears after the components it depends on.
	sccs [][]string
	// reach[p] is the set of predicates p (transitively) depends on.
	reach map[string]map[string]bool
}

// New analyzes the given rules. Comparison atoms are ignored as
// dependency targets (built-ins are leaves by construction).
func New(rules []term.Rule) *Graph {
	g := &Graph{
		rules:  rules,
		byHead: make(map[string][]term.Rule),
		direct: make(map[string]map[string]bool),
		sccOf:  make(map[string]int),
		reach:  make(map[string]map[string]bool),
	}
	nodes := make(map[string]bool)
	for _, r := range rules {
		g.byHead[r.Head.Pred] = append(g.byHead[r.Head.Pred], r)
		nodes[r.Head.Pred] = true
		if g.direct[r.Head.Pred] == nil {
			g.direct[r.Head.Pred] = make(map[string]bool)
		}
		for _, a := range r.Body {
			if term.IsComparison(a) {
				continue
			}
			g.direct[r.Head.Pred][a.Pred] = true
			nodes[a.Pred] = true
		}
	}
	g.tarjan(nodes)
	g.computeReach(nodes)
	return g
}

// tarjan computes strongly connected components over the predicate graph.
func (g *Graph) tarjan(nodes map[string]bool) {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic component order

	index := make(map[string]int, len(names))
	low := make(map[string]int, len(names))
	onStack := make(map[string]bool, len(names))
	var stack []string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		// Deterministic successor order.
		succs := make([]string, 0, len(g.direct[v]))
		for w := range g.direct[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			id := len(g.sccs)
			for _, w := range comp {
				g.sccOf[w] = id
			}
			g.sccs = append(g.sccs, comp)
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

func (g *Graph) computeReach(nodes map[string]bool) {
	// DFS from each node; graphs here are small (tens of predicates).
	for n := range nodes {
		seen := make(map[string]bool)
		var stack []string
		for w := range g.direct[n] {
			stack = append(stack, w)
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			for w := range g.direct[v] {
				if !seen[w] {
					stack = append(stack, w)
				}
			}
		}
		g.reach[n] = seen
	}
}

// RulesFor returns the rules whose head predicate is pred.
func (g *Graph) RulesFor(pred string) []term.Rule { return g.byHead[pred] }

// DirectlyDependsOn reports whether p directly depends on q (§2.1).
func (g *Graph) DirectlyDependsOn(p, q string) bool { return g.direct[p][q] }

// DependsOn reports whether p transitively depends on q (§2.1).
func (g *Graph) DependsOn(p, q string) bool { return g.reach[p][q] }

// Reach returns the set of predicates p transitively depends on. The
// returned map is shared with the graph; callers must not mutate it.
func (g *Graph) Reach(p string) map[string]bool { return g.reach[p] }

// MutuallyDependent reports whether p and q each depend on the other.
func (g *Graph) MutuallyDependent(p, q string) bool {
	return g.DependsOn(p, q) && g.DependsOn(q, p)
}

// IsRecursiveRule reports whether the rule is recursive: its head
// predicate and at least one body predicate are mutually dependent.
func (g *Graph) IsRecursiveRule(r term.Rule) bool {
	return g.recursiveOccurrences(r) > 0
}

// recursiveOccurrences counts the body atom occurrences whose predicate
// is mutually dependent with the head predicate. A body occurrence of the
// head predicate itself always counts.
func (g *Graph) recursiveOccurrences(r term.Rule) int {
	n := 0
	for _, a := range r.Body {
		if term.IsComparison(a) {
			continue
		}
		if a.Pred == r.Head.Pred || g.MutuallyDependent(r.Head.Pred, a.Pred) {
			n++
		}
	}
	return n
}

// IsLinear reports whether a recursive rule is linear: exactly one body
// occurrence is mutually recursive with the head (§2.1).
func (g *Graph) IsLinear(r term.Rule) bool { return g.recursiveOccurrences(r) == 1 }

// IsStronglyLinear reports whether a recursive rule is strongly linear:
// the head predicate occurs exactly once in the body (§2.1). A rule that
// is recursive only through mutual dependency (the head predicate absent
// from the body) is not strongly linear.
func (g *Graph) IsStronglyLinear(r term.Rule) bool {
	if !g.IsRecursiveRule(r) {
		return false
	}
	n := 0
	for _, a := range r.Body {
		if a.Pred == r.Head.Pred {
			n++
		}
	}
	return n == 1 && g.recursiveOccurrences(r) == 1
}

// IsRecursivePred reports whether the predicate heads at least one
// recursive rule (§2.1).
func (g *Graph) IsRecursivePred(p string) bool {
	for _, r := range g.byHead[p] {
		if g.IsRecursiveRule(r) {
			return true
		}
	}
	return false
}

// DependsOnRecursive reports whether the predicate is recursive or
// depends (transitively) on a recursive predicate. This is the
// precondition test of Algorithm 1: it applies only when the subject is
// NOT in this set (§4).
func (g *Graph) DependsOnRecursive(p string) bool {
	if g.IsRecursivePred(p) {
		return true
	}
	for q := range g.reach[p] {
		if g.IsRecursivePred(q) {
			return true
		}
	}
	return false
}

// SCC returns the strongly connected component containing p (sorted).
func (g *Graph) SCC(p string) []string {
	id, ok := g.sccOf[p]
	if !ok {
		return []string{p}
	}
	return g.sccs[id]
}

// SCCOrder returns the components in dependency order: every component
// appears after the components it depends on, so a bottom-up engine can
// evaluate them front to back.
func (g *Graph) SCCOrder() [][]string { return g.sccs }

// SCCDeps returns the edges of the condensation DAG: for each component
// of SCCOrder (by index), the sorted indices of the distinct components
// it directly depends on, self-edges excluded. Because SCCOrder lists
// components in dependency order, every listed index is smaller than the
// component's own — a scheduler can evaluate components with no pending
// dependencies concurrently and release dependents as they finish.
func (g *Graph) SCCDeps() [][]int {
	deps := make([][]int, len(g.sccs))
	for i, comp := range g.sccs {
		var seen map[int]bool
		for _, p := range comp {
			for q := range g.direct[p] {
				j, ok := g.sccOf[q]
				if !ok || j == i {
					continue
				}
				if seen == nil {
					seen = make(map[int]bool)
				}
				if !seen[j] {
					seen[j] = true
					deps[i] = append(deps[i], j)
				}
			}
		}
		sort.Ints(deps[i])
	}
	return deps
}

// TypedWRT reports whether the rule is typed with respect to pred: every
// variable occurs in at most one distinct position across all occurrences
// of pred in the rule, head included (§2.1). A rule containing p(X, Y)
// and p(Y, Z) is not typed with respect to p, nor is one containing
// q(X, X) typed with respect to q.
func TypedWRT(r term.Rule, pred string) bool {
	positions := make(map[term.Term]int)
	check := func(a term.Atom) bool {
		if a.Pred != pred {
			return true
		}
		for i, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			if prev, ok := positions[t]; ok && prev != i {
				return false
			}
			positions[t] = i
		}
		return true
	}
	if !check(r.Head) {
		return false
	}
	for _, a := range r.Body {
		if !check(a) {
			return false
		}
	}
	return true
}

// Violation describes one way a rule set departs from the paper's
// recursion discipline (all recursive rules strongly linear and typed
// with respect to their head predicate). It implements error; Pos
// (copied from the rule) points at the offending clause when known.
type Violation struct {
	Rule   term.Rule
	Reason string
}

// Pos returns the source position of the offending rule (zero when the
// rule was built programmatically).
func (v Violation) Pos() term.Pos { return v.Rule.Pos }

// String renders the violation.
func (v Violation) String() string {
	if v.Rule.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %s", v.Rule.Pos, v.Rule, v.Reason)
	}
	return fmt.Sprintf("%s: %s", v.Rule, v.Reason)
}

// Error renders the violation, making Violation usable as an error value.
func (v Violation) Error() string { return v.String() }

// CheckDiscipline verifies the paper's standing assumption (§2.1, end):
// every recursive IDB predicate is defined by recursive rules that are
// strongly linear and typed with respect to the head predicate. The
// returned violations are advisory — Algorithm 2's bounded mode can
// still process untyped rules of the restricted shape discussed at the
// end of §5.3.
func (g *Graph) CheckDiscipline() []Violation {
	var out []Violation
	for _, r := range g.rules {
		if !g.IsRecursiveRule(r) {
			continue
		}
		if !g.IsStronglyLinear(r) {
			out = append(out, Violation{Rule: r, Reason: "recursive rule is not strongly linear"})
		}
		if !TypedWRT(r, r.Head.Pred) {
			out = append(out, Violation{Rule: r, Reason: "recursive rule is not typed with respect to its head predicate"})
		}
	}
	return out
}

// MakeStronglyLinear rewrites linear-but-not-strongly-linear recursive
// rules into strongly linear ones by unfolding the mutually recursive
// body atom with the rules of its predicate until the head predicate
// itself appears (the paper's footnote 2). maxDepth bounds the unfolding;
// rule sets whose recursion cycles are longer fail with an error.
//
// The returned slice contains all rules, with rewritten rules replacing
// their originals. Non-recursive and already-strongly-linear rules pass
// through unchanged.
func MakeStronglyLinear(rules []term.Rule, maxDepth int) ([]term.Rule, error) {
	g := New(rules)
	var rn term.Renamer
	var out []term.Rule
	for _, r := range rules {
		if !g.IsRecursiveRule(r) || g.IsStronglyLinear(r) {
			out = append(out, r)
			continue
		}
		if !g.IsLinear(r) {
			return nil, fmt.Errorf("depgraph: rule %v is non-linear recursive; cannot rewrite", r)
		}
		rewritten, err := unfoldToStronglyLinear(g, r, &rn, maxDepth)
		if err != nil {
			return nil, err
		}
		out = append(out, rewritten...)
	}
	return out, nil
}

// unfoldToStronglyLinear repeatedly unfolds the single mutually recursive
// body atom of rule r until every resulting rule either contains the head
// predicate exactly once in its body (strongly linear) or is no longer
// recursive.
func unfoldToStronglyLinear(g *Graph, r term.Rule, rn *term.Renamer, maxDepth int) ([]term.Rule, error) {
	pending := []term.Rule{r}
	var done []term.Rule
	for depth := 0; len(pending) > 0; depth++ {
		if depth > maxDepth {
			return nil, fmt.Errorf("depgraph: could not make %v strongly linear within depth %d", r, maxDepth)
		}
		var next []term.Rule
		for _, cur := range pending {
			// Find the mutually recursive body occurrences.
			idx, headOccurrences := -1, 0
			for i, a := range cur.Body {
				if term.IsComparison(a) {
					continue
				}
				if a.Pred == cur.Head.Pred {
					headOccurrences++
					if idx < 0 {
						idx = i
					}
				} else if idx < 0 && g.MutuallyDependent(cur.Head.Pred, a.Pred) {
					idx = i
				}
			}
			if headOccurrences > 1 {
				return nil, fmt.Errorf("depgraph: unfolding %v produced a non-linear rule %v", r, cur)
			}
			if idx < 0 {
				done = append(done, cur) // became non-recursive
				continue
			}
			if headOccurrences == 1 {
				done = append(done, cur) // strongly linear now
				continue
			}
			// Unfold with every rule of the occurrence's predicate.
			target := cur.Body[idx]
			defs := g.RulesFor(target.Pred)
			if len(defs) == 0 {
				return nil, fmt.Errorf("depgraph: %v depends on %s which has no rules", r, target.Pred)
			}
			for _, def := range defs {
				fresh := rn.RenameRule(def)
				mgu, ok := term.Unify(target, fresh.Head, nil)
				if !ok {
					continue
				}
				var body term.Formula
				body = append(body, cur.Body[:idx]...)
				body = append(body, fresh.Body...)
				body = append(body, cur.Body[idx+1:]...)
				next = append(next, mgu.ApplyRule(term.Rule{Head: cur.Head, Body: body}))
			}
		}
		pending = next
	}
	return done, nil
}

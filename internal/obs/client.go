package obs

import "context"

// ClientInfo identifies the remote principal behind a query: the tenant
// (named knowledge base) it addresses and an opaque client identifier
// (remote address, API-key name, …). The kdb server attaches it to each
// request context; the query log copies it onto every record so
// per-tenant activity can be sliced out of a shared log.
type ClientInfo struct {
	Tenant string
	Client string
}

type clientKey struct{}

// ContextWithClient returns a context carrying ci.
func ContextWithClient(ctx context.Context, ci ClientInfo) context.Context {
	return context.WithValue(ctx, clientKey{}, ci)
}

// ClientFromContext returns the ClientInfo carried by ctx. The zero
// value is returned when none is attached, so callers can use the
// fields directly without checking ok.
func ClientFromContext(ctx context.Context) (ClientInfo, bool) {
	ci, ok := ctx.Value(clientKey{}).(ClientInfo)
	return ci, ok
}

// Package obs is the observability layer of kdb: in-process tracing
// spans, a metrics registry with Prometheus text exposition, trace
// exporters (JSONL and Chrome trace-event), and a debug HTTP handler.
//
// The package is stdlib-only and designed around a zero-cost contract:
// every method on *Tracer and *Span is safe on a nil receiver and does
// nothing, so instrumentation sites never need a guard and a KB built
// without WithTracer pays no allocation on the query hot path. Span
// attributes use typed setters (SetInt, SetStr, SetBool, SetFloat)
// rather than interface{} values so that disabled call sites do not box
// their arguments.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// AttrKind discriminates the payload of an Attr.
type AttrKind uint8

// Attribute payload kinds.
const (
	AttrInt AttrKind = iota
	AttrStr
	AttrBool
	AttrFloat
)

// Attr is one key/value annotation on a span. Exactly one payload field
// is meaningful, selected by Kind.
type Attr struct {
	Key  string
	Kind AttrKind
	Int  int64
	Str  string
	Flt  float64
}

// Value returns the payload as an interface value (for export).
func (a Attr) Value() any {
	switch a.Kind {
	case AttrStr:
		return a.Str
	case AttrBool:
		return a.Int != 0
	case AttrFloat:
		return a.Flt
	default:
		return a.Int
	}
}

// Span is one timed phase of a query. Spans form a tree: the root is
// created by Tracer.Start and children by Span.Child. A span is safe
// for concurrent use — parallel workers may add children and attributes
// to the same parent concurrently.
//
// All methods are nil-safe: a nil *Span ignores every call, and
// Child on a nil span returns nil, so an untraced query threads nil
// through the whole instrumentation path at zero cost.
type Span struct {
	name  string
	start time.Time
	id    uint64
	trace uint64 // root span's id, or an adopted W3C trace id

	mu       sync.Mutex
	end      time.Time
	worker   int // -1 when unattributed
	attrs    []Attr
	children []*Span
}

// spanIDs issues process-unique span ids, so a query-log record can
// reference the trace that captured the same query.
var spanIDs atomic.Uint64

func newSpan(name string) *Span {
	id := spanIDs.Add(1)
	return &Span{name: name, start: time.Now(), worker: -1, id: id, trace: id}
}

// NewSpanAt constructs a detached, already-ended span with an explicit
// time interval. It exists for synthetic span trees — structures that
// are not timed phases of a query but want to reuse the span exporters,
// such as derivation trees rendered as a Chrome trace where width
// encodes subtree size.
func NewSpanAt(name string, start, end time.Time) *Span {
	s := newSpan(name)
	s.start = start
	s.end = end
	return s
}

// AddChild attaches an existing span as a child of s. No-op when either
// is nil. Used alongside NewSpanAt to assemble synthetic trees.
func (s *Span) AddChild(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// ID returns the process-unique span id, or 0 for a nil span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the id shared by every span in this tree: the root
// span's id, or the trace id adopted from a W3C traceparent header via
// Tracer.StartWithID. Zero for a nil span. Query-log records, latency
// exemplars, and activity entries all join on this value.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// Child creates and returns a sub-span. Returns nil if s is nil. The
// child inherits the parent's trace id, so every span in a tree joins
// to the same query-log and exemplar records.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	c.trace = s.trace
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished. Calling End twice keeps the first end
// time. End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// SetName renames the span (used when the statement kind is only known
// after parsing).
func (s *Span) SetName(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// SetWorker attributes the span to a scheduler worker.
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker = w
	s.mu.Unlock()
}

// SetInt adds an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: v})
	s.mu.Unlock()
}

// SetStr adds a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrStr, Str: v})
	s.mu.Unlock()
}

// SetBool adds a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	var i int64
	if v {
		i = 1
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrBool, Int: i})
	s.mu.Unlock()
}

// SetFloat adds a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Flt: v})
	s.mu.Unlock()
}

// Name returns the span name. Empty for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name
}

// Start returns the span start time. Zero for a nil span.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start, or elapsed-so-far if the span has not
// ended. Zero for a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Worker returns the attributed worker index, or -1.
func (s *Span) Worker() int {
	if s == nil {
		return -1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.worker
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the span's direct children in creation
// order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Tracer records a bounded ring of recent query span trees. A nil
// *Tracer is valid and records nothing.
type Tracer struct {
	mu       sync.Mutex
	recent   []*Span // ring, most recent last
	max      int
	onFinish func(*Span)
}

// DefaultTraceBuffer is how many finished root spans a Tracer retains.
const DefaultTraceBuffer = 64

// NewTracer returns a Tracer retaining up to DefaultTraceBuffer recent
// traces.
func NewTracer() *Tracer { return &Tracer{max: DefaultTraceBuffer} }

// OnFinish registers a callback invoked synchronously from Finish with
// each completed root span (e.g. streaming JSONL export).
func (t *Tracer) OnFinish(fn func(*Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onFinish = fn
	t.mu.Unlock()
}

// Start begins a new root span. Returns nil if t is nil. The caller
// must pass the finished root to Finish to retain and export it.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return newSpan(name)
}

// StartWithID begins a new root span carrying an explicit id — used
// when a caller supplies a distributed trace id (W3C traceparent) that
// downstream records should reference instead of a process-issued one.
// An id of 0 falls back to Start.
func (t *Tracer) StartWithID(name string, id uint64) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	if id != 0 {
		s.trace = id
	}
	return s
}

// Finish ends root (if not already ended) and retains it in the recent
// ring, invoking the OnFinish callback if set. No-op on a nil tracer or
// nil root.
func (t *Tracer) Finish(root *Span) {
	if t == nil || root == nil {
		return
	}
	root.End()
	t.mu.Lock()
	t.recent = append(t.recent, root)
	if n := len(t.recent) - t.max; n > 0 {
		t.recent = append(t.recent[:0], t.recent[n:]...)
	}
	fn := t.onFinish
	t.mu.Unlock()
	if fn != nil {
		fn(root)
	}
}

// Last returns the most recently finished root span, or nil.
func (t *Tracer) Last() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recent) == 0 {
		return nil
	}
	return t.recent[len(t.recent)-1]
}

// Recent returns the retained root spans, oldest first.
func (t *Tracer) Recent() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.recent))
	copy(out, t.recent)
	return out
}

type spanKey struct{}

// ContextWithSpan returns a context carrying sp. If sp is nil, ctx is
// returned unchanged (so downstream SpanFromContext stays nil and
// allocation-free).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidatePrometheus checks that text parses as Prometheus text
// exposition format (version 0.0.4): well-formed HELP/TYPE comments,
// sample lines matching the metric grammar, histogram bucket counts
// cumulative with a trailing +Inf bucket equal to _count. It returns
// the first violation found, or nil. Used by the obs tests and the CI
// /metrics assertion.
func ValidatePrometheus(text string) error {
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	const labelSet = `\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}`
	const number = `NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?`
	sampleRe := regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
			`(` + labelSet + `)?` + // labels
			` (` + number + `)` + // value
			`( [0-9]+)?` + // optional timestamp
			`( # ` + labelSet + ` (?:` + number + `))?$`) // optional OpenMetrics exemplar

	types := map[string]string{}
	// histogram invariants, keyed by series labels minus le
	type histState struct {
		lastCum  float64
		infCum   float64
		sawInf   bool
		count    float64
		sawCount bool
	}
	hists := map[string]*histState{}
	leRe := regexp.MustCompile(`le="((?:[^"\\]|\\.)*)"`)
	// labelsSansLE canonicalizes a label set with the le pair removed,
	// so bucket lines key to the same series as their _sum/_count.
	labelsSansLE := func(labels string) string {
		if labels == "" {
			return ""
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		var keep []string
		for _, p := range splitLabelPairs(inner) {
			if !strings.HasPrefix(p, `le="`) {
				keep = append(keep, p)
			}
		}
		sort.Strings(keep)
		return strings.Join(keep, ",")
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	samples := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", n, m[1])
				}
				types[m[1]] = m[2]
				continue
			}
			if helpRe.MatchString(line) {
				continue
			}
			return fmt.Errorf("line %d: malformed comment: %q", n, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", n, line)
		}
		samples++
		name, labels, valStr := m[1], m[2], m[3]
		val, _ := strconv.ParseFloat(strings.Replace(valStr, "Inf", "inf", 1), 64)

		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) && types[strings.TrimSuffix(name, s)] == "histogram" {
				base, suffix = strings.TrimSuffix(name, s), s
				break
			}
		}
		if m[5] != "" && suffix != "_bucket" {
			return fmt.Errorf("line %d: exemplar on non-bucket sample %s", n, name)
		}
		if typ, ok := types[base]; ok && typ == "histogram" && suffix != "" {
			key := base + "\x00" + labelsSansLE(labels)
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			switch suffix {
			case "_bucket":
				le := leRe.FindStringSubmatch(labels)
				if le == nil {
					return fmt.Errorf("line %d: histogram bucket without le label", n)
				}
				if val < h.lastCum {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", n, base)
				}
				h.lastCum = val
				if le[1] == "+Inf" {
					h.sawInf, h.infCum = true, val
				}
			case "_count":
				h.sawCount, h.count = true, val
			}
		} else if typ, ok := types[name]; ok {
			if typ == "counter" && val < 0 {
				return fmt.Errorf("line %d: negative counter %s", n, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples found")
	}
	for key, h := range hists {
		base := key[:strings.IndexByte(key, '\x00')]
		if !h.sawInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", base)
		}
		if h.sawCount && h.infCum != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", base, h.infCum, h.count)
		}
	}
	return nil
}

package obs

import (
	"strconv"
	"strings"
)

// ParseTraceparent extracts the trace id from a W3C Trace Context
// traceparent header ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"). kdb's span ids are 64-bit, so the low 64 bits (the last 16
// hex digits) of the 128-bit trace id are adopted. Returns 0, false for
// a malformed header or an all-zero trace id.
func ParseTraceparent(h string) (uint64, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return 0, false
	}
	if parts[0] == "ff" { // forbidden version
		return 0, false
	}
	for _, p := range parts {
		if !isHex(p) {
			return 0, false
		}
	}
	id, err := strconv.ParseUint(parts[1][16:], 16, 64)
	if err != nil {
		return 0, false
	}
	if id == 0 {
		// All-zero trace ids are invalid per the spec; also guard the
		// low half being zero, which would collide with "no trace".
		return 0, false
	}
	return id, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

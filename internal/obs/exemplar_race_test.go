package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestObserveExemplarExpositionRace hammers a histogram with
// exemplar-carrying observations while the registry is concurrently
// rendered (Prometheus text) and snapshotted. Run under -race this
// proves the exemplar slots — lazily allocated inside the histogram —
// are published safely to readers; without synchronization the lazy
// `exemplars` slice and its per-bucket updates are a data race with
// exposition.
func TestObserveExemplarExpositionRace(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("race_seconds", "Exemplar race test histogram.")
	bounds := []float64{0.001, 0.01, 0.1, 1}

	const writers, rounds = 4, 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			// Re-fetch the instrument each round: registration must be
			// race-free too.
			for i := 0; i < rounds; i++ {
				h := reg.Histogram("race_seconds", bounds, "writer", string(rune('a'+seed)))
				h.ObserveExemplar(float64(i%7)/100, seed*uint64(rounds)+uint64(i)+1)
			}
		}(uint64(w))
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			_ = reg.Snapshot()
		}
	}()
	close(start)
	wg.Wait()

	// The final exposition must still be well-formed.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("final WritePrometheus: %v", err)
	}
	if err := ValidatePrometheus(sb.String()); err != nil {
		t.Fatalf("exposition does not parse after concurrent exemplars: %v", err)
	}
}

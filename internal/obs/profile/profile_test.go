package profile

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestProfileMerge checks sample merging: rows key on rule text,
// iterations count rounds, deltas keep round order, and the allocation
// estimate follows tuples × (24 + 16 × arity).
func TestProfileMerge(t *testing.T) {
	p := New()
	p.SetEngine("seminaive")
	p.SetWall(5 * time.Millisecond)
	p.Add(Sample{Rule: "r1.", Pred: "p", Arity: 2, Wall: time.Millisecond, Tuples: 3, Probes: 4, FullScans: 1})
	p.Add(Sample{Rule: "r1.", Pred: "p", Arity: 2, Wall: time.Millisecond, Tuples: 1, Probes: 2})
	p.Add(Sample{Rule: "r2.", Pred: "q", Arity: 1, Wall: 3 * time.Millisecond, Tuples: 2, Lookups: 5})

	rows := p.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Sorted most-expensive (wall) first: r2's 3ms beats r1's 2ms.
	if rows[0].Rule != "r2." || rows[1].Rule != "r1." {
		t.Fatalf("order = %s, %s; want r2., r1.", rows[0].Rule, rows[1].Rule)
	}
	r1 := rows[1]
	if r1.Iterations != 2 || r1.Tuples != 4 || r1.Wall != 2*time.Millisecond {
		t.Errorf("r1 merged wrong: %+v", r1)
	}
	if r1.Probes != 6 || r1.FullScans != 1 {
		t.Errorf("r1 probes = %d/%d, want 6/1", r1.Probes, r1.FullScans)
	}
	if len(r1.DeltaSizes) != 2 || r1.DeltaSizes[0] != 3 || r1.DeltaSizes[1] != 1 {
		t.Errorf("r1 deltas = %v, want [3 1]", r1.DeltaSizes)
	}
	if want := int64(4 * (24 + 16*2)); r1.AllocBytes != want {
		t.Errorf("r1 alloc = %d, want %d", r1.AllocBytes, want)
	}
}

// TestProfileText pins the renderer's shape: header, per-rule blocks
// with the index/scan probe split, and the rule legend with synthetic
// markers.
func TestProfileText(t *testing.T) {
	p := New()
	p.SetEngine("magic")
	p.Add(Sample{Rule: "p(X) :- q(X).", Pred: "p", Arity: 1, Tuples: 2, Probes: 5, FullScans: 2})
	p.Add(Sample{Rule: "m$guard.", Pred: "m$guard", Synthetic: true, Tuples: 1})
	text := p.String()
	for _, want := range []string{
		"profile: engine=magic",
		"rules=2 tuples=3",
		"probes=5 (index 3, scan 2)",
		"r1: p(X) :- q(X).",
		"r2: m$guard. (synthetic)",
		"r2*",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

// TestProfileJSON checks the wire form consumed by the serve route and
// the query log.
func TestProfileJSON(t *testing.T) {
	p := New()
	p.SetEngine("topdown")
	p.SetWall(time.Millisecond)
	p.Add(Sample{Rule: "p(X) :- q(X).", Pred: "p", Arity: 1, Tuples: 2})
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Engine string `json:"engine"`
		WallNS int64  `json:"wall_ns"`
		Rows   []Row  `json:"rows"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Engine != "topdown" || wire.WallNS != int64(time.Millisecond) || len(wire.Rows) != 1 {
		t.Errorf("wire = %+v", wire)
	}
	if wire.Rows[0].Pred != "p" || wire.Rows[0].Tuples != 2 {
		t.Errorf("row = %+v", wire.Rows[0])
	}
}

// TestProfileConcurrentAdd exercises the collector's locking (run with
// -race): parallel SCC workers all report to one Profile.
func TestProfileConcurrentAdd(t *testing.T) {
	p := New()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				p.Add(Sample{Rule: "r.", Pred: "r", Tuples: 1})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	rows := p.Rows()
	if len(rows) != 1 || rows[0].Iterations != 400 || rows[0].Tuples != 400 {
		t.Errorf("rows = %+v", rows)
	}
}

// Package profile implements per-rule cost accounting for the
// evaluation engines: while a query runs with profiling enabled, every
// engine reports one Sample per (rule, evaluation round) — wall time,
// tuples produced, join probe counts split index-hit/full-scan — and
// the Profile merges them into one Row per rule. The result is the
// runtime twin of the paper's explain machinery: explain answers "why
// is this fact derived", a profile answers "why is this query slow".
//
// The package is deliberately self-contained (no engine imports): rules
// are identified by their source text, so the same collector serves the
// bottom-up, top-down, and magic engines, and the magic rewrite can
// relabel its generated rules with the source rules they came from.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one engine report: the cost of evaluating one rule once
// (one semi-naive round, one top-down pass, one naive re-derivation).
type Sample struct {
	// Rule is the rule's source text, the merge key across samples and
	// engines.
	Rule string
	// Pred is the rule's head predicate.
	Pred string
	// Arity is the head arity, used for the allocation estimate.
	Arity int
	// Synthetic marks rules the evaluation invented (the query rule,
	// magic guards and seeds); renderers set them apart and parity
	// checks skip them.
	Synthetic bool
	// Wall is the time spent joining the rule's body this round.
	Wall time.Duration
	// Tuples is the number of new facts the rule derived this round.
	Tuples int64
	// Lookups counts body-atom resolutions.
	Lookups int64
	// Probes / FullScans / Candidates / IndexBuilds are the storage
	// counter deltas attributed to the rule (see storage.Counters).
	Probes      int64
	FullScans   int64
	Candidates  int64
	IndexBuilds int64
}

// Row is the merged, per-rule account of one evaluation.
type Row struct {
	Rule      string `json:"rule"`
	Pred      string `json:"pred"`
	Synthetic bool   `json:"synthetic,omitempty"`
	// Iterations is the number of rounds in which the rule was
	// evaluated (not necessarily productive ones).
	Iterations int64         `json:"iterations"`
	Tuples     int64         `json:"tuples"`
	Wall       time.Duration `json:"wall_ns"`
	Lookups    int64         `json:"lookups"`
	// Probes splits into index-served (Probes - FullScans) and
	// full-extension scans.
	Probes      int64 `json:"probes"`
	FullScans   int64 `json:"full_scans"`
	Candidates  int64 `json:"candidates"`
	IndexBuilds int64 `json:"index_builds"`
	// DeltaSizes is the per-round count of new tuples, in round order
	// (the semi-naive delta trajectory; top-down: per-pass growth).
	DeltaSizes []int64 `json:"delta_sizes,omitempty"`
	// AllocBytes estimates the memory the rule's derived tuples
	// retain: Tuples × (24 + 16 × arity) — a slice header plus one
	// two-word term per column. An estimate, not a measurement: the
	// engines do not instrument the allocator.
	AllocBytes int64 `json:"alloc_bytes"`
}

// tupleBytes estimates the retained size of one derived tuple of the
// given arity (slice header + two words per term).
func tupleBytes(arity int) int64 { return 24 + 16*int64(arity) }

// Profile accumulates samples into per-rule rows. It is safe for
// concurrent use (the parallel scheduler's SCC workers all report to
// the same collector).
type Profile struct {
	mu     sync.Mutex
	rows   map[string]*Row
	order  []string // first-report order, for stable output
	engine string
	wall   time.Duration
}

// New returns an empty collector.
func New() *Profile {
	return &Profile{rows: make(map[string]*Row)}
}

// Add merges one sample. Safe for concurrent use.
func (p *Profile) Add(s Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.rows[s.Rule]
	if !ok {
		r = &Row{Rule: s.Rule, Pred: s.Pred, Synthetic: s.Synthetic}
		p.rows[s.Rule] = r
		p.order = append(p.order, s.Rule)
	}
	r.Iterations++
	r.Tuples += s.Tuples
	r.Wall += s.Wall
	r.Lookups += s.Lookups
	r.Probes += s.Probes
	r.FullScans += s.FullScans
	r.Candidates += s.Candidates
	r.IndexBuilds += s.IndexBuilds
	r.DeltaSizes = append(r.DeltaSizes, s.Tuples)
	r.AllocBytes += s.Tuples * tupleBytes(s.Arity)
}

// SetEngine records which engine produced the samples.
func (p *Profile) SetEngine(name string) {
	p.mu.Lock()
	p.engine = name
	p.mu.Unlock()
}

// Engine returns the recorded engine name.
func (p *Profile) Engine() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine
}

// SetWall records the whole evaluation's wall time (the per-rule rows
// only cover rule-body joins, not planning or scheduling).
func (p *Profile) SetWall(d time.Duration) {
	p.mu.Lock()
	p.wall = d
	p.mu.Unlock()
}

// Wall returns the recorded evaluation wall time.
func (p *Profile) Wall() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wall
}

// Rows returns a deep copy of the merged rows, most expensive (by
// wall time, then tuples, then rule text) first.
func (p *Profile) Rows() []Row {
	p.mu.Lock()
	out := make([]Row, 0, len(p.order))
	for _, key := range p.order {
		r := *p.rows[key]
		r.DeltaSizes = append([]int64(nil), r.DeltaSizes...)
		out = append(out, r)
	}
	p.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		if out[i].Tuples != out[j].Tuples {
			return out[i].Tuples > out[j].Tuples
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Len returns the number of distinct rules sampled.
func (p *Profile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.rows)
}

// WriteText renders the profile as an annotated plan in the style of
// the explain tree: one indented block per rule, most expensive first,
// followed by a rule legend keyed r1, r2, … in display order.
func (p *Profile) WriteText(w io.Writer) error {
	rows := p.Rows()
	var b strings.Builder
	var tuples int64
	for _, r := range rows {
		tuples += r.Tuples
	}
	fmt.Fprintf(&b, "profile: engine=%s wall=%s rules=%d tuples=%d\n",
		p.Engine(), p.Wall(), len(rows), tuples)
	for i, r := range rows {
		marker := fmt.Sprintf("r%d", i+1)
		if r.Synthetic {
			marker += "*"
		}
		fmt.Fprintf(&b, "  %-4s wall=%-10s iters=%-3d tuples=%-6d lookups=%d\n",
			marker, r.Wall, r.Iterations, r.Tuples, r.Lookups)
		fmt.Fprintf(&b, "       probes=%d (index %d, scan %d) candidates=%d index-builds=%d alloc~%s\n",
			r.Probes, r.Probes-r.FullScans, r.FullScans, r.Candidates, r.IndexBuilds, sizeString(r.AllocBytes))
		if len(r.DeltaSizes) > 1 {
			fmt.Fprintf(&b, "       deltas=%s\n", deltaString(r.DeltaSizes))
		}
	}
	if len(rows) > 0 {
		b.WriteString("\nrules:\n")
		for i, r := range rows {
			star := ""
			if r.Synthetic {
				star = " (synthetic)"
			}
			fmt.Fprintf(&b, "  r%d: %s%s\n", i+1, r.Rule, star)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the profile as text.
func (p *Profile) String() string {
	var b strings.Builder
	p.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// deltaString renders a delta trajectory as "[3 2 1]".
func deltaString(ds []int64) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, d := range ds {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// sizeString renders a byte estimate human-readably (B / KiB / MiB).
func sizeString(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// MarshalJSON emits the engine, total wall time, and merged rows
// (most expensive first).
func (p *Profile) MarshalJSON() ([]byte, error) {
	type wire struct {
		Engine string `json:"engine"`
		WallNS int64  `json:"wall_ns"`
		Rows   []Row  `json:"rows"`
	}
	return json.Marshal(wire{Engine: p.Engine(), WallNS: int64(p.Wall()), Rows: p.Rows()})
}

// WriteJSON writes the profile as one indented JSON document.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

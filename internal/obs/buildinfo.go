package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the main module version, the
// Go toolchain, and the VCS revision baked in by the Go linker.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ReadBuild collects the binary's build identity from
// debug.ReadBuildInfo. Fields the linker did not stamp (e.g. a
// non-release build without VCS metadata) come back as "unknown" or
// empty.
func ReadBuild() BuildInfo {
	out := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// RegisterBuildInfo publishes the kdb_build_info gauge — value fixed at
// 1, identity carried in the labels, the standard Prometheus idiom for
// joining metrics against a deploy version. Returns the collected info
// so servers can also report it on their health endpoint. Nil-safe.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	info := ReadBuild()
	if reg == nil {
		return info
	}
	reg.SetHelp("kdb_build_info", "Build identity of the running binary; value is always 1.")
	rev := info.Revision
	if rev == "" {
		rev = "unknown"
	}
	reg.Gauge("kdb_build_info",
		"version", info.Version,
		"goversion", info.GoVersion,
		"revision", rev,
	).Set(1)
	return info
}

// Package history keeps a bounded in-memory time series of a metrics
// registry: a ticker samples every series in the registry's snapshot
// into a fixed-capacity ring per series. The buffer backs the
// sys_metric_history virtual relation, the GET /v1/debug/history
// endpoint, and the sparkline columns of `kdb top`.
//
// Memory is bounded by construction: at most MaxSeries rings, each
// holding retention/resolution samples, regardless of how long the
// process runs or how many labels the registry accumulates (asserted
// by TestBufferMemoryBounded).
package history

import (
	"sort"
	"sync"
	"time"

	"kdb/internal/obs"
)

// Defaults applied by New when the corresponding argument is zero or
// negative.
const (
	DefaultResolution = 5 * time.Second
	DefaultRetention  = 10 * time.Minute
	// DefaultMaxSeries caps how many distinct series the buffer tracks;
	// series beyond the cap are counted (Dropped) but not stored.
	DefaultMaxSeries = 512
)

// Sample is one observation of one series.
type Sample struct {
	At    time.Time
	Value float64
}

// Series is the retained window of one metric series, oldest first.
type Series struct {
	Name    string // canonical id: obs.SeriesID(name, labels)
	Type    string // "counter" | "gauge" | "histogram"
	Samples []Sample
}

// ring is a fixed-capacity circular buffer of samples.
type ring struct {
	typ  string
	buf  []Sample
	head int // index of the oldest sample
	n    int
}

func (r *ring) push(s Sample) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
}

func (r *ring) samples() []Sample {
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Buffer samples a registry on a ticker into per-series rings. All
// methods are safe for concurrent use and nil-receiver safe, so an
// unconfigured buffer costs a single pointer check.
type Buffer struct {
	reg        *obs.Registry
	resolution time.Duration
	retention  time.Duration
	slots      int
	maxSeries  int

	mu      sync.Mutex
	series  map[string]*ring
	dropped int

	stop chan struct{}
	done chan struct{}
}

// New returns a buffer sampling reg every resolution, retaining
// retention worth of samples per series (retention/resolution slots,
// at least one). Non-positive arguments take the package defaults.
// Call Start to begin sampling on a ticker, or Sample directly.
func New(reg *obs.Registry, resolution, retention time.Duration) *Buffer {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	slots := int(retention / resolution)
	if slots < 1 {
		slots = 1
	}
	return &Buffer{
		reg:        reg,
		resolution: resolution,
		retention:  retention,
		slots:      slots,
		maxSeries:  DefaultMaxSeries,
		series:     make(map[string]*ring),
	}
}

// SetMaxSeries caps the number of distinct series tracked (default
// DefaultMaxSeries); call it before Start. n < 1 is clamped to 1.
func (b *Buffer) SetMaxSeries(n int) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	b.maxSeries = n
	b.mu.Unlock()
}

// Resolution returns the sampling interval.
func (b *Buffer) Resolution() time.Duration {
	if b == nil {
		return 0
	}
	return b.resolution
}

// Retention returns the retained window per series.
func (b *Buffer) Retention() time.Duration {
	if b == nil {
		return 0
	}
	return b.retention
}

// Start launches the sampling ticker. A second Start is a no-op. Nil
// receivers ignore the call.
func (b *Buffer) Start() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.stop != nil {
		b.mu.Unlock()
		return
	}
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	stop, done := b.stop, b.done
	b.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(b.resolution)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				b.Sample()
			}
		}
	}()
}

// Stop halts the ticker and waits for the sampling goroutine to exit.
// Safe to call without Start, more than once, and on nil.
func (b *Buffer) Stop() {
	if b == nil {
		return
	}
	b.mu.Lock()
	stop, done := b.stop, b.done
	b.stop, b.done = nil, nil
	b.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Sample records one observation of every series in the registry's
// current snapshot. Counters and gauges record their value; histograms
// record their cumulative observation count (the same convention the
// sys_metric relation uses).
func (b *Buffer) Sample() {
	if b == nil || b.reg == nil {
		return
	}
	now := time.Now()
	pts := b.reg.Snapshot()
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range pts {
		key := obs.SeriesID(p.Name, p.Labels)
		r := b.series[key]
		if r == nil {
			if len(b.series) >= b.maxSeries {
				b.dropped++
				continue
			}
			r = &ring{typ: p.Type, buf: make([]Sample, b.slots)}
			b.series[key] = r
		}
		v := p.Value
		if p.Type == "histogram" {
			v = float64(p.Count)
		}
		r.push(Sample{At: now, Value: v})
	}
}

// Snapshot returns every retained series, sorted by name, samples
// oldest first. Nil receivers return nil.
func (b *Buffer) Snapshot() []Series {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Series, 0, len(b.series))
	for name, r := range b.series {
		out = append(out, Series{Name: name, Type: r.typ, Samples: r.samples()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dropped reports how many samples were discarded because the series
// cap was reached — the observable face of the memory bound.
func (b *Buffer) Dropped() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

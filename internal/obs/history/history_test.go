package history

import (
	"fmt"
	"testing"
	"time"

	"kdb/internal/obs"
)

func TestRingWrapsAndOrders(t *testing.T) {
	r := &ring{buf: make([]Sample, 3)}
	for i := 0; i < 5; i++ {
		r.push(Sample{Value: float64(i)})
	}
	got := r.samples()
	if len(got) != 3 {
		t.Fatalf("ring holds %d samples, want 3", len(got))
	}
	for i, want := range []float64{2, 3, 4} {
		if got[i].Value != want {
			t.Errorf("sample %d = %v, want %v (oldest first)", i, got[i].Value, want)
		}
	}
}

func TestBufferSamplesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("g", "test gauge")
	g := reg.Gauge("g")
	b := New(reg, time.Second, 10*time.Second)
	g.Set(1)
	b.Sample()
	g.Set(2)
	b.Sample()
	snap := b.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d series, want 1: %+v", len(snap), snap)
	}
	s := snap[0]
	if s.Name != "g" || s.Type != "gauge" {
		t.Fatalf("series = %q type %q, want g/gauge", s.Name, s.Type)
	}
	if len(s.Samples) != 2 || s.Samples[0].Value != 1 || s.Samples[1].Value != 2 {
		t.Fatalf("samples = %+v, want [1 2]", s.Samples)
	}
}

func TestBufferHistogramRecordsCount(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("h", "test histogram")
	h := reg.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	b := New(reg, time.Second, time.Minute)
	b.Sample()
	snap := b.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d series, want 1", len(snap))
	}
	if got := snap[0].Samples[0].Value; got != 2 {
		t.Fatalf("histogram sample = %v, want the cumulative count 2", got)
	}
}

// TestBufferMemoryBounded asserts the buffer's two memory bounds: the
// per-series ring never exceeds retention/resolution slots no matter
// how many samples arrive, and the series map never exceeds the
// configured cap no matter how many distinct label sets the registry
// grows.
func TestBufferMemoryBounded(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("c", "test counter")
	b := New(reg, time.Second, 4*time.Second) // 4 slots per series
	b.SetMaxSeries(8)
	for i := 0; i < 32; i++ {
		// A fresh label set per iteration: an unbounded-cardinality metric.
		reg.Counter("c", "shard", fmt.Sprint(i)).Inc()
		b.Sample()
		b.Sample()
	}
	b.mu.Lock()
	nSeries, dropped := len(b.series), b.dropped
	maxRing := 0
	for _, r := range b.series {
		if len(r.buf) > 4 {
			t.Errorf("ring capacity %d exceeds the 4 retention slots", len(r.buf))
		}
		if r.n > maxRing {
			maxRing = r.n
		}
	}
	b.mu.Unlock()
	if nSeries > 8 {
		t.Errorf("buffer tracks %d series, want at most the cap of 8", nSeries)
	}
	if dropped == 0 {
		t.Error("expected drops once the series cap was hit, got none")
	}
	if maxRing > 4 {
		t.Errorf("a ring holds %d samples, want at most 4", maxRing)
	}
}

func TestBufferStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("g", "test gauge")
	reg.Gauge("g").Set(7)
	b := New(reg, time.Millisecond, time.Second)
	b.Start()
	b.Start() // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for len(b.Snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never sampled the registry")
		}
		time.Sleep(time.Millisecond)
	}
	b.Stop()
	b.Stop() // idempotent
}

func TestBufferNilSafe(t *testing.T) {
	var b *Buffer
	b.Sample()
	b.Start()
	b.Stop()
	if b.Snapshot() != nil || b.Dropped() != 0 || b.Resolution() != 0 || b.Retention() != 0 {
		t.Error("nil buffer must be inert")
	}
}

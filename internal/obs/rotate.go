package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-rotated file writer for the structured query
// log: when the current file would exceed maxBytes the writer renames
// it to path.1 (shifting path.1 → path.2, …) and starts a fresh file,
// keeping at most keep rolled files. Rotation happens between writes,
// so a JSONL record is never split across files.
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	keep     int
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (or appends to) path with rotation at maxMB
// megabytes, retaining keep rolled files. maxMB <= 0 disables rotation;
// keep <= 0 defaults to 3.
func NewRotatingWriter(path string, maxMB, keep int) (*RotatingWriter, error) {
	if keep <= 0 {
		keep = 3
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingWriter{
		path:     path,
		maxBytes: int64(maxMB) * 1 << 20,
		keep:     keep,
		f:        f,
		size:     st.Size(),
	}, nil
}

// Write appends p, rotating first if the file would exceed the size
// budget. A record larger than the budget is written whole to a fresh
// file rather than rejected.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate shifts the rolled files up one slot and reopens path fresh.
// Called with the lock held.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	// path.keep falls off; path.i → path.i+1; path → path.1.
	os.Remove(fmt.Sprintf("%s.%d", w.path, w.keep))
	for i := w.keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", w.path, i), fmt.Sprintf("%s.%d", w.path, i+1))
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.size = 0
	return nil
}

// Reopen closes the current file and reopens path for appending,
// re-reading its size. It is the logrotate handshake: an external
// rotator renames the file, signals the process (kdb handles SIGHUP),
// and writes continue into a fresh file at the configured path. Safe
// to call concurrently with Write; a failed reopen leaves the writer
// with its previous (closed) file, so later writes report the error
// rather than silently dropping records.
func (w *RotatingWriter) Reopen() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = st.Size()
	return nil
}

// Close closes the current file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// jsonlSpan is the wire form of one span in JSONL export: one JSON
// object per line, spans in depth-first (pre-order) order, children
// referring to their parent by index.
type jsonlSpan struct {
	ID     int `json:"id"`
	Parent int `json:"parent"` // -1 for the root
	// SpanID is the process-unique Span.ID(), emitted on root records
	// only so query-log lines (whose trace_id is the same counter) join
	// against trace files; within-trace parent links use the relative
	// ids above.
	SpanID  uint64         `json:"span_id,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"` // µs since the root span started
	DurUS   int64          `json:"dur_us"`
	Worker  int            `json:"worker,omitempty"` // omitted when -1? see marshal below
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// MarshalJSON emits Worker only when attributed (>= 0).
func (s jsonlSpan) MarshalJSON() ([]byte, error) {
	type alias jsonlSpan // drop the method to avoid recursion
	if s.Worker < 0 {
		return json.Marshal(struct {
			alias
			Worker *int `json:"worker,omitempty"`
		}{alias: alias(s), Worker: nil})
	}
	return json.Marshal(struct {
		alias
		Worker int `json:"worker"`
	}{alias: alias(s), Worker: s.Worker})
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for _, a := range attrs {
		out[a.Key] = a.Value()
	}
	return out
}

// WriteJSONL writes the span tree rooted at root as JSON lines, one
// span per line in depth-first order. Timestamps are microseconds
// relative to the root start, so traces are position-independent.
func WriteJSONL(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	base := root.Start()
	id := 0
	var walk func(s *Span, parent int) error
	walk = func(s *Span, parent int) error {
		js := jsonlSpan{
			ID:      id,
			Parent:  parent,
			Name:    s.Name(),
			StartUS: s.Start().Sub(base).Microseconds(),
			DurUS:   s.Duration().Microseconds(),
			Worker:  s.Worker(),
			Attrs:   attrMap(s.Attrs()),
		}
		if parent == -1 {
			js.SpanID = s.ID()
		}
		my := id
		id++
		if err := enc.Encode(js); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := walk(c, my); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, -1)
}

// chromeEvent is one complete event ("ph":"X") in the Chrome
// trace-event format, loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // µs
	Dur  int64          `json:"dur"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the given root spans as a Chrome trace-event
// JSON array of complete ("ph":"X") events. Timestamps are microseconds
// relative to the earliest root; each span lands on the thread lane of
// its attributed worker (lane 0 when unattributed).
func WriteChromeTrace(w io.Writer, roots []*Span) error {
	var events []chromeEvent
	var base time.Time
	for _, r := range roots {
		if r == nil {
			continue
		}
		if base.IsZero() || r.Start().Before(base) {
			base = r.Start()
		}
	}
	var walk func(s *Span, lane int)
	walk = func(s *Span, lane int) {
		if w := s.Worker(); w >= 0 {
			lane = w + 1 // worker lanes start at tid 1; tid 0 is the query thread
		}
		dur := s.Duration().Microseconds()
		if dur < 1 {
			dur = 1 // zero-width events are dropped by some viewers
		}
		events = append(events, chromeEvent{
			Name: s.Name(),
			Cat:  "kdb",
			Ph:   "X",
			TS:   s.Start().Sub(base).Microseconds(),
			Dur:  dur,
			PID:  1,
			TID:  lane,
			Args: attrMap(s.Attrs()),
		})
		for _, c := range s.Children() {
			walk(c, lane)
		}
	}
	for _, r := range roots {
		if r != nil {
			walk(r, 0)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteTree renders the span tree as an indented human-readable
// listing (the `.trace on` console surface).
func WriteTree(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name())
		fmt.Fprintf(&b, " (%s)", formatDur(s.Duration()))
		if wk := s.Worker(); wk >= 0 {
			fmt.Fprintf(&b, " worker=%d", wk)
		}
		for _, a := range s.Attrs() {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value())
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0)
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

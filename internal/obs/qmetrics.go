package obs

import (
	"sync"
	"time"
)

// QueryMetrics bundles the kdb query-path instruments over one
// Registry. All methods are nil-safe so the kb layer calls them
// unconditionally.
type QueryMetrics struct {
	reg *Registry

	mu      sync.Mutex
	byKind  map[string]*kindInstruments
	byStop  map[string]*Counter
	facts   *Counter
	lookups *Counter
	probes  *Counter
	cands   *Counter
	idxB    *Counter
	iters   *Counter
	descN   *Counter
	provE   *Counter
	explN   *Counter
}

type kindInstruments struct {
	total   *Counter
	errs    *Counter
	latency *Histogram
}

// NewQueryMetrics registers the query-path metric families on reg.
// Returns nil when reg is nil.
func NewQueryMetrics(reg *Registry) *QueryMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp("kdb_query_duration_seconds", "Wall time of one query, by statement kind.")
	reg.SetHelp("kdb_queries_total", "Queries executed, by statement kind.")
	reg.SetHelp("kdb_query_errors_total", "Queries that returned an error, by statement kind.")
	reg.SetHelp("kdb_query_stops_total", "Queries stopped early by the governor, by stop reason.")
	reg.SetHelp("kdb_facts_derived_total", "Facts derived by retrieve evaluations.")
	reg.SetHelp("kdb_lookups_total", "Body-atom lookups performed by retrieve evaluations.")
	reg.SetHelp("kdb_storage_probes_total", "Stored-relation probes issued by queries.")
	reg.SetHelp("kdb_storage_candidates_total", "Candidate tuples scanned by stored-relation probes.")
	reg.SetHelp("kdb_storage_index_builds_total", "Lazy hash indexes built by stored-relation probes.")
	reg.SetHelp("kdb_scc_iterations_total", "Fixpoint iterations summed over rule-graph SCCs.")
	reg.SetHelp("kdb_describe_nodes_total", "Nodes expanded by describe searches.")
	reg.SetHelp("kdb_provenance_entries_total", "Why-provenance witnesses recorded by evaluations.")
	reg.SetHelp("kdb_explain_nodes_total", "Derivation-tree nodes reconstructed by explain queries.")
	m := &QueryMetrics{
		reg:     reg,
		byKind:  map[string]*kindInstruments{},
		byStop:  map[string]*Counter{},
		facts:   reg.Counter("kdb_facts_derived_total"),
		lookups: reg.Counter("kdb_lookups_total"),
		probes:  reg.Counter("kdb_storage_probes_total"),
		cands:   reg.Counter("kdb_storage_candidates_total"),
		idxB:    reg.Counter("kdb_storage_index_builds_total"),
		iters:   reg.Counter("kdb_scc_iterations_total"),
		descN:   reg.Counter("kdb_describe_nodes_total"),
		provE:   reg.Counter("kdb_provenance_entries_total"),
		explN:   reg.Counter("kdb_explain_nodes_total"),
	}
	// Pre-register the latency histogram for the common kinds so the
	// family exists before the first query.
	for _, kind := range []string{"retrieve", "describe", "compare"} {
		m.kind(kind)
	}
	return m
}

func (m *QueryMetrics) kind(kind string) *kindInstruments {
	m.mu.Lock()
	defer m.mu.Unlock()
	ki := m.byKind[kind]
	if ki == nil {
		ki = &kindInstruments{
			total:   m.reg.Counter("kdb_queries_total", "kind", kind),
			errs:    m.reg.Counter("kdb_query_errors_total", "kind", kind),
			latency: m.reg.Histogram("kdb_query_duration_seconds", nil, "kind", kind),
		}
		m.byKind[kind] = ki
	}
	return ki
}

// ObserveQuery records one completed query: latency by statement kind,
// the error tally, and — when the governor stopped it — the stop
// reason ("deadline", "canceled", "limit:<kind>", "panic").
func (m *QueryMetrics) ObserveQuery(kind string, d time.Duration, stopReason string, failed bool) {
	m.ObserveQueryTrace(kind, d, stopReason, failed, 0)
}

// ObserveQueryTrace is ObserveQuery plus an exemplar: a nonzero traceID
// offers the latency sample as its bucket's exemplar, so the /metrics
// histogram links each bucket to the trace (and query-log line) of the
// worst recent query that landed in it.
func (m *QueryMetrics) ObserveQueryTrace(kind string, d time.Duration, stopReason string, failed bool, traceID uint64) {
	if m == nil {
		return
	}
	ki := m.kind(kind)
	ki.total.Inc()
	ki.latency.ObserveExemplar(d.Seconds(), traceID)
	if failed {
		ki.errs.Inc()
	}
	if stopReason != "" && stopReason != "ok" {
		m.mu.Lock()
		c := m.byStop[stopReason]
		if c == nil {
			c = m.reg.Counter("kdb_query_stops_total", "reason", stopReason)
			m.byStop[stopReason] = c
		}
		m.mu.Unlock()
		c.Inc()
	}
}

// ObserveEval folds one retrieve evaluation's counters into the
// registry.
func (m *QueryMetrics) ObserveEval(facts, lookups, probes, candidates, indexBuilds, iterations, provEntries int64) {
	if m == nil {
		return
	}
	m.facts.Add(facts)
	m.lookups.Add(lookups)
	m.probes.Add(probes)
	m.cands.Add(candidates)
	m.idxB.Add(indexBuilds)
	m.iters.Add(iterations)
	m.provE.Add(provEntries)
}

// ObserveExplain folds one explain query's reconstructed node count
// into the registry.
func (m *QueryMetrics) ObserveExplain(nodes int64) {
	if m == nil {
		return
	}
	m.explN.Add(nodes)
}

// ObserveDescribe folds one describe search's node count into the
// registry.
func (m *QueryMetrics) ObserveDescribe(nodes int64) {
	if m == nil {
		return
	}
	m.descN.Add(nodes)
}

// StorageMetrics bundles the storage-path instruments. Its methods
// satisfy the storage-layer observer interface structurally, so the
// storage package never imports obs. Nil-safe.
type StorageMetrics struct {
	appendLat  *Histogram
	appendByte *Counter
	syncLat    *Histogram
	snapLat    *Histogram
	snapBytes  *Gauge
	snapTotal  *Counter
}

// NewStorageMetrics registers the storage metric families on reg.
// Returns nil when reg is nil.
func NewStorageMetrics(reg *Registry) *StorageMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp("kdb_wal_append_seconds", "WAL record append latency (encode+write+flush+fsync).")
	reg.SetHelp("kdb_wal_append_bytes_total", "Bytes appended to the WAL.")
	reg.SetHelp("kdb_wal_fsync_seconds", "WAL fsync latency.")
	reg.SetHelp("kdb_snapshot_seconds", "Snapshot (checkpoint) write latency.")
	reg.SetHelp("kdb_snapshot_bytes", "Size of the most recent snapshot, in bytes.")
	reg.SetHelp("kdb_snapshots_total", "Snapshots (checkpoints) written.")
	return &StorageMetrics{
		appendLat:  reg.Histogram("kdb_wal_append_seconds", nil),
		appendByte: reg.Counter("kdb_wal_append_bytes_total"),
		syncLat:    reg.Histogram("kdb_wal_fsync_seconds", nil),
		snapLat:    reg.Histogram("kdb_snapshot_seconds", nil),
		snapBytes:  reg.Gauge("kdb_snapshot_bytes"),
		snapTotal:  reg.Counter("kdb_snapshots_total"),
	}
}

// ObserveWALAppend records one WAL append.
func (m *StorageMetrics) ObserveWALAppend(d time.Duration, bytes int) {
	if m == nil {
		return
	}
	m.appendLat.ObserveDuration(d)
	m.appendByte.Add(int64(bytes))
}

// ObserveWALSync records one WAL fsync.
func (m *StorageMetrics) ObserveWALSync(d time.Duration) {
	if m == nil {
		return
	}
	m.syncLat.ObserveDuration(d)
}

// ObserveSnapshot records one snapshot write.
func (m *StorageMetrics) ObserveSnapshot(d time.Duration, bytes int64) {
	if m == nil {
		return
	}
	m.snapLat.ObserveDuration(d)
	m.snapBytes.Set(float64(bytes))
	m.snapTotal.Inc()
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugMux returns a mux with the kdb debug surface: /metrics
// (Prometheus text), /debug/vars (expvar JSON, including the registry
// snapshot published as "kdb_metrics"), and /debug/pprof/* (the runtime
// profiler). It deliberately leaves "/" unregistered, so a server can
// layer its own routes — including a root index — on the same mux
// without a duplicate-pattern panic.
func DebugMux(reg *Registry) *http.ServeMux {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugHandler is DebugMux plus a root index page. It is served by
// `kdb --debug-addr`.
func DebugHandler(reg *Registry) http.Handler {
	mux := DebugMux(reg)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "kdb debug endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})
	return mux
}

var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *Registry
)

// PublishExpvar publishes reg's snapshot under the expvar name
// "kdb_metrics". expvar names are process-global and cannot be
// re-published, so the variable always reflects the most recently
// published registry.
func PublishExpvar(reg *Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("kdb_metrics", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			return r.Snapshot()
		}))
	})
}

// MetricsJSON renders the registry snapshot as indented JSON (the
// --stats-json surface reuses this encoding).
func MetricsJSON(reg *Registry) ([]byte, error) {
	return json.MarshalIndent(reg.Snapshot(), "", "  ")
}

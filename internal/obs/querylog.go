package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"kdb/internal/obs/profile"
)

// QueryLogRecord is one line of the structured query log: what ran, how
// long it took, why it stopped, and the per-query EvalStats deltas. The
// trace id matches the root span's ID() when tracing was enabled for
// the same query, so a slow-log line can be joined against its trace.
type QueryLogRecord struct {
	Time      time.Time `json:"-"`
	TimeRFC   string    `json:"time"`
	Statement string    `json:"stmt"`
	Kind      string    `json:"kind"`
	DurUS     int64     `json:"dur_us"`
	Error     string    `json:"error,omitempty"`
	Stop      string    `json:"stop,omitempty"`
	TraceID   uint64    `json:"trace_id,omitempty"`
	// Tenant and Client identify the remote principal when the query
	// arrived through the kdb server (ContextWithClient); both are empty
	// for library and REPL queries.
	Tenant string `json:"tenant,omitempty"`
	Client string `json:"client,omitempty"`
	// Per-query evaluation deltas; present only when the query ran a
	// retrieve-style evaluation.
	Engine      string `json:"engine,omitempty"`
	Facts       int64  `json:"facts,omitempty"`
	Lookups     int64  `json:"lookups,omitempty"`
	Probes      int64  `json:"probes,omitempty"`
	FullScans   int64  `json:"full_scans,omitempty"`
	Candidates  int64  `json:"candidates,omitempty"`
	IndexBuilds int64  `json:"index_builds,omitempty"`
	ProvEntries int64  `json:"provenance_entries,omitempty"`
	// Profile holds the per-rule cost rows when the query ran with
	// profiling enabled, so a slow-log line carries its own "explain
	// analyze" instead of requiring a re-run.
	Profile []profile.Row `json:"profile,omitempty"`
}

// QueryLog appends one JSONL record per finished query to a writer —
// every query, or only those at or above a slow threshold. A nil
// *QueryLog is valid and records nothing, matching the package's
// nil-receiver contract.
type QueryLog struct {
	mu   sync.Mutex
	w    io.Writer
	slow time.Duration
	now  func() time.Time // test hook; nil means time.Now
}

// NewQueryLog returns a query log writing to w. With slow > 0 only
// queries of at least that duration are logged (the --slow-query
// threshold); slow == 0 logs every query.
func NewQueryLog(w io.Writer, slow time.Duration) *QueryLog {
	return &QueryLog{w: w, slow: slow}
}

// SetClock overrides the timestamp source (tests normalize time).
func (l *QueryLog) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Observe appends one record if it clears the slow threshold. Encoding
// and writing happen under the log's lock so concurrent queries never
// interleave lines.
func (l *QueryLog) Observe(rec QueryLogRecord) error {
	if l == nil {
		return nil
	}
	d := time.Duration(rec.DurUS) * time.Microsecond
	l.mu.Lock()
	defer l.mu.Unlock()
	if d < l.slow {
		return nil
	}
	if rec.Time.IsZero() {
		if l.now != nil {
			rec.Time = l.now()
		} else {
			rec.Time = time.Now()
		}
	}
	rec.TimeRFC = rec.Time.UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = l.w.Write(b)
	return err
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a lock-cheap metrics registry. Instrument lookup takes a
// read lock only on the fast path (already-registered series); the
// instruments themselves are purely atomic, so recording a sample never
// blocks. A nil *Registry is valid and hands out nil instruments, which
// ignore every call.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
	// help holds HELP text set before the family's first instrument is
	// registered; it is folded into the family at creation.
	help map[string]string
}

type family struct {
	name string
	typ  string // "counter" | "gauge" | "histogram"
	help string

	mu     sync.RWMutex
	series map[string]*series // keyed by rendered label set
}

type series struct {
	labels string // rendered `k="v",…` (sorted), "" when unlabeled

	// counter / gauge payload
	intVal atomic.Int64  // counter
	bits   atomic.Uint64 // gauge (float64 bits)

	// histogram payload
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated

	// exemplars holds, per bucket, the worst (largest-valued) recent
	// observation that carried a trace id, so a dashboard can jump from
	// a latency bucket to the trace of the query that filled it.
	// Allocated lazily on the first exemplar-carrying observation.
	exMu      sync.Mutex
	exemplars []Exemplar
}

// Exemplar links one histogram bucket to the trace of a concrete
// observation: the sample's value and the trace id of the query that
// produced it. A zero TraceID means the bucket has no exemplar yet.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID uint64  `json:"trace_id"`
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Counter is a monotonically increasing int64 instrument. Nil-safe.
type Counter struct{ s *series }

// Add increments the counter by d (d < 0 is ignored). Counters sit on
// request and evaluation hot paths; Add must not allocate.
//
//kdb:hotpath
func (c *Counter) Add(d int64) {
	if c == nil || c.s == nil || d < 0 {
		return
	}
	c.s.intVal.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.intVal.Load()
}

// Gauge is a float64 instrument that may go up and down. Nil-safe.
type Gauge struct{ s *series }

// Set stores v. Allocation-free, like Counter.Add.
//
//kdb:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Histogram is a cumulative-bucket float64 distribution. Nil-safe.
type Histogram struct{ s *series }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	s := h.s
	i := sort.SearchFloat64s(s.bounds, v)
	s.buckets[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one sample and, when traceID is nonzero,
// offers it as the exemplar of its bucket. Each bucket keeps its worst
// recent observation: an incoming sample replaces the stored exemplar
// when its value is at least as large, so the link always points at the
// slowest query the bucket has seen lately rather than an arbitrary one.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if h == nil || h.s == nil || traceID == 0 {
		return
	}
	s := h.s
	i := sort.SearchFloat64s(s.bounds, v)
	s.exMu.Lock()
	if s.exemplars == nil {
		s.exemplars = make([]Exemplar, len(s.buckets))
	}
	if v >= s.exemplars[i].Value || s.exemplars[i].TraceID == 0 {
		s.exemplars[i] = Exemplar{Value: v, TraceID: traceID}
	}
	s.exMu.Unlock()
}

// exemplar returns bucket i's exemplar, or a zero Exemplar.
func (s *series) exemplar(i int) Exemplar {
	s.exMu.Lock()
	defer s.exMu.Unlock()
	if i >= len(s.exemplars) {
		return Exemplar{}
	}
	return s.exemplars[i]
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil {
		return 0
	}
	return math.Float64frombits(h.s.sumBits.Load())
}

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SetHelp attaches Prometheus HELP text to a metric family, before or
// after the family's first instrument is registered.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if f, ok := r.fams[name]; ok {
		f.help = help
	} else {
		if r.help == nil {
			r.help = map[string]string{}
		}
		r.help[name] = help
	}
	r.mu.Unlock()
}

// Counter returns the counter series name{labelPairs…}, registering it
// on first use. labelPairs alternate key, value. Nil registry → nil
// counter.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	s := r.lookup(name, "counter", nil, labelPairs)
	if s == nil {
		return nil
	}
	return &Counter{s: s}
}

// Gauge returns the gauge series name{labelPairs…}.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	s := r.lookup(name, "gauge", nil, labelPairs)
	if s == nil {
		return nil
	}
	return &Gauge{s: s}
}

// Histogram returns the histogram series name{labelPairs…} with the
// given bucket upper bounds (nil → DefBuckets). Bounds are fixed at
// first registration of the family.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	s := r.lookup(name, "histogram", bounds, labelPairs)
	if s == nil {
		return nil
	}
	return &Histogram{s: s}
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// SeriesID renders the canonical identity of one time series: the bare
// metric name when it carries no labels, or name{k="v",…} with the
// labels sorted by key — the same order and escaping the Prometheus
// exposition uses. The metrics-history buffer and the sys_metric /
// sys_metric_history virtual relations all key series this way, so a
// Datalog join between them matches textually.
func SeriesID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (r *Registry) lookup(name, typ string, bounds []float64, labelPairs []string) *series {
	if r == nil {
		return nil
	}
	key := renderLabels(labelPairs)

	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.fams[name]
		if f == nil {
			f = &family{name: name, typ: typ, help: r.help[name], series: map[string]*series{}}
			delete(r.help, name)
			r.fams[name] = f
		}
		r.mu.Unlock()
	}

	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: key}
	if typ == "histogram" {
		s.bounds = bounds
		s.buckets = make([]atomic.Int64, len(bounds)+1)
	}
	f.series[key] = s
	return s
}

// MetricPoint is one series in a registry snapshot, JSON-friendly.
type MetricPoint struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	LE       float64   `json:"le"` // math.Inf(1) for the overflow bucket
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the bound as a string ("+Inf" for the overflow
// bucket) — JSON numbers cannot represent infinity, and the Prometheus
// exposition renders le as a string too.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if b.Exemplar != nil {
		return fmt.Appendf(nil, `{"le":%q,"count":%d,"exemplar":{"value":%s,"trace_id":%d}}`,
			formatFloat(b.LE), b.Count, formatFloat(b.Exemplar.Value), b.Exemplar.TraceID), nil
	}
	return fmt.Appendf(nil, `{"le":%q,"count":%d}`, formatFloat(b.LE), b.Count), nil
}

func parseLabels(rendered string) map[string]string {
	if rendered == "" {
		return nil
	}
	out := map[string]string{}
	for _, part := range splitLabelPairs(rendered) {
		if i := strings.Index(part, `="`); i > 0 {
			out[part[:i]] = strings.TrimSuffix(part[i+2:], `"`)
		}
	}
	return out
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// Snapshot returns every series in the registry, sorted by family name
// then label set, in a JSON-friendly shape (used by --stats-json, the
// expvar surface, and kdb-experiments).
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []MetricPoint
	for _, f := range fams {
		for _, s := range f.sorted() {
			p := MetricPoint{Name: f.name, Type: f.typ, Labels: parseLabels(s.labels)}
			switch f.typ {
			case "counter":
				p.Value = float64(s.intVal.Load())
			case "gauge":
				p.Value = math.Float64frombits(s.bits.Load())
			case "histogram":
				cum := int64(0)
				for i := range s.buckets {
					cum += s.buckets[i].Load()
					le := math.Inf(1)
					if i < len(s.bounds) {
						le = s.bounds[i]
					}
					bc := BucketCount{LE: le, Count: cum}
					if ex := s.exemplar(i); ex.TraceID != 0 {
						bc.Exemplar = &ex
					}
					p.Buckets = append(p.Buckets, bc)
				}
				p.Count = s.count.Load()
				p.Sum = math.Float64frombits(s.sumBits.Load())
			}
			out = append(out, p)
		}
	}
	return out
}

func (f *family) sorted() []*series {
	f.mu.RLock()
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.RUnlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
	return ss
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4), families sorted by name, series sorted by
// label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sorted() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	brace := func(extra string) string {
		switch {
		case s.labels == "" && extra == "":
			return ""
		case s.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + s.labels + "}"
		default:
			return "{" + s.labels + "," + extra + "}"
		}
	}
	switch f.typ {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, brace(""), s.intVal.Load())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, brace(""), formatFloat(math.Float64frombits(s.bits.Load())))
		return err
	case "histogram":
		cum := int64(0)
		for i := range s.buckets {
			cum += s.buckets[i].Load()
			le := "+Inf"
			if i < len(s.bounds) {
				le = formatFloat(s.bounds[i])
			}
			// Exemplar-carrying buckets get the OpenMetrics suffix:
			//   … # {trace_id="…"} value
			// linking the bucket to its worst recent observation's trace.
			exs := ""
			if ex := s.exemplar(i); ex.TraceID != 0 {
				exs = fmt.Sprintf(` # {trace_id="%d"} %s`, ex.TraceID, formatFloat(ex.Value))
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, brace(`le="`+le+`"`), cum, exs); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, brace(""), formatFloat(math.Float64frombits(s.sumBits.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, brace(""), s.count.Load())
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

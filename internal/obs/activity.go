package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The live activity layer: while a query runs, the KB registers it in an
// ActivityRegistry — statement, tenant/client, start time, trace id, and
// stats-so-far updated by the engines — and deregisters it on finish.
// `kdb serve` exposes the registry at /v1/debug/activity, and an entry
// can be canceled (its context's cancel func fires, the governor stops
// the evaluation, and the request fails with 499). It is the engine-room
// counterpart of a database's pg_stat_activity.

// Activity is one in-flight query. The engines update FactsSoFar and
// LookupsSoFar through AddProgress/SetProgress, which (like the span
// API) are nil-receiver-safe so an unregistered evaluation pays only a
// nil check.
type Activity struct {
	id        uint64
	statement string
	kind      string
	tenant    string
	client    string
	traceID   uint64
	started   time.Time
	cancel    context.CancelFunc

	facts    atomic.Int64
	lookups  atomic.Int64
	canceled atomic.Bool
}

// AddProgress adds to the activity's running fact/lookup totals. The
// bottom-up engines call it once per finished component (including from
// parallel scheduler workers, hence atomics). No-op on nil.
//
//kdb:hotpath
func (a *Activity) AddProgress(facts, lookups int64) {
	if a == nil {
		return
	}
	a.facts.Add(facts)
	a.lookups.Add(lookups)
}

// SetProgress replaces the running totals. The top-down engine calls it
// once per naive-iteration pass with the table totals. No-op on nil.
//
//kdb:hotpath
func (a *Activity) SetProgress(facts, lookups int64) {
	if a == nil {
		return
	}
	a.facts.Store(facts)
	a.lookups.Store(lookups)
}

// ID returns the registry-issued id, or 0 for a nil or unregistered
// activity.
func (a *Activity) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.id
}

// ActivityInfo is the wire snapshot of one in-flight query.
type ActivityInfo struct {
	ID        uint64    `json:"id"`
	Statement string    `json:"statement"`
	Kind      string    `json:"kind"`
	Tenant    string    `json:"tenant,omitempty"`
	Client    string    `json:"client,omitempty"`
	TraceID   uint64    `json:"trace_id,omitempty"`
	Started   time.Time `json:"started"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Facts     int64     `json:"facts"`
	Lookups   int64     `json:"lookups"`
	Canceled  bool      `json:"canceled,omitempty"`
}

// ActivityRegistry tracks the queries currently executing against one
// KB (or one server's shared KB). A nil registry is valid: Begin
// returns nil and every other method does nothing, so the layer costs
// nothing unless enabled.
type ActivityRegistry struct {
	mu      sync.Mutex
	nextID  uint64
	entries map[uint64]*Activity
}

// NewActivityRegistry returns an empty registry.
func NewActivityRegistry() *ActivityRegistry {
	return &ActivityRegistry{entries: make(map[uint64]*Activity)}
}

// Begin registers an in-flight query and returns its Activity. The
// cancel func (may be nil) is invoked by Cancel to stop the query's
// evaluation. Returns nil on a nil registry.
func (reg *ActivityRegistry) Begin(statement, kind, tenant, client string, traceID uint64, cancel context.CancelFunc) *Activity {
	if reg == nil {
		return nil
	}
	a := &Activity{
		statement: statement,
		kind:      kind,
		tenant:    tenant,
		client:    client,
		traceID:   traceID,
		started:   time.Now(),
		cancel:    cancel,
	}
	reg.mu.Lock()
	reg.nextID++
	a.id = reg.nextID
	reg.entries[a.id] = a
	reg.mu.Unlock()
	return a
}

// End removes the activity from the registry. No-op when either side is
// nil.
func (reg *ActivityRegistry) End(a *Activity) {
	if reg == nil || a == nil {
		return
	}
	reg.mu.Lock()
	delete(reg.entries, a.id)
	reg.mu.Unlock()
}

// Cancel invokes the cancel func of the activity with the given id.
// Returns false if no such query is in flight. The entry stays
// registered until the evaluation unwinds and its owner calls End.
func (reg *ActivityRegistry) Cancel(id uint64) bool {
	if reg == nil {
		return false
	}
	reg.mu.Lock()
	a := reg.entries[id]
	reg.mu.Unlock()
	if a == nil {
		return false
	}
	a.canceled.Store(true)
	if a.cancel != nil {
		a.cancel()
	}
	return true
}

// Len returns the number of in-flight queries.
func (reg *ActivityRegistry) Len() int {
	if reg == nil {
		return 0
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.entries)
}

// Snapshot returns the in-flight queries, oldest first.
func (reg *ActivityRegistry) Snapshot() []ActivityInfo {
	if reg == nil {
		return nil
	}
	now := time.Now()
	reg.mu.Lock()
	out := make([]ActivityInfo, 0, len(reg.entries))
	for _, a := range reg.entries {
		out = append(out, ActivityInfo{
			ID:        a.id,
			Statement: a.statement,
			Kind:      a.kind,
			Tenant:    a.tenant,
			Client:    a.client,
			TraceID:   a.traceID,
			Started:   a.started,
			ElapsedMS: float64(now.Sub(a.started)) / float64(time.Millisecond),
			Facts:     a.facts.Load(),
			Lookups:   a.lookups.Load(),
			Canceled:  a.canceled.Load(),
		})
	}
	reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type activityKey struct{}

// ContextWithActivity returns a context carrying a. If a is nil, ctx is
// returned unchanged so downstream ActivityFromContext stays nil and
// allocation-free.
func ContextWithActivity(ctx context.Context, a *Activity) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, activityKey{}, a)
}

// ActivityFromContext returns the activity carried by ctx, or nil.
func ActivityFromContext(ctx context.Context) *Activity {
	a, _ := ctx.Value(activityKey{}).(*Activity)
	return a
}

// Package sysrel serves the sys_* virtual relations: the engine's own
// telemetry — catalog, rules, metrics, metric history, in-flight
// activity, query statistics, tenants — exposed as ordinary relations,
// so the full Datalog stack (retrieve, describe, explain, profile)
// works on the engine itself. A Provider is long-lived and holds the
// telemetry sources; each query takes a short-lived View that
// materializes one read-only snapshot per referenced relation.
//
// Sources are read directly (storage store, metrics registry, activity
// registry, history buffer) — never through the knowledge-base layer,
// whose locks the querying goroutine already holds.
package sysrel

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"kdb/internal/depgraph"
	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Prefix reserves the namespace: no user predicate may start with it.
const Prefix = "sys_"

// IsName reports whether pred lies in the reserved sys_ namespace.
// It is called on hot paths and must not allocate.
func IsName(pred string) bool { return strings.HasPrefix(pred, Prefix) }

// Def describes one virtual relation: its schema and what it means,
// backing `describe sys_…` and arity validation.
type Def struct {
	Name  string
	Arity int
	Args  []string
	Doc   string
}

// Signature renders the relation with its argument names,
// e.g. "sys_metric(Name, Kind, Value)".
func (d *Def) Signature() string {
	return d.Name + "(" + strings.Join(d.Args, ", ") + ")"
}

// defs lists every virtual relation, in a stable order.
var defs = []Def{
	{
		Name: "sys_relation", Arity: 3, Args: []string{"Name", "Arity", "Facts"},
		Doc: "one row per stored relation: its name, arity, and current fact count",
	},
	{
		Name: "sys_rule", Arity: 4, Args: []string{"Id", "Head", "BodyLen", "Scc"},
		Doc: "one row per loaded rule: its id (load order), head predicate, body length, and the index of its strongly connected component in dependency order",
	},
	{
		Name: "sys_metric", Arity: 3, Args: []string{"Name", "Kind", "Value"},
		Doc: "one row per metric series: its canonical name (labels rendered Prometheus-style), kind (counter, gauge, or histogram), and current value — for histograms, the cumulative observation count",
	},
	{
		Name: "sys_metric_history", Arity: 3, Args: []string{"Name", "AgeSeconds", "Value"},
		Doc: "one row per retained history sample: series name, the sample's age in whole seconds at snapshot time, and its value (histograms record their cumulative count)",
	},
	{
		Name: "sys_activity", Arity: 4, Args: []string{"Id", "Kind", "Tenant", "ElapsedUs"},
		Doc: "one row per in-flight query: its activity id, statement kind, tenant, and elapsed microseconds at snapshot time",
	},
	{
		Name: "sys_query_stats", Arity: 4, Args: []string{"Stmt", "Count", "TotalUs", "MaxUs"},
		Doc: "one row per distinct finished statement (requires WithQueryStats): executions, total and maximum latency in microseconds; statements beyond the cap aggregate under \"(other)\"",
	},
	{
		Name: "sys_tenant", Arity: 4, Args: []string{"Name", "Open", "Degraded", "Poisoned"},
		Doc: "one row per server tenant (server-side only): 1/0 flags for whether it is open, degraded to read-only by its circuit breaker, and poisoned by a durability error",
	},
}

var defByName = func() map[string]*Def {
	m := make(map[string]*Def, len(defs))
	for i := range defs {
		m[defs[i].Name] = &defs[i]
	}
	return m
}()

// Defs returns every virtual relation definition, in a stable order.
// The result is shared; callers must not mutate it.
func Defs() []Def { return defs }

// Lookup returns the definition of one virtual relation, or nil.
func Lookup(pred string) *Def { return defByName[pred] }

// TenantInfo is one row of sys_tenant, reported by the server's
// tenant source.
type TenantInfo struct {
	Name     string
	Open     bool
	Degraded bool
	Poisoned bool
}

// Provider holds the telemetry sources behind the sys_* relations. The
// zero value serves the catalog-shaped relations (sys_relation,
// sys_rule) and empty rows for the rest; sources are attached with the
// Set* methods, which are safe to call at any time (each query's view
// reads them once). All methods are nil-receiver safe.
type Provider struct {
	reg     atomic.Pointer[obs.Registry]
	hist    atomic.Pointer[history.Buffer]
	act     atomic.Pointer[obs.ActivityRegistry]
	stats   atomic.Pointer[QueryStats]
	tenants atomic.Pointer[func() []TenantInfo]
}

// NewProvider returns an empty provider.
func NewProvider() *Provider { return &Provider{} }

// SetRegistry attaches the metrics registry behind sys_metric.
func (p *Provider) SetRegistry(r *obs.Registry) {
	if p == nil {
		return
	}
	p.reg.Store(r)
}

// SetHistory attaches the history buffer behind sys_metric_history.
func (p *Provider) SetHistory(b *history.Buffer) {
	if p == nil {
		return
	}
	p.hist.Store(b)
}

// SetActivity attaches the in-flight registry behind sys_activity.
func (p *Provider) SetActivity(r *obs.ActivityRegistry) {
	if p == nil {
		return
	}
	p.act.Store(r)
}

// SetQueryStats attaches the statement statistics behind
// sys_query_stats.
func (p *Provider) SetQueryStats(s *QueryStats) {
	if p == nil {
		return
	}
	p.stats.Store(s)
}

// QueryStats returns the attached statement statistics, or nil.
func (p *Provider) QueryStats() *QueryStats {
	if p == nil {
		return nil
	}
	return p.stats.Load()
}

// SetTenants attaches the tenant source behind sys_tenant (the server
// installs one; standalone KBs leave the relation empty). The source
// must not call back into the knowledge-base layer.
func (p *Provider) SetTenants(fn func() []TenantInfo) {
	if p == nil || fn == nil {
		return
	}
	p.tenants.Store(&fn)
}

// View captures one query's sources: the store and rule set it runs
// against plus the provider's telemetry. It satisfies eval.Virtual;
// Snapshot materializes each relation at most once per query (the
// planner deduplicates), which is what gives sys_* joins their
// read-consistent, engine-independent semantics.
type View struct {
	p     *Provider
	store *storage.Store
	rules []term.Rule
}

// View returns the per-query view over store and rules. The rules
// slice is captured as-is; callers pass the same snapshot the engines
// evaluate.
func (p *Provider) View(store *storage.Store, rules []term.Rule) *View {
	if p == nil {
		return nil
	}
	return &View{p: p, store: store, rules: rules}
}

// IsVirtual reports whether pred is a served virtual relation. It does
// not allocate (a prefix check plus one map read).
func (v *View) IsVirtual(pred string) bool {
	return v != nil && IsName(pred) && defByName[pred] != nil
}

// Snapshot materializes the current contents of one virtual relation.
func (v *View) Snapshot(pred string) (*storage.Relation, error) {
	d := Lookup(pred)
	if v == nil || d == nil {
		return nil, fmt.Errorf("sysrel: unknown system relation %s", pred)
	}
	rel, err := storage.NewRelation(d.Arity)
	if err != nil {
		return nil, err
	}
	ins := func(args ...term.Term) error {
		_, err := rel.Insert(storage.Tuple(args))
		return err
	}
	switch pred {
	case "sys_relation":
		if v.store != nil {
			for _, name := range v.store.Preds() {
				r := v.store.Relation(name)
				if r == nil {
					continue
				}
				if err := ins(symOrStr(name), term.Num(float64(r.Arity())), term.Num(float64(r.Len()))); err != nil {
					return nil, err
				}
			}
		}
	case "sys_rule":
		scc := sccIndex(v.rules)
		for i, r := range v.rules {
			if err := ins(term.Num(float64(i)), symOrStr(r.Head.Pred),
				term.Num(float64(len(r.Body))), term.Num(float64(scc[r.Head.Pred]))); err != nil {
				return nil, err
			}
		}
	case "sys_metric":
		if reg := v.p.reg.Load(); reg != nil {
			for _, pt := range reg.Snapshot() {
				val := pt.Value
				if pt.Type == "histogram" {
					val = float64(pt.Count)
				}
				if err := ins(symOrStr(obs.SeriesID(pt.Name, pt.Labels)),
					term.Sym(pt.Type), term.Num(val)); err != nil {
					return nil, err
				}
			}
		}
	case "sys_metric_history":
		if h := v.p.hist.Load(); h != nil {
			now := time.Now()
			for _, s := range h.Snapshot() {
				for _, sm := range s.Samples {
					age := int64(now.Sub(sm.At) / time.Second)
					if age < 0 {
						age = 0
					}
					if err := ins(symOrStr(s.Name), term.Num(float64(age)), term.Num(sm.Value)); err != nil {
						return nil, err
					}
				}
			}
		}
	case "sys_activity":
		if a := v.p.act.Load(); a != nil {
			for _, q := range a.Snapshot() {
				if err := ins(term.Num(float64(q.ID)), symOrStr(q.Kind),
					symOrStr(q.Tenant), term.Num(q.ElapsedMS*1000)); err != nil {
					return nil, err
				}
			}
		}
	case "sys_query_stats":
		if s := v.p.stats.Load(); s != nil {
			for _, row := range s.Snapshot() {
				if err := ins(term.Str(row.Statement), term.Num(float64(row.Count)),
					term.Num(float64(row.TotalUs)), term.Num(float64(row.MaxUs))); err != nil {
					return nil, err
				}
			}
		}
	case "sys_tenant":
		if fn := v.p.tenants.Load(); fn != nil {
			for _, t := range (*fn)() {
				if err := ins(symOrStr(t.Name), boolTerm(t.Open),
					boolTerm(t.Degraded), boolTerm(t.Poisoned)); err != nil {
					return nil, err
				}
			}
		}
	}
	return rel, nil
}

// sccIndex maps each rule-head predicate to the index of its strongly
// connected component in dependency order, so sys_rule rows can be
// grouped and ordered by evaluation stratum.
func sccIndex(rules []term.Rule) map[string]int {
	idx := make(map[string]int)
	for i, comp := range depgraph.New(rules).SCCOrder() {
		for _, pred := range comp {
			idx[pred] = i
		}
	}
	return idx
}

// symOrStr renders a telemetry string as a symbol when it is shaped
// like one (lowercase identifier, not a reserved word) so it joins
// with bare atoms users type, and as a string constant otherwise.
func symOrStr(s string) term.Term {
	if isSymbolName(s) {
		return term.Sym(s)
	}
	return term.Str(s)
}

func isSymbolName(s string) bool {
	if s == "" || parser.IsReserved(s) {
		return false
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}

// boolTerm encodes a flag as 1/0: "true" is a reserved word, so a
// symbol would be untypable in queries, while numbers join and compare
// (sys_tenant(N, _, D, _), D > 0) naturally.
func boolTerm(b bool) term.Term {
	if b {
		return term.Num(1)
	}
	return term.Num(0)
}

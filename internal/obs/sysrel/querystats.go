package sysrel

import (
	"sort"
	"sync"
	"time"
)

// DefaultMaxStatements caps how many distinct statements QueryStats
// tracks; later statements aggregate under OverflowKey, so the memory
// of a workload with unbounded statement diversity stays bounded.
const DefaultMaxStatements = 256

// OverflowKey is the synthetic statement that aggregates everything
// beyond the distinct-statement cap.
const OverflowKey = "(other)"

type stmtStats struct {
	count   int64
	totalUs int64
	maxUs   int64
}

func (s *stmtStats) observe(us int64) {
	s.count++
	s.totalUs += us
	if us > s.maxUs {
		s.maxUs = us
	}
}

// QueryStats aggregates per-statement execution counts and latencies —
// the rows of the sys_query_stats virtual relation. All methods are
// safe for concurrent use and nil-receiver safe (a KB without
// WithQueryStats pays one pointer check per query).
type QueryStats struct {
	mu       sync.Mutex
	max      int
	m        map[string]*stmtStats
	overflow stmtStats
}

// NewQueryStats returns an empty aggregate tracking at most max
// distinct statements (max <= 0 selects DefaultMaxStatements).
func NewQueryStats(max int) *QueryStats {
	if max <= 0 {
		max = DefaultMaxStatements
	}
	return &QueryStats{max: max, m: make(map[string]*stmtStats)}
}

// Observe folds one finished execution of stmt into the aggregate.
func (s *QueryStats) Observe(stmt string, d time.Duration) {
	if s == nil {
		return
	}
	us := d.Microseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.m[stmt]
	if st == nil {
		if len(s.m) >= s.max {
			s.overflow.observe(us)
			return
		}
		st = &stmtStats{}
		s.m[stmt] = st
	}
	st.observe(us)
}

// QueryStatRow is one statement's aggregate.
type QueryStatRow struct {
	Statement string
	Count     int64
	TotalUs   int64
	MaxUs     int64
}

// Snapshot returns the per-statement aggregates sorted by statement,
// with the overflow bucket (when non-empty) last under OverflowKey.
func (s *QueryStats) Snapshot() []QueryStatRow {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryStatRow, 0, len(s.m)+1)
	for stmt, st := range s.m {
		out = append(out, QueryStatRow{Statement: stmt, Count: st.count, TotalUs: st.totalUs, MaxUs: st.maxUs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Statement < out[j].Statement })
	if s.overflow.count > 0 {
		out = append(out, QueryStatRow{Statement: OverflowKey, Count: s.overflow.count,
			TotalUs: s.overflow.totalUs, MaxUs: s.overflow.maxUs})
	}
	return out
}

package sysrel

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// rows renders every tuple of rel as "a b c" strings, sorted, for
// order-insensitive comparison.
func rows(t *testing.T, rel *storage.Relation) []string {
	t.Helper()
	var out []string
	rel.Scan(func(tp storage.Tuple) bool {
		parts := make([]string, len(tp))
		for i, x := range tp {
			parts[i] = x.String()
		}
		out = append(out, strings.Join(parts, " "))
		return true
	})
	sort.Strings(out)
	return out
}

func TestDefsCatalog(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Defs() {
		if !IsName(d.Name) {
			t.Errorf("%s lacks the sys_ prefix", d.Name)
		}
		if names[d.Name] {
			t.Errorf("duplicate def %s", d.Name)
		}
		names[d.Name] = true
		if len(d.Args) != d.Arity {
			t.Errorf("%s: %d arg names for arity %d", d.Name, len(d.Args), d.Arity)
		}
		if d.Doc == "" {
			t.Errorf("%s has no doc", d.Name)
		}
		got := Lookup(d.Name)
		if got == nil || got.Name != d.Name {
			t.Errorf("Lookup(%s) = %v", d.Name, got)
		}
	}
	for _, want := range []string{"sys_relation", "sys_rule", "sys_metric",
		"sys_metric_history", "sys_activity", "sys_query_stats", "sys_tenant"} {
		if !names[want] {
			t.Errorf("missing def %s", want)
		}
	}
	if Lookup("sys_nonesuch") != nil || Lookup("edge") != nil {
		t.Error("Lookup invented a relation")
	}
	if sig := Lookup("sys_metric").Signature(); sig != "sys_metric(Name, Kind, Value)" {
		t.Errorf("Signature = %q", sig)
	}
}

func TestViewIsVirtual(t *testing.T) {
	v := NewProvider().View(nil, nil)
	for _, tc := range []struct {
		pred string
		want bool
	}{
		{"sys_metric", true},
		{"sys_tenant", true},
		{"sys_nonesuch", false},
		{"edge", false},
		{"sys", false},
	} {
		if got := v.IsVirtual(tc.pred); got != tc.want {
			t.Errorf("IsVirtual(%s) = %v, want %v", tc.pred, got, tc.want)
		}
	}
	var nilv *View
	if nilv.IsVirtual("sys_metric") {
		t.Error("nil view claims to serve relations")
	}
}

func TestSnapshotRelationAndRule(t *testing.T) {
	st := storage.NewMemory()
	for _, a := range []term.Atom{
		term.NewAtom("edge", term.Sym("a"), term.Sym("b")),
		term.NewAtom("edge", term.Sym("b"), term.Sym("c")),
		term.NewAtom("color", term.Sym("red")),
	} {
		if _, err := st.InsertAtom(a); err != nil {
			t.Fatal(err)
		}
	}
	rules := []term.Rule{
		term.NewRule(term.NewAtom("reach", term.Var("X"), term.Var("Y")),
			term.NewAtom("edge", term.Var("X"), term.Var("Y"))),
		term.NewRule(term.NewAtom("reach", term.Var("X"), term.Var("Y")),
			term.NewAtom("edge", term.Var("X"), term.Var("Z")),
			term.NewAtom("reach", term.Var("Z"), term.Var("Y"))),
	}
	v := NewProvider().View(st, rules)

	rel, err := v.Snapshot("sys_relation")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"color 1 1", "edge 2 2"}
	if got := rows(t, rel); !reflect.DeepEqual(got, want) {
		t.Errorf("sys_relation = %v, want %v", got, want)
	}

	rel, err = v.Snapshot("sys_rule")
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, rel)
	if len(got) != 2 {
		t.Fatalf("sys_rule = %v, want 2 rows", got)
	}
	// Both rules head reach; body lengths 1 and 2; same SCC index.
	if !strings.HasPrefix(got[0], "0 reach 1 ") || !strings.HasPrefix(got[1], "1 reach 2 ") {
		t.Errorf("sys_rule rows = %v", got)
	}
}

func TestSnapshotMetricAndHistory(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("queries_total", "Queries.")
	reg.Counter("queries_total").Add(3)
	reg.SetHelp("lat_seconds", "Latency.")
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	p := NewProvider()
	p.SetRegistry(reg)
	buf := history.New(reg, time.Second, time.Minute)
	buf.Sample()
	p.SetHistory(buf)
	v := p.View(nil, nil)

	rel, err := v.Snapshot("sys_metric")
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, rel)
	wantRows := map[string]bool{}
	for _, r := range got {
		wantRows[r] = true
	}
	if !wantRows["queries_total counter 3"] {
		t.Errorf("sys_metric missing counter row: %v", got)
	}
	// Histograms expose their cumulative count as the value.
	if !wantRows["lat_seconds histogram 2"] {
		t.Errorf("sys_metric missing histogram row: %v", got)
	}

	rel, err = v.Snapshot("sys_metric_history")
	if err != nil {
		t.Fatal(err)
	}
	got = rows(t, rel)
	if len(got) == 0 {
		t.Fatal("sys_metric_history empty after a sample")
	}
	found := false
	for _, r := range got {
		if strings.HasPrefix(r, "queries_total 0 3") {
			found = true
		}
	}
	if !found {
		t.Errorf("sys_metric_history rows = %v, want fresh queries_total sample", got)
	}
}

func TestSnapshotActivityStatsTenants(t *testing.T) {
	p := NewProvider()
	act := obs.NewActivityRegistry()
	a := act.Begin("retrieve edge(X, Y).", "retrieve", "acme", "cli", 7, nil)
	defer act.End(a)
	p.SetActivity(act)

	qs := NewQueryStats(0)
	qs.Observe("retrieve edge(X, Y).", 1500*time.Microsecond)
	qs.Observe("retrieve edge(X, Y).", 500*time.Microsecond)
	p.SetQueryStats(qs)
	if p.QueryStats() != qs {
		t.Error("QueryStats accessor mismatch")
	}

	p.SetTenants(func() []TenantInfo {
		return []TenantInfo{
			{Name: "acme", Open: true},
			{Name: "globex", Degraded: true, Poisoned: true},
		}
	})
	v := p.View(nil, nil)

	rel, err := v.Snapshot("sys_activity")
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, rel)
	// "retrieve" is a reserved word, so the kind renders as a string.
	if len(got) != 1 || !strings.HasPrefix(got[0], `1 "retrieve" acme `) {
		t.Errorf("sys_activity = %v", got)
	}

	rel, err = v.Snapshot("sys_query_stats")
	if err != nil {
		t.Fatal(err)
	}
	got = rows(t, rel)
	want := []string{`"retrieve edge(X, Y)." 2 2000 1500`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sys_query_stats = %v, want %v", got, want)
	}

	rel, err = v.Snapshot("sys_tenant")
	if err != nil {
		t.Fatal(err)
	}
	got = rows(t, rel)
	want = []string{"acme 1 0 0", "globex 0 1 1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sys_tenant = %v, want %v", got, want)
	}
}

func TestSnapshotEmptyProviderAndUnknown(t *testing.T) {
	v := NewProvider().View(nil, nil)
	for _, d := range Defs() {
		rel, err := v.Snapshot(d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if rel.Arity() != d.Arity {
			t.Errorf("%s snapshot arity %d, want %d", d.Name, rel.Arity(), d.Arity)
		}
		if rel.Len() != 0 {
			t.Errorf("%s on an empty provider has %d rows", d.Name, rel.Len())
		}
	}
	if _, err := v.Snapshot("sys_nonesuch"); err == nil {
		t.Error("unknown relation snapshots without error")
	}
}

func TestNilProviderSafe(t *testing.T) {
	var p *Provider
	p.SetRegistry(nil)
	p.SetHistory(nil)
	p.SetActivity(nil)
	p.SetQueryStats(nil)
	p.SetTenants(nil)
	if p.QueryStats() != nil {
		t.Error("nil provider has stats")
	}
	if p.View(nil, nil) != nil {
		t.Error("nil provider yields a view")
	}
}

func TestSymOrStr(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"edge", "edge"},
		{"queries_total", "queries_total"},
		{"true", `"true"`},           // reserved word must quote
		{"Upper", `"Upper"`},         // not a symbol shape
		{"", `""`},                   // empty string
		{"a-b", `"a-b"`},             // punctuation
		{`m{l="v"}`, `"m{l=\"v\"}"`}, // labeled series id
	} {
		if got := symOrStr(tc.in).String(); got != tc.want {
			t.Errorf("symOrStr(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestQueryStatsOverflow(t *testing.T) {
	qs := NewQueryStats(2)
	qs.Observe("a", time.Millisecond)
	qs.Observe("b", 2*time.Millisecond)
	qs.Observe("c", 3*time.Millisecond) // beyond cap → overflow
	qs.Observe("d", 4*time.Millisecond)
	qs.Observe("a", 5*time.Millisecond)

	snap := qs.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows, want 3: %+v", len(snap), snap)
	}
	if snap[0].Statement != "a" || snap[0].Count != 2 || snap[0].MaxUs != 5000 || snap[0].TotalUs != 6000 {
		t.Errorf("row a = %+v", snap[0])
	}
	if snap[1].Statement != "b" || snap[1].Count != 1 {
		t.Errorf("row b = %+v", snap[1])
	}
	last := snap[2]
	if last.Statement != OverflowKey || last.Count != 2 || last.TotalUs != 7000 || last.MaxUs != 4000 {
		t.Errorf("overflow row = %+v", last)
	}

	var nilStats *QueryStats
	nilStats.Observe("x", time.Second)
	if nilStats.Snapshot() != nil {
		t.Error("nil stats yields rows")
	}
}

func TestQueryStatsConcurrent(t *testing.T) {
	qs := NewQueryStats(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				qs.Observe(fmt.Sprintf("stmt-%d", i%16), time.Duration(i)*time.Microsecond)
				_ = qs.Snapshot()
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	var total int64
	for _, r := range qs.Snapshot() {
		total += r.Count
	}
	if total != 4*200 {
		t.Errorf("total observations %d, want 800", total)
	}
}

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- Exemplars -------------------------------------------------------

// TestHistogramExemplar checks the exemplar lifecycle: ObserveExemplar
// attaches the worst-recent trace id to the right bucket, the
// Prometheus exposition renders the OpenMetrics exemplar suffix, and
// the in-repo validator accepts it.
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", []float64{0.1, 1, 10})
	h.ObserveExemplar(0.5, 111)
	h.ObserveExemplar(0.3, 222) // smaller value: must NOT displace 111
	h.ObserveExemplar(0.7, 333) // larger value: must displace 111
	h.ObserveExemplar(5, 444)   // different bucket

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if err := ValidatePrometheus(text); err != nil {
		t.Fatalf("exposition with exemplars fails validation: %v\n%s", err, text)
	}
	if !strings.Contains(text, `# {trace_id="333"} 0.7`) {
		t.Errorf("want worst-recent exemplar 333 on the le=1 bucket:\n%s", text)
	}
	if strings.Contains(text, `trace_id="111"`) || strings.Contains(text, `trace_id="222"`) {
		t.Errorf("displaced or smaller exemplar leaked into exposition:\n%s", text)
	}
	if !strings.Contains(text, `# {trace_id="444"} 5`) {
		t.Errorf("want exemplar 444 on the le=10 bucket:\n%s", text)
	}

	// The JSON snapshot carries the same exemplars, bucket-for-bucket.
	var withEx int
	for _, p := range reg.Snapshot() {
		for _, b := range p.Buckets {
			if b.Exemplar != nil {
				withEx++
				if b.Exemplar.TraceID != 333 && b.Exemplar.TraceID != 444 {
					t.Errorf("unexpected exemplar trace id %d", b.Exemplar.TraceID)
				}
			}
		}
	}
	if withEx != 2 {
		t.Errorf("snapshot has %d bucket exemplars, want 2", withEx)
	}
}

// TestQueryMetricsExemplar checks the query-latency plumbing: a traced
// observation lands its trace id on the latency histogram.
func TestQueryMetricsExemplar(t *testing.T) {
	reg := NewRegistry()
	qm := NewQueryMetrics(reg)
	qm.ObserveQueryTrace("retrieve", 50*time.Millisecond, "", false, 987654)
	qm.ObserveQuery("retrieve", 60*time.Millisecond, "", false) // untraced: no exemplar

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(buf.String(), `trace_id="987654"`) {
		t.Errorf("latency exposition missing the traced exemplar:\n%s", buf.String())
	}
	if err := ValidatePrometheus(buf.String()); err != nil {
		t.Fatalf("validation: %v", err)
	}
}

// TestValidatePrometheusRejectsMisplacedExemplar pins the validator's
// new rule: exemplars belong to _bucket samples only.
func TestValidatePrometheusRejectsMisplacedExemplar(t *testing.T) {
	bad := "# TYPE x counter\nx_total 3 # {trace_id=\"1\"} 3\n"
	if err := ValidatePrometheus(bad); err == nil {
		t.Error("exemplar on a counter sample passed validation")
	}
	good := "# TYPE x histogram\nx_bucket{le=\"1\"} 3 # {trace_id=\"1\"} 0.5\nx_bucket{le=\"+Inf\"} 3\nx_sum 1.5\nx_count 3\n"
	if err := ValidatePrometheus(good); err != nil {
		t.Errorf("exemplar on a bucket sample rejected: %v", err)
	}
}

// --- Build info ------------------------------------------------------

// TestRegisterBuildInfo checks the kdb_build_info gauge: value 1,
// labeled, and present in a valid exposition.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	info := RegisterBuildInfo(reg)
	if info.GoVersion == "" {
		t.Error("build info missing the Go version")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "kdb_build_info{") || !strings.Contains(text, `goversion="`+info.GoVersion+`"`) {
		t.Errorf("exposition missing the build-info gauge:\n%s", text)
	}
	if err := ValidatePrometheus(text); err != nil {
		t.Fatalf("validation: %v", err)
	}
	if b, err := json.Marshal(info); err != nil || !strings.Contains(string(b), "go_version") {
		t.Errorf("BuildInfo JSON = %s, %v", b, err)
	}
}

// --- Traceparent -----------------------------------------------------

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", 0xa3ce929d0e0e4736, true},
		{" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 ", 0xa3ce929d0e0e4736, true},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", 0, false}, // all-zero trace id
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", 0, false}, // forbidden version
		{"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", 0, false},   // short trace id
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", 0, false}, // upper-case hex
		{"garbage", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseTraceparent(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseTraceparent(%q) = (%#x, %v), want (%#x, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// --- Rotating query-log writer --------------------------------------

// TestRotatingWriter checks size-based rotation: the live file stays
// under the cap, shifted files appear as path.1..path.keep, and the
// oldest is deleted.
func TestRotatingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.log")
	// 1 MB cap; each write is ~512 KiB so every third write rotates.
	w, err := NewRotatingWriter(path, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.Repeat("x", 512<<10-1) + "\n"
	for i := 0; i < 7; i++ {
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("live file: %v", err)
	}
	if fi.Size() > 1<<20 {
		t.Errorf("live file %d bytes, want <= 1MB", fi.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("missing first rotated file: %v", err)
	}
	if _, err := os.Stat(path + ".2"); err != nil {
		t.Errorf("missing second rotated file: %v", err)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("rotation kept more than 2 old files (err=%v)", err)
	}
}

// TestRotatingWriterUnbounded: maxMB <= 0 must never rotate.
func TestRotatingWriterUnbounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.log")
	w, err := NewRotatingWriter(path, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fmt.Fprintf(w, "%s\n", strings.Repeat("y", 1024))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("unbounded writer rotated (err=%v)", err)
	}
}

// TestRotatingWriterReopen is the logrotate handshake: an external
// rotator renames the live file, the process reopens on signal, and
// subsequent writes land in a fresh file at the configured path.
func TestRotatingWriterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.log")
	w, err := NewRotatingWriter(path, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Write([]byte("before\n")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(path, path+".rotated"); err != nil {
		t.Fatal(err)
	}
	// Until the reopen, writes still go to the renamed inode.
	if _, err := w.Write([]byte("limbo\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reopen(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("after\n")); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".rotated")
	if err != nil {
		t.Fatal(err)
	}
	if string(old) != "before\nlimbo\n" {
		t.Errorf("rotated file = %q", old)
	}
	fresh, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no fresh file after reopen: %v", err)
	}
	if string(fresh) != "after\n" {
		t.Errorf("fresh file = %q", fresh)
	}
}

// --- Activity registry ----------------------------------------------

// TestActivityRegistry covers the in-flight lifecycle: Begin lists the
// entry, progress updates show up in snapshots, Cancel fires the
// context's cancel func and flags the entry, End removes it.
func TestActivityRegistry(t *testing.T) {
	reg := NewActivityRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	a := reg.Begin("retrieve p(X).", "retrieve", "t1", "cli", 42, cancel)
	if a.ID() == 0 {
		t.Fatal("registered activity has id 0")
	}
	b := reg.Begin("describe q(X).", "describe", "t2", "", 0, nil)
	a.AddProgress(10, 5)
	a.AddProgress(1, 1)
	b.SetProgress(7, 3)

	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].ID != a.ID() || snap[1].ID != b.ID() {
		t.Errorf("snapshot not ordered by id: %+v", snap)
	}
	if snap[0].Facts != 11 || snap[0].Lookups != 6 || snap[0].TraceID != 42 || snap[0].Tenant != "t1" {
		t.Errorf("entry a = %+v", snap[0])
	}
	if snap[1].Facts != 7 || snap[1].Lookups != 3 {
		t.Errorf("entry b = %+v", snap[1])
	}

	if !reg.Cancel(a.ID()) {
		t.Fatal("Cancel(a) = false")
	}
	select {
	case <-ctx.Done():
	default:
		t.Error("cancel did not fire the context")
	}
	// The canceled entry stays listed (flagged) until its owner ends it.
	snap = reg.Snapshot()
	if len(snap) != 2 || !snap[0].Canceled {
		t.Errorf("after cancel: %+v", snap)
	}
	if reg.Cancel(9999) {
		t.Error("Cancel(unknown) = true")
	}

	reg.End(a)
	reg.End(b)
	if n := reg.Len(); n != 0 {
		t.Errorf("after End: %d entries, want 0", n)
	}
	// Nil-safety: the disabled path must be inert.
	var nilReg *ActivityRegistry
	if nilReg.Begin("x", "y", "", "", 0, nil) != nil || nilReg.Cancel(1) || nilReg.Len() != 0 || nilReg.Snapshot() != nil {
		t.Error("nil registry is not inert")
	}
	var nilAct *Activity
	nilAct.AddProgress(1, 1)
	nilAct.SetProgress(1, 1)
	if nilAct.ID() != 0 {
		t.Error("nil activity has nonzero id")
	}
}

// TestActivityProgressDisabledAllocs: the engine-side progress hooks
// must be free when no activity is registered.
func TestActivityProgressDisabledAllocs(t *testing.T) {
	var a *Activity
	allocs := testing.AllocsPerRun(200, func() {
		a.AddProgress(1, 2)
		a.SetProgress(3, 4)
	})
	if allocs != 0 {
		t.Errorf("disabled activity hooks allocate %v per call, want 0", allocs)
	}
}

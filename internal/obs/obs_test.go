package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query")
	root.SetStr("kind", "retrieve")
	child := root.Child("eval")
	child.SetWorker(2)
	child.SetInt("facts", 7)
	child.End()
	tr.Finish(root)

	if got := tr.Last(); got != root {
		t.Fatalf("Last() = %v, want root", got)
	}
	if root.Duration() <= 0 {
		t.Errorf("root duration = %v, want > 0", root.Duration())
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "eval" {
		t.Fatalf("children = %v, want one eval span", kids)
	}
	if kids[0].Worker() != 2 {
		t.Errorf("worker = %d, want 2", kids[0].Worker())
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "facts" || attrs[0].Int != 7 {
		t.Errorf("attrs = %v, want facts=7", attrs)
	}
}

func TestNilSafety(t *testing.T) {
	// Every method must no-op on a nil receiver — the disabled path.
	var tr *Tracer
	sp := tr.Start("query")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetBool("k", true)
	sp.SetFloat("k", 1.5)
	sp.SetWorker(1)
	sp.End()
	if c := sp.Child("x"); c != nil {
		t.Errorf("nil span Child = %v, want nil", c)
	}
	tr.Finish(sp)
	if tr.Last() != nil || tr.Recent() != nil {
		t.Error("nil tracer should report no spans")
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", nil).Observe(1)
	reg.SetHelp("c", "x")
	if reg.Snapshot() != nil {
		t.Error("nil registry Snapshot should be nil")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	var qm *QueryMetrics
	qm.ObserveQuery("retrieve", time.Millisecond, "", false)
	qm.ObserveEval(1, 2, 3, 4, 5, 6, 7)
	qm.ObserveDescribe(1)
	qm.ObserveExplain(3)
	var sm *StorageMetrics
	sm.ObserveWALAppend(time.Millisecond, 10)
	sm.ObserveWALSync(time.Millisecond)
	sm.ObserveSnapshot(time.Millisecond, 100)
}

func TestContextPlumbing(t *testing.T) {
	ctx := t.Context()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil span) must return ctx unchanged")
	}
	if sp := SpanFromContext(ctx); sp != nil {
		t.Errorf("SpanFromContext(empty) = %v, want nil", sp)
	}
	tr := NewTracer()
	root := tr.Start("q")
	ctx2 := ContextWithSpan(ctx, root)
	if got := SpanFromContext(ctx2); got != root {
		t.Errorf("SpanFromContext = %v, want root", got)
	}
}

// TestConcurrentSpans exercises a span tree from many goroutines; run
// with -race it verifies the locking discipline.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("scc")
				c.SetWorker(w)
				c.SetInt("i", int64(i))
				c.End()
				_ = root.Children()
				_ = root.Attrs()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish(root)
	if got := len(root.Children()); got != 8*50 {
		t.Errorf("children = %d, want %d", got, 8*50)
	}
}

// TestConcurrentMetrics hammers one registry from many goroutines; with
// -race it verifies the atomic internals.
func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ops_total", "worker", string(rune('a'+w)))
			g := reg.Gauge("depth")
			h := reg.Histogram("lat_seconds", nil)
			for i := 0; i < 200; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 1000)
				if i%50 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, p := range reg.Snapshot() {
		if p.Name == "ops_total" {
			total += int64(p.Value)
		}
		if p.Name == "lat_seconds" {
			if p.Count != 8*200 {
				t.Errorf("histogram count = %d, want %d", p.Count, 8*200)
			}
		}
	}
	if total != 8*200 {
		t.Errorf("counter total = %d, want %d", total, 8*200)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(buf.String()); err != nil {
		t.Fatalf("invalid exposition after concurrent load: %v", err)
	}
}

// buildSampleTrace makes a deterministic-shape trace for export tests.
func buildSampleTrace() *Span {
	tr := NewTracer()
	root := tr.Start("query")
	root.SetStr("kind", "describe")
	p := root.Child("parse")
	p.End()
	a := root.Child("analyze")
	a.End()
	e := root.Child("eval")
	s := e.Child("scc")
	s.SetWorker(1)
	s.SetInt("facts", 3)
	s.End()
	e.SetInt("facts", 3)
	e.End()
	d := root.Child("describe")
	d.SetInt("formulas", 2)
	d.End()
	tr.Finish(root)
	return root
}

var (
	usRe     = regexp.MustCompile(`"(start_us|dur_us)":\d+`)
	spanIDRe = regexp.MustCompile(`"span_id":\d+`)
)

func TestJSONLGolden(t *testing.T) {
	root := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, root); err != nil {
		t.Fatal(err)
	}
	got := usRe.ReplaceAllString(buf.String(), `"$1":0`)
	// The root's span_id is the process-unique counter; normalize it but
	// require its presence (query-log records join on it).
	if !spanIDRe.MatchString(got) {
		t.Errorf("root record missing span_id:\n%s", got)
	}
	got = spanIDRe.ReplaceAllString(got, `"span_id":7`)
	want := strings.Join([]string{
		`{"id":0,"parent":-1,"span_id":7,"name":"query","start_us":0,"dur_us":0,"attrs":{"kind":"describe"}}`,
		`{"id":1,"parent":0,"name":"parse","start_us":0,"dur_us":0}`,
		`{"id":2,"parent":0,"name":"analyze","start_us":0,"dur_us":0}`,
		`{"id":3,"parent":0,"name":"eval","start_us":0,"dur_us":0,"attrs":{"facts":3}}`,
		`{"id":4,"parent":3,"name":"scc","start_us":0,"dur_us":0,"attrs":{"facts":3},"worker":1}`,
		`{"id":5,"parent":0,"name":"describe","start_us":0,"dur_us":0,"attrs":{"formulas":2}}`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	// Every line must be standalone valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %q: %v", line, err)
		}
	}
}

func TestChromeTraceSchema(t *testing.T) {
	root := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Span{root}); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   *int64         `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  *int           `json:"pid"`
		TID  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6", len(events))
	}
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", e.Name, e.Ph)
		}
		if e.Cat != "kdb" {
			t.Errorf("event %q: cat = %q, want kdb", e.Name, e.Cat)
		}
		if e.TS == nil || e.PID == nil || e.TID == nil {
			t.Errorf("event %q: missing ts/pid/tid", e.Name)
		}
		if e.Dur < 1 {
			t.Errorf("event %q: dur = %d, want >= 1", e.Name, e.Dur)
		}
	}
	// The worker-attributed scc span must land on its own lane.
	found := false
	for _, e := range events {
		if e.Name == "scc" && e.TID != nil && *e.TID == 2 {
			found = true
		}
	}
	if !found {
		t.Error("scc span (worker 1) should be on tid 2")
	}
}

func TestWriteTree(t *testing.T) {
	root := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteTree(&buf, root); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"query", "parse", "analyze", "eval", "scc", "describe", "kind=describe"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer()
	var last *Span
	for i := 0; i < DefaultTraceBuffer+10; i++ {
		sp := tr.Start("q")
		tr.Finish(sp)
		last = sp
	}
	recent := tr.Recent()
	if len(recent) != DefaultTraceBuffer {
		t.Errorf("ring length = %d, want %d", len(recent), DefaultTraceBuffer)
	}
	if tr.Last() != last {
		t.Error("Last() should be the most recently finished root")
	}
}

func TestOnFinishCallback(t *testing.T) {
	tr := NewTracer()
	var got []*Span
	tr.OnFinish(func(sp *Span) { got = append(got, sp) })
	sp := tr.Start("q")
	tr.Finish(sp)
	if len(got) != 1 || got[0] != sp {
		t.Fatalf("OnFinish saw %v, want the finished root", got)
	}
}

func TestSetHelpBeforeAndAfterRegistration(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("early_total", "Registered after help.")
	reg.Counter("early_total").Inc()
	reg.Counter("late_total").Inc()
	reg.SetHelp("late_total", "Registered before help.")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP early_total Registered after help.",
		"# HELP late_total Registered before help.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsEndpointPrometheusFormat is the CI gate: the /metrics
// endpoint must serve text that parses as Prometheus exposition format,
// including the query-latency histograms.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	qm := NewQueryMetrics(reg)
	sm := NewStorageMetrics(reg)
	qm.ObserveQuery("retrieve", 2*time.Millisecond, "", false)
	qm.ObserveQuery("describe", 5*time.Millisecond, "limit:describe-nodes", true)
	qm.ObserveEval(10, 20, 30, 40, 1, 3, 2)
	qm.ObserveDescribe(12)
	sm.ObserveWALAppend(time.Millisecond, 128)
	sm.ObserveWALSync(time.Millisecond)
	sm.ObserveSnapshot(3*time.Millisecond, 4096)

	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(text); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	for _, want := range []string{
		`kdb_query_duration_seconds_bucket{kind="retrieve",le="+Inf"} 1`,
		`kdb_query_duration_seconds_count{kind="retrieve"} 1`,
		`kdb_query_stops_total{reason="limit:describe-nodes"} 1`,
		`kdb_wal_append_bytes_total 128`,
		`kdb_snapshot_bytes 4096`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The other debug surfaces must answer too.
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",             // no samples
		"just words\n", // not a sample line
		"# TYPE x counter\n# TYPE x gauge\nx 1\n", // duplicate TYPE
	} {
		if err := ValidatePrometheus(bad); err == nil {
			t.Errorf("ValidatePrometheus(%q) = nil, want error", bad)
		}
	}
}

func TestMetricsJSONHandlesInf(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h_seconds", nil).Observe(0.002)
	b, err := MetricsJSON(reg)
	if err != nil {
		t.Fatalf("MetricsJSON: %v (the +Inf bucket must marshal)", err)
	}
	if !bytes.Contains(b, []byte(`"+Inf"`)) {
		t.Errorf("snapshot JSON missing +Inf bucket: %s", b)
	}
	var v []map[string]any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

// TestDisabledPathAllocs asserts the zero-cost contract: with no tracer
// and no metrics, the instrumentation call sites allocate nothing.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	c := reg.Counter("x")
	h := reg.Histogram("h", nil)
	ctx := t.Context()
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("query")
		ctx2 := ContextWithSpan(ctx, sp)
		child := SpanFromContext(ctx2).Child("eval")
		child.SetInt("facts", 1)
		child.SetStr("engine", "seminaive")
		child.End()
		tr.Finish(sp)
		c.Inc()
		h.Observe(0.001)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkNilTracer measures the disabled-path overhead; -benchmem
// must report 0 allocs/op.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	ctx := b.Context()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("query")
		ctx2 := ContextWithSpan(ctx, sp)
		child := SpanFromContext(ctx2).Child("eval")
		child.SetInt("facts", int64(i))
		child.End()
		tr.Finish(sp)
	}
}

// BenchmarkEnabledTracer is the contrast case: the real cost when a
// tracer is attached.
func BenchmarkEnabledTracer(b *testing.B) {
	tr := NewTracer()
	ctx := b.Context()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("query")
		ctx2 := ContextWithSpan(ctx, sp)
		child := SpanFromContext(ctx2).Child("eval")
		child.SetInt("facts", int64(i))
		child.End()
		tr.Finish(sp)
	}
}

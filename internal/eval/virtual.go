package eval

import (
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Virtual supplies read-only system relations (the sys_* namespace) to
// the engines. A provider answers IsVirtual for predicate names it
// serves and materializes one relation per predicate on demand. The
// engines consult it only while building a plan: every virtual
// predicate referenced by the program is snapshotted exactly once per
// evaluation, so all joins inside one query — and the four engines run
// over the same plan inputs — see a single consistent state, never a
// live view that shifts mid-fixpoint.
//
// Providers must be safe for concurrent use and must not call back
// into the knowledge-base layer (snapshots are taken while the caller
// may hold its locks).
type Virtual interface {
	// IsVirtual reports whether pred names a virtual relation this
	// provider serves. It is called on the hot planning path and must
	// not allocate.
	IsVirtual(pred string) bool
	// Snapshot materializes the current contents of pred as a fresh
	// relation. The engines treat the result as immutable.
	Snapshot(pred string) (*storage.Relation, error)
}

// virtualSnapshots materializes every virtual predicate referenced by
// the rules (the internal query rule included, so subjects and
// qualifiers count). It returns nil when no virtual predicate occurs:
// on that path — the overwhelmingly common one — it performs no
// allocation at all (enforced by TestVirtualSnapshotsNoSysAllocs), so
// programs that never mention sys_* pay nothing for the provider.
func virtualSnapshots(v Virtual, rules []term.Rule) (map[string]*storage.Relation, error) {
	if v == nil {
		return nil, nil
	}
	var snaps map[string]*storage.Relation
	for _, r := range rules {
		for _, a := range r.Body {
			if !v.IsVirtual(a.Pred) {
				continue
			}
			if _, ok := snaps[a.Pred]; ok {
				continue
			}
			rel, err := v.Snapshot(a.Pred)
			if err != nil {
				return nil, err
			}
			if rel == nil {
				continue
			}
			if snaps == nil {
				snaps = make(map[string]*storage.Relation, 1)
			}
			snaps[a.Pred] = rel
		}
	}
	return snaps, nil
}

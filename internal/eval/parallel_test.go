package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"kdb/internal/term"
)

// --- scheduler ---

// TestRunDAGRespectsDependencies: every node runs exactly once, after all
// of its dependencies, for random DAGs and worker counts.
func TestRunDAGRespectsDependencies(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		deps := make([][]int, n)
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.Intn(3) == 0 {
					deps[i] = append(deps[i], j)
				}
			}
		}
		var mu sync.Mutex
		finished := make([]bool, n)
		ran := make([]int, n)
		err := runDAG(1+r.Intn(8), deps, func(i, _ int) error {
			mu.Lock()
			defer mu.Unlock()
			for _, j := range deps[i] {
				if !finished[j] {
					t.Logf("seed %d: node %d ran before dependency %d", seed, i, j)
					return fmt.Errorf("order violation")
				}
			}
			ran[i]++
			finished[i] = true
			return nil
		})
		if err != nil {
			return false
		}
		for i, c := range ran {
			if c != 1 {
				t.Logf("seed %d: node %d ran %d times", seed, i, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRunDAGBoundsWorkers: no more than the requested number of node
// evaluations are ever in flight.
func TestRunDAGBoundsWorkers(t *testing.T) {
	const n, workers = 24, 3
	deps := make([][]int, n) // fully independent
	var inFlight, peak atomic.Int64
	err := runDAG(workers, deps, func(int, int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestRunDAGPropagatesError: the first error is returned and the DAG
// still drains (no goroutine leak, no deadlock).
func TestRunDAGPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	// 0 ← 1 ← 2 ← … a chain, failing in the middle.
	const n = 10
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{i - 1}
	}
	var after atomic.Int64
	err := runDAG(4, deps, func(i, _ int) error {
		if i == 5 {
			return boom
		}
		if i > 5 {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if after.Load() != 0 {
		t.Errorf("%d nodes downstream of the failure still ran", after.Load())
	}
}

// --- satellite regressions ---

// TestFullLookupSuppressesStoredDuplicates: when a predicate has both
// derived and stored tuples, the full lookup must enumerate each fact
// once — stored tuples already derived are suppressed.
func TestFullLookupSuppressesStoredDuplicates(t *testing.T) {
	in := load(t, `p(a). p(b).`)
	e := NewSemiNaive(in).(*bottomUp)
	d := newDerived(nil)
	// p(a) is both stored and derived; p(c) only derived; p(b) only stored.
	for _, name := range []string{"a", "c"} {
		if _, err := d.insert(term.NewAtom("p", term.Sym(name))); err != nil {
			t.Fatal(err)
		}
	}
	var cs ComponentStats
	lk := e.fullLookup(&plan{}, d, nil, &cs, nil)
	x := term.Var("X")
	var got []string
	if err := lk(term.NewAtom("p", x), nil, func(s term.Subst) bool {
		got = append(got, s.Walk(x).Name())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, name := range got {
		counts[name]++
	}
	want := map[string]int{"a": 1, "b": 1, "c": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("enumerated %v, want each of a, b, c exactly once", got)
	}
	if cs.Lookups != 1 {
		t.Errorf("Lookups = %d, want 1", cs.Lookups)
	}
}

// TestHybridPredicateEngineAgreement: a predicate backed by both stored
// facts and rules yields the same, duplicate-free answer on every engine.
func TestHybridPredicateEngineAgreement(t *testing.T) {
	in := load(t, `
q(a). q(b).
p(a).
p(X) :- q(X).
r(X, Y) :- p(X), p(Y).
`)
	out := retrieveAll(t, in, query(t, `retrieve r(X, Y).`))
	// p's extension is {a, b}; r must be exactly the 4 ordered pairs.
	if len(out["seminaive"]) != 4 {
		t.Fatalf("r = %v, want 4 tuples", out["seminaive"])
	}
}

// TestChooseAtomReportsOffender: the "unbound comparison" error must name
// the actual unevaluable comparison with the substitution applied, not
// whatever atom happens to be first in the body.
func TestChooseAtomReportsOffender(t *testing.T) {
	// body[0] is an evaluable equality; the offender is the later
	// comparison whose right side stays unbound.
	x, y := term.Var("X"), term.Var("Y")
	body := []term.Atom{
		term.NewAtom(term.PredEq, x, term.Num(5)),
		term.NewAtom(term.PredGt, x, y),
	}
	noLookup := func(a term.Atom, base term.Subst, fn func(term.Subst) bool) error { return nil }
	_, err := solveBody(body, nil, noLookup, func(term.Subst) bool { return true })
	if err == nil {
		t.Fatal("expected an unbound-comparison error")
	}
	if !strings.Contains(err.Error(), "5 > Y") {
		t.Errorf("error %q does not name the offending comparison 5 > Y", err)
	}
	if strings.Contains(err.Error(), "= 5") {
		t.Errorf("error %q names the equality instead of the offender", err)
	}
}

// TestCallKeyManyVariables: variable ids must be encoded injectively. The
// old single-byte encoding ('0'+id) wraps at 256, making an atom whose
// 257th distinct variable repeats nothing collide with one whose last
// position repeats the first variable.
func TestCallKeyManyVariables(t *testing.T) {
	const n = 257
	distinct := make([]term.Term, n)
	for i := range distinct {
		distinct[i] = term.Var(fmt.Sprintf("V%d", i))
	}
	repeated := append([]term.Term(nil), distinct...)
	repeated[n-1] = distinct[0]
	a := term.Atom{Pred: "p", Args: distinct}
	b := term.Atom{Pred: "p", Args: repeated}
	if callKey(a) == callKey(b) {
		t.Error("257 distinct variables collide with a repeated-variable atom")
	}
	// Renaming must not matter: the key abstracts variable identity.
	renamed := make([]term.Term, n)
	for i := range renamed {
		renamed[i] = term.Var(fmt.Sprintf("W%d", i))
	}
	if callKey(a) != callKey(term.Atom{Pred: "p", Args: renamed}) {
		t.Error("alpha-equivalent calls must share a table key")
	}
	// Constants at different positions must not be confused with ids.
	c1 := term.NewAtom("p", term.Sym("x"), term.Var("A"))
	c2 := term.NewAtom("p", term.Var("A"), term.Sym("x"))
	if callKey(c1) == callKey(c2) {
		t.Error("bound-position pattern must be part of the key")
	}
}

// --- parallel evaluation ---

// wideInput builds several independent chain predicates: the SCC
// condensation has many mutually independent recursive components, so the
// parallel scheduler actually has work to spread.
func wideInput(tb testing.TB, chains, length int) Input {
	var b strings.Builder
	for c := 0; c < chains; c++ {
		for i := 0; i < length; i++ {
			fmt.Fprintf(&b, "edge%d(n%04d, n%04d).\n", c, i, i+1)
		}
		fmt.Fprintf(&b, "path%d(X, Y) :- edge%d(X, Y).\n", c, c)
		fmt.Fprintf(&b, "path%d(X, Y) :- edge%d(X, Z), path%d(Z, Y).\n", c, c, c)
	}
	// A top predicate depending on every chain, so one query reaches all
	// components.
	b.WriteString("top(X, Y) :- path0(X, Y)")
	for c := 1; c < chains; c++ {
		fmt.Fprintf(&b, ", path%d(X, Y)", c)
	}
	b.WriteString(".\n")
	return load(tb, b.String())
}

// TestParallelMatchesSequential: the parallel engines agree with their
// sequential baselines on a workload with many independent components.
func TestParallelMatchesSequential(t *testing.T) {
	in := wideInput(t, 6, 12)
	q := query(t, `retrieve top(X, Y).`)
	seq, err := NewSemiNaive(in).Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{
		NewSemiNaive(in, WithWorkers(8)),
		NewNaive(in, WithWorkers(8)),
		NewMagic(in, WithWorkers(8)),
		NewSemiNaive(in, WithWorkers(0)), // 0 → GOMAXPROCS
	} {
		res, err := e.Retrieve(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !reflect.DeepEqual(seq.Strings(), res.Strings()) {
			t.Errorf("%s disagrees with sequential semi-naive", e.Name())
		}
	}
}

// TestParallelEngineNames: the worker count is visible in the engine name
// so differential tests and stats keep the variants apart.
func TestParallelEngineNames(t *testing.T) {
	in := load(t, `p(a).`)
	if got := NewSemiNaive(in).Name(); got != "seminaive" {
		t.Errorf("sequential name = %q", got)
	}
	if got := NewSemiNaive(in, WithWorkers(4)).Name(); got != "seminaive-par" {
		t.Errorf("parallel name = %q", got)
	}
	if got := NewNaive(in, WithWorkers(4)).Name(); got != "naive-par" {
		t.Errorf("parallel naive name = %q", got)
	}
}

// TestQuickParallelAgreesOnRandomPrograms: randomized safe programs with
// several interdependent predicates evaluate identically on one worker
// and many. Run under -race this also exercises the scheduler's
// synchronization.
func TestQuickParallelAgreesOnRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		nodes := 4 + r.Intn(4)
		// Two random edge relations.
		for _, rel := range []string{"e1", "e2"} {
			for i := 0; i < 8; i++ {
				fmt.Fprintf(&b, "%s(n%d, n%d).\n", rel, r.Intn(nodes), r.Intn(nodes))
			}
		}
		// Random safe rules over a fixed predicate vocabulary: every rule
		// template is range-restricted, so any subset forms a safe program.
		templates := []string{
			"p1(X, Y) :- e1(X, Y).",
			"p1(X, Y) :- e1(X, Z), p1(Z, Y).",
			"p2(X, Y) :- e2(X, Y).",
			"p2(X, Y) :- p2(X, Z), e2(Z, Y).",
			"p3(X, Y) :- p1(X, Y), p2(X, Y).",
			"p3(X, Y) :- p1(X, Z), p2(Z, Y).",
			"p4(X) :- p3(X, Y).",
			"p4(X) :- e1(X, X).",
			"p5(X, Y) :- p3(X, Y), p4(X), p4(Y).",
		}
		for _, tpl := range templates {
			if r.Intn(4) > 0 { // keep most templates, drop some at random
				b.WriteString(tpl + "\n")
			}
		}
		// Guarantee the queried predicates exist.
		b.WriteString("q(X, Y) :- p1(X, Y).\nq(X, Y) :- e2(X, Y).\n")
		in := load(t, b.String())
		q := query(t, `retrieve q(X, Y).`)
		base, err := NewNaive(in).Retrieve(q)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, e := range []Engine{
			NewSemiNaive(in),
			NewSemiNaive(in, WithWorkers(8)),
			NewNaive(in, WithWorkers(8)),
			NewTopDown(in),
			NewMagic(in),
			NewMagic(in, WithWorkers(8)),
		} {
			res, err := e.Retrieve(q)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, e.Name(), err)
				return false
			}
			if !reflect.DeepEqual(base.Strings(), res.Strings()) {
				t.Logf("seed %d: %s=%v naive=%v", seed, e.Name(), res.Strings(), base.Strings())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- stats ---

// TestEvalStatsChain: the semi-naive record reports the recursive
// component's iteration count, delta trajectory, and storage counters.
func TestEvalStatsChain(t *testing.T) {
	in := load(t, `
e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5).
path(X, Y) :- e(X, Y).
path(X, Y) :- e(X, Z), path(Z, Y).
`)
	e := NewSemiNaive(in)
	res, err := e.Retrieve(query(t, `retrieve path(X, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	st := e.(StatsReporter).LastStats()
	if st == nil {
		t.Fatal("no stats recorded")
	}
	if st.Engine != "seminaive" || st.Workers != 1 {
		t.Errorf("engine=%q workers=%d", st.Engine, st.Workers)
	}
	var rec *ComponentStats
	for i := range st.Components {
		c := &st.Components[i]
		if c.Recursive && !c.Skipped {
			rec = c
		}
	}
	if rec == nil {
		t.Fatal("no recursive component in stats")
	}
	// A 4-edge chain closes in 3 productive rounds plus one empty one.
	if rec.Iterations < 3 {
		t.Errorf("Iterations = %d, want >= 3", rec.Iterations)
	}
	sum := 0
	for _, d := range rec.DeltaSizes {
		sum += d
	}
	if sum != rec.Facts || rec.Facts != 10 { // closure of a 5-node chain
		t.Errorf("Facts = %d, delta sum = %d, want both 10", rec.Facts, sum)
	}
	if st.Facts != rec.Facts+len(res.Tuples) { // + the __query__ facts
		t.Errorf("total Facts = %d, want %d", st.Facts, rec.Facts+len(res.Tuples))
	}
	if st.Lookups == 0 || st.Probes == 0 || st.Candidates == 0 {
		t.Errorf("counters not collected: %+v", st)
	}
	if !strings.Contains(st.String(), "scc [path]") {
		t.Errorf("String() missing component line:\n%s", st)
	}
}

// TestEvalStatsParallelWorkers: the parallel record carries the worker
// count and the same per-component facts as the sequential run.
func TestEvalStatsParallelWorkers(t *testing.T) {
	in := wideInput(t, 4, 8)
	q := query(t, `retrieve top(X, Y).`)
	seq := NewSemiNaive(in)
	par := NewSemiNaive(in, WithWorkers(4))
	if _, err := seq.Retrieve(q); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Retrieve(q); err != nil {
		t.Fatal(err)
	}
	sst := seq.(StatsReporter).LastStats()
	pst := par.(StatsReporter).LastStats()
	if pst.Workers != 4 || pst.Engine != "seminaive-par" {
		t.Errorf("parallel stats: engine=%q workers=%d", pst.Engine, pst.Workers)
	}
	if sst.Facts != pst.Facts {
		t.Errorf("facts differ: seq=%d par=%d", sst.Facts, pst.Facts)
	}
	facts := func(st *EvalStats) map[string]int {
		m := make(map[string]int)
		for _, c := range st.Components {
			if !c.Skipped {
				m[strings.Join(c.Preds, " ")] = c.Facts
			}
		}
		return m
	}
	if !reflect.DeepEqual(facts(sst), facts(pst)) {
		t.Errorf("per-component facts differ:\nseq: %v\npar: %v", facts(sst), facts(pst))
	}
}

// TestTopDownStats: the goal-directed engine reports passes, tables, and
// lookups.
func TestTopDownStats(t *testing.T) {
	in := load(t, universityDB)
	e := NewTopDown(in)
	if _, err := e.Retrieve(query(t, `retrieve can_ta(X, databases).`)); err != nil {
		t.Fatal(err)
	}
	st := e.(StatsReporter).LastStats()
	if st == nil || st.Passes == 0 || st.Tables == 0 || st.Lookups == 0 {
		t.Fatalf("incomplete top-down stats: %+v", st)
	}
	if !strings.Contains(st.String(), "passes=") {
		t.Errorf("String() missing passes: %s", st)
	}
}

// --- parallel benchmarks (acceptance: parity on chains, win on wide DAGs) ---

func benchEngineInput(b *testing.B, e Engine, in Input, qs string) {
	q := query(b, qs)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Retrieve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveSemiNaiveParChain50(b *testing.B) {
	in := chainInput(b, 50)
	benchEngineInput(b, NewSemiNaive(in, WithWorkers(0)), in, `retrieve path(X, Y).`)
}

func BenchmarkRetrieveSemiNaiveWide(b *testing.B) {
	in := wideInput(b, 8, 30)
	benchEngineInput(b, NewSemiNaive(in), in, `retrieve top(X, Y).`)
}

func BenchmarkRetrieveSemiNaiveParWide(b *testing.B) {
	in := wideInput(b, 8, 30)
	benchEngineInput(b, NewSemiNaive(in, WithWorkers(0)), in, `retrieve top(X, Y).`)
}

package eval

import (
	"testing"

	"kdb/internal/prov"
	"kdb/internal/term"
)

// TestProvenanceDisabledAllocs is the zero-overhead gate for the
// provenance hook: with recording off (nil recorder — the default for
// every engine), the derive-path call must not allocate. This mirrors
// the disabled-path gates of the obs package: observability that is
// off must be free.
func TestProvenanceDisabledAllocs(t *testing.T) {
	x, y := term.Var("X"), term.Var("Y")
	rule := term.NewRule(term.NewAtom("p", x, y), term.NewAtom("q", x, y))
	fact := term.NewAtom("p", term.Sym("a"), term.Sym("b"))
	s := term.Subst{x: term.Sym("a"), y: term.Sym("b")}
	allocs := testing.AllocsPerRun(200, func() {
		if err := recordProv(nil, nil, fact, rule, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled provenance hook allocates %v per derive, want 0", allocs)
	}
}

// TestProvenanceRecordingAcrossEngines checks the engine plumbing at
// the eval layer: with a recorder attached, every engine records one
// witness per derived fact and reports the count in its statistics.
func TestProvenanceRecordingAcrossEngines(t *testing.T) {
	src := `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`
	mks := map[string]func(Input, ...EngineOption) Engine{
		"naive":     NewNaive,
		"seminaive": NewSemiNaive,
		"topdown":   NewTopDown,
		"magic":     NewMagic,
	}
	for name, mk := range mks {
		in := load(t, src)
		rec := prov.NewRecorder()
		e := mk(in, WithProvenance(rec))
		res, err := e.Retrieve(query(t, `retrieve path(a, Y).`))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tuples) != 3 {
			t.Fatalf("%s: %d answers, want 3", name, len(res.Tuples))
		}
		if rec.Len() == 0 {
			t.Errorf("%s: no witnesses recorded", name)
		}
		st := e.(StatsReporter).LastStats()
		if st.ProvEntries != rec.Len() {
			t.Errorf("%s: stats.ProvEntries = %d, recorder has %d", name, st.ProvEntries, rec.Len())
		}
		// Every recorded answer must reconstruct without unknown nodes.
		exp := rec.Explain(term.NewAtom("path", term.Sym("a"), term.Var("Y")),
			res.Atoms(term.NewAtom("path", term.Sym("a"), term.Var("Y"))),
			func(a term.Atom) bool { return in.Store.Contains(a) }, 0)
		var check func(n *prov.Node)
		check = func(n *prov.Node) {
			if n.Kind == prov.NodeUnknown {
				t.Errorf("%s: unknown node %v in tree", name, n.Fact)
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		for _, tree := range exp.Trees {
			check(tree)
		}
	}
}

// benchProvenance measures a 50-node chain closure with and without
// recording; the Off variant doubles as the allocation baseline the
// overhead guard compares against.
func benchProvenance(b *testing.B, rec bool) {
	in := chainInput(b, 50)
	q := query(b, `retrieve path(X, Y).`)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var opts []EngineOption
		if rec {
			opts = append(opts, WithProvenance(prov.NewRecorder()))
		}
		e := NewSemiNaive(in, opts...)
		if _, err := e.Retrieve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveProvenanceOff(b *testing.B) { benchProvenance(b, false) }
func BenchmarkRetrieveProvenanceOn(b *testing.B)  { benchProvenance(b, true) }

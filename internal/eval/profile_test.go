package eval

import (
	"reflect"
	"sort"
	"testing"

	"kdb/internal/obs/profile"
	"kdb/internal/term"
)

// TestProfileDisabledAllocs is the zero-overhead gate for the profiling
// hook: with profiling off (nil ruleProfiler — the default for every
// engine), the per-rule and per-fact calls must not allocate. This
// mirrors TestProvenanceDisabledAllocs: observability that is off must
// be free.
func TestProfileDisabledAllocs(t *testing.T) {
	x, y := term.Var("X"), term.Var("Y")
	rule := term.NewRule(term.NewAtom("p", x, y), term.NewAtom("q", x, y))
	var rp *ruleProfiler
	allocs := testing.AllocsPerRun(200, func() {
		rp.begin(rule)
		rp.countLookup()
		if rp.storageCounters() != nil {
			t.Fatal("nil profiler returned counters")
		}
		rp.fresh()
		rp.end()
	})
	if allocs != 0 {
		t.Errorf("disabled profile hook allocates %v per rule round, want 0", allocs)
	}
}

// TestProfileAcrossEngines is the cross-engine parity check: on a
// recursive program, all four engines must profile the same set of
// source rules (synthetic machinery — the query rule, magic guards and
// seeds — excluded), each with at least one round, and agree on the
// answers they were profiling in the first place.
func TestProfileAcrossEngines(t *testing.T) {
	src := `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`
	wantRules := []string{
		"path(X, Y) :- edge(X, Y).",
		"path(X, Y) :- edge(X, Z), path(Z, Y).",
	}
	mks := map[string]func(Input, ...EngineOption) Engine{
		"naive":     NewNaive,
		"seminaive": NewSemiNaive,
		"topdown":   NewTopDown,
		"magic":     NewMagic,
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			p := profile.New()
			e := mk(load(t, src), WithProfile(p))
			res, err := e.Retrieve(query(t, `retrieve path(a, Y).`))
			if err != nil {
				t.Fatalf("retrieve: %v", err)
			}
			if got := len(res.Tuples); got != 3 {
				t.Fatalf("answers = %d, want 3", got)
			}
			if p.Engine() != name {
				t.Errorf("profile engine = %q, want %q", p.Engine(), name)
			}
			if p.Wall() <= 0 {
				t.Errorf("profile wall = %v, want > 0", p.Wall())
			}
			var got []string
			var tuples int64
			for _, r := range p.Rows() {
				if r.Synthetic {
					continue
				}
				got = append(got, r.Rule)
				tuples += r.Tuples
				if r.Iterations <= 0 {
					t.Errorf("rule %q: iterations = %d, want > 0", r.Rule, r.Iterations)
				}
				if r.Wall < 0 {
					t.Errorf("rule %q: negative wall %v", r.Rule, r.Wall)
				}
			}
			sort.Strings(got)
			if !reflect.DeepEqual(got, wantRules) {
				t.Errorf("profiled rules = %v, want %v", got, wantRules)
			}
			if tuples <= 0 {
				t.Errorf("non-synthetic tuples = %d, want > 0", tuples)
			}
		})
	}
}

// TestProfileParallelSemiNaive exercises the collector under the
// parallel scheduler: independent SCCs report from separate worker
// goroutines into one Profile (run with -race to check the locking).
func TestProfileParallelSemiNaive(t *testing.T) {
	src := `
a(1). a(2). b(1). b(2).
pa(X) :- a(X).
pb(X) :- b(X).
both(X) :- pa(X), pb(X).
`
	p := profile.New()
	e := NewSemiNaive(load(t, src), WithWorkers(4), WithProfile(p))
	if _, err := e.Retrieve(query(t, `retrieve both(X).`)); err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	rules := 0
	for _, r := range p.Rows() {
		if !r.Synthetic {
			rules++
		}
	}
	if rules != 3 {
		t.Errorf("profiled %d source rules, want 3", rules)
	}
}

// TestProfileProbeSplit checks the index/full-scan split: probes served
// by an index must appear as Probes - FullScans, and the per-rule
// counter chain must not lose the engine-total counts.
func TestProfileProbeSplit(t *testing.T) {
	src := `
edge(a, b). edge(b, c). edge(c, d). edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`
	p := profile.New()
	e := NewSemiNaive(load(t, src), WithProfile(p))
	if _, err := e.Retrieve(query(t, `retrieve path(X, Y).`)); err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	var probes, scans int64
	for _, r := range p.Rows() {
		probes += r.Probes
		scans += r.FullScans
		if r.FullScans > r.Probes {
			t.Errorf("rule %q: full_scans %d > probes %d", r.Rule, r.FullScans, r.Probes)
		}
	}
	if probes == 0 {
		t.Fatal("no probes attributed to any rule")
	}
	if scans > probes {
		t.Fatalf("full scans %d exceed probes %d", scans, probes)
	}
	// The chained per-rule counters must feed the engine totals too.
	st := e.(StatsReporter).LastStats()
	if st == nil {
		t.Fatal("no stats recorded")
	}
	if st.Probes < probes {
		t.Errorf("engine total probes %d < per-rule sum %d (chain dropped counts)", st.Probes, probes)
	}
	if st.FullScans < scans {
		t.Errorf("engine total full scans %d < per-rule sum %d", st.FullScans, scans)
	}
}

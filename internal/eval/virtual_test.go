package eval

import (
	"reflect"
	"testing"

	"kdb/internal/storage"
	"kdb/internal/term"
)

// fakeVirtual serves one virtual relation, sys_fake/2, from an
// in-memory tuple list — the eval-layer contract without the real
// sysrel provider.
type fakeVirtual struct {
	rows  [][2]any // symbol name, number
	snaps int
}

func (f *fakeVirtual) IsVirtual(pred string) bool { return pred == "sys_fake" }

func (f *fakeVirtual) Snapshot(pred string) (*storage.Relation, error) {
	f.snaps++
	rel, err := storage.NewRelation(2)
	if err != nil {
		return nil, err
	}
	for _, r := range f.rows {
		if _, err := rel.Insert(storage.Tuple{term.Sym(r[0].(string)), term.Num(r[1].(float64))}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func defaultFake() *fakeVirtual {
	return &fakeVirtual{rows: [][2]any{{"a", 1.0}, {"b", 2.0}, {"c", 3.0}}}
}

// TestVirtualRelationEngineAgreement: every engine answers queries over
// a virtual relation — directly and joined through rules with stored
// data — and all agree.
func TestVirtualRelationEngineAgreement(t *testing.T) {
	src := `
edge(a, b). edge(b, c).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
big(X) :- sys_fake(X, N), N > 1.
linked(X, Y) :- sys_fake(X, N), reach(X, Y).
`
	cases := []struct {
		q    string
		want []string
	}{
		{`retrieve sys_fake(X, N).`, []string{"a, 1", "b, 2", "c, 3"}},
		{`retrieve sys_fake(X, N) where N > 2.`, []string{"c, 3"}},
		{`retrieve big(X).`, []string{"b", "c"}},
		{`retrieve linked(X, Y).`, []string{"a, b", "a, c", "b, c"}},
	}
	for _, tc := range cases {
		in := load(t, src)
		in.Virtual = defaultFake()
		q := query(t, tc.q)
		got := retrieveAll(t, in, q)
		for name, answers := range got {
			if !reflect.DeepEqual(answers, tc.want) {
				t.Errorf("%s: %s = %v, want %v", tc.q, name, answers, tc.want)
			}
		}
	}
}

// TestVirtualSnapshotFreshPerQuery: each Retrieve sees the provider's
// current contents — the snapshot is per query, not per engine.
func TestVirtualSnapshotFreshPerQuery(t *testing.T) {
	in := load(t, `big(X) :- sys_fake(X, N), N > 1.`)
	fv := defaultFake()
	in.Virtual = fv
	e := NewSemiNaive(in)
	q := query(t, `retrieve big(X).`)
	res, err := e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("first retrieve = %v", got)
	}
	fv.rows = append(fv.rows, [2]any{"d", 9.0})
	res, err = e.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("second retrieve = %v, want the new row visible", got)
	}
	if fv.snaps < 2 {
		t.Fatalf("snaps = %d, want one per query", fv.snaps)
	}
}

// TestVirtualSnapshotsNoSysAllocs is the zero-overhead gate virtual.go
// promises: planning a program that references no virtual predicate
// must not allocate in virtualSnapshots, no matter that a provider is
// attached.
func TestVirtualSnapshotsNoSysAllocs(t *testing.T) {
	in := load(t, universityDB)
	v := defaultFake()
	rules := in.Rules
	allocs := testing.AllocsPerRun(200, func() {
		m, err := virtualSnapshots(v, rules)
		if err != nil || m != nil {
			panic("unexpected snapshot work on a sys-free program")
		}
	})
	if allocs != 0 {
		t.Errorf("virtualSnapshots allocates %.1f objects/run on a program with no virtual predicates, want 0", allocs)
	}
	if v.snaps != 0 {
		t.Errorf("provider snapshotted %d times for a sys-free program", v.snaps)
	}
}

// TestVirtualNilProviderUntouched: absent a provider, an unknown sys_
// predicate is simply an empty relation (planning rejects it upstream
// in the kb layer; eval itself treats it as unknown).
func TestVirtualNilProviderUntouched(t *testing.T) {
	in := load(t, universityDB)
	m, err := virtualSnapshots(nil, in.Rules)
	if err != nil || m != nil {
		t.Fatalf("virtualSnapshots(nil) = %v, %v; want nil, nil", m, err)
	}
}

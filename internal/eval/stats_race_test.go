package eval

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// chainProgram builds a recursive reachability program over an n-edge
// chain.
func chainProgram(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, i+1)
	}
	sb.WriteString("reach(X, Y) :- edge(X, Y).\n")
	sb.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	return sb.String()
}

// statsFingerprint is the scheduling-independent portion of an
// evaluation record: identical queries over identical data must produce
// identical fingerprints, no matter what ran concurrently.
func statsFingerprint(st *EvalStats) EvalStats {
	out := *st
	out.Wall = 0
	out.Components = append([]ComponentStats(nil), st.Components...)
	for i := range out.Components {
		out.Components[i].Wall = 0
	}
	return out
}

// TestConcurrentQueryStatsIsolation hammers one shared store with
// concurrent parallel-worker evaluations and asserts every query
// observes exactly the counters of a solo run. Before per-query counter
// threading, concurrent queries attached their counter sinks to the
// shared stored relations (last writer won), so probe and candidate
// counts leaked between queries. Run with -race.
func TestConcurrentQueryStatsIsolation(t *testing.T) {
	in := load(t, chainProgram(40))
	q := query(t, "retrieve reach(n0, X).")

	baselines := map[string]EvalStats{}
	builders := map[string]func() Engine{
		"seminaive": func() Engine { return NewSemiNaive(in, WithWorkers(4)) },
		"topdown":   func() Engine { return NewTopDown(in) },
	}
	wantTuples := map[string]int{}
	for name, mk := range builders {
		// First run warms the store's lazy hash indexes (built once,
		// shared by every later query), so IndexBuilds is stable in the
		// baseline taken from the second run.
		if _, err := mk().Retrieve(q); err != nil {
			t.Fatalf("%s warm-up: %v", name, err)
		}
		e := mk()
		res, err := e.Retrieve(q)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		wantTuples[name] = len(res.Tuples)
		if wantTuples[name] != 40 {
			t.Fatalf("%s baseline tuples = %d, want 40", name, wantTuples[name])
		}
		baselines[name] = statsFingerprint(e.(StatsReporter).LastStats())
	}

	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		for name, mk := range builders {
			wg.Add(1)
			go func(name string, mk func() Engine) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					e := mk()
					res, err := e.Retrieve(q)
					if err != nil {
						errc <- fmt.Errorf("%s: %v", name, err)
						return
					}
					if len(res.Tuples) != wantTuples[name] {
						errc <- fmt.Errorf("%s: %d tuples, want %d", name, len(res.Tuples), wantTuples[name])
						return
					}
					got := statsFingerprint(e.(StatsReporter).LastStats())
					if !reflect.DeepEqual(got, baselines[name]) {
						errc <- fmt.Errorf("%s: stats diverged under concurrency:\ngot  %+v\nwant %+v", name, got, baselines[name])
						return
					}
				}
			}(name, mk)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestComponentStatsDeterministicOrder asserts the per-SCC records come
// back in condensation order regardless of the worker count, so -stats
// and -stats-json output is stable run to run.
func TestComponentStatsDeterministicOrder(t *testing.T) {
	src := chainProgram(10) + `
a(X) :- edge(X, Y).
b(X) :- a(X).
c(X) :- b(X), reach(X, Y).
probe(X) :- c(X).
`
	in := load(t, src)
	q := query(t, "retrieve probe(X).")

	var sequential *EvalStats
	for _, workers := range []int{1, 2, 8} {
		e := NewSemiNaive(in, WithWorkers(workers))
		if _, err := e.Retrieve(q); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		st := e.(StatsReporter).LastStats()
		if workers == 1 {
			sequential = st
			continue
		}
		a := statsFingerprint(sequential)
		b := statsFingerprint(st)
		// Engine name ("seminaive" vs "seminaive-par") and worker count
		// are expected to differ; everything else must not.
		b.Engine = a.Engine
		b.Workers = a.Workers
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: stats differ from sequential:\nseq %+v\ngot %+v", workers, a, b)
		}
	}
}

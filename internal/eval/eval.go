// Package eval implements the paper's data queries (§3.1): the
// `retrieve p where ψ` statement over a knowledge-rich database. Three
// interchangeable engines are provided:
//
//   - Naive: bottom-up naive fixpoint — the correctness baseline.
//   - SemiNaive: bottom-up with delta relations per recursive SCC — the
//     production engine.
//   - TopDown: goal-directed SLD resolution with naive-iteration tabling,
//     terminating on all Datalog programs.
//
// All three agree on every program (property-tested); retrieve answers
// are sets of bindings for the free variables of the subject.
//
// The subject may be an EDB predicate, an IDB predicate, or — as in the
// paper's Example 2 — a new predicate defined entirely by the qualifier.
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kdb/internal/builtin"
	"kdb/internal/depgraph"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Input is the database an engine evaluates against: stored facts plus
// IDB rules, and optionally a provider of virtual system relations.
type Input struct {
	Store *storage.Store
	Rules []term.Rule
	// Virtual optionally serves read-only system relations (sys_*).
	// Programs that never reference a virtual predicate evaluate
	// exactly as if the field were nil, with zero added allocations.
	Virtual Virtual
}

// Query is one retrieve statement.
type Query struct {
	Subject term.Atom
	Where   term.Formula
}

// Result is the extensional answer to a retrieve: one binding tuple per
// derived instantiation of the subject's free variables, duplicate-free,
// in derivation order.
type Result struct {
	// Vars are the free variables of the subject, in order of occurrence.
	Vars []term.Term
	// Tuples are the bindings, parallel to Vars.
	Tuples []storage.Tuple
}

// Atoms renders the result as instantiated subject atoms.
func (r *Result) Atoms(subject term.Atom) []term.Atom {
	out := make([]term.Atom, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		s := term.NewSubst(len(r.Vars))
		for i, v := range r.Vars {
			s[v] = t[i]
		}
		out = append(out, s.Apply(subject))
	}
	return out
}

// Sorted returns the binding tuples in a deterministic total order.
func (r *Result) Sorted() []storage.Tuple {
	out := make([]storage.Tuple, len(r.Tuples))
	copy(out, r.Tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Strings renders the sorted binding tuples, for tests and display.
func (r *Result) Strings() []string {
	out := make([]string, 0, len(r.Tuples))
	for _, t := range r.Sorted() {
		parts := make([]string, len(t))
		for i, x := range t {
			parts[i] = x.String()
		}
		out = append(out, strings.Join(parts, ", "))
	}
	return out
}

// Engine evaluates retrieve queries.
type Engine interface {
	// Name identifies the evaluation strategy.
	Name() string
	// Retrieve evaluates one query to completion, ungoverned.
	Retrieve(q Query) (*Result, error)
	// RetrieveContext evaluates one query under the context and the
	// engine's configured limits (WithLimits). Cancellation, deadline
	// expiry, and limit breaches stop the evaluation promptly and
	// return a *StopError wrapping the structured breach; an internal
	// panic is contained and surfaces as a *governor.PanicError.
	RetrieveContext(ctx context.Context, q Query) (*Result, error)
}

// queryPredName is the reserved head predicate of the internal query rule.
const queryPredName = "__query__"

// plan is the preprocessed form of a query shared by all engines: a query
// rule __query__(vars of subject) :- [subject,] where-atoms, the rule set
// extended with it, and the dependency graph.
type plan struct {
	rule  term.Rule
	vars  []term.Term
	rules []term.Rule
	graph *depgraph.Graph
	// virtual holds the per-query snapshots of every virtual predicate
	// the program references; nil when the program references none.
	// Snapshotting at plan time gives one consistent read-only state to
	// the whole evaluation, on every engine.
	virtual map[string]*storage.Relation
}

// buildPlan constructs and safety-checks the internal query rule. If the
// subject's predicate is known (it has rules or stored facts), the
// subject atom joins the body; otherwise the subject is a new predicate
// defined through the qualifier (paper §3.1, Example 2).
func buildPlan(in Input, q Query) (*plan, error) {
	if term.IsComparison(q.Subject) {
		return nil, fmt.Errorf("eval: the subject of retrieve cannot be a comparison")
	}
	for _, a := range q.Where {
		// The paper prohibits X = Y atoms in qualifiers (§3.1).
		if a.Pred == term.PredEq && a.Args[0].IsVar() && a.Args[1].IsVar() {
			return nil, fmt.Errorf("eval: qualifier may not contain %v (variable = variable)", a)
		}
	}
	known := in.Store.Relation(q.Subject.Pred) != nil
	if !known && in.Virtual != nil && in.Virtual.IsVirtual(q.Subject.Pred) {
		known = true
	}
	if !known {
		for _, r := range in.Rules {
			if r.Head.Pred == q.Subject.Pred {
				known = true
				break
			}
		}
	}
	vars := q.Subject.Vars(nil)
	var body term.Formula
	if known {
		body = append(body, q.Subject)
	}
	body = append(body, q.Where...)
	rule := term.Rule{Head: term.NewAtom(queryPredName, vars...), Body: body}
	rules := make([]term.Rule, 0, len(in.Rules)+1)
	rules = append(rules, in.Rules...)
	rules = append(rules, rule)
	if err := checkSafety(rules); err != nil {
		return nil, err
	}
	virt, err := virtualSnapshots(in.Virtual, rules)
	if err != nil {
		return nil, err
	}
	return &plan{
		rule:    rule,
		vars:    vars,
		rules:   rules,
		graph:   depgraph.New(rules),
		virtual: virt,
	}, nil
}

// CheckSafety verifies that every rule is range-restricted (evaluable by
// the engines): all head variables and all variables of non-equality
// comparisons must be bound by ordinary body atoms, with equality atoms
// propagating bindings. It returns the first violation.
func CheckSafety(rules []term.Rule) error { return checkSafety(rules) }

// atPos renders " (at file:line:col)" for rules with a known source
// position, so safety errors point at the offending clause.
func atPos(r term.Rule) string {
	if !r.Pos.IsValid() {
		return ""
	}
	return fmt.Sprintf(" (at %s)", r.Pos)
}

// checkSafety verifies that every rule is range-restricted under the
// greedy evaluation order: all head variables and all variables of
// non-equality comparison atoms must be bound by ordinary body atoms
// (equality atoms may propagate bindings).
func checkSafety(rules []term.Rule) error {
	for _, r := range rules {
		bound := make(map[term.Term]bool)
		for _, a := range r.Body {
			if term.IsComparison(a) {
				continue
			}
			for _, v := range a.Vars(nil) {
				bound[v] = true
			}
		}
		// Equality atoms propagate: X = c binds X; X = Y binds either from
		// the other. Iterate to a fixpoint.
		for changed := true; changed; {
			changed = false
			for _, a := range r.Body {
				if a.Pred != term.PredEq || len(a.Args) != 2 {
					continue
				}
				l, rr := a.Args[0], a.Args[1]
				lB := !l.IsVar() || bound[l]
				rB := !rr.IsVar() || bound[rr]
				if lB && !rB {
					bound[rr] = true
					changed = true
				}
				if rB && !lB {
					bound[l] = true
					changed = true
				}
			}
		}
		for _, v := range r.Head.Vars(nil) {
			if !bound[v] {
				return fmt.Errorf("eval: unsafe rule %v%s: head variable %v is not bound by the body", r, atPos(r), v)
			}
		}
		for _, a := range r.Body {
			if !term.IsComparison(a) || a.Pred == term.PredEq {
				continue
			}
			for _, v := range a.Vars(nil) {
				if !bound[v] {
					return fmt.Errorf("eval: unsafe rule %v%s: comparison variable %v is not bound", r, atPos(r), v)
				}
			}
		}
	}
	return nil
}

// lookup resolves one non-builtin body atom: it calls fn with every
// extension of base that makes the atom true, until fn returns false.
type lookup func(a term.Atom, base term.Subst, fn func(term.Subst) bool) error

// solveBody enumerates all substitutions extending base that satisfy the
// conjunction, resolving ordinary atoms through lk. Atoms are chosen
// greedily: ground comparisons are evaluated as early as possible,
// equality atoms propagate bindings, and ordinary atoms are joined
// left-to-right otherwise. fn returning false stops the enumeration; the
// first return value reports whether enumeration should continue at the
// caller's level.
func solveBody(body []term.Atom, base term.Subst, lk lookup, fn func(term.Subst) bool) (bool, error) {
	if len(body) == 0 {
		return fn(base), nil
	}
	idx, err := chooseAtom(body, base)
	if err != nil {
		return false, err
	}
	atom := body[idx]
	rest := make([]term.Atom, 0, len(body)-1)
	rest = append(rest, body[:idx]...)
	rest = append(rest, body[idx+1:]...)

	if term.IsComparison(atom) {
		bound := base.Apply(atom)
		if atom.Pred == term.PredEq && (bound.Args[0].IsVar() || bound.Args[1].IsVar()) {
			// Equality with an unbound side: bind by unification.
			s := base.Clone()
			if s == nil {
				s = term.NewSubst(1)
			}
			l, r := s.Walk(bound.Args[0]), s.Walk(bound.Args[1])
			switch {
			case l == r:
			case l.IsVar():
				s.Bind(l, r)
			case r.IsVar():
				s.Bind(r, l)
			default:
				return true, nil // distinct constants: equality fails
			}
			return solveBody(rest, s, lk, fn)
		}
		ok, err := builtin.Eval(bound)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return solveBody(rest, base, lk, fn)
	}

	cont := true
	err = lk(atom, base, func(ext term.Subst) bool {
		c, err2 := solveBody(rest, ext, lk, fn)
		if err2 != nil {
			err = err2
			return false
		}
		cont = c
		return c
	})
	if err != nil {
		return false, err
	}
	return cont, nil
}

// chooseAtom picks the next body atom to resolve: a ready comparison if
// any (ground, or an equality with at most one unbound side, or an
// equality between variables as a last resort among comparisons), else
// the first ordinary atom.
func chooseAtom(body []term.Atom, s term.Subst) (int, error) {
	firstOrdinary := -1
	firstEq := -1
	firstStuck := -1
	for i, a := range body {
		if !term.IsComparison(a) {
			if firstOrdinary < 0 {
				firstOrdinary = i
			}
			continue
		}
		bound := s.Apply(a)
		groundArgs := 0
		for _, t := range bound.Args {
			if t.IsConst() {
				groundArgs++
			}
		}
		if groundArgs == 2 {
			return i, nil // fully ground comparison: cheapest filter
		}
		if a.Pred == term.PredEq {
			if groundArgs == 1 {
				return i, nil // binds its variable immediately
			}
			if firstEq < 0 {
				firstEq = i
			}
		} else if firstStuck < 0 {
			firstStuck = i // a non-equality comparison with an unbound side
		}
	}
	if firstOrdinary >= 0 {
		return firstOrdinary, nil
	}
	if firstEq >= 0 {
		return firstEq, nil
	}
	// Only unevaluable comparisons remain. Report the actual offender
	// (the first non-equality comparison with an unbound variable, after
	// applying the substitution so the message shows what is bound), not
	// blindly body[0].
	offender := body[0]
	if firstStuck >= 0 {
		offender = body[firstStuck]
	}
	return 0, fmt.Errorf("eval: cannot evaluate %v: unbound comparison", s.Apply(offender))
}

// relevantPreds returns the predicates reachable from the query rule,
// including the query predicate itself.
func (p *plan) relevantPreds() map[string]bool {
	out := map[string]bool{queryPredName: true}
	for _, a := range p.rule.Body {
		if term.IsComparison(a) {
			continue
		}
		out[a.Pred] = true
		for q := range p.graphReach(a.Pred) {
			out[q] = true
		}
	}
	return out
}

func (p *plan) graphReach(pred string) map[string]bool {
	reach := make(map[string]bool)
	var stack []string
	stack = append(stack, pred)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range p.graph.RulesFor(v) {
			for _, a := range r.Body {
				if term.IsComparison(a) || reach[a.Pred] {
					continue
				}
				reach[a.Pred] = true
				stack = append(stack, a.Pred)
			}
		}
	}
	return reach
}

package eval

import (
	"testing"

	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

func parseRules(t *testing.T, src string) []term.Rule {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Clauses
}

func TestCheckSafetyExported(t *testing.T) {
	good := parseRules(t, `
honor(X) :- student(X, M, G), G > 3.7.
p(X, Z) :- q(X, Y), Z = Y.
r(X) :- s(X), X != a.
fact(a, 1).
`)
	if err := CheckSafety(good); err != nil {
		t.Errorf("safe rules rejected: %v", err)
	}
	cases := []struct {
		src, wantSub string
	}{
		{`p(X) :- q(Y).`, "head variable"},
		{`p(X) :- X > 3, q(X, Y).`, ""}, // X bound by q: safe
		{`p(X) :- q(X), Y > 3.`, "comparison variable"},
		{`p(X) :- q(X), X != Z.`, "comparison variable"},
		{`p(X) :- X = Y.`, "head variable"}, // neither side bound
	}
	for _, c := range cases {
		err := CheckSafety(parseRules(t, c.src))
		if c.wantSub == "" {
			if err != nil {
				t.Errorf("CheckSafety(%q) = %v, want nil", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("CheckSafety(%q) = nil, want error about %q", c.src, c.wantSub)
		}
	}
}

// Non-ground derived heads must be reported, not silently produced:
// a bodiless rule with variables would derive p(X) for unbound X.
func TestNonGroundDerivationRejected(t *testing.T) {
	st := storage.NewMemory()
	rules := []term.Rule{{Head: term.NewAtom("p", term.Var("X"))}}
	in := Input{Store: st, Rules: rules}
	for _, e := range []Engine{NewNaive(in), NewSemiNaive(in), NewTopDown(in)} {
		_, err := e.Retrieve(Query{Subject: term.NewAtom("p", term.Var("X"))})
		if err == nil {
			t.Errorf("%s must reject a universally quantified bodiless rule", e.Name())
		}
	}
}

// Derived relations used with inconsistent arities must error cleanly.
func TestDerivedArityMismatch(t *testing.T) {
	st := storage.NewMemory()
	if _, err := st.InsertAtom(term.NewAtom("q", term.Sym("a"))); err != nil {
		t.Fatal(err)
	}
	rules := parseRules(t, `
p(X) :- q(X).
r(X) :- p(X, X).
`)
	in := Input{Store: st, Rules: rules}
	// p is used with arity 1 (defined) and arity 2 (in r): the engines
	// must not panic. (The kb layer rejects this at load; eval stays
	// defensive.)
	for _, e := range []Engine{NewNaive(in), NewSemiNaive(in), NewTopDown(in)} {
		if _, err := e.Retrieve(Query{Subject: term.NewAtom("r", term.Var("X"))}); err == nil {
			// Some engines may legitimately answer "empty" here; what we
			// assert is the absence of panics and, if an error is raised,
			// that it mentions the predicate.
			continue
		}
	}
}

// The paper's Example 2 path: ad-hoc subjects over recursive qualifiers.
func TestAdHocSubjectOverRecursion(t *testing.T) {
	st := storage.NewMemory()
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if _, err := st.InsertAtom(term.NewAtom("edge", term.Sym(pair[0]), term.Sym(pair[1]))); err != nil {
			t.Fatal(err)
		}
	}
	rules := parseRules(t, `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	in := Input{Store: st, Rules: rules}
	q := Query{
		Subject: term.NewAtom("answer", term.Var("X")),
		Where: term.Formula{
			term.NewAtom("path", term.Sym("a"), term.Var("X")),
			term.NewAtom("path", term.Var("X"), term.Sym("d")),
		},
	}
	for _, e := range []Engine{NewNaive(in), NewSemiNaive(in), NewTopDown(in)} {
		res, err := e.Retrieve(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got := res.Strings()
		if len(got) != 2 || got[0] != "b" || got[1] != "c" {
			t.Errorf("%s: answer = %v, want [b c]", e.Name(), got)
		}
	}
}

// Comparisons inside recursive rule bodies.
func TestComparisonInRecursiveRule(t *testing.T) {
	st := storage.NewMemory()
	for i, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if _, err := st.InsertAtom(term.NewAtom("hop",
			term.Sym(pair[0]), term.Sym(pair[1]), term.Num(float64(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	rules := parseRules(t, `
cheap(X, Y) :- hop(X, Y, C), C < 3.
cheap(X, Y) :- hop(X, Z, C), C < 3, cheap(Z, Y).
`)
	in := Input{Store: st, Rules: rules}
	for _, e := range []Engine{NewNaive(in), NewSemiNaive(in), NewTopDown(in)} {
		res, err := e.Retrieve(Query{Subject: term.NewAtom("cheap", term.Sym("a"), term.Var("Y"))})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got := res.Strings()
		// a→b (1), b→c (2) are cheap; c→d (3) is not.
		if len(got) != 2 || got[0] != "b" || got[1] != "c" {
			t.Errorf("%s: cheap from a = %v", e.Name(), got)
		}
	}
}

package eval

import (
	"time"

	"kdb/internal/obs/profile"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// WithProfile makes the engine record one per-rule cost row into p for
// every rule it evaluates: wall time, rounds, tuples produced, and the
// storage probe counters split index-hit/full-scan. All four engines
// honor it. A nil collector disables profiling; the derive path then
// pays a single nil check per rule round and per derived fact (see
// TestProfileDisabledAllocs), mirroring the provenance hook's
// zero-overhead contract.
func WithProfile(p *profile.Profile) EngineOption {
	return func(c *engineConfig) { c.prof = p }
}

// profLabel maps a rewrite-generated rule back to its display identity:
// the magic engine labels each adorned rule with the source rule it was
// derived from and marks its guard/seed machinery synthetic, so
// profiles agree across engines.
type profLabel struct {
	label     string
	pred      string
	synthetic bool
}

// withProfileLabels attaches the generated-rule → source-rule relabel
// table (keyed by the generated rule's String()). Unexported: only the
// magic engine hands it to its inner semi-naive run.
func withProfileLabels(m map[string]profLabel) EngineOption {
	return func(c *engineConfig) { c.labels = m }
}

// ruleSample is one in-progress rule-round measurement.
type ruleSample struct {
	rule    term.Rule
	active  bool
	start   time.Time
	child   time.Duration // time spent in nested rules (top-down subgoals)
	tuples  int64
	lookups int64
	ctrs    *storage.Counters
}

// ruleProfiler adapts one evaluation thread (a bottom-up component, or
// a whole top-down run) to the profile collector: begin/end bracket one
// rule round, fresh counts a derived fact, and storageCounters exposes
// a per-rule probe sink chained onto the query-wide counters so engine
// totals stay intact. It is single-goroutine by construction; the
// shared *profile.Profile does its own locking. All methods are
// nil-receiver-safe, so an unprofiled evaluation pays only the nil
// checks.
type ruleProfiler struct {
	p      *profile.Profile
	labels map[string]profLabel
	parent *storage.Counters

	cur   ruleSample
	stack []ruleSample // saved enclosing samples (top-down nesting)
}

func newRuleProfiler(p *profile.Profile, labels map[string]profLabel, parent *storage.Counters) *ruleProfiler {
	return &ruleProfiler{p: p, labels: labels, parent: parent}
}

// begin opens a sample for one round of r, saving any enclosing sample
// (a top-down rule solving a subgoal's rules).
func (rp *ruleProfiler) begin(r term.Rule) {
	if rp == nil {
		return
	}
	if rp.cur.active {
		rp.stack = append(rp.stack, rp.cur)
	}
	c := &storage.Counters{}
	c.Chain(rp.parent)
	rp.cur = ruleSample{rule: r, active: true, start: time.Now(), ctrs: c}
}

// end closes the current sample and merges it into the collector. Wall
// time is self time: nested rule rounds are subtracted, so a profile's
// rows partition the evaluation instead of double-counting callers.
func (rp *ruleProfiler) end() {
	if rp == nil || !rp.cur.active {
		return
	}
	total := time.Since(rp.cur.start)
	self := total - rp.cur.child
	if self < 0 {
		self = 0
	}
	r := rp.cur.rule
	label, pred, synthetic := r.String(), r.Head.Pred, r.Head.Pred == queryPredName
	if pl, ok := rp.labels[label]; ok {
		label, pred, synthetic = pl.label, pl.pred, pl.synthetic
	}
	rp.p.Add(profile.Sample{
		Rule:        label,
		Pred:        pred,
		Arity:       len(r.Head.Args),
		Synthetic:   synthetic,
		Wall:        self,
		Tuples:      rp.cur.tuples,
		Lookups:     rp.cur.lookups,
		Probes:      rp.cur.ctrs.Probes.Load(),
		FullScans:   rp.cur.ctrs.FullScans.Load(),
		Candidates:  rp.cur.ctrs.Candidates.Load(),
		IndexBuilds: rp.cur.ctrs.IndexBuilds.Load(),
	})
	if n := len(rp.stack); n > 0 {
		enclosing := rp.stack[n-1]
		rp.stack = rp.stack[:n-1]
		enclosing.child += total
		rp.cur = enclosing
	} else {
		rp.cur = ruleSample{}
	}
}

// fresh counts one newly derived fact against the current rule.
//
//kdb:hotpath
func (rp *ruleProfiler) fresh() {
	if rp == nil {
		return
	}
	rp.cur.tuples++
}

// countLookup counts one body-atom resolution against the current rule.
//
//kdb:hotpath
func (rp *ruleProfiler) countLookup() {
	if rp == nil {
		return
	}
	rp.cur.lookups++
}

// storageCounters returns the current rule's probe sink, or nil when no
// sample is open (callers then fall back to the query-wide sink).
//
//kdb:hotpath
func (rp *ruleProfiler) storageCounters() *storage.Counters {
	if rp == nil || !rp.cur.active {
		return nil
	}
	return rp.cur.ctrs
}

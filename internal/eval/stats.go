package eval

import (
	"fmt"
	"strings"
	"time"
)

// ComponentStats records the evaluation of one strongly connected
// component of the rule dependency graph.
type ComponentStats struct {
	// Preds are the component's predicates (sorted).
	Preds []string `json:"preds"`
	// Skipped marks components that were irrelevant to the query (or had
	// no rules) and were not evaluated.
	Skipped bool `json:"skipped,omitempty"`
	// Recursive reports whether the component required fixpoint iteration.
	Recursive bool `json:"recursive,omitempty"`
	// Iterations counts rule-application rounds, the first included.
	Iterations int `json:"iterations,omitempty"`
	// Facts counts the facts newly derived by this component.
	Facts int `json:"facts,omitempty"`
	// DeltaSizes records, per iteration, how many fresh facts that round
	// contributed (the size of the next semi-naive delta).
	DeltaSizes []int `json:"delta_sizes,omitempty"`
	// Lookups counts body-atom lookups issued while evaluating the
	// component (each is one probe of a derived and/or stored relation).
	Lookups int64 `json:"lookups,omitempty"`
	// Wall is the component's wall-clock evaluation time.
	Wall time.Duration `json:"wall_ns,omitempty"`
}

// EvalStats is the observability record of one Retrieve evaluation.
type EvalStats struct {
	// Engine names the evaluation strategy that produced the record.
	Engine string `json:"engine"`
	// Workers is the SCC worker-pool size used (1 = sequential).
	Workers int `json:"workers"`
	// Components holds one entry per SCC in dependency order (bottom-up
	// engines; empty for top-down). The order is deterministic: it is
	// the condensation's topological order with ties broken by sorted
	// predicate names, independent of scheduling.
	Components []ComponentStats `json:"components,omitempty"`
	// Facts is the total number of facts derived.
	Facts int `json:"facts"`
	// Lookups is the total number of body-atom lookups issued (summed over
	// components for bottom-up engines).
	Lookups int64 `json:"lookups"`
	// Passes counts naive-iteration passes (top-down engine only).
	Passes int `json:"passes,omitempty"`
	// Tables counts call-pattern tables (top-down engine only).
	Tables int `json:"tables,omitempty"`
	// Probes, Candidates, and IndexBuilds aggregate the storage-level
	// counters of every relation the evaluation touched: Select calls
	// served, candidate tuples examined, and hash indexes built.
	// FullScans counts the probes that had no usable index and walked
	// the full extension (Probes - FullScans were index-served).
	Probes      int64 `json:"probes"`
	FullScans   int64 `json:"full_scans,omitempty"`
	Candidates  int64 `json:"candidates"`
	IndexBuilds int64 `json:"index_builds"`
	// ProvEntries is the number of why-provenance witnesses this
	// evaluation recorded (zero when recording was disabled).
	ProvEntries int `json:"provenance_entries,omitempty"`
	// Wall is the end-to-end evaluation time.
	Wall time.Duration `json:"wall_ns"`
	// StopReason is empty for a run-to-completion evaluation; a governed
	// stop records why ("deadline", "canceled", "limit:<kind>", "panic").
	// The record then holds the snapshot at stop time.
	StopReason string `json:"stop_reason,omitempty"`
}

// StatsReporter is implemented by engines that record evaluation
// statistics. LastStats returns the record of the most recent Retrieve,
// or nil if none completed yet.
type StatsReporter interface {
	LastStats() *EvalStats
}

// String renders the record as a small report: one summary line followed
// by one line per evaluated component.
func (s *EvalStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s workers=%d wall=%s facts=%d lookups=%d probes=%d (scan %d) candidates=%d index-builds=%d",
		s.Engine, s.Workers, s.Wall.Round(time.Microsecond), s.Facts, s.Lookups, s.Probes, s.FullScans, s.Candidates, s.IndexBuilds)
	if s.StopReason != "" {
		fmt.Fprintf(&b, " stop=%s", s.StopReason)
	}
	if s.Passes > 0 {
		fmt.Fprintf(&b, " passes=%d tables=%d", s.Passes, s.Tables)
	}
	if s.ProvEntries > 0 {
		fmt.Fprintf(&b, " provenance=%d", s.ProvEntries)
	}
	for _, c := range s.Components {
		if c.Skipped {
			continue
		}
		kind := "nonrec"
		if c.Recursive {
			kind = "recursive"
		}
		fmt.Fprintf(&b, "\n  scc [%s] %s iters=%d facts=%d lookups=%d wall=%s",
			strings.Join(c.Preds, " "), kind, c.Iterations, c.Facts, c.Lookups, c.Wall.Round(time.Microsecond))
		if len(c.DeltaSizes) > 0 {
			fmt.Fprintf(&b, " delta=%v", c.DeltaSizes)
		}
	}
	return b.String()
}

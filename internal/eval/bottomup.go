package eval

import (
	"fmt"

	"kdb/internal/storage"
	"kdb/internal/term"
)

// derived holds the materialized extensions of IDB predicates during a
// bottom-up evaluation.
type derived map[string]*storage.Relation

func (d derived) relation(pred string, arity int) *storage.Relation {
	r, ok := d[pred]
	if !ok {
		r = storage.NewRelation(arity)
		d[pred] = r
	}
	return r
}

func (d derived) insert(a term.Atom) (bool, error) {
	return d.relation(a.Pred, len(a.Args)).Insert(storage.Tuple(a.Args))
}

// match resolves an atom against a derived relation.
func (d derived) match(a term.Atom, base term.Subst, fn func(term.Subst) bool) error {
	r, ok := d[a.Pred]
	if !ok {
		return nil
	}
	if r.Arity() != len(a.Args) {
		return fmt.Errorf("eval: %s used with arity %d, derived with %d", a.Pred, len(a.Args), r.Arity())
	}
	pattern := base.Apply(a)
	return r.Select(pattern.Args, func(t storage.Tuple) bool {
		ext, ok := term.Match(pattern, term.Atom{Pred: a.Pred, Args: t}, base)
		if !ok {
			return true
		}
		return fn(ext)
	})
}

// bottomUp is the shared driver for the naive and semi-naive engines.
type bottomUp struct {
	in       Input
	seminaive bool
}

// NewNaive returns the naive bottom-up engine: it recomputes every rule
// against the full extensions until no new fact appears. It is the
// correctness baseline the optimized engines are tested against.
func NewNaive(in Input) Engine { return &bottomUp{in: in} }

// NewSemiNaive returns the semi-naive bottom-up engine: within each
// recursive SCC, rules are differentiated on their recursive body atoms
// so each iteration only joins against the facts new in the previous
// iteration.
func NewSemiNaive(in Input) Engine { return &bottomUp{in: in, seminaive: true} }

// Name identifies the engine.
func (e *bottomUp) Name() string {
	if e.seminaive {
		return "seminaive"
	}
	return "naive"
}

// Retrieve evaluates the query bottom-up.
func (e *bottomUp) Retrieve(q Query) (*Result, error) {
	p, err := buildPlan(e.in, q)
	if err != nil {
		return nil, err
	}
	d := derived{}
	relevant := p.relevantPreds()
	// Evaluate components in dependency order, skipping irrelevant ones.
	for _, comp := range p.graph.SCCOrder() {
		needed := false
		hasRules := false
		for _, pred := range comp {
			if relevant[pred] {
				needed = true
			}
			if len(p.graph.RulesFor(pred)) > 0 {
				hasRules = true
			}
		}
		if !needed || !hasRules {
			continue
		}
		if err := e.evalComponent(p, d, comp); err != nil {
			return nil, err
		}
	}
	return e.collect(p, d), nil
}

// evalComponent computes the fixpoint of one SCC's rules.
func (e *bottomUp) evalComponent(p *plan, d derived, comp []string) error {
	inComp := make(map[string]bool, len(comp))
	for _, pred := range comp {
		inComp[pred] = true
	}
	var rules []term.Rule
	for _, pred := range comp {
		rules = append(rules, p.graph.RulesFor(pred)...)
	}
	recursive := false
	for _, r := range rules {
		for _, a := range r.Body {
			if inComp[a.Pred] {
				recursive = true
			}
		}
	}

	// full lookup: derived facts first, then stored facts. A predicate may
	// have both (the kb layer turns stored facts of rule-defined predicates
	// into bodiless rules, but eval stays robust either way); insert-time
	// deduplication makes the overlap harmless.
	full := func(a term.Atom, base term.Subst, fn func(term.Subst) bool) error {
		stopped := false
		if _, isDerived := d[a.Pred]; isDerived {
			if err := d.match(a, base, func(s term.Subst) bool {
				if !fn(s) {
					stopped = true
					return false
				}
				return true
			}); err != nil {
				return err
			}
			if stopped {
				return nil
			}
		}
		return e.in.Store.Match(a, base, fn)
	}

	// First round: apply every rule once against the current state.
	delta := derived{}
	if err := applyRules(rules, full, func(fact term.Atom) error {
		fresh, err := d.insert(fact)
		if err != nil {
			return err
		}
		if fresh {
			if _, err := delta.insert(fact); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if !recursive {
		return nil
	}

	// Iterate to fixpoint.
	for {
		if e.seminaive {
			empty := true
			for _, r := range delta {
				if r.Len() > 0 {
					empty = false
				}
			}
			if empty {
				return nil
			}
		}
		nextDelta := derived{}
		grew := false
		sink := func(fact term.Atom) error {
			fresh, err := d.insert(fact)
			if err != nil {
				return err
			}
			if fresh {
				grew = true
				if _, err := nextDelta.insert(fact); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		if e.seminaive {
			err = applyRulesSemiNaive(rules, inComp, full, delta, sink)
		} else {
			err = applyRules(rules, full, sink)
		}
		if err != nil {
			return err
		}
		if !grew {
			return nil
		}
		delta = nextDelta
	}
}

// applyRules derives the immediate consequences of the rules under the
// lookup and feeds each derived ground head to sink.
func applyRules(rules []term.Rule, lk lookup, sink func(term.Atom) error) error {
	for _, r := range rules {
		var derr error
		_, err := solveBody(r.Body, nil, lk, func(s term.Subst) bool {
			head := s.Apply(r.Head)
			if !head.IsGround() {
				derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, r)
				return false
			}
			if err := sink(head); err != nil {
				derr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if derr != nil {
			return derr
		}
	}
	return nil
}

// applyRulesSemiNaive derives consequences where at least one recursive
// body atom is resolved against the delta of the previous iteration. For
// a rule with k recursive occurrences it evaluates k differentiated
// variants, pinning occurrence i to the delta.
func applyRulesSemiNaive(rules []term.Rule, inComp map[string]bool, full lookup, delta derived, sink func(term.Atom) error) error {
	for _, r := range rules {
		var recIdx []int
		for i, a := range r.Body {
			if inComp[a.Pred] {
				recIdx = append(recIdx, i)
			}
		}
		if len(recIdx) == 0 {
			continue // non-recursive rules contribute nothing new after round one
		}
		for _, pin := range recIdx {
			pinned := pin
			var derr error
			_, err := solveBodyPinned(r.Body, pinned, full, delta, nil, func(s term.Subst) bool {
				head := s.Apply(r.Head)
				if !head.IsGround() {
					derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, r)
					return false
				}
				if err := sink(head); err != nil {
					derr = err
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if derr != nil {
				return derr
			}
		}
	}
	return nil
}

// solveBodyPinned is solveBody with one body occurrence (by original
// index) resolved against the delta relations instead of the full ones.
func solveBodyPinned(body []term.Atom, pin int, full lookup, delta derived, base term.Subst, fn func(term.Subst) bool) (bool, error) {
	type tagged struct {
		atom   term.Atom
		pinned bool
	}
	items := make([]tagged, len(body))
	for i, a := range body {
		items[i] = tagged{atom: a, pinned: i == pin}
	}
	var solve func(remaining []tagged, s term.Subst) (bool, error)
	solve = func(remaining []tagged, s term.Subst) (bool, error) {
		if len(remaining) == 0 {
			return fn(s), nil
		}
		atoms := make([]term.Atom, len(remaining))
		for i, it := range remaining {
			atoms[i] = it.atom
		}
		idx, err := chooseAtom(atoms, s)
		if err != nil {
			return false, err
		}
		it := remaining[idx]
		rest := make([]tagged, 0, len(remaining)-1)
		rest = append(rest, remaining[:idx]...)
		rest = append(rest, remaining[idx+1:]...)
		if term.IsComparison(it.atom) {
			// Delegate comparison handling to solveBody over a singleton,
			// then continue with rest.
			cont := true
			_, err := solveBody([]term.Atom{it.atom}, s, full, func(ext term.Subst) bool {
				c, err2 := solve(rest, ext)
				if err2 != nil {
					err = err2
					return false
				}
				cont = c
				return c
			})
			return cont, err
		}
		lk := full
		if it.pinned {
			lk = func(a term.Atom, b term.Subst, f func(term.Subst) bool) error {
				return delta.match(a, b, f)
			}
		}
		cont := true
		err = lk(it.atom, s, func(ext term.Subst) bool {
			c, err2 := solve(rest, ext)
			if err2 != nil {
				err = err2
				return false
			}
			cont = c
			return c
		})
		return cont, err
	}
	return solve(items, base)
}

// collect extracts the result tuples from the derived query relation.
func (e *bottomUp) collect(p *plan, d derived) *Result {
	res := &Result{Vars: p.vars}
	r, ok := d[queryPredName]
	if !ok {
		return res
	}
	r.Scan(func(t storage.Tuple) bool {
		res.Tuples = append(res.Tuples, t.Clone())
		return true
	})
	return res
}

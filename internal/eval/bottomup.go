package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/obs/profile"
	"kdb/internal/prov"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// engineConfig carries the tunables shared by the engine constructors.
type engineConfig struct {
	workers int
	limits  governor.Limits
	rec     *prov.Recorder
	prof    *profile.Profile
	labels  map[string]profLabel
}

// EngineOption tunes an engine at construction.
type EngineOption func(*engineConfig)

// WithWorkers sets the SCC worker-pool size of the bottom-up engines
// (and of the bottom-up core of the magic engine): independent strongly
// connected components of the rule dependency graph are evaluated
// concurrently on up to n goroutines. n <= 0 selects GOMAXPROCS; the
// default is 1, which keeps the evaluation strictly sequential (the
// correctness baseline). The top-down engine ignores this option.
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// WithLimits sets the per-query resource limits the engine's governor
// enforces on every evaluation (Retrieve delegates to RetrieveContext
// with a background context). The zero value of each field means
// unlimited.
func WithLimits(l governor.Limits) EngineOption {
	return func(c *engineConfig) { c.limits = l }
}

// WithProvenance makes the engine record one why-provenance witness
// (firing rule plus ground parent facts) for every newly derived fact
// into rec, bounded by the governor's MaxProvenanceEntries limit. All
// four engines honor it. A nil recorder disables recording; the derive
// path then pays a single nil check (see TestProvenanceDisabledAllocs).
func WithProvenance(rec *prov.Recorder) EngineOption {
	return func(c *engineConfig) { c.rec = rec }
}

func buildConfig(opts []EngineOption) engineConfig {
	cfg := engineConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// finishStats finalizes a stats record after the component loop: wall
// time, per-component sums, storage counters, and — for a governed
// stop — the stop reason.
func finishStats(stats *EvalStats, start time.Time, counters *storage.Counters, err error) {
	stats.Wall = time.Since(start)
	for i := range stats.Components {
		stats.Facts += stats.Components[i].Facts
		stats.Lookups += stats.Components[i].Lookups
	}
	stats.Probes = counters.Probes.Load()
	stats.Candidates = counters.Candidates.Load()
	stats.IndexBuilds = counters.IndexBuilds.Load()
	stats.FullScans = counters.FullScans.Load()
	stats.StopReason = governor.StopReason(err)
}

// derived holds the materialized extensions of IDB predicates during a
// bottom-up evaluation. The map is guarded by a mutex so independent
// SCCs can insert and look up concurrently; each relation is internally
// synchronized by storage.Relation's own lock.
type derived struct {
	mu       sync.RWMutex
	rels     map[string]*storage.Relation
	counters *storage.Counters // attached to every relation created here
}

func newDerived(c *storage.Counters) *derived {
	return &derived{rels: make(map[string]*storage.Relation), counters: c}
}

// get returns the relation for pred, or nil if no fact for pred has been
// derived yet.
func (d *derived) get(pred string) *storage.Relation {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rels[pred]
}

func (d *derived) relation(pred string, arity int) (*storage.Relation, error) {
	d.mu.RLock()
	r, ok := d.rels[pred]
	d.mu.RUnlock()
	if ok {
		return r, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.rels[pred]; ok {
		return r, nil
	}
	r, err := storage.NewRelation(arity)
	if err != nil {
		return nil, err
	}
	if d.counters != nil {
		r.SetCounters(d.counters)
	}
	d.rels[pred] = r
	return r, nil
}

func (d *derived) insert(a term.Atom) (bool, error) {
	r, err := d.relation(a.Pred, len(a.Args))
	if err != nil {
		return false, err
	}
	return r.Insert(storage.Tuple(a.Args))
}

// empty reports whether no relation holds any tuple.
func (d *derived) empty() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, r := range d.rels {
		if r.Len() > 0 {
			return false
		}
	}
	return true
}

// match resolves an atom against a derived relation. A nil sink falls
// back to the relation-attached counters.
func (d *derived) match(a term.Atom, base term.Subst, c *storage.Counters, fn func(term.Subst) bool) error {
	r := d.get(a.Pred)
	if r == nil {
		return nil
	}
	return matchRelation(r, a, base, c, fn)
}

// matchRelation resolves an atom against one relation, extending base
// with every successful match. The probe is charged to c (nil: the
// relation-attached counters).
func matchRelation(r *storage.Relation, a term.Atom, base term.Subst, c *storage.Counters, fn func(term.Subst) bool) error {
	if r.Arity() != len(a.Args) {
		return fmt.Errorf("eval: %s used with arity %d, derived with %d", a.Pred, len(a.Args), r.Arity())
	}
	pattern := base.Apply(a)
	return r.SelectCounted(pattern.Args, c, func(t storage.Tuple) bool {
		ext, ok := term.Match(pattern, term.Atom{Pred: a.Pred, Args: t}, base)
		if !ok {
			return true
		}
		return fn(ext)
	})
}

// matchStoreExcept enumerates the stored tuples of a.Pred, skipping
// tuples already present in the except relation. It is how a predicate
// with both derived and stored tuples (the kb layer turns stored facts
// of rule-defined predicates into bodiless rules, but eval stays robust
// either way) avoids feeding the same substitution twice.
func matchStoreExcept(st *storage.Store, a term.Atom, base term.Subst, except *storage.Relation, c *storage.Counters, fn func(term.Subst) bool) error {
	r := st.Relation(a.Pred)
	if r == nil {
		return nil
	}
	if r.Arity() != len(a.Args) {
		return fmt.Errorf("eval: %s used with arity %d, stored with %d", a.Pred, len(a.Args), r.Arity())
	}
	suppress := except != nil && except.Arity() == r.Arity()
	pattern := base.Apply(a)
	return r.SelectCounted(pattern.Args, c, func(t storage.Tuple) bool {
		if suppress && except.Contains(t) {
			return true
		}
		ext, ok := term.Match(pattern, term.Atom{Pred: a.Pred, Args: t}, base)
		if !ok {
			return true
		}
		return fn(ext)
	})
}

// bottomUp is the shared driver for the naive and semi-naive engines.
type bottomUp struct {
	in        Input
	seminaive bool
	workers   int
	limits    governor.Limits
	rec       *prov.Recorder
	prof      *profile.Profile
	labels    map[string]profLabel
	stats     atomic.Pointer[EvalStats]
}

// NewNaive returns the naive bottom-up engine: it recomputes every rule
// against the full extensions until no new fact appears. It is the
// correctness baseline the optimized engines are tested against.
func NewNaive(in Input, opts ...EngineOption) Engine {
	cfg := buildConfig(opts)
	return &bottomUp{in: in, workers: cfg.workers, limits: cfg.limits, rec: cfg.rec,
		prof: cfg.prof, labels: cfg.labels}
}

// NewSemiNaive returns the semi-naive bottom-up engine: within each
// recursive SCC, rules are differentiated on their recursive body atoms
// so each iteration only joins against the facts new in the previous
// iteration. With WithWorkers(n), independent SCCs are evaluated
// concurrently.
func NewSemiNaive(in Input, opts ...EngineOption) Engine {
	cfg := buildConfig(opts)
	return &bottomUp{in: in, seminaive: true, workers: cfg.workers, limits: cfg.limits, rec: cfg.rec,
		prof: cfg.prof, labels: cfg.labels}
}

// Name identifies the engine.
func (e *bottomUp) Name() string {
	name := "naive"
	if e.seminaive {
		name = "seminaive"
	}
	if e.workers > 1 {
		name += "-par"
	}
	return name
}

// LastStats returns the statistics of the most recent Retrieve.
func (e *bottomUp) LastStats() *EvalStats { return e.stats.Load() }

// Retrieve evaluates the query bottom-up to completion (no context).
// Configured limits (WithLimits) still apply.
//
//kdb:entrypoint
func (e *bottomUp) Retrieve(q Query) (*Result, error) {
	return e.RetrieveContext(context.Background(), q)
}

// RetrieveContext evaluates the query bottom-up under the governor.
// Components of the dependency graph's condensation are evaluated in
// dependency order — sequentially, or on a worker pool that runs
// independent components concurrently. Cancellation and limit breaches
// stop the fixpoint loops cooperatively and return a *StopError; panics
// anywhere in the evaluation (worker goroutines included) are contained.
func (e *bottomUp) RetrieveContext(ctx context.Context, q Query) (res *Result, err error) {
	defer governor.Recover(&err)
	gov, cancel := governor.New(ctx, e.limits)
	defer cancel()
	sp := obs.SpanFromContext(ctx)
	asp := sp.Child("analyze")
	p, err := buildPlan(e.in, q)
	if err != nil {
		asp.End()
		return nil, err
	}
	asp.End()
	// The observability counters are private to this query and threaded
	// through every storage probe (MatchCounted / SelectCounted), so
	// concurrent queries over the same store keep independent counts.
	counters := &storage.Counters{}
	d := newDerived(counters)
	relevant := p.relevantPreds()

	components := p.graph.SCCOrder()
	stats := &EvalStats{
		Engine:     e.Name(),
		Workers:    e.workers,
		Components: make([]ComponentStats, len(components)),
	}
	evalSp := sp.Child("eval")
	evalSp.SetStr("engine", e.Name())
	evalSp.SetInt("workers", int64(e.workers))
	evalSp.SetInt("components", int64(len(components)))
	start := time.Now()
	act := obs.ActivityFromContext(ctx)
	evalOne := func(i, worker int) error {
		comp := components[i]
		cs := &stats.Components[i]
		cs.Preds = comp
		needed := false
		hasRules := false
		for _, pred := range comp {
			if relevant[pred] {
				needed = true
			}
			if len(p.graph.RulesFor(pred)) > 0 {
				hasRules = true
			}
		}
		if !needed || !hasRules {
			cs.Skipped = true
			return nil
		}
		if err := gov.Err(); err != nil {
			return err
		}
		csp := evalSp.Child("scc")
		csp.SetWorker(worker)
		csp.SetStr("preds", strings.Join(comp, " "))
		t0 := time.Now()
		err := e.evalComponent(p, d, gov, comp, cs, act)
		cs.Wall = time.Since(t0)
		act.AddProgress(0, cs.Lookups)
		csp.SetInt("iterations", int64(cs.Iterations))
		csp.SetInt("facts", int64(cs.Facts))
		csp.SetInt("lookups", int64(cs.Lookups))
		csp.SetBool("recursive", cs.Recursive)
		csp.End()
		return err
	}
	provStart := e.rec.Len()
	var runErr error
	if e.workers <= 1 {
		for i := range components {
			if runErr = evalOne(i, 0); runErr != nil {
				break
			}
		}
	} else {
		runErr = runDAG(e.workers, p.graph.SCCDeps(), evalOne)
	}
	finishStats(stats, start, counters, runErr)
	stats.ProvEntries = e.rec.Len() - provStart
	if e.prof != nil {
		e.prof.SetEngine(e.Name())
		e.prof.SetWall(stats.Wall)
	}
	e.stats.Store(stats)
	endEvalSpan(evalSp, sp, stats)
	if runErr != nil {
		return nil, &StopError{Stats: stats, Err: runErr}
	}
	return e.collect(p, d), nil
}

// endEvalSpan folds the finished stats into the eval span and emits the
// storage-probe summary span. Nil-safe (untraced queries pass nil).
func endEvalSpan(evalSp, parent *obs.Span, stats *EvalStats) {
	evalSp.SetInt("facts", int64(stats.Facts))
	evalSp.SetInt("lookups", stats.Lookups)
	if stats.StopReason != "" && stats.StopReason != "ok" {
		evalSp.SetStr("stop", stats.StopReason)
	}
	evalSp.End()
	if parent == nil {
		return
	}
	ssp := parent.Child("storage")
	ssp.SetInt("probes", stats.Probes)
	ssp.SetInt("candidates", stats.Candidates)
	ssp.SetInt("index_builds", stats.IndexBuilds)
	ssp.End()
}

// fullLookup builds the component-local lookup over the union of the
// derived and stored extensions: derived facts are enumerated first,
// then stored facts — suppressing the stored tuples already present in
// the derived relation so no substitution is fed twice. Virtual
// predicates resolve against their per-query plan snapshot and nothing
// else. Each lookup performs one amortized governor check, which bounds
// the cancellation latency of even a single very large fixpoint round.
func (e *bottomUp) fullLookup(p *plan, d *derived, gov *governor.Governor, cs *ComponentStats, rp *ruleProfiler) lookup {
	return func(a term.Atom, base term.Subst, fn func(term.Subst) bool) error {
		cs.Lookups++
		rp.countLookup()
		if err := gov.Tick(); err != nil {
			return err
		}
		// With profiling on, probes are charged to the current rule's
		// sink, which chains onto the query-wide counters.
		c := d.counters
		if rc := rp.storageCounters(); rc != nil {
			c = rc
		}
		if p.virtual != nil {
			if vr := p.virtual[a.Pred]; vr != nil {
				return matchRelation(vr, a, base, c, fn)
			}
		}
		rel := d.get(a.Pred)
		if rel == nil {
			return e.in.Store.MatchCounted(a, base, c, fn)
		}
		stopped := false
		if err := matchRelation(rel, a, base, c, func(s term.Subst) bool {
			if !fn(s) {
				stopped = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stopped {
			return nil
		}
		return matchStoreExcept(e.in.Store, a, base, rel, c, fn)
	}
}

// evalComponent computes the fixpoint of one SCC's rules. It runs on a
// single goroutine; under parallel evaluation the scheduler guarantees
// every component it depends on has completed, so the only relations
// that grow during the run are the component's own.
func (e *bottomUp) evalComponent(p *plan, d *derived, gov *governor.Governor, comp []string, cs *ComponentStats, act *obs.Activity) error {
	inComp := make(map[string]bool, len(comp))
	for _, pred := range comp {
		inComp[pred] = true
	}
	var rules []term.Rule
	for _, pred := range comp {
		rules = append(rules, p.graph.RulesFor(pred)...)
	}
	recursive := false
	for _, r := range rules {
		for _, a := range r.Body {
			if inComp[a.Pred] {
				recursive = true
			}
		}
	}
	cs.Recursive = recursive
	var rp *ruleProfiler
	if e.prof != nil {
		rp = newRuleProfiler(e.prof, e.labels, d.counters)
	}
	full := e.fullLookup(p, d, gov, cs, rp)

	// First round: apply every rule once against the current state.
	delta := newDerived(d.counters)
	fresh := 0
	err := applyRules(rules, full, rp, func(fact term.Atom, rule term.Rule, s term.Subst) error {
		added, err := d.insert(fact)
		if err != nil {
			return err
		}
		if added {
			fresh++
			rp.fresh()
			if err := gov.CountFacts(1); err != nil {
				return err
			}
			if err := recordProv(e.rec, gov, fact, rule, s); err != nil {
				return err
			}
			if _, err := delta.insert(fact); err != nil {
				return err
			}
		}
		return nil
	})
	// Commit the (possibly partial) round's counters even on a governed
	// stop, so the stats attached to the error reflect the work done.
	cs.Iterations = 1
	cs.Facts = fresh
	cs.DeltaSizes = append(cs.DeltaSizes, fresh)
	// Facts stream to the activity entry per round, not per component,
	// so a long recursive fixpoint shows movement in `kdb top`.
	act.AddProgress(int64(fresh), 0)
	if err != nil {
		return err
	}
	if !recursive {
		return nil
	}

	// Iterate to fixpoint, checking the governor between rounds.
	for {
		if e.seminaive && delta.empty() {
			return nil
		}
		if err := gov.Err(); err != nil {
			return err
		}
		if err := gov.CheckIterations(cs.Iterations + 1); err != nil {
			return err
		}
		nextDelta := newDerived(d.counters)
		grew := 0
		sink := func(fact term.Atom, rule term.Rule, s term.Subst) error {
			added, err := d.insert(fact)
			if err != nil {
				return err
			}
			if added {
				grew++
				rp.fresh()
				if err := gov.CountFacts(1); err != nil {
					return err
				}
				if err := recordProv(e.rec, gov, fact, rule, s); err != nil {
					return err
				}
				if _, err := nextDelta.insert(fact); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		if e.seminaive {
			err = applyRulesSemiNaive(rules, inComp, full, delta, gov, rp, sink)
		} else {
			err = applyRules(rules, full, rp, sink)
		}
		cs.Iterations++
		cs.Facts += grew
		cs.DeltaSizes = append(cs.DeltaSizes, grew)
		act.AddProgress(int64(grew), 0)
		if err != nil {
			return err
		}
		if grew == 0 {
			return nil
		}
		delta = nextDelta
	}
}

// deriveSink receives each derived ground head along with the rule that
// fired and the substitution that instantiated it, so the caller can
// record why-provenance without re-solving the body.
type deriveSink func(fact term.Atom, rule term.Rule, s term.Subst) error

// recordProv is the only provenance code on the hot derive path: with
// recording disabled (nil recorder) it is a single branch, adding no
// allocations per derived fact (enforced by TestProvenanceDisabledAllocs
// and the provenance benchmarks).
func recordProv(rec *prov.Recorder, gov *governor.Governor, fact term.Atom, rule term.Rule, s term.Subst) error {
	if rec == nil {
		return nil
	}
	return gov.CheckProvenanceEntries(rec.Record(fact, rule, rule.Body, s))
}

// applyRules derives the immediate consequences of the rules under the
// lookup and feeds each derived ground head to sink. Each rule's round
// is bracketed by the profiler (nil-safe when profiling is off).
func applyRules(rules []term.Rule, lk lookup, rp *ruleProfiler, sink deriveSink) error {
	for _, r := range rules {
		rp.begin(r)
		var derr error
		_, err := solveBody(r.Body, nil, lk, func(s term.Subst) bool {
			head := s.Apply(r.Head)
			if !head.IsGround() {
				derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, r)
				return false
			}
			if DeriveHook != nil {
				DeriveHook(head)
			}
			if err := sink(head, r, s); err != nil {
				derr = err
				return false
			}
			return true
		})
		rp.end()
		if err != nil {
			return err
		}
		if derr != nil {
			return derr
		}
	}
	return nil
}

// applyRulesSemiNaive derives consequences where at least one recursive
// body atom is resolved against the delta of the previous iteration. For
// a rule with k recursive occurrences it evaluates k differentiated
// variants, pinning occurrence i to the delta.
func applyRulesSemiNaive(rules []term.Rule, inComp map[string]bool, full lookup, delta *derived, gov *governor.Governor, rp *ruleProfiler, sink deriveSink) error {
	for _, r := range rules {
		var recIdx []int
		for i, a := range r.Body {
			if inComp[a.Pred] {
				recIdx = append(recIdx, i)
			}
		}
		if len(recIdx) == 0 {
			continue // non-recursive rules contribute nothing new after round one
		}
		rp.begin(r)
		for _, pin := range recIdx {
			pinned := pin
			var derr error
			_, err := solveBodyPinned(r.Body, pinned, full, delta, gov, rp, nil, func(s term.Subst) bool {
				head := s.Apply(r.Head)
				if !head.IsGround() {
					derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, r)
					return false
				}
				if DeriveHook != nil {
					DeriveHook(head)
				}
				if err := sink(head, r, s); err != nil {
					derr = err
					return false
				}
				return true
			})
			if err != nil {
				rp.end()
				return err
			}
			if derr != nil {
				rp.end()
				return derr
			}
		}
		rp.end()
	}
	return nil
}

// solveBodyPinned is solveBody with one body occurrence (by original
// index) resolved against the delta relations instead of the full ones.
func solveBodyPinned(body []term.Atom, pin int, full lookup, delta *derived, gov *governor.Governor, rp *ruleProfiler, base term.Subst, fn func(term.Subst) bool) (bool, error) {
	type tagged struct {
		atom   term.Atom
		pinned bool
	}
	items := make([]tagged, len(body))
	for i, a := range body {
		items[i] = tagged{atom: a, pinned: i == pin}
	}
	var solve func(remaining []tagged, s term.Subst) (bool, error)
	solve = func(remaining []tagged, s term.Subst) (bool, error) {
		if len(remaining) == 0 {
			return fn(s), nil
		}
		atoms := make([]term.Atom, len(remaining))
		for i, it := range remaining {
			atoms[i] = it.atom
		}
		idx, err := chooseAtom(atoms, s)
		if err != nil {
			return false, err
		}
		it := remaining[idx]
		rest := make([]tagged, 0, len(remaining)-1)
		rest = append(rest, remaining[:idx]...)
		rest = append(rest, remaining[idx+1:]...)
		if term.IsComparison(it.atom) {
			// Delegate comparison handling to solveBody over a singleton,
			// then continue with rest.
			cont := true
			_, err := solveBody([]term.Atom{it.atom}, s, full, func(ext term.Subst) bool {
				c, err2 := solve(rest, ext)
				if err2 != nil {
					err = err2
					return false
				}
				cont = c
				return c
			})
			return cont, err
		}
		lk := full
		if it.pinned {
			lk = func(a term.Atom, b term.Subst, f func(term.Subst) bool) error {
				if err := gov.Tick(); err != nil {
					return err
				}
				// rp.storageCounters() is nil when profiling is off; the
				// delta relation then falls back to its attached (query-
				// wide) counters.
				return delta.match(a, b, rp.storageCounters(), f)
			}
		}
		cont := true
		err = lk(it.atom, s, func(ext term.Subst) bool {
			c, err2 := solve(rest, ext)
			if err2 != nil {
				err = err2
				return false
			}
			cont = c
			return c
		})
		return cont, err
	}
	return solve(items, base)
}

// collect extracts the result tuples from the derived query relation.
func (e *bottomUp) collect(p *plan, d *derived) *Result {
	res := &Result{Vars: p.vars}
	r := d.get(queryPredName)
	if r == nil {
		return res
	}
	r.Scan(func(t storage.Tuple) bool {
		res.Tuples = append(res.Tuples, t.Clone())
		return true
	})
	return res
}

package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"kdb/internal/storage"
	"kdb/internal/term"
)

func TestMagicBasicBoundGoal(t *testing.T) {
	in := load(t, `
edge(a, b). edge(b, c). edge(c, d). edge(x, y).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	e := NewMagic(in)
	res, err := e.Retrieve(query(t, `retrieve path(a, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "d"}
	if !reflect.DeepEqual(res.Strings(), want) {
		t.Errorf("path(a, Y) = %v, want %v", res.Strings(), want)
	}
	if e.Name() != "magic" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestMagicFreeGoal(t *testing.T) {
	in := load(t, `
edge(a, b). edge(b, c).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	res, err := NewMagic(in).Retrieve(query(t, `retrieve path(X, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3 {
		t.Errorf("full closure = %v", res.Strings())
	}
}

func TestMagicSecondArgumentBound(t *testing.T) {
	in := load(t, `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	res, err := NewMagic(in).Retrieve(query(t, `retrieve path(X, d).`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(res.Strings(), want) {
		t.Errorf("path(X, d) = %v, want %v", res.Strings(), want)
	}
}

func TestMagicRelevanceActuallyPrunes(t *testing.T) {
	// Two disconnected components; querying inside one must not derive
	// adorned path facts about the other. We inspect the rewritten program
	// shape and the result.
	var src strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&src, "edge(l%02d, l%02d).\n", i, i+1)
		fmt.Fprintf(&src, "edge(r%02d, r%02d).\n", i, i+1)
	}
	src.WriteString(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	in := load(t, src.String())
	res, err := NewMagic(in).Retrieve(query(t, `retrieve path(l00, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 20 {
		t.Fatalf("reachable from l00 = %d, want 20", len(res.Tuples))
	}
	for _, s := range res.Strings() {
		if strings.HasPrefix(s, "r") {
			t.Errorf("irrelevant fact derived: %s", s)
		}
	}
	// Program shape: the rewritten rules contain adorned and magic preds.
	rules, err := MagicProgram(in, query(t, `retrieve path(l00, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	var sawAdorned, sawMagic bool
	for _, r := range rules {
		if strings.HasPrefix(r.Head.Pred, "path#bf") {
			sawAdorned = true
		}
		if strings.HasPrefix(r.Head.Pred, "m$path#bf") {
			sawMagic = true
		}
	}
	if !sawAdorned || !sawMagic {
		t.Errorf("rewritten program lacks adorned/magic rules:\n%v", rules)
	}
}

func TestMagicWithComparisons(t *testing.T) {
	in := load(t, `
hop(a, b, 1). hop(b, c, 2). hop(c, d, 3).
cheap(X, Y) :- hop(X, Y, C), C < 3.
cheap(X, Y) :- hop(X, Z, C), C < 3, cheap(Z, Y).
`)
	res, err := NewMagic(in).Retrieve(query(t, `retrieve cheap(a, Y).`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c"}
	if !reflect.DeepEqual(res.Strings(), want) {
		t.Errorf("cheap(a, Y) = %v, want %v", res.Strings(), want)
	}
}

func TestMagicMutualRecursion(t *testing.T) {
	in := load(t, `
zero(n0).
succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`)
	res, err := NewMagic(in).Retrieve(query(t, `retrieve even(n4).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Errorf("even(n4) = %v", res.Strings())
	}
	res, err = NewMagic(in).Retrieve(query(t, `retrieve even(n3).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Errorf("even(n3) = %v, want none", res.Strings())
	}
}

func TestMagicAdHocSubject(t *testing.T) {
	in := load(t, `
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	res, err := NewMagic(in).Retrieve(query(t,
		`retrieve answer(X) where path(a, X) and path(X, d).`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c"}
	if !reflect.DeepEqual(res.Strings(), want) {
		t.Errorf("answer = %v, want %v", res.Strings(), want)
	}
}

func TestMagicUnsafeRejected(t *testing.T) {
	in := load(t, "q(a).\np(X) :- q(Y).")
	if _, err := NewMagic(in).Retrieve(query(t, `retrieve p(X).`)); err == nil {
		t.Error("unsafe program must be rejected")
	}
}

// TestQuickMagicAgreesWithSemiNaive: the magic rewrite preserves the
// query answer on random graph programs and query shapes.
func TestQuickMagicAgreesWithSemiNaive(t *testing.T) {
	queries := []string{
		`retrieve path(X, Y).`,
		`retrieve path(n0, Y).`,
		`retrieve path(X, n1).`,
		`retrieve path(n2, n4).`,
		`retrieve twohop(n0, Y).`,
		`retrieve reach_sym(n0, Y).`,
		`retrieve answer(X) where path(n0, X) and path(X, n1).`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomGraphInput(r, 6, 10)
		for _, qs := range queries {
			q := query(t, qs)
			a, err := NewSemiNaive(in).Retrieve(q)
			if err != nil {
				t.Logf("seed %d seminaive: %v", seed, err)
				return false
			}
			b, err := NewMagic(in).Retrieve(q)
			if err != nil {
				t.Logf("seed %d magic: %v", seed, err)
				return false
			}
			if !reflect.DeepEqual(a.Strings(), b.Strings()) {
				t.Logf("seed %d %s: seminaive=%v magic=%v", seed, qs, a.Strings(), b.Strings())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The headline claim: on a bound goal over a long chain, magic beats the
// plain bottom-up engine by doing only the relevant work. Verified as a
// derivation-count property using a side channel: evaluate both and
// compare full-closure sizes via result cardinality of a free query vs
// what magic needed (behavioral check lives in the benchmark; here we
// just re-assert correctness on a larger chain).
func TestMagicLongChainBoundGoal(t *testing.T) {
	st := storage.NewMemory()
	n := 400
	for i := 0; i < n; i++ {
		if _, err := st.InsertAtom(term.NewAtom("edge",
			term.Sym(fmt.Sprintf("n%04d", i)), term.Sym(fmt.Sprintf("n%04d", i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	in := Input{Store: st, Rules: parseRules(t, `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)}
	res, err := NewMagic(in).Retrieve(Query{Subject: term.NewAtom("path",
		term.Sym("n0000"), term.Var("Y"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != n {
		t.Fatalf("reachable = %d, want %d", len(res.Tuples), n)
	}
}

func BenchmarkRetrieveMagicBoundGoal(b *testing.B) {
	benchEngine(b, NewMagic, 200, `retrieve path(n0000, Y).`)
}

func BenchmarkRetrieveMagicFreeGoal(b *testing.B) {
	benchEngine(b, NewMagic, 50, `retrieve path(X, Y).`)
}

package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// load builds an Input from program source: ground bodiless clauses
// become stored facts, everything else becomes rules.
func load(t testing.TB, src string) Input {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	st := storage.NewMemory()
	var rules []term.Rule
	for _, c := range p.Clauses {
		if c.IsFact() {
			if _, err := st.InsertAtom(c.Head); err != nil {
				t.Fatalf("insert %v: %v", c.Head, err)
			}
		} else {
			rules = append(rules, c)
		}
	}
	return Input{Store: st, Rules: rules}
}

func query(t testing.TB, src string) Query {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	r, ok := q.(*parser.Retrieve)
	if !ok {
		t.Fatalf("not a retrieve: %T", q)
	}
	return Query{Subject: r.Subject, Where: r.Where}
}

func engines(in Input) []Engine {
	return []Engine{
		NewNaive(in),
		NewSemiNaive(in),
		NewSemiNaive(in, WithWorkers(4)),
		NewTopDown(in),
		NewMagic(in),
	}
}

// The paper's example database (§2.2) with a small extension.
const universityDB = `
student(ann, math, 3.9).
student(bob, cs, 3.5).
student(cora, math, 3.8).
student(dan, cs, 4).
professor(susan, cs, "x5-1212").
professor(tom, math, "x5-3434").
course(databases, 4).
course(calculus, 4).
course(datastructures, 3).
course(programming, 3).
enroll(ann, databases).
enroll(bob, databases).
enroll(cora, calculus).
enroll(dan, databases).
teach(susan, databases).
teach(tom, calculus).
prereq(databases, datastructures).
prereq(datastructures, programming).
taught(susan, databases, f89, 3.5).
taught(tom, databases, f88, 3).
complete(ann, databases, f89, 3.6).
complete(cora, databases, f88, 4).
complete(dan, databases, f88, 3.4).

honor(X) :- student(X, Y, Z), Z > 3.7.
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`

func retrieveAll(t *testing.T, in Input, q Query) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, e := range engines(in) {
		res, err := e.Retrieve(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out[e.Name()] = res.Strings()
	}
	// All engines must agree.
	for name, got := range out {
		if !reflect.DeepEqual(out["naive"], got) {
			t.Fatalf("engine %s disagrees with naive: %v", name, out)
		}
	}
	return out
}

func TestRetrieveEDB(t *testing.T) {
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve student(X, math, G).`))
	want := []string{"ann, 3.9", "cora, 3.8"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("math students = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveIDBSimple(t *testing.T) {
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve honor(X).`))
	want := []string{"ann", "cora", "dan"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("honor students = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveExample1(t *testing.T) {
	// Paper Example 1: honor students enrolled in databases.
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve honor(X) where enroll(X, databases).`))
	want := []string{"ann", "dan"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("= %v, want %v", got["naive"], want)
	}
}

func TestRetrieveExample2AdHocSubject(t *testing.T) {
	// Paper Example 2: `answer` is not a known predicate.
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t,
		`retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.`))
	// ann: honor, completed databases f89 3.6 > 3.3 under susan who teaches it → can_ta.
	// cora: honor, completed databases with 4.0 → can_ta; both are math.
	want := []string{"ann", "cora"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("= %v, want %v", got["naive"], want)
	}
}

func TestRetrieveCanTA(t *testing.T) {
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve can_ta(X, databases).`))
	// dan completed with 3.4 under tom (f88) but tom doesn't teach databases now;
	// 3.4 is not 4.0 either. So ann (rule 1) and cora (rule 2).
	want := []string{"ann", "cora"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("= %v, want %v", got["naive"], want)
	}
}

func TestRetrieveRecursive(t *testing.T) {
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve prior(databases, Y).`))
	want := []string{"datastructures", "programming"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("prior(databases, Y) = %v, want %v", got["naive"], want)
	}
	got = retrieveAll(t, in, query(t, `retrieve prior(X, programming).`))
	want = []string{"databases", "datastructures"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("prior(X, programming) = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveChainClosure(t *testing.T) {
	var src string
	n := 30
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("edge(n%02d, n%02d).\n", i, i+1)
	}
	src += `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`
	in := load(t, src)
	got := retrieveAll(t, in, query(t, `retrieve path(n00, Y).`))
	if len(got["naive"]) != n {
		t.Errorf("reachable from n00 = %d, want %d", len(got["naive"]), n)
	}
	got = retrieveAll(t, in, query(t, `retrieve path(X, Y).`))
	if len(got["naive"]) != n*(n+1)/2 {
		t.Errorf("all paths = %d, want %d", len(got["naive"]), n*(n+1)/2)
	}
}

func TestRetrieveCycleTerminates(t *testing.T) {
	in := load(t, `
edge(a, b). edge(b, c). edge(c, a).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	got := retrieveAll(t, in, query(t, `retrieve path(a, Y).`))
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("cycle closure = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveMutualRecursion(t *testing.T) {
	in := load(t, `
zero(n0).
succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`)
	got := retrieveAll(t, in, query(t, `retrieve even(X).`))
	want := []string{"n0", "n2", "n4"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("even = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveNonLinearRecursion(t *testing.T) {
	in := load(t, `
par(a, b). par(b, c). par(c, d).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`)
	got := retrieveAll(t, in, query(t, `retrieve anc(a, Y).`))
	want := []string{"b", "c", "d"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("anc = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveEqualityInRuleBody(t *testing.T) {
	in := load(t, `
p(a, 1). p(b, 2).
q(X) :- p(X, Y), Y = 1.
r(X, Z) :- p(X, Y), Z = Y.
`)
	got := retrieveAll(t, in, query(t, `retrieve q(X).`))
	if !reflect.DeepEqual(got["naive"], []string{"a"}) {
		t.Errorf("q = %v", got["naive"])
	}
	got = retrieveAll(t, in, query(t, `retrieve r(X, Z).`))
	want := []string{"a, 1", "b, 2"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("r = %v, want %v", got["naive"], want)
	}
}

func TestRetrieveComparisonsInQualifier(t *testing.T) {
	in := load(t, universityDB)
	got := retrieveAll(t, in, query(t, `retrieve student(X, M, G) where G >= 3.8 and M != cs.`))
	want := []string{"ann, math, 3.9", "cora, math, 3.8"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("= %v, want %v", got["naive"], want)
	}
}

func TestRetrieveGroundSubject(t *testing.T) {
	in := load(t, universityDB)
	res := retrieveAll(t, in, query(t, `retrieve honor(ann).`))
	// Ground subject: one empty binding tuple when true.
	if len(res["naive"]) != 1 {
		t.Errorf("honor(ann) = %v, want one (empty) answer", res["naive"])
	}
	res = retrieveAll(t, in, query(t, `retrieve honor(bob).`))
	if len(res["naive"]) != 0 {
		t.Errorf("honor(bob) = %v, want no answer", res["naive"])
	}
}

func TestRetrieveUnknownPredicateEmpty(t *testing.T) {
	in := load(t, universityDB)
	// ghost is unknown and the qualifier references it: empty answer.
	got := retrieveAll(t, in, query(t, `retrieve honor(X) where ghost(X).`))
	if len(got["naive"]) != 0 {
		t.Errorf("= %v, want empty", got["naive"])
	}
}

func TestRetrieveRepeatedVarsInSubject(t *testing.T) {
	in := load(t, `
likes(a, b). likes(b, b). likes(c, c).
`)
	got := retrieveAll(t, in, query(t, `retrieve likes(X, X).`))
	want := []string{"b", "c"}
	if !reflect.DeepEqual(got["naive"], want) {
		t.Errorf("likes(X,X) = %v, want %v", got["naive"], want)
	}
}

func TestUnsafeRulesRejected(t *testing.T) {
	cases := []string{
		`p(X) :- q(Y).` + "\nq(a).",         // head var unbound
		`p(X) :- X > 3.` + "\nq(a).",        // comparison var unbound
		`p(X) :- q(Y), X != Y.` + "\nq(a).", // != does not bind
	}
	for _, src := range cases {
		in := load(t, src)
		for _, e := range engines(in) {
			if _, err := e.Retrieve(query(t, `retrieve p(X).`)); err == nil {
				t.Errorf("%s accepted unsafe program %q", e.Name(), src)
			}
		}
	}
	// But X = Y with Y bound is safe.
	in := load(t, "q(a).\np(X) :- q(Y), X = Y.")
	got := retrieveAll(t, in, query(t, `retrieve p(X).`))
	if !reflect.DeepEqual(got["naive"], []string{"a"}) {
		t.Errorf("p = %v", got["naive"])
	}
}

func TestQualifierVarEqVarRejected(t *testing.T) {
	in := load(t, universityDB)
	for _, e := range engines(in) {
		if _, err := e.Retrieve(query(t, `retrieve student(X, Y, Z) where X = Y.`)); err == nil {
			t.Errorf("%s accepted X = Y in qualifier (paper §3.1 prohibits it)", e.Name())
		}
	}
}

func TestResultAtomsAndSorted(t *testing.T) {
	in := load(t, universityDB)
	e := NewSemiNaive(in)
	res, err := e.Retrieve(query(t, `retrieve honor(X).`))
	if err != nil {
		t.Fatal(err)
	}
	atoms := res.Atoms(term.NewAtom("honor", term.Var("X")))
	if len(atoms) != 3 {
		t.Fatalf("atoms = %v", atoms)
	}
	for _, a := range atoms {
		if a.Pred != "honor" || !a.IsGround() {
			t.Errorf("bad atom %v", a)
		}
	}
}

// --- cross-engine property tests on random graph programs ---

func randomGraphInput(r *rand.Rand, nodes, edges int) Input {
	st := storage.NewMemory()
	for i := 0; i < edges; i++ {
		a := term.Sym(fmt.Sprintf("n%d", r.Intn(nodes)))
		b := term.Sym(fmt.Sprintf("n%d", r.Intn(nodes)))
		if _, err := st.InsertAtom(term.NewAtom("edge", a, b)); err != nil {
			panic(err)
		}
	}
	p, err := parser.ParseProgram(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
twohop(X, Y) :- edge(X, Z), edge(Z, Y).
reach_sym(X, Y) :- path(X, Y).
reach_sym(X, Y) :- path(Y, X).
`)
	if err != nil {
		panic(err)
	}
	return Input{Store: st, Rules: p.Clauses}
}

// TestQuickEnginesAgree: naive, semi-naive, and top-down compute the same
// extension on random graphs, for several query shapes.
func TestQuickEnginesAgree(t *testing.T) {
	queries := []string{
		`retrieve path(X, Y).`,
		`retrieve path(n0, Y).`,
		`retrieve path(X, n1).`,
		`retrieve twohop(X, Y).`,
		`retrieve reach_sym(n0, Y).`,
		`retrieve answer(X) where path(n0, X) and path(X, n1).`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomGraphInput(r, 6, 10)
		for _, qs := range queries {
			q := query(t, qs)
			var results [][]string
			var names []string
			for _, e := range engines(in) {
				res, err := e.Retrieve(q)
				if err != nil {
					t.Logf("seed %d %s: %v", seed, e.Name(), err)
					return false
				}
				results = append(results, res.Strings())
				names = append(names, e.Name())
			}
			for i := 1; i < len(results); i++ {
				if !reflect.DeepEqual(results[0], results[i]) {
					t.Logf("seed %d query %s: %s=%v but %s=%v",
						seed, qs, names[0], results[0], names[i], results[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickClosureMatchesFloydWarshall: the recursive path predicate
// agrees with an independent reachability computation.
func TestQuickClosureMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		st := storage.NewMemory()
		for k := 0; k < 10; k++ {
			i, j := r.Intn(n), r.Intn(n)
			adj[i][j] = true
			if _, err := st.InsertAtom(term.NewAtom("edge",
				term.Sym(fmt.Sprintf("n%d", i)), term.Sym(fmt.Sprintf("n%d", j)))); err != nil {
				panic(err)
			}
		}
		// Floyd-Warshall closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		p, _ := parser.ParseProgram(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
		in := Input{Store: st, Rules: p.Clauses}
		res, err := NewSemiNaive(in).Retrieve(query(t, `retrieve path(X, Y).`))
		if err != nil {
			return false
		}
		got := make(map[string]bool)
		for _, tp := range res.Tuples {
			got[tp[0].Name()+","+tp[1].Name()] = true
		}
		want := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					want++
					if !got[fmt.Sprintf("n%d,n%d", i, j)] {
						t.Logf("seed %d: missing n%d→n%d", seed, i, j)
						return false
					}
				}
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- benchmarks: engine comparison on transitive closure (DESIGN B1) ---

func chainInput(b *testing.B, n int) Input {
	st := storage.NewMemory()
	for i := 0; i < n; i++ {
		if _, err := st.InsertAtom(term.NewAtom("edge",
			term.Sym(fmt.Sprintf("n%04d", i)), term.Sym(fmt.Sprintf("n%04d", i+1)))); err != nil {
			b.Fatal(err)
		}
	}
	p, err := parser.ParseProgram(`
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
`)
	if err != nil {
		b.Fatal(err)
	}
	return Input{Store: st, Rules: p.Clauses}
}

func benchEngine(b *testing.B, mk func(Input, ...EngineOption) Engine, n int, qs string) {
	in := chainInput(b, n)
	q := query(b, qs)
	e := mk(in)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Retrieve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveNaiveChain50(b *testing.B) {
	benchEngine(b, NewNaive, 50, `retrieve path(X, Y).`)
}
func BenchmarkRetrieveSemiNaiveChain50(b *testing.B) {
	benchEngine(b, NewSemiNaive, 50, `retrieve path(X, Y).`)
}
func BenchmarkRetrieveTopDownChain50(b *testing.B) {
	benchEngine(b, NewTopDown, 50, `retrieve path(X, Y).`)
}

func BenchmarkRetrieveSemiNaiveChain200(b *testing.B) {
	benchEngine(b, NewSemiNaive, 200, `retrieve path(X, Y).`)
}

func BenchmarkRetrieveTopDownBoundGoal(b *testing.B) {
	// Goal-directed evaluation should shine on a bound query.
	benchEngine(b, NewTopDown, 200, `retrieve path(n0000, Y).`)
}

func BenchmarkRetrieveSemiNaiveBoundGoal(b *testing.B) {
	benchEngine(b, NewSemiNaive, 200, `retrieve path(n0000, Y).`)
}

package eval

import (
	"sync"

	"kdb/internal/governor"
)

// runDAG executes one task per node of a dependency DAG on a bounded
// worker pool. deps[i] lists the nodes that must complete before node i
// may start (every listed index refers to another node; cycles are the
// caller's bug and deadlock the schedule — the condensation of a
// dependency graph is acyclic by construction). All zero-dependency
// nodes are launched immediately; finishing a node releases the
// dependents whose remaining in-degree drops to zero.
//
// The first task error is returned. Tasks not yet started when an error
// occurs are skipped (their run is never called), but the schedule still
// drains so no goroutine leaks.
//
// run receives the node index and the index of the worker executing it
// (0..workers-1), so callers can attribute work to scheduler lanes in
// traces.
func runDAG(workers int, deps [][]int, run func(node, worker int) error) error {
	n := len(deps)
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}

	// ready is buffered to n so releases never block: every node enters
	// the channel exactly once.
	ready := make(chan int, n)
	var (
		mu        sync.Mutex
		firstErr  error
		completed int
	)
	finish := func(i int) {
		mu.Lock()
		completed++
		for _, d := range dependents[i] {
			indeg[d]--
			if indeg[d] == 0 {
				ready <- d
			}
		}
		if completed == n {
			close(ready)
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range ready {
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if !aborted {
					// A panic on a worker goroutine would kill the whole
					// process (recover at the engine entry point cannot see
					// it); contain it here and report it as the task error.
					err := func() (err error) {
						defer governor.Recover(&err)
						return run(i, worker)
					}()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
				finish(i)
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

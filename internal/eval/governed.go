package eval

import (
	"kdb/internal/term"
)

// StopError is the error an engine returns when the query governor
// stopped an evaluation: it wraps the underlying breach (a
// governor.LimitError, a cancellation matching governor.ErrCanceled /
// context.DeadlineExceeded, or a governor.PanicError) and carries the
// statistics snapshot at stop time, with EvalStats.StopReason set.
type StopError struct {
	// Stats is the evaluation record at the moment the governor fired.
	Stats *EvalStats
	// Err is the underlying breach.
	Err error
}

func (e *StopError) Error() string { return e.Err.Error() }

// Unwrap exposes the breach to errors.Is / errors.As.
func (e *StopError) Unwrap() error { return e.Err }

// DeriveHook, when non-nil, observes every head atom the engines derive
// (bottom-up sinks and top-down table inserts). It exists so tests can
// inject failures — including panics — inside rule evaluation;
// production code leaves it nil.
var DeriveHook func(term.Atom)

package eval

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"kdb/internal/storage"
	"kdb/internal/term"
)

// topDown is a goal-directed engine: SLD resolution over the rules with
// tabling. Each distinct call pattern (predicate + bound-argument shape)
// gets a table of ground answers; recursive calls consume the answers
// derived so far, and an outer driver re-runs the computation until no
// table grows (naive-iteration tabling). This terminates on all Datalog
// programs and only ever touches predicates relevant to the goal.
type topDown struct {
	in    Input
	stats atomic.Pointer[EvalStats]
}

// NewTopDown returns the tabled top-down engine. It ignores WithWorkers
// (tabling shares one answer-table space across the whole resolution).
func NewTopDown(in Input, opts ...EngineOption) Engine { return &topDown{in: in} }

// Name identifies the engine.
func (e *topDown) Name() string { return "topdown" }

// LastStats returns the statistics of the most recent Retrieve.
func (e *topDown) LastStats() *EvalStats { return e.stats.Load() }

// table holds the answers derived so far for one call pattern.
type table struct {
	answers *storage.Relation
	// inPass marks that this table's rules are being (or have been)
	// evaluated in the current pass, to avoid re-entering.
	pass int
}

type topDownRun struct {
	in    Input
	graph map[string][]term.Rule
	rn    term.Renamer

	tables   map[string]*table
	pass     int
	grew     bool
	counters *storage.Counters
	lookups  int64
}

// Retrieve evaluates the query goal-directed.
func (e *topDown) Retrieve(q Query) (*Result, error) {
	p, err := buildPlan(e.in, q)
	if err != nil {
		return nil, err
	}
	run := &topDownRun{
		in:       e.in,
		graph:    make(map[string][]term.Rule),
		tables:   make(map[string]*table),
		counters: &storage.Counters{},
	}
	for _, r := range p.rules {
		run.graph[r.Head.Pred] = append(run.graph[r.Head.Pred], r)
	}
	for pred := range p.relevantPreds() {
		if r := e.in.Store.Relation(pred); r != nil {
			r.SetCounters(run.counters)
		}
	}
	goal := p.rule.Head
	start := time.Now()
	// Naive-iteration driver: re-run until no table grows.
	for {
		run.pass++
		run.grew = false
		if err := run.solveTable(goal); err != nil {
			return nil, err
		}
		if !run.grew {
			break
		}
	}
	res := &Result{Vars: p.vars}
	if t, ok := run.tables[callKey(goal)]; ok {
		t.answers.Scan(func(tp storage.Tuple) bool {
			res.Tuples = append(res.Tuples, tp.Clone())
			return true
		})
	}
	stats := &EvalStats{
		Engine:  e.Name(),
		Workers: 1,
		Passes:  run.pass,
		Tables:  len(run.tables),
		Lookups: run.lookups,
		Wall:    time.Since(start),
	}
	for _, t := range run.tables {
		stats.Facts += t.answers.Len()
	}
	stats.Probes = run.counters.Probes.Load()
	stats.Candidates = run.counters.Candidates.Load()
	stats.IndexBuilds = run.counters.IndexBuilds.Load()
	e.stats.Store(stats)
	return res, nil
}

// callKey canonicalizes a call: predicate plus the constants at bound
// positions and the equality pattern of unbound positions. Two calls
// that differ only in variable names share a table. Variable ids are
// encoded in delimited decimal — a single '0'+id byte would collide with
// the marker and separator bytes once ids grow, and wraps at 256.
func callKey(goal term.Atom) string {
	names := make(map[term.Term]int)
	b := []byte(goal.Pred)
	for _, a := range goal.Args {
		b = append(b, 0)
		if a.IsConst() {
			b = append(b, 'c')
			b = append(b, a.String()...)
			b = strconv.AppendInt(b, int64(a.Kind()), 10)
			continue
		}
		id, ok := names[a]
		if !ok {
			id = len(names)
			names[a] = id
		}
		b = append(b, 'v')
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

// solveTable ensures the table for the goal's call pattern has been
// evaluated in this pass, deriving new answers from the goal's rules.
func (r *topDownRun) solveTable(goal term.Atom) error {
	key := callKey(goal)
	t, ok := r.tables[key]
	if !ok {
		t = &table{answers: storage.NewRelation(len(goal.Args))}
		t.answers.SetCounters(r.counters)
		r.tables[key] = t
	}
	if t.pass == r.pass {
		return nil // already evaluated (or in progress) this pass
	}
	t.pass = r.pass
	for _, rule := range r.graph[goal.Pred] {
		fresh := r.rn.RenameRule(rule)
		mgu, ok := term.Unify(goal, fresh.Head, nil)
		if !ok {
			continue
		}
		var derr error
		_, err := solveBody(mgu.ApplyFormula(fresh.Body), nil, r.lookup, func(s term.Subst) bool {
			head := s.Apply(mgu.Apply(fresh.Head))
			if !head.IsGround() {
				derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, rule)
				return false
			}
			added, err := t.answers.Insert(storage.Tuple(head.Args))
			if err != nil {
				derr = err
				return false
			}
			if added {
				r.grew = true
			}
			return true
		})
		if err != nil {
			return err
		}
		if derr != nil {
			return derr
		}
	}
	return nil
}

// lookup resolves one body atom: EDB predicates via the store, IDB
// predicates via their (possibly still-growing) tables.
func (r *topDownRun) lookup(a term.Atom, base term.Subst, fn func(term.Subst) bool) error {
	r.lookups++
	rules := r.graph[a.Pred]
	if len(rules) == 0 {
		return r.in.Store.Match(a, base, fn)
	}
	goal := base.Apply(a)
	if err := r.solveTable(goal); err != nil {
		return err
	}
	t := r.tables[callKey(goal)]
	stopped := false
	t.answers.Scan(func(tp storage.Tuple) bool {
		ext, ok := term.Match(goal, term.Atom{Pred: a.Pred, Args: tp}, base)
		if !ok {
			return true
		}
		if !fn(ext) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return nil
	}
	// A predicate may also have stored facts (robustness; the kb layer
	// normally rewrites those into bodiless rules).
	if r.in.Store.Relation(a.Pred) != nil {
		return r.in.Store.Match(a, base, fn)
	}
	return nil
}

package eval

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/obs/profile"
	"kdb/internal/prov"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// topDown is a goal-directed engine: SLD resolution over the rules with
// tabling. Each distinct call pattern (predicate + bound-argument shape)
// gets a table of ground answers; recursive calls consume the answers
// derived so far, and an outer driver re-runs the computation until no
// table grows (naive-iteration tabling). This terminates on all Datalog
// programs and only ever touches predicates relevant to the goal.
type topDown struct {
	in     Input
	limits governor.Limits
	rec    *prov.Recorder
	prof   *profile.Profile
	stats  atomic.Pointer[EvalStats]
}

// NewTopDown returns the tabled top-down engine. It ignores WithWorkers
// (tabling shares one answer-table space across the whole resolution)
// but honors WithLimits, WithProvenance, and WithProfile.
func NewTopDown(in Input, opts ...EngineOption) Engine {
	cfg := buildConfig(opts)
	return &topDown{in: in, limits: cfg.limits, rec: cfg.rec, prof: cfg.prof}
}

// Name identifies the engine.
func (e *topDown) Name() string { return "topdown" }

// LastStats returns the statistics of the most recent Retrieve.
func (e *topDown) LastStats() *EvalStats { return e.stats.Load() }

// table holds the answers derived so far for one call pattern.
type table struct {
	answers *storage.Relation
	// inPass marks that this table's rules are being (or have been)
	// evaluated in the current pass, to avoid re-entering.
	pass int
}

type topDownRun struct {
	in    Input
	graph map[string][]term.Rule
	rn    term.Renamer
	gov   *governor.Governor
	rec   *prov.Recorder
	// virt holds the plan's per-query virtual-relation snapshots (nil
	// when the program references none).
	virt map[string]*storage.Relation

	tables   map[string]*table
	pass     int
	grew     bool
	counters *storage.Counters
	lookups  int64
	prof     *ruleProfiler
}

// Retrieve evaluates the query goal-directed to completion (no
// context). Configured limits (WithLimits) still apply.
//
//kdb:entrypoint
func (e *topDown) Retrieve(q Query) (*Result, error) {
	return e.RetrieveContext(context.Background(), q)
}

// RetrieveContext evaluates the query goal-directed under the governor:
// the naive-iteration driver checks cancellation and the pass budget
// between passes, every lookup performs an amortized check, and table
// allocation and answer insertion are bounded by MaxTableEntries and
// MaxFacts.
func (e *topDown) RetrieveContext(ctx context.Context, q Query) (res *Result, err error) {
	defer governor.Recover(&err)
	gov, cancel := governor.New(ctx, e.limits)
	defer cancel()
	sp := obs.SpanFromContext(ctx)
	asp := sp.Child("analyze")
	p, err := buildPlan(e.in, q)
	if err != nil {
		asp.End()
		return nil, err
	}
	asp.End()
	// The counters are private to this query and threaded through every
	// stored-relation probe, so concurrent queries stay independent.
	run := &topDownRun{
		in:       e.in,
		graph:    make(map[string][]term.Rule),
		gov:      gov,
		rec:      e.rec,
		virt:     p.virtual,
		tables:   make(map[string]*table),
		counters: &storage.Counters{},
	}
	if e.prof != nil {
		run.prof = newRuleProfiler(e.prof, nil, run.counters)
	}
	provStart := e.rec.Len()
	for _, r := range p.rules {
		run.graph[r.Head.Pred] = append(run.graph[r.Head.Pred], r)
	}
	goal := p.rule.Head
	evalSp := sp.Child("eval")
	evalSp.SetStr("engine", e.Name())
	evalSp.SetInt("workers", 1)
	start := time.Now()
	act := obs.ActivityFromContext(ctx)
	// Naive-iteration driver: re-run until no table grows.
	var runErr error
	for {
		if runErr = gov.Err(); runErr != nil {
			break
		}
		if runErr = gov.CheckIterations(run.pass + 1); runErr != nil {
			break
		}
		run.pass++
		run.grew = false
		if runErr = run.solveTable(goal); runErr != nil {
			break
		}
		if act != nil {
			facts := int64(0)
			for _, t := range run.tables {
				facts += int64(t.answers.Len())
			}
			act.SetProgress(facts, run.lookups)
		}
		if !run.grew {
			break
		}
	}
	stats := &EvalStats{
		Engine:  e.Name(),
		Workers: 1,
		Passes:  run.pass,
		Tables:  len(run.tables),
		Lookups: run.lookups,
		Wall:    time.Since(start),
	}
	for _, t := range run.tables {
		stats.Facts += t.answers.Len()
	}
	stats.Probes = run.counters.Probes.Load()
	stats.Candidates = run.counters.Candidates.Load()
	stats.IndexBuilds = run.counters.IndexBuilds.Load()
	stats.FullScans = run.counters.FullScans.Load()
	stats.ProvEntries = e.rec.Len() - provStart
	stats.StopReason = governor.StopReason(runErr)
	if e.prof != nil {
		e.prof.SetEngine(e.Name())
		e.prof.SetWall(stats.Wall)
	}
	e.stats.Store(stats)
	evalSp.SetInt("passes", int64(run.pass))
	evalSp.SetInt("tables", int64(len(run.tables)))
	endEvalSpan(evalSp, sp, stats)
	if runErr != nil {
		return nil, &StopError{Stats: stats, Err: runErr}
	}
	res = &Result{Vars: p.vars}
	if t, ok := run.tables[callKey(goal)]; ok {
		t.answers.Scan(func(tp storage.Tuple) bool {
			res.Tuples = append(res.Tuples, tp.Clone())
			return true
		})
	}
	return res, nil
}

// callKey canonicalizes a call: predicate plus the constants at bound
// positions and the equality pattern of unbound positions. Two calls
// that differ only in variable names share a table. Variable ids are
// encoded in delimited decimal — a single '0'+id byte would collide with
// the marker and separator bytes once ids grow, and wraps at 256.
func callKey(goal term.Atom) string {
	names := make(map[term.Term]int)
	b := []byte(goal.Pred)
	for _, a := range goal.Args {
		b = append(b, 0)
		if a.IsConst() {
			b = append(b, 'c')
			b = append(b, a.String()...)
			b = strconv.AppendInt(b, int64(a.Kind()), 10)
			continue
		}
		id, ok := names[a]
		if !ok {
			id = len(names)
			names[a] = id
		}
		b = append(b, 'v')
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

// solveTable ensures the table for the goal's call pattern has been
// evaluated in this pass, deriving new answers from the goal's rules.
func (r *topDownRun) solveTable(goal term.Atom) error {
	key := callKey(goal)
	t, ok := r.tables[key]
	if !ok {
		if err := r.gov.CheckTableEntries(len(r.tables) + 1); err != nil {
			return err
		}
		rel, err := storage.NewRelation(len(goal.Args))
		if err != nil {
			return err
		}
		t = &table{answers: rel}
		t.answers.SetCounters(r.counters)
		r.tables[key] = t
	}
	if t.pass == r.pass {
		return nil // already evaluated (or in progress) this pass
	}
	t.pass = r.pass
	for _, rule := range r.graph[goal.Pred] {
		if err := r.solveRule(t, goal, rule); err != nil {
			return err
		}
	}
	return nil
}

// solveRule evaluates one rule against the goal's table. The round is
// bracketed by the profiler; nested subgoal work (lookup re-entering
// solveTable) is attributed to the rules it evaluates, not this one.
func (r *topDownRun) solveRule(t *table, goal term.Atom, rule term.Rule) error {
	fresh := r.rn.RenameRule(rule)
	mgu, ok := term.Unify(goal, fresh.Head, nil)
	if !ok {
		return nil
	}
	r.prof.begin(rule)
	defer r.prof.end()
	body := mgu.ApplyFormula(fresh.Body)
	var derr error
	_, err := solveBody(body, nil, r.lookup, func(s term.Subst) bool {
		// Large joins emit many solutions between lookups; tick per
		// solution so cancellation latency stays bounded.
		if derr = r.gov.Tick(); derr != nil {
			return false
		}
		head := s.Apply(mgu.Apply(fresh.Head))
		if !head.IsGround() {
			derr = fmt.Errorf("eval: derived non-ground fact %v from %v", head, rule)
			return false
		}
		if DeriveHook != nil {
			DeriveHook(head)
		}
		added, err := t.answers.Insert(storage.Tuple(head.Args))
		if err != nil {
			derr = err
			return false
		}
		if added {
			r.grew = true
			r.prof.fresh()
			if err := r.gov.CountFacts(1); err != nil {
				derr = err
				return false
			}
			if r.rec != nil {
				n := r.rec.Record(head, rule, body, s)
				if err := r.gov.CheckProvenanceEntries(n); err != nil {
					derr = err
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return derr
}

// lookup resolves one body atom: EDB predicates via the store, IDB
// predicates via their (possibly still-growing) tables.
func (r *topDownRun) lookup(a term.Atom, base term.Subst, fn func(term.Subst) bool) error {
	r.lookups++
	r.prof.countLookup()
	if err := r.gov.Tick(); err != nil {
		return err
	}
	// With profiling on, probes are charged to the current rule's sink,
	// which chains onto the run-wide counters.
	c := r.counters
	if pc := r.prof.storageCounters(); pc != nil {
		c = pc
	}
	if r.virt != nil {
		if vr := r.virt[a.Pred]; vr != nil {
			return matchRelation(vr, a, base, c, fn)
		}
	}
	rules := r.graph[a.Pred]
	if len(rules) == 0 {
		return r.in.Store.MatchCounted(a, base, c, fn)
	}
	goal := base.Apply(a)
	if err := r.solveTable(goal); err != nil {
		return err
	}
	t := r.tables[callKey(goal)]
	stopped := false
	var terr error
	t.answers.Scan(func(tp storage.Tuple) bool {
		// Answer tables can hold many tuples; tick per tuple (amortized)
		// so a scan inside a big join stays cancelable.
		if terr = r.gov.Tick(); terr != nil {
			return false
		}
		ext, ok := term.Match(goal, term.Atom{Pred: a.Pred, Args: tp}, base)
		if !ok {
			return true
		}
		if !fn(ext) {
			stopped = true
			return false
		}
		return true
	})
	if terr != nil {
		return terr
	}
	if stopped {
		return nil
	}
	// A predicate may also have stored facts (robustness; the kb layer
	// normally rewrites those into bodiless rules).
	if r.in.Store.Relation(a.Pred) != nil {
		return r.in.Store.MatchCounted(a, base, c, fn)
	}
	return nil
}

package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kdb/internal/governor"
	"kdb/internal/term"
)

// expensiveInput builds a divergently expensive (but finite) program: the
// transitive closure of an n-node cycle has n² reachable pairs and needs
// ~n fixpoint rounds, far more work than any test deadline allows.
func expensiveInput(t testing.TB, n int) Input {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, (i+1)%n)
	}
	sb.WriteString("reach(X, Y) :- edge(X, Y).\n")
	sb.WriteString("reach(X, Y) :- edge(X, Z), reach(Z, Y).\n")
	return load(t, sb.String())
}

// governedEngines returns every engine in sequential and parallel
// flavors, all built with the given options.
func governedEngines(in Input, opts ...EngineOption) []Engine {
	par := append(append([]EngineOption{}, opts...), WithWorkers(4))
	return []Engine{
		NewNaive(in, opts...),
		NewNaive(in, par...),
		NewSemiNaive(in, opts...),
		NewSemiNaive(in, par...),
		NewTopDown(in, opts...),
		NewMagic(in, opts...),
		NewMagic(in, par...),
	}
}

func engineLabel(i int, e Engine) string { return fmt.Sprintf("%d-%s", i, e.Name()) }

func TestDeadlineStopsEveryEngine(t *testing.T) {
	in := expensiveInput(t, 600)
	q := query(t, `retrieve reach(X, Y).`)
	for i, e := range governedEngines(in) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := e.RetrieveContext(ctx, q)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("expected a deadline error, query completed")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
			}
			if !errors.Is(err, governor.ErrCanceled) {
				t.Errorf("err = %v, want to match governor.ErrCanceled", err)
			}
			if elapsed > 500*time.Millisecond {
				t.Errorf("took %v to observe a 100ms deadline", elapsed)
			}
			var se *StopError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *StopError with stats", err)
			}
			if se.Stats == nil || se.Stats.StopReason != "deadline" {
				t.Errorf("stats = %+v, want StopReason deadline", se.Stats)
			}
		})
	}
}

func TestMaxWallLimitViaOptions(t *testing.T) {
	in := expensiveInput(t, 600)
	q := query(t, `retrieve reach(X, Y).`)
	for i, e := range governedEngines(in, WithLimits(governor.Limits{MaxWall: 50 * time.Millisecond})) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			start := time.Now()
			_, err := e.Retrieve(q) // plain Retrieve: the limit alone must stop it
			if err == nil {
				t.Fatal("expected a deadline error, query completed")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
				t.Errorf("took %v to observe a 50ms wall limit", elapsed)
			}
		})
	}
}

func TestPreCanceledContext(t *testing.T) {
	in := expensiveInput(t, 600)
	q := query(t, `retrieve reach(X, Y).`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, e := range governedEngines(in) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			start := time.Now()
			_, err := e.RetrieveContext(ctx, q)
			if !errors.Is(err, governor.ErrCanceled) {
				t.Errorf("err = %v, want governor.ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want to wrap context.Canceled", err)
			}
			if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
				t.Errorf("took %v to observe a pre-canceled context", elapsed)
			}
		})
	}
}

func TestMaxFactsLimit(t *testing.T) {
	in := expensiveInput(t, 200)
	q := query(t, `retrieve reach(X, Y).`)
	for i, e := range governedEngines(in, WithLimits(governor.Limits{MaxFacts: 100})) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			_, err := e.Retrieve(q)
			var le *governor.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v, want *LimitError", err)
			}
			if le.Kind != governor.LimitFacts {
				t.Errorf("kind = %q, want %q", le.Kind, governor.LimitFacts)
			}
			var se *StopError
			if !errors.As(err, &se) || se.Stats == nil {
				t.Fatalf("err = %v, want *StopError with stats", err)
			}
			if se.Stats.StopReason != "limit:facts" {
				t.Errorf("StopReason = %q", se.Stats.StopReason)
			}
		})
	}
}

func TestMaxIterationsLimit(t *testing.T) {
	in := expensiveInput(t, 200)
	q := query(t, `retrieve reach(X, Y).`)
	for i, e := range governedEngines(in, WithLimits(governor.Limits{MaxIterations: 2})) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			_, err := e.Retrieve(q)
			var le *governor.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v, want *LimitError", err)
			}
			if le.Kind != governor.LimitIterations {
				t.Errorf("kind = %q, want %q", le.Kind, governor.LimitIterations)
			}
		})
	}
}

func TestMaxTableEntriesLimit(t *testing.T) {
	// Two IDB predicates guarantee at least two call-pattern tables.
	in := load(t, `
edge(a, b). edge(b, c). edge(c, d).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
twohop(X, Y) :- reach(X, Z), reach(Z, Y).
`)
	q := query(t, `retrieve twohop(X, Y).`)
	e := NewTopDown(in, WithLimits(governor.Limits{MaxTableEntries: 1}))
	_, err := e.Retrieve(q)
	var le *governor.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Kind != governor.LimitTableEntries {
		t.Errorf("kind = %q, want %q", le.Kind, governor.LimitTableEntries)
	}
}

func TestLimitsDoNotAffectCompletingQueries(t *testing.T) {
	in := load(t, universityDB)
	q := query(t, `retrieve prior(databases, X).`)
	limits := governor.Limits{
		MaxWall:       10 * time.Second,
		MaxFacts:      100000,
		MaxIterations: 100000,
	}
	for i, e := range governedEngines(in, WithLimits(limits)) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			res, err := e.Retrieve(q)
			if err != nil {
				t.Fatalf("generous limits must not interfere: %v", err)
			}
			if len(res.Tuples) != 2 {
				t.Errorf("answers = %d, want 2", len(res.Tuples))
			}
		})
	}
}

func TestPanicContainment(t *testing.T) {
	in := expensiveInput(t, 10)
	q := query(t, `retrieve reach(X, Y).`)
	DeriveHook = func(term.Atom) { panic("injected failure") }
	defer func() { DeriveHook = nil }()
	for i, e := range governedEngines(in) {
		e := e
		t.Run(engineLabel(i, e), func(t *testing.T) {
			_, err := e.Retrieve(q)
			var pe *governor.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if !strings.Contains(pe.Error(), "injected failure") {
				t.Errorf("panic value lost: %v", pe)
			}
		})
	}
}

// TestPanicContainmentParallelWorkers pins the worker-goroutine recover
// path: a panic inside a scheduler worker must surface as an error from
// RetrieveContext, not crash the process.
func TestPanicContainmentParallelWorkers(t *testing.T) {
	// Several independent SCCs so the DAG scheduler actually fans out.
	in := load(t, `
e1(a, b). e2(a, b). e3(a, b). e4(a, b).
p1(X, Y) :- e1(X, Y).
p2(X, Y) :- e2(X, Y).
p3(X, Y) :- e3(X, Y).
p4(X, Y) :- e4(X, Y).
all(X, Y) :- p1(X, Y), p2(X, Y), p3(X, Y), p4(X, Y).
`)
	q := query(t, `retrieve all(X, Y).`)
	DeriveHook = func(term.Atom) { panic("worker panic") }
	defer func() { DeriveHook = nil }()
	e := NewSemiNaive(in, WithWorkers(4))
	_, err := e.RetrieveContext(context.Background(), q)
	var pe *governor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestStatsCarryStopReason(t *testing.T) {
	in := expensiveInput(t, 200)
	q := query(t, `retrieve reach(X, Y).`)
	e := NewSemiNaive(in, WithLimits(governor.Limits{MaxFacts: 50}))
	_, err := e.Retrieve(q)
	var se *StopError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StopError", err)
	}
	if se.Stats.StopReason != "limit:facts" {
		t.Errorf("StopReason = %q", se.Stats.StopReason)
	}
	if !strings.Contains(se.Stats.String(), "stop=limit:facts") {
		t.Errorf("stats string %q must mention the stop reason", se.Stats.String())
	}
	if sr, ok := e.(StatsReporter); ok {
		if st := sr.LastStats(); st == nil || st.StopReason != "limit:facts" {
			t.Errorf("LastStats = %+v, want governed stop recorded", st)
		}
	} else {
		t.Error("engine must implement StatsReporter")
	}
}

package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"kdb/internal/governor"
	"kdb/internal/obs"
	"kdb/internal/obs/profile"
	"kdb/internal/prov"
	"kdb/internal/term"
)

// The magic-sets engine: a goal-directed bottom-up evaluator. The query
// is rewritten with adorned predicates and magic filters so the
// semi-naive fixpoint only derives facts relevant to the query's bound
// arguments — bottom-up evaluation with top-down relevance, the standard
// optimization for bound goals over recursive programs.
//
// The rewrite is the textbook generalized magic sets for definite Datalog
// with comparisons:
//
//   - every IDB predicate reached from the query gets adorned variants
//     p#bf… (one per binding pattern);
//   - each adorned rule is guarded by a magic predicate m$p#… holding the
//     bound-argument tuples the query actually asks about;
//   - supplementary magic rules seed callee magic sets from the caller's
//     partial joins, following a left-to-right sideways information
//     passing order (comparisons are placed as soon as their variables
//     are bound).
//
// The rewritten program is evaluated by the semi-naive engine; magic seed
// facts ride along as bodiless ground rules so the user's store is never
// touched.

// magic is the Engine implementation.
type magic struct {
	in      Input
	workers int
	limits  governor.Limits
	rec     *prov.Recorder
	prof    *profile.Profile
	stats   atomic.Pointer[EvalStats]
}

// NewMagic returns the magic-sets engine. WithWorkers and WithLimits
// are forwarded to the semi-naive engine that evaluates the rewritten
// program. WithProvenance is forwarded through a rewriting view that
// records witnesses under the original (unadorned) predicate names,
// with magic-guard parents dropped, so explain trees agree with the
// other engines.
func NewMagic(in Input, opts ...EngineOption) Engine {
	cfg := buildConfig(opts)
	return &magic{in: in, workers: cfg.workers, limits: cfg.limits, rec: cfg.rec, prof: cfg.prof}
}

// Name identifies the engine.
func (e *magic) Name() string { return "magic" }

// LastStats returns the statistics of the most recent Retrieve (those of
// the inner semi-naive run over the rewritten program, relabeled).
func (e *magic) LastStats() *EvalStats { return e.stats.Load() }

// Retrieve rewrites the query and evaluates it bottom-up to completion
// (no context). Configured limits (WithLimits) still apply.
//
//kdb:entrypoint
func (e *magic) Retrieve(q Query) (*Result, error) {
	return e.RetrieveContext(context.Background(), q)
}

// RetrieveContext rewrites the query and evaluates it bottom-up under
// the governor: the context and limits are forwarded to the inner
// semi-naive engine, so MaxFacts counts the facts of the rewritten
// program (magic seeds included).
func (e *magic) RetrieveContext(ctx context.Context, q Query) (res *Result, err error) {
	defer governor.Recover(&err)
	sp := obs.SpanFromContext(ctx)
	asp := sp.Child("analyze")
	p, err := buildPlan(e.in, q)
	asp.End()
	if err != nil {
		return nil, err
	}
	rsp := sp.Child("magic-rewrite")
	rewritten, queryPred, labels, err := magicRewrite(p)
	rsp.SetInt("rules", int64(len(rewritten)))
	rsp.End()
	if err != nil {
		return nil, err
	}
	// The provider is forwarded unchanged: the adorned rewrite leaves
	// virtual atoms as-is (they have no rules, so they adorn like stored
	// predicates), and the inner plan re-snapshots them through the same
	// view, so magic answers match the other engines.
	inner := Input{Store: e.in.Store, Rules: rewritten, Virtual: e.in.Virtual}
	engine := NewSemiNaive(inner, WithWorkers(e.workers), WithLimits(e.limits),
		WithProvenance(e.rec.Rewritten(magicProvRewrite)),
		WithProfile(e.prof), withProfileLabels(labels))
	res, err = engine.RetrieveContext(ctx, Query{
		Subject: term.NewAtom(queryPred, p.vars...),
	})
	// Relabel the inner run's record (the StopError of a governed stop
	// carries the same *EvalStats pointer) on both paths.
	if sr, ok := engine.(StatsReporter); ok {
		if st := sr.LastStats(); st != nil {
			st.Engine = e.Name()
			e.stats.Store(st)
		}
	}
	// The inner run stamped the profile "seminaive"; the user asked magic.
	if e.prof != nil {
		e.prof.SetEngine(e.Name())
	}
	if err != nil {
		return nil, err
	}
	res.Vars = p.vars
	return res, nil
}

// magicProvRewrite maps an atom of the rewritten program back to source
// form for provenance recording: magic guards (m$…) are dropped and
// adorned predicates (p#bf…) recover their original name. Distinct
// adorned variants of the same ground fact collapse onto one witness
// (first recorded wins), which is why reconstruction must stay
// cycle-safe.
func magicProvRewrite(a term.Atom) (term.Atom, bool) {
	if strings.HasPrefix(a.Pred, "m$") {
		return term.Atom{}, false
	}
	if i := strings.IndexByte(a.Pred, '#'); i >= 0 {
		return term.Atom{Pred: a.Pred[:i], Args: a.Args}, true
	}
	return a, true
}

// adornment is a binding pattern: 'b' for bound, 'f' for free, one byte
// per argument position.
type adornment string

func adornedName(pred string, a adornment) string {
	if len(a) == 0 {
		return pred + "#"
	}
	return pred + "#" + string(a)
}

func magicName(pred string, a adornment) string {
	return "m$" + adornedName(pred, a)
}

// magicRewrite produces the adorned + magic program for the plan's query
// rule, the name of the adorned query predicate, and a profiling relabel
// table mapping each generated rule back to its source rule (magic
// guards, seeds, and the adorned query rule are marked synthetic) so
// profiles of a magic run read in terms of the user's program.
func magicRewrite(p *plan) ([]term.Rule, string, map[string]profLabel, error) {
	idb := make(map[string]bool)
	for _, r := range p.rules {
		idb[r.Head.Pred] = true
	}

	type job struct {
		pred string
		a    adornment
	}
	var out []term.Rule
	labels := make(map[string]profLabel)
	seen := map[string]bool{}
	var queue []job

	// The query rule's head has no bound arguments (its constants, if
	// any, live in the body); its magic seed is the empty tuple.
	queryAd := adornment(strings.Repeat("f", len(p.rule.Head.Args)))
	queue = append(queue, job{queryPredName, queryAd})
	seen[adornedName(queryPredName, queryAd)] = true
	seed := term.Rule{Head: term.NewAtom(magicName(queryPredName, queryAd))}
	out = append(out, seed)
	labels[seed.String()] = profLabel{label: seed.String(), pred: seed.Head.Pred, synthetic: true}

	enqueue := func(pred string, a adornment) {
		key := adornedName(pred, a)
		if !seen[key] {
			seen[key] = true
			queue = append(queue, job{pred, a})
		}
	}

	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		for _, r := range p.graph.RulesFor(j.pred) {
			rules, err := adornRule(r, j.a, idb, enqueue)
			if err != nil {
				return nil, "", nil, err
			}
			// adornRule returns the supplementary magic rules first and
			// the adorned source rule last: the adorned rule profiles
			// under its source text, the machinery as synthetic.
			for i, g := range rules {
				if i == len(rules)-1 {
					labels[g.String()] = profLabel{
						label:     r.String(),
						pred:      r.Head.Pred,
						synthetic: r.Head.Pred == queryPredName,
					}
				} else {
					labels[g.String()] = profLabel{label: g.String(), pred: g.Head.Pred, synthetic: true}
				}
			}
			out = append(out, rules...)
		}
	}
	return out, adornedName(queryPredName, queryAd), labels, nil
}

// adornRule rewrites one rule for the head adornment: the guarded adorned
// rule plus one supplementary magic rule per IDB body atom.
func adornRule(r term.Rule, headAd adornment, idb map[string]bool, enqueue func(string, adornment)) ([]term.Rule, error) {
	if len(headAd) != len(r.Head.Args) {
		return nil, fmt.Errorf("eval: adornment %q does not fit %v", headAd, r.Head)
	}
	bound := make(map[term.Term]bool)
	var magicArgs []term.Term
	for i, c := range headAd {
		arg := r.Head.Args[i]
		if c == 'b' {
			magicArgs = append(magicArgs, arg)
			if arg.IsVar() {
				bound[arg] = true
			}
		}
	}
	guard := term.NewAtom(magicName(r.Head.Pred, headAd), magicArgs...)

	ordered := sipsOrder(r.Body, bound)

	var out []term.Rule
	newBody := term.Formula{guard}
	for _, a := range ordered {
		if term.IsComparison(a) {
			newBody = append(newBody, a)
			// Equality can bind a variable sideways.
			if a.Pred == term.PredEq {
				for _, t := range a.Args {
					if t.IsVar() {
						bound[t] = true
					}
				}
			}
			continue
		}
		if !idb[a.Pred] {
			// Stored predicate: binds all its variables.
			newBody = append(newBody, a)
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t] = true
				}
			}
			continue
		}
		// IDB atom: adorn by the current bindings, emit its supplementary
		// magic rule, and continue with the adorned call.
		var ad []byte
		var callBound []term.Term
		for _, t := range a.Args {
			if t.IsConst() || bound[t] {
				ad = append(ad, 'b')
				callBound = append(callBound, t)
			} else {
				ad = append(ad, 'f')
			}
		}
		calleeAd := adornment(ad)
		enqueue(a.Pred, calleeAd)
		// Supplementary magic rule: m$callee(boundArgs) ← everything
		// established so far (the guard and the earlier body atoms).
		out = append(out, term.Rule{
			Head: term.NewAtom(magicName(a.Pred, calleeAd), callBound...),
			Body: newBody.Clone(),
		})
		newBody = append(newBody, term.Atom{Pred: adornedName(a.Pred, calleeAd), Args: a.Args})
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t] = true
			}
		}
	}
	out = append(out, term.Rule{
		Head: term.Atom{Pred: adornedName(r.Head.Pred, headAd), Args: r.Head.Args},
		Body: newBody,
	})
	return out, nil
}

// sipsOrder arranges the body for sideways information passing: ordinary
// atoms keep their textual order; each comparison is placed at the
// earliest point where its variables are bound (equalities with one free
// side count as binders once the other side is available).
func sipsOrder(body term.Formula, initiallyBound map[term.Term]bool) term.Formula {
	bound := make(map[term.Term]bool, len(initiallyBound))
	for v := range initiallyBound {
		bound[v] = true
	}
	var ordinary, comparisons []term.Atom
	for _, a := range body {
		if term.IsComparison(a) {
			comparisons = append(comparisons, a)
		} else {
			ordinary = append(ordinary, a)
		}
	}
	pendingCmp := append([]term.Atom{}, comparisons...)
	var out term.Formula
	flushReady := func() {
		for changed := true; changed; {
			changed = false
			var rest []term.Atom
			for _, c := range pendingCmp {
				ready := true
				free := 0
				for _, t := range c.Args {
					if t.IsVar() && !bound[t] {
						free++
					}
				}
				if c.Pred == term.PredEq {
					ready = free <= 1
				} else {
					ready = free == 0
				}
				if ready {
					out = append(out, c)
					for _, t := range c.Args {
						if t.IsVar() {
							bound[t] = true
						}
					}
					changed = true
				} else {
					rest = append(rest, c)
				}
			}
			pendingCmp = rest
		}
	}
	flushReady()
	for _, a := range ordinary {
		out = append(out, a)
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t] = true
			}
		}
		flushReady()
	}
	// Any leftover comparisons go at the end (the safety check rejected
	// genuinely unbound ones already).
	out = append(out, pendingCmp...)
	return out
}

// MagicProgram exposes the rewritten program for inspection and tests.
func MagicProgram(in Input, q Query) ([]term.Rule, error) {
	p, err := buildPlan(in, q)
	if err != nil {
		return nil, err
	}
	rules, _, _, err := magicRewrite(p)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Head.Pred < rules[j].Head.Pred })
	return rules, nil
}

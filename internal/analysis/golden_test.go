package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kdb/internal/parser"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/lint")

// TestLintCorpusGolden checks every program in testdata/lint against its
// golden report: one defect class per program, diagnostics
// position-accurate. Regenerate with `go test ./internal/analysis
// -run Golden -update`.
func TestLintCorpusGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "lint")
	paths, err := filepath.Glob(filepath.Join(dir, "*.kdb"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus under %s: %v", dir, err)
	}
	for _, path := range paths {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Positions are anchored to the base name so the golden files
			// stay independent of the checkout location.
			prog, err := parser.ParseProgramFile(name, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := Run(FromProgram(prog)).String()
			golden := path[:len(path)-len(".kdb")] + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report differs from %s:\n--- got ---\n%s--- want ---\n%s", filepath.Base(golden), got, want)
			}
		})
	}
}

// FuzzAnalyzers asserts the suite never panics on any parseable
// program — the cross-analyzer robustness contract.
func FuzzAnalyzers(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "lint")
	paths, _ := filepath.Glob(filepath.Join(dir, "*.kdb"))
	for _, path := range paths {
		if src, err := os.ReadFile(path); err == nil {
			f.Add(string(src))
		}
	}
	f.Add("p(X) :- p(X), q(Y).")
	f.Add("p(a, b). p(c). q(X) :- p(X, Y), X > Y, Y > X.")
	f.Add(":- p(X), X > 3. @key p/2 1.")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Skip()
		}
		rep := Run(FromProgram(prog))
		_ = rep.String()
	})
}

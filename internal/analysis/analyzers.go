package analysis

import (
	"fmt"
	"sort"
	"strings"

	"kdb/internal/builtin"
	"kdb/internal/depgraph"
	"kdb/internal/obs/sysrel"
	"kdb/internal/term"
	"kdb/internal/transform"
)

// safetyAnalyzer checks range restriction (the well-formedness Algorithm
// 1 silently assumes): every head variable and every variable of a
// non-equality comparison must be bound by a positive ordinary body
// atom, with equality atoms propagating bindings.
var safetyAnalyzer = &Analyzer{
	Name: "safety",
	Doc:  "head or comparison variables unbound by any positive body atom",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		for _, r := range pass.Program.Rules {
			if v, where, ok := unsafeVar(r); ok {
				out = append(out, Diagnostic{
					Analyzer: "safety",
					Severity: SevError,
					Pos:      r.Pos,
					Subject:  r.Head.Pred,
					Message:  fmt.Sprintf("unsafe rule: %s variable %v is not bound by any positive body atom", where, v),
					Rules:    []string{r.String()},
				})
			}
		}
		return out
	},
}

// unsafeVar returns the first range-restriction violation of the rule:
// the unbound variable and whether it occurs in the head or in a
// comparison. The binding semantics mirror eval.CheckSafety.
func unsafeVar(r term.Rule) (term.Term, string, bool) {
	bound := make(map[term.Term]bool)
	for _, a := range r.Body {
		if term.IsComparison(a) {
			continue
		}
		for _, v := range a.Vars(nil) {
			bound[v] = true
		}
	}
	// Equality atoms propagate bindings; iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, a := range r.Body {
			if a.Pred != term.PredEq || len(a.Args) != 2 {
				continue
			}
			l, rr := a.Args[0], a.Args[1]
			lB := !l.IsVar() || bound[l]
			rB := !rr.IsVar() || bound[rr]
			if lB && !rB {
				bound[rr] = true
				changed = true
			}
			if rB && !lB {
				bound[l] = true
				changed = true
			}
		}
	}
	for _, v := range r.Head.Vars(nil) {
		if !bound[v] {
			return v, "head", true
		}
	}
	for _, a := range r.Body {
		if !term.IsComparison(a) || a.Pred == term.PredEq {
			continue
		}
		for _, v := range a.Vars(nil) {
			if !bound[v] {
				return v, "comparison", true
			}
		}
	}
	return term.Term{}, "", false
}

// arityAnalyzer reports predicates used with conflicting arities across
// rule heads, rule bodies, constraints, and the EDB schema.
var arityAnalyzer = &Analyzer{
	Name: "arity",
	Doc:  "same predicate used with conflicting arities",
	Run: func(pass *Pass) []Diagnostic {
		type use struct {
			arity int
			pos   term.Pos
			rule  string
		}
		uses := make(map[string][]use)
		record := func(a term.Atom, pos term.Pos, rule string) {
			if term.IsComparisonPred(a.Pred) {
				return
			}
			uses[a.Pred] = append(uses[a.Pred], use{a.Arity(), pos, rule})
		}
		for pred, arity := range pass.Program.EDB {
			uses[pred] = append(uses[pred], use{arity, term.Pos{}, ""})
		}
		for _, f := range pass.Program.Facts {
			record(f.Head, f.Pos, f.String())
		}
		for _, r := range pass.Program.Rules {
			record(r.Head, r.Pos, r.String())
			for _, a := range r.Body {
				record(a, r.Pos, r.String())
			}
		}
		for i, ic := range pass.Program.Constraints {
			var pos term.Pos
			if i < len(pass.Program.ConstraintPos) {
				pos = pass.Program.ConstraintPos[i]
			}
			for _, a := range ic {
				record(a, pos, ":- "+ic.String()+".")
			}
		}
		preds := make([]string, 0, len(uses))
		for p := range uses {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		var out []Diagnostic
		for _, p := range preds {
			us := uses[p]
			arities := map[int]bool{}
			for _, u := range us {
				arities[u.arity] = true
			}
			if len(arities) < 2 {
				continue
			}
			list := make([]int, 0, len(arities))
			for a := range arities {
				list = append(list, a)
			}
			sort.Ints(list)
			parts := make([]string, len(list))
			for i, a := range list {
				parts[i] = fmt.Sprint(a)
			}
			d := Diagnostic{
				Analyzer: "arity",
				Severity: SevError,
				Subject:  p,
				Message:  fmt.Sprintf("predicate %s is used with conflicting arities %s", p, strings.Join(parts, " and ")),
			}
			seen := map[string]bool{}
			for _, u := range us {
				if !d.Pos.IsValid() && u.pos.IsValid() {
					d.Pos = u.pos
				}
				if u.rule != "" && !seen[u.rule] {
					seen[u.rule] = true
					d.Rules = append(d.Rules, u.rule)
				}
			}
			out = append(out, d)
		}
		return out
	},
}

// undefinedAnalyzer reports body and constraint atoms whose predicate
// has no EDB relation and no defining rule: such conjuncts denote the
// empty relation, so the enclosing rule can never fire.
var undefinedAnalyzer = &Analyzer{
	Name: "undefined",
	Doc:  "body atoms with no EDB relation and no defining rule",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		seen := make(map[string]bool)
		report := func(a term.Atom, pos term.Pos, where, rule string) {
			if term.IsComparisonPred(a.Pred) || pass.Defined[a.Pred] || seen[a.Pred] {
				return
			}
			seen[a.Pred] = true
			out = append(out, Diagnostic{
				Analyzer: "undefined",
				Severity: SevWarning,
				Pos:      pos,
				Subject:  a.Pred,
				Message:  fmt.Sprintf("predicate %s/%d has no stored relation and no defining rule; the %s can never be satisfied", a.Pred, a.Arity(), where),
				Rules:    []string{rule},
			})
		}
		for _, r := range pass.Program.Rules {
			for _, a := range r.Body {
				report(a, r.Pos, "rule body", r.String())
			}
		}
		for i, ic := range pass.Program.Constraints {
			var pos term.Pos
			if i < len(pass.Program.ConstraintPos) {
				pos = pass.Program.ConstraintPos[i]
			}
			for _, a := range ic {
				report(a, pos, "constraint", ":- "+ic.String()+".")
			}
		}
		return out
	},
}

// unusedAnalyzer reports the two ways a predicate can be dead weight:
// a stored relation referenced by no rule and no constraint feeds no
// knowledge (informational — it remains directly queryable), and an IDB
// predicate with no grounded derivation path from the EDB — every rule
// for it depends, transitively, on its own cycle — can never derive a
// fact, so the concept is necessarily empty (a warning). Predicates the
// undefined analyzer already flags are treated optimistically here, so
// one missing relation does not cascade into a second finding per rule.
var unusedAnalyzer = &Analyzer{
	Name: "unused",
	Doc:  "unreferenced stored relations; predicates that can never derive facts",
	Run: func(pass *Pass) []Diagnostic {
		referenced := make(map[string]bool)
		for _, r := range pass.Program.Rules {
			for _, a := range r.Body {
				if !term.IsComparison(a) {
					referenced[a.Pred] = true
				}
			}
		}
		for _, ic := range pass.Program.Constraints {
			for _, a := range ic {
				if !term.IsComparison(a) {
					referenced[a.Pred] = true
				}
			}
		}
		rulesFor := make(map[string][]term.Rule)
		var headOrder []string
		for _, r := range pass.Program.Rules {
			if _, ok := rulesFor[r.Head.Pred]; !ok {
				headOrder = append(headOrder, r.Head.Pred)
			}
			rulesFor[r.Head.Pred] = append(rulesFor[r.Head.Pred], r)
		}
		// Groundedness fixpoint: EDB relations (and, optimistically,
		// undefined predicates) are grounded; a rule head is grounded once
		// every ordinary body atom is.
		grounded := make(map[string]bool)
		for p := range pass.Program.EDB {
			grounded[p] = true
		}
		for _, d := range sysrel.Defs() {
			grounded[d.Name] = true // virtual relations are served, hence grounded
		}
		for changed := true; changed; {
			changed = false
			for _, r := range pass.Program.Rules {
				if grounded[r.Head.Pred] {
					continue
				}
				ok := true
				for _, a := range r.Body {
					if term.IsComparison(a) || !pass.Defined[a.Pred] {
						continue
					}
					if !grounded[a.Pred] {
						ok = false
						break
					}
				}
				if ok {
					grounded[r.Head.Pred] = true
					changed = true
				}
			}
		}
		var out []Diagnostic
		for _, p := range headOrder {
			if grounded[p] {
				continue
			}
			rs := rulesFor[p]
			d := Diagnostic{
				Analyzer: "unused",
				Severity: SevWarning,
				Pos:      rs[0].Pos,
				Subject:  p,
				Message:  fmt.Sprintf("predicate %s can never derive facts: no rule for it is grounded in stored relations", p),
			}
			for _, r := range rs {
				d.Rules = append(d.Rules, r.String())
			}
			out = append(out, d)
		}
		edbPreds := make([]string, 0, len(pass.Program.EDB))
		for p := range pass.Program.EDB {
			edbPreds = append(edbPreds, p)
		}
		sort.Strings(edbPreds)
		for _, p := range edbPreds {
			if referenced[p] || len(rulesFor[p]) > 0 {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "unused",
				Severity: SevInfo,
				Subject:  p,
				Message:  fmt.Sprintf("stored relation %s/%d is not referenced by any rule or constraint", p, pass.Program.EDB[p]),
			})
		}
		return out
	},
}

// recursionAnalyzer classifies every recursive component and checks the
// paper's §2.1 discipline (all recursive rules strongly linear and typed
// with respect to their head), subsuming depgraph.CheckDiscipline: the
// classification decides whether describe can run the exact Algorithm 2
// (via the §5.2 transformation) or must fall back to the bounded §5.3
// mode, and whether the transformation itself is degenerate.
var recursionAnalyzer = &Analyzer{
	Name: "recursion",
	Doc:  "per-component recursion classification and §2.1 discipline",
	Run: func(pass *Pass) []Diagnostic {
		g := pass.Graph
		var out []Diagnostic
		// Per-rule discipline violations, with positions.
		for _, v := range checkDiscipline(g, pass.Program.Rules) {
			out = append(out, Diagnostic{
				Analyzer: "recursion",
				Severity: SevWarning,
				Pos:      v.Rule.Pos,
				Subject:  v.Rule.Head.Pred,
				Message:  v.Reason + " (describe uses the bounded §5.3 mode)",
				Rules:    []string{v.Rule.String()},
			})
		}
		// Degenerate disciplined recursion: the §5.2 transformation
		// cannot apply, so describe on the predicate fails outright.
		probe := transform.Probe(pass.Program.Rules)
		probePreds := make([]string, 0, len(probe))
		for p := range probe {
			probePreds = append(probePreds, p)
		}
		sort.Strings(probePreds)
		for _, p := range probePreds {
			d := Diagnostic{
				Analyzer: "recursion",
				Severity: SevWarning,
				Subject:  p,
				Message:  fmt.Sprintf("degenerate recursion: %v; describe queries on %s cannot apply the §5.2 transformation", probe[p], p),
			}
			for _, r := range g.RulesFor(p) {
				if g.IsRecursiveRule(r) {
					if !d.Pos.IsValid() {
						d.Pos = r.Pos
					}
					d.Rules = append(d.Rules, r.String())
				}
			}
			out = append(out, d)
		}
		// Per-component classification report.
		for _, comp := range g.SCCOrder() {
			var recRules []term.Rule
			for _, p := range comp {
				for _, r := range g.RulesFor(p) {
					if g.IsRecursiveRule(r) {
						recRules = append(recRules, r)
					}
				}
			}
			if len(recRules) == 0 {
				continue
			}
			class := classifyRules(g, recRules)
			desc := class.describe()
			if class == ClassTyped {
				for _, p := range comp {
					if _, bad := probe[p]; bad {
						desc = "strongly linear and typed, but the §5.2 transformation is degenerate; describe cannot answer for this component"
						break
					}
				}
			}
			msg := fmt.Sprintf("recursive component [%s]: %s", strings.Join(comp, ", "), desc)
			d := Diagnostic{
				Analyzer: "recursion",
				Severity: SevInfo,
				Pos:      recRules[0].Pos,
				Subject:  comp[0],
				Message:  msg,
			}
			for _, r := range recRules {
				d.Rules = append(d.Rules, r.String())
			}
			out = append(out, d)
		}
		return out
	},
}

// checkDiscipline mirrors depgraph.CheckDiscipline over an existing
// graph (avoiding a second dependency analysis).
func checkDiscipline(g *depgraph.Graph, rules []term.Rule) []depgraph.Violation {
	var out []depgraph.Violation
	for _, r := range rules {
		if !g.IsRecursiveRule(r) {
			continue
		}
		if !g.IsStronglyLinear(r) {
			out = append(out, depgraph.Violation{Rule: r, Reason: "recursive rule is not strongly linear"})
		}
		if !depgraph.TypedWRT(r, r.Head.Pred) {
			out = append(out, depgraph.Violation{Rule: r, Reason: "recursive rule is not typed with respect to its head predicate"})
		}
	}
	return out
}

// RecursionClass classifies the recursive rules of one component, from
// the paper's §2.1 taxonomy. Higher is better behaved.
type RecursionClass uint8

// Recursion classes.
const (
	// ClassNonrecursive: the component has no recursive rule.
	ClassNonrecursive RecursionClass = iota
	// ClassNonlinear: some recursive rule has two or more mutually
	// recursive body occurrences.
	ClassNonlinear
	// ClassLinear: every recursive rule is linear, but some only through
	// mutual dependency (not strongly linear).
	ClassLinear
	// ClassStronglyLinear: every recursive rule is strongly linear, but
	// some are not typed with respect to their head.
	ClassStronglyLinear
	// ClassTyped: every recursive rule is strongly linear AND typed —
	// Algorithm 2 (the §5.2 transformation) applies exactly.
	ClassTyped
)

// String names the class.
func (c RecursionClass) String() string {
	switch c {
	case ClassNonrecursive:
		return "nonrecursive"
	case ClassNonlinear:
		return "nonlinear"
	case ClassLinear:
		return "linear"
	case ClassStronglyLinear:
		return "strongly-linear"
	case ClassTyped:
		return "strongly-linear typed"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// describe renders the class with its describe-engine consequence.
func (c RecursionClass) describe() string {
	switch c {
	case ClassTyped:
		return "strongly linear and typed; eligible for the exact Algorithm 2 (§5.2 transformation)"
	case ClassStronglyLinear:
		return "strongly linear but not typed; describe uses the bounded §5.3 mode"
	case ClassLinear:
		return "linear but not strongly linear; rewritable by unfolding (footnote 2), otherwise bounded §5.3 mode"
	case ClassNonlinear:
		return "nonlinear; describe uses the bounded §5.3 mode"
	default:
		return c.String()
	}
}

// classifyOne grades a single recursive rule.
func classifyOne(g *depgraph.Graph, r term.Rule) RecursionClass {
	switch {
	case !g.IsRecursiveRule(r):
		return ClassNonrecursive
	case !g.IsLinear(r):
		return ClassNonlinear
	case !g.IsStronglyLinear(r):
		return ClassLinear
	case !depgraph.TypedWRT(r, r.Head.Pred):
		return ClassStronglyLinear
	default:
		return ClassTyped
	}
}

// classifyRules grades a set of recursive rules: the component's class
// is the weakest class among its rules.
func classifyRules(g *depgraph.Graph, recRules []term.Rule) RecursionClass {
	class := ClassTyped
	for _, r := range recRules {
		if c := classifyOne(g, r); c < class {
			class = c
		}
	}
	return class
}

// contradictionAnalyzer reports rules whose built-in comparison atoms
// are jointly unsatisfiable: no substitution can satisfy the body, so
// the rule can never fire.
var contradictionAnalyzer = &Analyzer{
	Name: "contradiction",
	Doc:  "rule bodies whose comparison constraints are unsatisfiable",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		for _, r := range pass.Program.Rules {
			cmp, _ := builtin.Split(r.Body)
			if len(cmp) == 0 {
				continue
			}
			sat, err := builtin.Sat(cmp)
			if err != nil || sat {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "contradiction",
				Severity: SevWarning,
				Pos:      r.Pos,
				Subject:  r.Head.Pred,
				Message:  fmt.Sprintf("rule can never fire: its comparison constraints (%s) are contradictory", cmp),
				Rules:    []string{r.String()},
			})
		}
		return out
	},
}

// duplicateAnalyzer reports rules that restate an earlier rule of the
// same predicate up to variable renaming: the later rule adds nothing.
var duplicateAnalyzer = &Analyzer{
	Name: "duplicate",
	Doc:  "rules that duplicate an earlier rule up to variable renaming",
	Run: func(pass *Pass) []Diagnostic {
		byPred := make(map[string][]term.Rule)
		var order []string
		for _, r := range pass.Program.Rules {
			if _, ok := byPred[r.Head.Pred]; !ok {
				order = append(order, r.Head.Pred)
			}
			byPred[r.Head.Pred] = append(byPred[r.Head.Pred], r)
		}
		var out []Diagnostic
		for _, p := range order {
			rs := byPred[p]
			for i := 1; i < len(rs); i++ {
				for j := 0; j < i; j++ {
					if transform.IsVariant(rs[i], rs[j]) {
						out = append(out, Diagnostic{
							Analyzer: "duplicate",
							Severity: SevWarning,
							Pos:      rs[i].Pos,
							Subject:  p,
							Message:  fmt.Sprintf("rule duplicates an earlier rule for %s (up to variable renaming)", p),
							Rules:    []string{rs[i].String(), rs[j].String()},
						})
						break
					}
				}
			}
		}
		return out
	},
}
